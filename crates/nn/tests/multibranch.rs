//! Cross-layer integration tests, including the multi-branch shared-weight
//! case that Algorithm 1's combined phases rely on.

use fluid_nn::{
    finite_diff_gradient, max_relative_error, Adam, ChannelRange, Optimizer, ParamSet,
    RangedConv2d, RangedLinear, Relu, Sgd,
};
use fluid_tensor::{Prng, Tensor};

/// A miniature two-branch network: one shared RangedConv2d executed on two
/// disjoint channel blocks, partial FC products summed — the exact shape of
/// a fluid combined model. (No pooling: max-pool argmax switching breaks
/// finite differences, and pooling is covered by its own unit tests.)
struct TwoBranch {
    conv: RangedConv2d,
    relu: Relu,
    fc: RangedLinear,
}

const SIDE: usize = 4;
const FPC: usize = SIDE * SIDE; // features per channel after flatten

impl TwoBranch {
    fn new(seed: u64) -> Self {
        let mut rng = Prng::new(seed);
        Self {
            conv: RangedConv2d::new(4, 1, 3, 1, 1, &mut rng),
            relu: Relu::new(),
            fc: RangedLinear::new(3, 4 * FPC, &mut rng),
        }
    }

    fn clone_weights_from(&mut self, other: &TwoBranch) {
        self.conv
            .weight_mut()
            .data_mut()
            .copy_from_slice(other.conv.weight().data());
        self.conv
            .bias_mut()
            .data_mut()
            .copy_from_slice(other.conv.bias().data());
        self.fc
            .weight_mut()
            .data_mut()
            .copy_from_slice(other.fc.weight().data());
        self.fc
            .bias_mut()
            .data_mut()
            .copy_from_slice(other.fc.bias().data());
    }

    fn forward_branch(
        &mut self,
        x: &Tensor,
        block: ChannelRange,
        bias: bool,
        train: bool,
    ) -> Tensor {
        let h = self.conv.forward(x, ChannelRange::new(0, 1), block, train);
        let h = self.relu.forward(&h, train);
        let n = h.dim(0);
        let flat = h.reshape(&[n, h.numel() / n]);
        let cols = block.to_feature_range(FPC);
        self.fc.forward(&flat, cols, bias, train)
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let lo = self.forward_branch(x, ChannelRange::new(0, 2), true, train);
        let hi = self.forward_branch(x, ChannelRange::new(2, 4), false, train);
        lo.add(&hi)
    }

    /// Unwinds both branches (LIFO); both receive the same logits gradient
    /// because `logits = p_lo + p_hi`.
    fn backward(&mut self, grad: &Tensor, batch: usize) {
        for _ in 0..2 {
            let g = self.fc.backward(grad);
            let g = g.reshape(&[batch, 2, SIDE, SIDE]);
            let g = self.relu.backward(&g);
            let _ = self.conv.backward(&g);
        }
    }

    fn loss(&mut self, x: &Tensor) -> f32 {
        self.forward(x, false).sq_norm() / 2.0
    }

    fn zero_grad(&mut self) {
        self.conv.zero_grad();
        self.fc.zero_grad();
    }

    fn param_set(&mut self) -> ParamSet<'_> {
        let mut params = ParamSet::new();
        for (p, g) in self.conv.params_and_grads_mut() {
            params.push(p, g);
        }
        for (p, g) in self.fc.params_and_grads_mut() {
            params.push(p, g);
        }
        params
    }
}

#[test]
fn two_branch_shared_conv_gradients_match_finite_differences() {
    let mut net = TwoBranch::new(3);
    let x = Tensor::from_fn(&[2, 1, SIDE, SIDE], |i| ((i * 13 % 37) as f32) / 37.0 - 0.3);

    net.zero_grad();
    let y = net.forward(&x, true);
    let y2 = y.clone();
    net.backward(&y2, 2);

    let analytic: Vec<f32> = {
        let mut v = Vec::new();
        net.conv.visit_params(&mut |_, g| {
            if v.is_empty() {
                v = g.data().to_vec();
            }
        });
        v
    };
    let mut weight_snapshot = net.conv.weight().clone();
    let numeric = finite_diff_gradient(&mut weight_snapshot, 1e-3, |w| {
        let mut probe = TwoBranch::new(999);
        probe.clone_weights_from(&net);
        probe.conv.weight_mut().data_mut().copy_from_slice(w.data());
        probe.loss(&x)
    });
    let mut worst = 0.0f32;
    for (a, n) in analytic.iter().zip(numeric.data()) {
        worst = worst.max(max_relative_error(*a, *n));
    }
    assert!(worst < 3e-2, "two-branch conv gradient error {worst}");
}

#[test]
fn two_branch_fc_gradients_match_finite_differences() {
    let mut net = TwoBranch::new(6);
    let x = Tensor::from_fn(&[2, 1, SIDE, SIDE], |i| ((i * 11 % 31) as f32) / 31.0 - 0.2);
    net.zero_grad();
    let y = net.forward(&x, true);
    net.backward(&y.clone(), 2);

    let analytic: Vec<f32> = {
        let mut v = Vec::new();
        net.fc.visit_params(&mut |_, g| {
            if v.is_empty() {
                v = g.data().to_vec();
            }
        });
        v
    };
    let mut weight_snapshot = net.fc.weight().clone();
    let numeric = finite_diff_gradient(&mut weight_snapshot, 1e-3, |w| {
        let mut probe = TwoBranch::new(999);
        probe.clone_weights_from(&net);
        probe.fc.weight_mut().data_mut().copy_from_slice(w.data());
        probe.loss(&x)
    });
    let mut worst = 0.0f32;
    for (a, n) in analytic.iter().zip(numeric.data()) {
        worst = worst.max(max_relative_error(*a, *n));
    }
    assert!(worst < 3e-2, "two-branch fc gradient error {worst}");
}

#[test]
fn adam_trains_the_two_branch_network() {
    let mut net = TwoBranch::new(4);
    let x = Tensor::from_fn(&[4, 1, SIDE, SIDE], |i| ((i * 7 % 29) as f32) / 29.0);
    let mut opt = Adam::new(0.01, 0.0);
    let loss0 = net.loss(&x);
    for _ in 0..80 {
        net.zero_grad();
        let y = net.forward(&x, true);
        // dL/dy for L = sum(y^2)/2 is y itself.
        net.backward(&y.clone(), 4);
        let mut params = net.param_set();
        opt.step(&mut params);
    }
    let loss1 = net.loss(&x);
    assert!(
        loss1 < loss0 * 0.2,
        "Adam failed to shrink the output: {loss0} -> {loss1}"
    );
}

#[test]
fn sgd_and_adam_respect_masking_identically() {
    // Train only the lower block with both optimizers; the upper block's
    // conv weights must be bit-identical to their initial values.
    for use_adam in [false, true] {
        let mut net = TwoBranch::new(5);
        let upper_rows = |net: &TwoBranch| -> Vec<f32> {
            let kk = 9;
            let w = net.conv.weight().data();
            (2..4)
                .flat_map(|co| w[co * kk..(co + 1) * kk].to_vec())
                .collect()
        };
        let upper_before = upper_rows(&net);
        let x = Tensor::from_fn(&[2, 1, SIDE, SIDE], |i| (i as f32 * 0.1).sin());
        let mut sgd = Sgd::new(0.05, 0.9, 1e-3);
        let mut adam = Adam::new(0.01, 1e-3);
        for _ in 0..10 {
            net.zero_grad();
            let y = net.forward_branch(&x, ChannelRange::new(0, 2), true, true);
            let g = net.fc.backward(&y.clone());
            let g = g.reshape(&[2, 2, SIDE, SIDE]);
            let g = net.relu.backward(&g);
            let _ = net.conv.backward(&g);
            let mut params = net.param_set();
            if use_adam {
                adam.step(&mut params);
            } else {
                sgd.step(&mut params);
            }
        }
        assert_eq!(
            upper_before,
            upper_rows(&net),
            "masking leak (adam={use_adam})"
        );
    }
}

#[test]
fn lifo_cache_depth_three() {
    // Three stacked training forwards through one ReLU unwind correctly.
    let mut relu = Relu::new();
    let a = Tensor::from_vec(vec![1.0, -1.0], &[2]);
    let b = Tensor::from_vec(vec![-1.0, 1.0], &[2]);
    let c = Tensor::from_vec(vec![1.0, 1.0], &[2]);
    let _ = relu.forward(&a, true);
    let _ = relu.forward(&b, true);
    let _ = relu.forward(&c, true);
    let ones = Tensor::ones(&[2]);
    assert_eq!(relu.backward(&ones).data(), &[1.0, 1.0]); // c's mask
    assert_eq!(relu.backward(&ones).data(), &[0.0, 1.0]); // b's mask
    assert_eq!(relu.backward(&ones).data(), &[1.0, 0.0]); // a's mask
}
