//! Finite-difference gradient checking utilities.
//!
//! Every layer's backward pass is validated against central differences in
//! its unit tests; these helpers keep those tests short.

use fluid_tensor::Tensor;

/// Numerically estimates `dL/dparam` by central differences.
///
/// `loss` is re-evaluated with each element of `param` perturbed by `±eps`;
/// the closure must be a pure function of the tensor contents.
///
/// # Panics
///
/// Panics if `eps <= 0`.
pub fn finite_diff_gradient(
    param: &mut Tensor,
    eps: f32,
    mut loss: impl FnMut(&Tensor) -> f32,
) -> Tensor {
    assert!(eps > 0.0, "eps must be positive");
    let mut grad = Tensor::zeros(param.dims());
    for i in 0..param.numel() {
        let orig = param.data()[i];
        param.data_mut()[i] = orig + eps;
        let lp = loss(param);
        param.data_mut()[i] = orig - eps;
        let lm = loss(param);
        param.data_mut()[i] = orig;
        grad.data_mut()[i] = (lp - lm) / (2.0 * eps);
    }
    grad
}

/// Relative error between an analytic and a numeric derivative, robust to
/// small magnitudes.
pub fn max_relative_error(analytic: f32, numeric: f32) -> f32 {
    let denom = analytic.abs().max(numeric.abs()).max(1e-2);
    (analytic - numeric).abs() / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient() {
        // L = sum(x^2), dL/dx = 2x.
        let mut x = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]);
        let g = finite_diff_gradient(&mut x, 1e-3, |t| t.sq_norm());
        let expected = [2.0, -4.0, 1.0];
        for (a, e) in g.data().iter().zip(expected) {
            assert!((a - e).abs() < 1e-2, "{a} vs {e}");
        }
    }

    #[test]
    fn relative_error_is_scale_free() {
        assert!(max_relative_error(100.0, 100.1) < 0.01);
        assert!(max_relative_error(1.0, 2.0) > 0.4);
    }

    #[test]
    fn perturbation_restores_param() {
        let mut x = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let before = x.clone();
        let _ = finite_diff_gradient(&mut x, 1e-3, |t| t.sum());
        assert_eq!(x, before);
    }
}
