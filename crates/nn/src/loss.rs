//! Classification loss and metrics.

use fluid_tensor::{Tensor, Workspace};

/// Mean softmax cross-entropy over a batch.
///
/// Returns `(loss, grad)` where `grad` is the gradient with respect to the
/// logits, already divided by the batch size (`(softmax − onehot) / N`).
///
/// # Panics
///
/// Panics if `logits` is not rank 2, `labels.len() != N`, or any label is
/// out of range.
///
/// # Example
///
/// ```
/// use fluid_nn::softmax_cross_entropy;
/// use fluid_tensor::Tensor;
/// let logits = Tensor::from_vec(vec![10.0, -10.0], &[1, 2]);
/// let (loss, _grad) = softmax_cross_entropy(&logits, &[0]);
/// assert!(loss < 1e-3);
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    softmax_cross_entropy_ws(logits, labels, &mut Workspace::new())
}

/// [`softmax_cross_entropy`] with the gradient buffer drawn from `ws` —
/// the zero-allocation variant for steady-state training loops (recycle
/// the returned gradient after the backward pass).
///
/// # Panics
///
/// As for [`softmax_cross_entropy`].
pub fn softmax_cross_entropy_ws(
    logits: &Tensor,
    labels: &[usize],
    ws: &mut Workspace,
) -> (f32, Tensor) {
    let d = logits.dims();
    assert_eq!(d.len(), 2, "logits rank {}", d.len());
    let (n, k) = (d[0], d[1]);
    assert_eq!(labels.len(), n, "label count {} != batch {n}", labels.len());
    assert!(labels.iter().all(|&l| l < k), "label out of range 0..{k}");
    assert!(n > 0, "empty batch");

    // One buffer serves as probabilities and then gradient: the loss only
    // reads each row's label element, which is read before it is rewritten.
    let mut grad = ws.tensor_copy(logits);
    grad.softmax_rows_in_place();
    let mut loss = 0.0f32;
    for (r, &label) in labels.iter().enumerate() {
        let p = grad.at2(r, label);
        loss -= p.max(1e-12).ln();
        grad.set2(r, label, p - 1.0);
    }
    grad.scale_in_place(1.0 / n as f32);
    (loss / n as f32, grad)
}

/// Fraction of rows whose argmax matches the label.
///
/// # Panics
///
/// Panics if `logits` is not rank 2 or `labels.len()` differs from the
/// batch size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let pred = logits.argmax_rows();
    assert_eq!(pred.len(), labels.len(), "label count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = pred.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confident_correct_prediction_low_loss() {
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0], &[1, 3]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn uniform_logits_loss_is_ln_k() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        let logits = Tensor::from_fn(&[3, 5], |i| (i as f32 * 0.61).sin());
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 4, 0]);
        for r in 0..3 {
            let s: f32 = (0..5).map(|c| grad.at2(r, c)).sum();
            assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn grad_matches_finite_difference() {
        let mut logits = Tensor::from_fn(&[2, 4], |i| (i as f32 * 0.47).cos());
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..logits.numel() {
            let orig = logits.data()[i];
            logits.data_mut()[i] = orig + eps;
            let (lp, _) = softmax_cross_entropy(&logits, &labels);
            logits.data_mut()[i] = orig - eps;
            let (lm, _) = softmax_cross_entropy(&logits, &labels);
            logits.data_mut()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (grad.data()[i] - num).abs() < 1e-3,
                "elem {i}: {} vs {num}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        let _ = softmax_cross_entropy(&Tensor::zeros(&[1, 3]), &[3]);
    }
}
