//! Range-sliceable fully-connected layer.

use crate::range::ChannelRange;
use fluid_tensor::{kaiming_uniform, Prng, Tensor, Workspace};

/// A fully-connected layer `[out_features, in_features_max]` that can consume
/// any *input-feature column range*.
///
/// This is the layer that makes Fluid DyDNNs distribution-friendly: the full
/// model's logits decompose into partial products over disjoint column
/// ranges,
///
/// ```text
/// logits = W[:, lower] · x_lower + W[:, upper] · x_upper + b
/// ```
///
/// so in High-Accuracy mode each device computes one partial product and the
/// Master adds them (plus the bias exactly once — see `with_bias`).
#[derive(Debug, Clone)]
pub struct RangedLinear {
    weight: Tensor, // [out_features, in_features_max]
    bias: Tensor,   // [out_features]
    wgrad: Tensor,
    bgrad: Tensor,
    out_features: usize,
    in_features_max: usize,
    cache: Vec<LinearCache>,
}

#[derive(Debug, Clone)]
struct LinearCache {
    x: Tensor,
    in_range: ChannelRange,
    with_bias: bool,
}

impl RangedLinear {
    /// Creates a linear layer with Kaiming-uniform weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn new(out_features: usize, in_features_max: usize, rng: &mut Prng) -> Self {
        assert!(out_features > 0 && in_features_max > 0);
        Self {
            weight: kaiming_uniform(&[out_features, in_features_max], in_features_max, rng),
            bias: Tensor::zeros(&[out_features]),
            wgrad: Tensor::zeros(&[out_features, in_features_max]),
            bgrad: Tensor::zeros(&[out_features]),
            out_features,
            in_features_max,
            cache: Vec::new(),
        }
    }

    /// Output feature count (number of classes for the paper's head).
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Maximum input feature count.
    pub fn in_features_max(&self) -> usize {
        self.in_features_max
    }

    /// The full weight matrix.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable weight matrix.
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable bias vector.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.bias
    }

    /// Extracts columns `[in_range)` as an `[out, in_w]` matrix, backed by
    /// a workspace buffer.
    pub(crate) fn weight_window(&self, in_range: ChannelRange, ws: &mut Workspace) -> Tensor {
        let in_w = in_range.width();
        let mut out = ws.tensor_zeroed(&[self.out_features, in_w]);
        for r in 0..self.out_features {
            let src = r * self.in_features_max + in_range.lo;
            out.data_mut()[r * in_w..(r + 1) * in_w]
                .copy_from_slice(&self.weight.data()[src..src + in_w]);
        }
        out
    }

    /// Computes `x · W[:, in_range]ᵀ` (+ bias when `with_bias`).
    ///
    /// In distributed High-Accuracy mode only one device sets `with_bias`
    /// so the merged partial logits contain the bias exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 2, the range exceeds the layer's maximum,
    /// or `x.dim(1) != in_range.width()`.
    pub fn forward(
        &mut self,
        x: &Tensor,
        in_range: ChannelRange,
        with_bias: bool,
        train: bool,
    ) -> Tensor {
        self.forward_ws(x, in_range, with_bias, train, &mut Workspace::new())
    }

    /// [`forward`](RangedLinear::forward) with scratch drawn from (and
    /// recycled into) `ws`.
    ///
    /// # Panics
    ///
    /// As for [`forward`](RangedLinear::forward).
    pub fn forward_ws(
        &mut self,
        x: &Tensor,
        in_range: ChannelRange,
        with_bias: bool,
        train: bool,
        ws: &mut Workspace,
    ) -> Tensor {
        assert!(
            in_range.fits(self.in_features_max),
            "in_range {in_range} exceeds {}",
            self.in_features_max
        );
        let d = x.dims();
        assert_eq!(d.len(), 2, "linear input rank {}", d.len());
        assert_eq!(
            d[1],
            in_range.width(),
            "input has {} features but in_range is {in_range}",
            d[1]
        );
        let wmat = self.weight_window(in_range, ws);
        // x · Wᵀ through a transposed zero-copy view — the engine packs
        // straight from the window's strides.
        let mut y = x.view().matmul_ws(&wmat.view().t(), ws); // [N, out]
        ws.recycle(wmat);
        if with_bias {
            // Broadcast in-place add: [out] repeats over the batch rows
            // with stride 0. One add per element, so bit-identical to the
            // old hand-rolled row loop at any thread count.
            y.add_assign_broadcast(&self.bias.view())
                .expect("bias [out] broadcasts over [N, out]");
        }
        if train {
            self.cache.push(LinearCache {
                x: ws.tensor_copy(x),
                in_range,
                with_bias,
            });
        }
        y
    }

    /// Backpropagates through the last `forward(.., train = true)` call.
    ///
    /// # Panics
    ///
    /// Panics if no training forward pass is cached or shapes mismatch.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// [`backward`](RangedLinear::backward) with scratch drawn from (and
    /// recycled into) `ws`, including the input cached by the matching
    /// training forward pass.
    ///
    /// # Panics
    ///
    /// As for [`backward`](RangedLinear::backward).
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let cache = self.cache.pop().expect("backward without cached forward");
        let LinearCache {
            x,
            in_range,
            with_bias,
        } = cache;
        assert_eq!(
            grad_out.dims(),
            [x.dim(0), self.out_features],
            "grad_out shape mismatch"
        );
        // dW[:, range] += goutᵀ · x (transposed view, no materialising)
        let wg = grad_out.view().t().matmul_ws(&x.view(), ws); // [out, in_w]
        let in_w = in_range.width();
        for r in 0..self.out_features {
            let dst = r * self.in_features_max + in_range.lo;
            for (d, s) in self.wgrad.data_mut()[dst..dst + in_w]
                .iter_mut()
                .zip(&wg.data()[r * in_w..(r + 1) * in_w])
            {
                *d += s;
            }
        }
        ws.recycle(wg);
        ws.recycle(x);
        if with_bias {
            let rg = grad_out.sum_rows_ws(ws);
            self.bgrad.add_assign(&rg);
            ws.recycle(rg);
        }
        // dX = gout · W[:, range]
        let wmat = self.weight_window(in_range, ws);
        let gin = grad_out.matmul_ws(&wmat, ws);
        ws.recycle(wmat);
        gin
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.wgrad.fill(0.0);
        self.bgrad.fill(0.0);
    }

    /// Visits `(param, grad)` pairs for the optimizer.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        f(&mut self.weight, &self.wgrad);
        f(&mut self.bias, &self.bgrad);
    }

    /// Splits into `[(weight, weight-grad), (bias, bias-grad)]` reference
    /// pairs for an optimizer step.
    pub fn params_and_grads_mut(&mut self) -> [(&mut Tensor, &Tensor); 2] {
        [
            (&mut self.weight, &self.wgrad),
            (&mut self.bias, &self.bgrad),
        ]
    }

    /// Mutable access to the accumulated weight gradient (used by freezing
    /// strategies that clear gradients before the optimizer step).
    pub fn wgrad_mut(&mut self) -> &mut Tensor {
        &mut self.wgrad
    }

    /// Mutable access to the accumulated bias gradient.
    pub fn bgrad_mut(&mut self) -> &mut Tensor {
        &mut self.bgrad
    }

    /// Parameter count for a column window, bias included when `with_bias`.
    pub fn window_param_count(&self, in_range: ChannelRange, with_bias: bool) -> usize {
        self.out_features * in_range.width() + if with_bias { self.out_features } else { 0 }
    }

    /// MAC count per image for a column window.
    pub fn window_macs(&self, in_range: ChannelRange) -> u64 {
        (self.out_features * in_range.width()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::max_relative_error;

    #[test]
    fn forward_shape() {
        let mut rng = Prng::new(0);
        let mut fc = RangedLinear::new(10, 64, &mut rng);
        let x = Tensor::zeros(&[3, 64]);
        let y = fc.forward(&x, ChannelRange::prefix(64), true, false);
        assert_eq!(y.dims(), &[3, 10]);
    }

    #[test]
    fn partial_logits_decompose_exactly() {
        // The HA-mode invariant: full forward == lower partial + upper
        // partial + bias, with identical floating-point layout.
        let mut rng = Prng::new(1);
        let mut fc = RangedLinear::new(5, 8, &mut rng);
        let x = Tensor::from_fn(&[2, 8], |i| (i as f32 * 0.37).sin());
        let full = fc.forward(&x, ChannelRange::prefix(8), true, false);

        let x_lo = x.slice_cols(0, 4);
        let x_hi = x.slice_cols(4, 8);
        let p_lo = fc.forward(&x_lo, ChannelRange::new(0, 4), true, false);
        let p_hi = fc.forward(&x_hi, ChannelRange::new(4, 8), false, false);
        let merged = p_lo.add(&p_hi);
        assert!(
            full.allclose(&merged, 1e-5),
            "diff {}",
            full.max_abs_diff(&merged)
        );
    }

    #[test]
    fn bias_once_semantics() {
        let mut rng = Prng::new(2);
        let mut fc = RangedLinear::new(3, 4, &mut rng);
        fc.weight_mut().fill(0.0);
        fc.bias_mut().data_mut().copy_from_slice(&[1.0, 2.0, 3.0]);
        let x = Tensor::zeros(&[1, 2]);
        let with = fc.forward(&x, ChannelRange::new(0, 2), true, false);
        let without = fc.forward(&x, ChannelRange::new(2, 4), false, false);
        assert_eq!(with.data(), &[1.0, 2.0, 3.0]);
        assert_eq!(without.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn gradcheck_weights_and_input() {
        let mut rng = Prng::new(3);
        let mut fc = RangedLinear::new(4, 6, &mut rng);
        let mut x = Tensor::from_fn(&[3, 6], |i| (i as f32 * 0.11).cos());
        let r = ChannelRange::prefix(6);

        let y = fc.forward(&x, r, true, true);
        let gin = fc.backward(&y); // d/dx of sum(y^2)/2 pattern

        let eps = 1e-2;
        let mut max_err: f32 = 0.0;
        for i in 0..fc.weight.numel() {
            let orig = fc.weight.data()[i];
            fc.weight.data_mut()[i] = orig + eps;
            let lp = fc.forward(&x, r, true, false).sq_norm() / 2.0;
            fc.weight.data_mut()[i] = orig - eps;
            let lm = fc.forward(&x, r, true, false).sq_norm() / 2.0;
            fc.weight.data_mut()[i] = orig;
            max_err = max_err.max(max_relative_error(
                fc.wgrad.data()[i],
                (lp - lm) / (2.0 * eps),
            ));
        }
        for i in 0..x.numel() {
            let orig = x.data()[i];
            x.data_mut()[i] = orig + eps;
            let lp = fc.forward(&x, r, true, false).sq_norm() / 2.0;
            x.data_mut()[i] = orig - eps;
            let lm = fc.forward(&x, r, true, false).sq_norm() / 2.0;
            x.data_mut()[i] = orig;
            max_err = max_err.max(max_relative_error(gin.data()[i], (lp - lm) / (2.0 * eps)));
        }
        assert!(max_err < 2e-2, "max grad error {max_err}");
    }

    #[test]
    fn column_window_training_leaves_rest_untouched() {
        let mut rng = Prng::new(4);
        let mut fc = RangedLinear::new(3, 8, &mut rng);
        let x = Tensor::from_fn(&[2, 4], |i| i as f32 * 0.3);
        fc.zero_grad();
        let y = fc.forward(&x, ChannelRange::new(4, 8), false, true);
        let _ = fc.backward(&y);
        for r in 0..3 {
            for c in 0..8 {
                let g = fc.wgrad.data()[r * 8 + c];
                if c < 4 {
                    assert_eq!(g, 0.0, "leak at ({r},{c})");
                }
            }
        }
        assert!(
            fc.bgrad.data().iter().all(|&g| g == 0.0),
            "bias grad without bias use"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_range_panics() {
        let mut rng = Prng::new(5);
        let mut fc = RangedLinear::new(2, 4, &mut rng);
        let x = Tensor::zeros(&[1, 6]);
        let _ = fc.forward(&x, ChannelRange::prefix(6), true, false);
    }
}
