//! Layer normalization over feature rows, built on broadcast views.
//!
//! This layer exists twice over: as a normalization primitive for `[N, F]`
//! activations, and as the proof that `fluid_tensor`'s broadcast machinery
//! carries a real layer end to end — every elementwise step below is a
//! stride-0 broadcast view (`[N, 1]` statistics over rows, `[F]`
//! gamma/beta over columns), not a hand-rolled loop.

use fluid_tensor::{Tensor, Workspace};

/// Layer normalization `y = γ · (x − μ) / σ + β` over the feature axis of
/// an `[N, F]` tensor, with learned per-feature scale `γ` and shift `β`.
///
/// Statistics are per example (row): `μ_i` and `σ_i` are the mean and
/// standard deviation of row `i`, so normalization is independent of the
/// batch — the serving layer's batching invariant holds trivially, and
/// within a row every sum is accumulated in ascending feature order, so
/// results are bit-identical at any thread count.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Tensor, // [F]
    beta: Tensor,  // [F]
    ggrad: Tensor,
    bgrad: Tensor,
    features: usize,
    eps: f32,
    cache: Vec<LnCache>,
}

#[derive(Debug, Clone)]
struct LnCache {
    xhat: Tensor,    // [N, F]
    inv_std: Tensor, // [N, 1]
}

impl LayerNorm {
    /// Variance floor: keeps `1/σ` finite on constant rows.
    pub const EPS: f32 = 1e-5;

    /// Creates a layer over `features`-wide rows with `γ = 1`, `β = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `features` is zero.
    pub fn new(features: usize) -> Self {
        assert!(features > 0, "LayerNorm over zero features");
        Self {
            gamma: Tensor::ones(&[features]),
            beta: Tensor::zeros(&[features]),
            ggrad: Tensor::zeros(&[features]),
            bgrad: Tensor::zeros(&[features]),
            features,
            eps: Self::EPS,
            cache: Vec::new(),
        }
    }

    /// Feature width this layer normalizes over.
    pub fn features(&self) -> usize {
        self.features
    }

    /// The per-feature scale `γ`.
    pub fn gamma(&self) -> &Tensor {
        &self.gamma
    }

    /// The per-feature shift `β`.
    pub fn beta(&self) -> &Tensor {
        &self.beta
    }

    /// Normalizes `x` (`[N, F]`).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 2 or its feature width differs.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_ws(x, train, &mut Workspace::new())
    }

    /// [`forward`](LayerNorm::forward) with scratch drawn from (and
    /// recycled into) `ws` — no steady-state heap allocation.
    ///
    /// # Panics
    ///
    /// As for [`forward`](LayerNorm::forward).
    pub fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let d = x.dims();
        assert_eq!(d.len(), 2, "layernorm input rank {}", d.len());
        assert_eq!(
            d[1], self.features,
            "input has {} features, layer has {}",
            d[1], self.features
        );
        let (n, f) = (d[0], d[1]);
        // Row statistics, ascending-order sums (deterministic).
        let mut mean = ws.tensor_zeroed(&[n, 1]);
        let mut inv_std = ws.tensor_zeroed(&[n, 1]);
        for i in 0..n {
            let row = x.rows(i, i + 1);
            let mut s = 0.0f32;
            for &v in row {
                s += v;
            }
            let mu = s / f as f32;
            let mut var = 0.0f32;
            for &v in row {
                let c = v - mu;
                var += c * c;
            }
            mean.data_mut()[i] = mu;
            inv_std.data_mut()[i] = 1.0 / (var / f as f32 + self.eps).sqrt();
        }
        // x̂ = (x − μ) · 1/σ — two broadcast views: the [N, 1] statistics
        // repeat across columns with stride 0 on the feature axis.
        let centered = x
            .view()
            .zip_broadcast_ws(&mean.view(), ws, |a, b| a - b)
            .expect("[N, 1] broadcasts over [N, F]");
        let xhat = centered
            .view()
            .mul_ws(&inv_std.view(), ws)
            .expect("[N, 1] broadcasts over [N, F]");
        ws.recycle(centered);
        ws.recycle(mean);
        // y = γ · x̂ + β — [F] broadcasts over rows with stride 0.
        let mut y = xhat
            .view()
            .mul_ws(&self.gamma.view(), ws)
            .expect("gamma [F] broadcasts over [N, F]");
        y.add_assign_broadcast(&self.beta.view())
            .expect("beta [F] broadcasts over [N, F]");
        if train {
            self.cache.push(LnCache { xhat, inv_std });
        } else {
            ws.recycle(xhat);
            ws.recycle(inv_std);
        }
        y
    }

    /// Backpropagates through the last `forward(.., train = true)` call,
    /// accumulating `γ`/`β` gradients and returning `∂L/∂x`.
    ///
    /// # Panics
    ///
    /// Panics if no training forward pass is cached or shapes mismatch.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// [`backward`](LayerNorm::backward) with scratch drawn from (and
    /// recycled into) `ws`.
    ///
    /// # Panics
    ///
    /// As for [`backward`](LayerNorm::backward).
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let LnCache { xhat, inv_std } = self.cache.pop().expect("backward without cached forward");
        let d = grad_out.dims();
        assert_eq!(d, xhat.dims(), "grad_out shape {d:?} mismatch");
        let (n, f) = (d[0], d[1]);
        // dβ += Σ_rows g ; dγ += Σ_rows g · x̂ — ascending row order.
        for i in 0..n {
            let g = grad_out.rows(i, i + 1);
            let xh = xhat.rows(i, i + 1);
            let bg = self.bgrad.data_mut();
            for (j, &gv) in g.iter().enumerate() {
                bg[j] += gv;
            }
            let gg = self.ggrad.data_mut();
            for (j, (&gv, &xv)) in g.iter().zip(xh).enumerate() {
                gg[j] += gv * xv;
            }
        }
        // dx̂ = g · γ (broadcast), then per row:
        // dx = 1/σ · (dx̂ − mean(dx̂) − x̂ · mean(dx̂ · x̂)).
        let dxhat = grad_out
            .view()
            .mul_ws(&self.gamma.view(), ws)
            .expect("gamma [F] broadcasts over [N, F]");
        let mut dx = ws.tensor_zeroed(&[n, f]);
        let (dxh, xh, istd) = (dxhat.data(), xhat.data(), inv_std.data());
        fluid_tensor::pool::parallel_rows_mut(dx.data_mut(), f, 1, |rows, block| {
            for (bi, i) in rows.enumerate() {
                let g = &dxh[i * f..(i + 1) * f];
                let x = &xh[i * f..(i + 1) * f];
                let mut m1 = 0.0f32;
                let mut m2 = 0.0f32;
                for (&gv, &xv) in g.iter().zip(x) {
                    m1 += gv;
                    m2 += gv * xv;
                }
                m1 /= f as f32;
                m2 /= f as f32;
                let out = &mut block[bi * f..(bi + 1) * f];
                for (j, slot) in out.iter_mut().enumerate() {
                    *slot = istd[i] * (g[j] - m1 - x[j] * m2);
                }
            }
        });
        ws.recycle(dxhat);
        ws.recycle(xhat);
        ws.recycle(inv_std);
        dx
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.ggrad.fill(0.0);
        self.bgrad.fill(0.0);
    }

    /// Visits `(param, grad)` pairs for the optimizer.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        f(&mut self.gamma, &self.ggrad);
        f(&mut self.beta, &self.bgrad);
    }

    /// Splits into `[(γ, γ-grad), (β, β-grad)]` reference pairs for an
    /// optimizer step.
    pub fn params_and_grads_mut(&mut self) -> [(&mut Tensor, &Tensor); 2] {
        [
            (&mut self.gamma, &self.ggrad),
            (&mut self.beta, &self.bgrad),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::max_relative_error;
    use fluid_tensor::Prng;

    fn randt(seed: u64, dims: &[usize]) -> Tensor {
        let mut rng = Prng::new(seed);
        Tensor::from_fn(dims, |_| rng.uniform(-1.5, 1.5))
    }

    #[test]
    fn rows_are_normalized() {
        let mut ln = LayerNorm::new(16);
        let x = randt(1, &[5, 16]);
        let y = ln.forward(&x, false);
        for i in 0..5 {
            let row = y.rows(i, i + 1);
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-5, "row {i} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {i} var {var}");
        }
    }

    #[test]
    fn constant_row_stays_finite() {
        let mut ln = LayerNorm::new(8);
        let x = Tensor::full(&[2, 8], 3.0);
        let y = ln.forward(&x, false);
        assert!(y.data().iter().all(|v| v.is_finite()));
        assert!(y.data().iter().all(|&v| v.abs() < 1e-2));
    }

    #[test]
    fn batch_rows_match_single_row_forward() {
        // The batching invariant: normalizing a row alone gives the same
        // bits as normalizing it inside a batch (statistics are per row).
        let mut ln = LayerNorm::new(12);
        let x = randt(2, &[6, 12]);
        let batched = ln.forward(&x, false);
        for i in 0..6 {
            let alone = ln.forward(&x.slice_rows(i, i + 1), false);
            assert_eq!(alone.data(), batched.rows(i, i + 1), "row {i} drifted");
        }
    }

    #[test]
    fn ws_forward_matches_and_reuses_scratch() {
        let mut ln = LayerNorm::new(10);
        let x = randt(3, &[4, 10]);
        let want = ln.forward(&x, false);
        let mut ws = Workspace::new();
        let y1 = ln.forward_ws(&x, false, &mut ws);
        assert_eq!(y1, want);
        ws.recycle(y1);
        let held = ws.buffers_held();
        let y2 = ln.forward_ws(&x, false, &mut ws);
        assert_eq!(y2, want);
        ws.recycle(y2);
        assert_eq!(ws.buffers_held(), held, "steady state must not grow");
    }

    #[test]
    fn gradcheck_gamma_beta_and_input() {
        let mut ln = LayerNorm::new(6);
        // Non-trivial γ/β so the chain rule through both is exercised.
        for (j, v) in ln.gamma.data_mut().iter_mut().enumerate() {
            *v = 1.0 + 0.1 * j as f32;
        }
        for (j, v) in ln.beta.data_mut().iter_mut().enumerate() {
            *v = 0.05 * j as f32;
        }
        let mut x = randt(4, &[3, 6]);
        let y = ln.forward(&x, true);
        let gin = ln.backward(&y); // d/d· of sum(y²)/2

        let eps = 1e-2;
        let mut max_err: f32 = 0.0;
        for j in 0..6 {
            let orig = ln.gamma.data()[j];
            ln.gamma.data_mut()[j] = orig + eps;
            let lp = ln.forward(&x, false).sq_norm() / 2.0;
            ln.gamma.data_mut()[j] = orig - eps;
            let lm = ln.forward(&x, false).sq_norm() / 2.0;
            ln.gamma.data_mut()[j] = orig;
            max_err = max_relative_error(ln.ggrad.data()[j], (lp - lm) / (2.0 * eps)).max(max_err);
        }
        for j in 0..6 {
            let orig = ln.beta.data()[j];
            ln.beta.data_mut()[j] = orig + eps;
            let lp = ln.forward(&x, false).sq_norm() / 2.0;
            ln.beta.data_mut()[j] = orig - eps;
            let lm = ln.forward(&x, false).sq_norm() / 2.0;
            ln.beta.data_mut()[j] = orig;
            max_err = max_relative_error(ln.bgrad.data()[j], (lp - lm) / (2.0 * eps)).max(max_err);
        }
        for i in 0..x.numel() {
            let orig = x.data()[i];
            x.data_mut()[i] = orig + eps;
            let lp = ln.forward(&x, false).sq_norm() / 2.0;
            x.data_mut()[i] = orig - eps;
            let lm = ln.forward(&x, false).sq_norm() / 2.0;
            x.data_mut()[i] = orig;
            max_err = max_relative_error(gin.data()[i], (lp - lm) / (2.0 * eps)).max(max_err);
        }
        assert!(max_err < 3e-2, "max grad error {max_err}");
    }
}
