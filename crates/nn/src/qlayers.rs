//! Int8 twins of the ranged layers for the quantized inference path.
//!
//! A [`QuantConv2d`] / [`QuantLinear`] is **frozen**: it is built once
//! from an f32 layer's active channel window (weights quantized per
//! output channel and pre-packed) plus a calibrated activation scale, and
//! then only runs forward. Training, backprop, and range re-slicing stay
//! on the f32 layers; re-quantize to pick up new weights.
//!
//! The forward contract mirrors the f32 layers exactly — same shapes,
//! same implicit-GEMM convolution (the patch matrix is gathered during
//! packing, never materialised), same workspace discipline — with the
//! GEMM swapped for [`fluid_tensor::quant::qgemm_ws`]: i8 operands, exact
//! i32 accumulation, f32 dequantizing epilogue, then the bias added in
//! f32. Because the integer core is exact, quantized outputs are
//! bit-identical at any thread count and under any SIMD dispatch
//! decision.

use crate::conv::{cnp_to_nchw, RangedConv2d};
use crate::linear::RangedLinear;
use crate::range::ChannelRange;
use fluid_tensor::quant::{qgemm_ws, QuantSrcB, QuantizedMatrix};
use fluid_tensor::{pool, Conv2dGeometry, PatchMatrix, Tensor, Workspace};

/// A frozen int8 convolution over one `(in_range, out_range)` window of a
/// [`RangedConv2d`], with a calibrated per-tensor input scale.
#[derive(Debug, Clone)]
pub struct QuantConv2d {
    qweight: QuantizedMatrix, // [out_w, in_w·K·K], per-out-channel scales
    bias: Vec<f32>,
    in_w: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    in_scale: f32,
}

impl QuantConv2d {
    /// Quantizes the conv's active weight window. `in_scale` is the
    /// calibrated symmetric scale of this layer's *input* activations
    /// (see `fluid_models::calibrate`).
    ///
    /// # Panics
    ///
    /// Panics if the ranges exceed the layer's maxima or `in_scale` is not
    /// a positive finite number.
    pub fn from_ranged(
        conv: &RangedConv2d,
        in_range: ChannelRange,
        out_range: ChannelRange,
        in_scale: f32,
        ws: &mut Workspace,
    ) -> Self {
        assert!(
            in_scale.is_finite() && in_scale > 0.0,
            "bad activation scale {in_scale}"
        );
        let wmat = conv.weight_window(in_range, out_range, ws); // [out_w, in_w·K·K]
        let out_w = out_range.width();
        let in_w = in_range.width();
        let k = conv.kernel();
        let qweight = QuantizedMatrix::from_rows(wmat.data(), out_w, in_w * k * k);
        ws.recycle(wmat);
        let bias = conv.bias().data()[out_range.lo..out_range.hi].to_vec();
        Self {
            qweight,
            bias,
            in_w,
            kernel: k,
            stride: conv.stride(),
            pad: conv.pad(),
            in_scale,
        }
    }

    /// Active output channels.
    pub fn out_width(&self) -> usize {
        self.qweight.m()
    }

    /// The calibrated input activation scale.
    pub fn in_scale(&self) -> f32 {
        self.in_scale
    }

    /// Runs the int8 convolution: quantize input on the fly, i8×i8→i32
    /// implicit GEMM, dequantize, add bias in f32.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, in_w, H, W]`.
    pub fn forward_ws(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let d = x.dims();
        assert_eq!(d.len(), 4, "conv input rank {}", d.len());
        assert_eq!(
            d[1], self.in_w,
            "input has {} channels but the quantized window expects {}",
            d[1], self.in_w
        );
        let (n, h, w) = (d[0], d[2], d[3]);
        let geo = Conv2dGeometry::new(h, w, self.kernel, self.stride, self.pad);
        let patches = PatchMatrix::new(x.data(), n, self.in_w, geo);
        let np = n * geo.out_positions();
        let out_w = self.out_width();
        let mut out_mat = ws.take_dirty(out_w * np); // fully overwritten
        qgemm_ws(
            &self.qweight,
            QuantSrcB::Patches(&patches),
            self.in_scale,
            np,
            &mut out_mat,
            ws,
        );
        let out_mat = Tensor::from_vec(out_mat, &[out_w, np]);
        let (oh, ow) = (geo.out_h(), geo.out_w());
        let mut out = cnp_to_nchw(&out_mat, n, out_w, oh, ow, ws);
        ws.recycle(out_mat);
        // Same parallel per-plane bias add as the f32 forward.
        let plane = oh * ow;
        let bias = &self.bias[..];
        if plane > 0 {
            pool::parallel_rows_mut(out.data_mut(), plane, 8, |planes, block| {
                for (bi, p) in planes.enumerate() {
                    let b = bias[p % out_w];
                    for v in &mut block[bi * plane..(bi + 1) * plane] {
                        *v += b;
                    }
                }
            });
        }
        out
    }
}

/// A frozen int8 FC head over one input-feature column range of a
/// [`RangedLinear`].
#[derive(Debug, Clone)]
pub struct QuantLinear {
    qweight: QuantizedMatrix, // [out, in_w], per-out-row scales
    bias: Vec<f32>,
    with_bias: bool,
    in_w: usize,
    in_scale: f32,
}

impl QuantLinear {
    /// Quantizes the FC window over `in_range`. `with_bias` mirrors the
    /// f32 forward's flag: in distributed partial-logit mode only one
    /// branch contributes the bias.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the layer's maximum or `in_scale` is
    /// not a positive finite number.
    pub fn from_ranged(
        fc: &RangedLinear,
        in_range: ChannelRange,
        with_bias: bool,
        in_scale: f32,
        ws: &mut Workspace,
    ) -> Self {
        assert!(
            in_scale.is_finite() && in_scale > 0.0,
            "bad activation scale {in_scale}"
        );
        let wmat = fc.weight_window(in_range, ws); // [out, in_w]
        let in_w = in_range.width();
        let qweight = QuantizedMatrix::from_rows(wmat.data(), fc.out_features(), in_w);
        ws.recycle(wmat);
        Self {
            qweight,
            bias: fc.bias().data().to_vec(),
            with_bias,
            in_w,
            in_scale,
        }
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.qweight.m()
    }

    /// The calibrated input activation scale.
    pub fn in_scale(&self) -> f32 {
        self.in_scale
    }

    /// Computes the (partial) logits `[N, out]` for `x` `[N, in_w]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, in_w]`.
    pub fn forward_ws(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let d = x.dims();
        assert_eq!(d.len(), 2, "linear input rank {}", d.len());
        assert_eq!(
            d[1], self.in_w,
            "input has {} features but the quantized window expects {}",
            d[1], self.in_w
        );
        let n = d[0];
        let out_f = self.out_features();
        // The int8 engine wants the weights on the left: compute
        // `[out, N] = qW · xᵀ`, then transpose (+ bias) into `[N, out]`.
        let mut prod = ws.take_dirty(out_f * n);
        qgemm_ws(
            &self.qweight,
            QuantSrcB::Cols(x.data()),
            self.in_scale,
            n,
            &mut prod,
            ws,
        );
        let mut y = ws.tensor_zeroed(&[n, out_f]);
        for (i, v) in y.data_mut().iter_mut().enumerate() {
            let (ni, o) = (i / out_f, i % out_f);
            *v = prod[o * n + ni];
            if self.with_bias {
                *v += self.bias[o];
            }
        }
        ws.recycle_vec(prod);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluid_tensor::Prng;

    fn full(c: usize) -> ChannelRange {
        ChannelRange::prefix(c)
    }

    #[test]
    fn quant_conv_tracks_f32_within_tolerance() {
        let mut rng = Prng::new(42);
        let mut conv = RangedConv2d::new(8, 3, 3, 1, 1, &mut rng);
        let x = fluid_tensor::kaiming_uniform(&[2, 3, 12, 12], 16, &mut rng.fork(7));
        let mut ws = Workspace::new();
        let want = conv.forward_ws(&x, full(3), full(8), false, &mut ws);
        let in_scale = fluid_tensor::quant::symmetric_scale(fluid_tensor::quant::max_abs(x.data()));
        let qconv = QuantConv2d::from_ranged(&conv, full(3), full(8), in_scale, &mut ws);
        let got = qconv.forward_ws(&x, &mut ws);
        assert_eq!(got.dims(), want.dims());
        let max_mag = fluid_tensor::quant::max_abs(want.data());
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!(
                (g - w).abs() <= 0.05 * max_mag.max(1.0),
                "quantized conv drifted: {g} vs {w}"
            );
        }
    }

    #[test]
    fn quant_conv_is_deterministic_and_allocation_steady() {
        let mut rng = Prng::new(1);
        let conv = RangedConv2d::new(6, 2, 3, 1, 1, &mut rng);
        let x = fluid_tensor::kaiming_uniform(&[3, 2, 9, 9], 8, &mut rng.fork(3));
        let mut ws = Workspace::new();
        let qconv = QuantConv2d::from_ranged(&conv, full(2), full(6), 0.01, &mut ws);
        let a = qconv.forward_ws(&x, &mut ws);
        let held = ws.buffers_held();
        let b = qconv.forward_ws(&x, &mut ws);
        assert_eq!(a.data(), b.data(), "quantized conv must be bit-stable");
        ws.recycle(b);
        assert!(
            ws.buffers_held() >= held,
            "steady-state forward must not consume pooled buffers"
        );
    }

    #[test]
    fn quant_linear_tracks_f32_within_tolerance() {
        let mut rng = Prng::new(9);
        let mut fc = RangedLinear::new(10, 32, &mut rng);
        let x = fluid_tensor::kaiming_uniform(&[4, 32], 32, &mut rng.fork(2));
        let mut ws = Workspace::new();
        let want = fc.forward_ws(&x, full(32), true, false, &mut ws);
        let in_scale = fluid_tensor::quant::symmetric_scale(fluid_tensor::quant::max_abs(x.data()));
        let qfc = QuantLinear::from_ranged(&fc, full(32), true, in_scale, &mut ws);
        let got = qfc.forward_ws(&x, &mut ws);
        assert_eq!(got.dims(), want.dims());
        let max_mag = fluid_tensor::quant::max_abs(want.data());
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!(
                (g - w).abs() <= 0.05 * max_mag.max(1.0),
                "quantized linear drifted: {g} vs {w}"
            );
        }
    }

    #[test]
    fn quant_linear_respects_bias_flag() {
        let mut rng = Prng::new(5);
        let mut fc = RangedLinear::new(4, 8, &mut rng);
        fc.bias_mut().data_mut().iter_mut().for_each(|b| *b = 1.5);
        let x = Tensor::zeros(&[2, 8]);
        let mut ws = Workspace::new();
        let with = QuantLinear::from_ranged(&fc, full(8), true, 0.1, &mut ws);
        let without = QuantLinear::from_ranged(&fc, full(8), false, 0.1, &mut ws);
        assert!(with
            .forward_ws(&x, &mut ws)
            .data()
            .iter()
            .all(|&v| v == 1.5));
        assert!(without
            .forward_ws(&x, &mut ws)
            .data()
            .iter()
            .all(|&v| v == 0.0));
    }
}
