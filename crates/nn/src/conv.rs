//! Range-sliceable 2-D convolution with hand-written backprop.
//!
//! Forward and weight-gradient passes run as **implicit GEMM**: the
//! `im2col` patch matrix is never materialised — the packed-panel GEMM
//! engine gathers cache-sized blocks of it straight from the image while
//! packing (see [`PatchMatrix`]). The remaining intermediates (weight
//! windows, GEMM outputs, layout-reorder buffers) are drawn from a
//! [`Workspace`] in the `_ws` entry points, so steady-state training and
//! inference perform no heap allocation at all.

use crate::range::ChannelRange;
use fluid_tensor::{
    col2im_ws, conv_gemm_dw_ws, conv_gemm_fwd_ws, kaiming_normal, Conv2dGeometry, PatchMatrix,
    Prng, Tensor, Workspace,
};
// (im2col stays exported from fluid-tensor for direct use; the conv layer
// itself no longer materialises the patch matrix.)

/// A 2-D convolution whose weight tensor `[C_out_max, C_in_max, K, K]` can be
/// executed on any `(in_range, out_range)` channel window.
///
/// - **Static** models use the full ranges.
/// - **Dynamic** (slimmable) models use prefix ranges `0..w`.
/// - **Fluid** branches use block ranges (e.g. `8..16 × 8..16` for the
///   upper-50% branch), which keeps the upper weights free of any
///   dependency on lower-channel activations.
///
/// Gradients accumulate into internal `wgrad`/`bgrad` tensors that are zero
/// outside the trained window, so optimizers can masked-update safely.
#[derive(Debug, Clone)]
pub struct RangedConv2d {
    weight: Tensor,
    bias: Tensor,
    wgrad: Tensor,
    bgrad: Tensor,
    c_out_max: usize,
    c_in_max: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    cache: Vec<ConvCache>,
}

#[derive(Debug, Clone)]
struct ConvCache {
    /// A workspace-backed copy of the forward input — far smaller than the
    /// patch matrix it replaces (the backward pass re-gathers patches from
    /// it implicitly).
    input: Tensor,
    in_range: ChannelRange,
    out_range: ChannelRange,
    geo: Conv2dGeometry,
    batch: usize,
}

impl RangedConv2d {
    /// Creates a conv layer with Kaiming-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new(
        c_out_max: usize,
        c_in_max: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut Prng,
    ) -> Self {
        assert!(c_out_max > 0 && c_in_max > 0 && kernel > 0 && stride > 0);
        let fan_in = c_in_max * kernel * kernel;
        Self {
            weight: kaiming_normal(&[c_out_max, c_in_max, kernel, kernel], fan_in, rng),
            bias: Tensor::zeros(&[c_out_max]),
            wgrad: Tensor::zeros(&[c_out_max, c_in_max, kernel, kernel]),
            bgrad: Tensor::zeros(&[c_out_max]),
            c_out_max,
            c_in_max,
            kernel,
            stride,
            pad,
            cache: Vec::new(),
        }
    }

    /// Maximum output channels.
    pub fn c_out_max(&self) -> usize {
        self.c_out_max
    }

    /// Maximum input channels.
    pub fn c_in_max(&self) -> usize {
        self.c_in_max
    }

    /// Kernel extent.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// The full weight tensor (for serialization / inspection).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable weight tensor (for loading checkpoints / partial deploys).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable bias vector.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.bias
    }

    /// Convolution stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding on each side.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Extracts the weight window `[out_range × in_range]` as a
    /// `[out_w, in_w·K·K]` matrix, backed by a workspace buffer.
    pub(crate) fn weight_window(
        &self,
        in_range: ChannelRange,
        out_range: ChannelRange,
        ws: &mut Workspace,
    ) -> Tensor {
        let kk = self.kernel * self.kernel;
        let in_w = in_range.width();
        let out_w = out_range.width();
        let mut out = ws.tensor_zeroed(&[out_w, in_w * kk]);
        let row_stride = self.c_in_max * kk;
        for (r, co) in (out_range.lo..out_range.hi).enumerate() {
            let src = co * row_stride + in_range.lo * kk;
            out.data_mut()[r * in_w * kk..(r + 1) * in_w * kk]
                .copy_from_slice(&self.weight.data()[src..src + in_w * kk]);
        }
        out
    }

    /// Accumulates a `[out_w, in_w·K·K]` gradient into the full `wgrad`.
    fn scatter_wgrad(&mut self, g: &Tensor, in_range: ChannelRange, out_range: ChannelRange) {
        let kk = self.kernel * self.kernel;
        let in_w = in_range.width();
        let row_stride = self.c_in_max * kk;
        for (r, co) in (out_range.lo..out_range.hi).enumerate() {
            let dst = co * row_stride + in_range.lo * kk;
            let src_row = &g.data()[r * in_w * kk..(r + 1) * in_w * kk];
            for (d, s) in self.wgrad.data_mut()[dst..dst + in_w * kk]
                .iter_mut()
                .zip(src_row)
            {
                *d += s;
            }
        }
    }

    /// Runs the convolution on the channel window.
    ///
    /// `x` must already be sliced to `in_range.width()` channels — the layer
    /// addresses its *weights* by the absolute range but reads the input as
    /// given (the caller controls which activations exist on this device).
    ///
    /// Set `train` to cache activations for a following [`backward`].
    ///
    /// # Panics
    ///
    /// Panics if the ranges exceed the layer's maxima, the input channel
    /// count differs from `in_range.width()`, or `x` is not rank 4.
    ///
    /// [`backward`]: RangedConv2d::backward
    pub fn forward(
        &mut self,
        x: &Tensor,
        in_range: ChannelRange,
        out_range: ChannelRange,
        train: bool,
    ) -> Tensor {
        self.forward_ws(x, in_range, out_range, train, &mut Workspace::new())
    }

    /// [`forward`](RangedConv2d::forward) with scratch drawn from (and
    /// recycled into) `ws`; after the first call a steady-state step
    /// performs no fresh scratch allocations.
    ///
    /// # Panics
    ///
    /// As for [`forward`](RangedConv2d::forward).
    pub fn forward_ws(
        &mut self,
        x: &Tensor,
        in_range: ChannelRange,
        out_range: ChannelRange,
        train: bool,
        ws: &mut Workspace,
    ) -> Tensor {
        assert!(
            in_range.fits(self.c_in_max),
            "in_range {in_range} exceeds {}",
            self.c_in_max
        );
        assert!(
            out_range.fits(self.c_out_max),
            "out_range {out_range} exceeds {}",
            self.c_out_max
        );
        let d = x.dims();
        assert_eq!(d.len(), 4, "conv input rank {}", d.len());
        assert_eq!(
            d[1],
            in_range.width(),
            "input has {} channels but in_range is {in_range}",
            d[1]
        );
        let (n, h, w) = (d[0], d[2], d[3]);
        let geo = Conv2dGeometry::new(h, w, self.kernel, self.stride, self.pad);
        // Implicit GEMM: the patch matrix is gathered from `x` while the
        // engine packs, never materialised.
        let patches = PatchMatrix::new(x.data(), n, in_range.width(), geo);
        let wmat = self.weight_window(in_range, out_range, ws);
        let out_mat = conv_gemm_fwd_ws(&wmat, &patches, ws); // [out_w, N*P]
        ws.recycle(wmat);
        let (oh, ow) = (geo.out_h(), geo.out_w());
        let mut out = cnp_to_nchw(&out_mat, n, out_range.width(), oh, ow, ws);
        ws.recycle(out_mat);
        // Bias for the active output channels, added in place (one output
        // plane per unit of parallelism; same additions as the allocating
        // `add_channel_bias`, so bit-identical).
        let plane = oh * ow;
        let out_w = out_range.width();
        let bias = &self.bias.data()[out_range.lo..out_range.hi];
        if plane > 0 {
            fluid_tensor::pool::parallel_rows_mut(out.data_mut(), plane, 8, |planes, block| {
                for (bi, p) in planes.enumerate() {
                    let b = bias[p % out_w];
                    for v in &mut block[bi * plane..(bi + 1) * plane] {
                        *v += b;
                    }
                }
            });
        }
        if train {
            self.cache.push(ConvCache {
                input: ws.tensor_copy(x),
                in_range,
                out_range,
                geo,
                batch: n,
            });
        }
        out
    }

    /// Backpropagates through the last `forward(.., train = true)` call.
    ///
    /// Accumulates weight/bias gradients (within the active window only) and
    /// returns the gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics if no training forward pass has been cached or `grad_out` has
    /// the wrong shape.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// [`backward`](RangedConv2d::backward) with scratch drawn from (and
    /// recycled into) `ws`, including the input copy cached by the
    /// matching training forward pass.
    ///
    /// # Panics
    ///
    /// As for [`backward`](RangedConv2d::backward).
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let cache = self.cache.pop().expect("backward without cached forward");
        let ConvCache {
            input,
            in_range,
            out_range,
            geo,
            batch,
        } = cache;
        let d = grad_out.dims();
        assert_eq!(
            d,
            [batch, out_range.width(), geo.out_h(), geo.out_w()],
            "grad_out shape {:?} mismatch",
            d
        );
        let g_mat = nchw_to_cnp(grad_out, ws); // [out_w, N*P]
                                               // dW = g · patchesᵀ (implicit GEMM over the cached input)
        let patches = PatchMatrix::new(input.data(), batch, in_range.width(), geo);
        let wg = conv_gemm_dw_ws(&g_mat, &patches, ws);
        self.scatter_wgrad(&wg, in_range, out_range);
        ws.recycle(wg);
        // db = per-channel sum
        let bg = grad_out.sum_per_channel_ws(ws);
        for (i, co) in (out_range.lo..out_range.hi).enumerate() {
            self.bgrad.data_mut()[co] += bg.data()[i];
        }
        ws.recycle(bg);
        // dX = Wᵀ · g, folded back to image space.
        let wmat = self.weight_window(in_range, out_range, ws);
        let g_cols = wmat.view().t().matmul_ws(&g_mat.view(), ws); // [in_w*K*K, N*P]
        ws.recycle(wmat);
        ws.recycle(g_mat);
        ws.recycle(input);
        let gin = col2im_ws(&g_cols, &geo, in_range.width(), batch, ws);
        ws.recycle(g_cols);
        gin
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.wgrad.fill(0.0);
        self.bgrad.fill(0.0);
    }

    /// Visits `(param, grad)` pairs for the optimizer.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &Tensor)) {
        f(&mut self.weight, &self.wgrad);
        f(&mut self.bias, &self.bgrad);
    }

    /// Splits into `[(weight, weight-grad), (bias, bias-grad)]` reference
    /// pairs for an optimizer step.
    pub fn params_and_grads_mut(&mut self) -> [(&mut Tensor, &Tensor); 2] {
        [
            (&mut self.weight, &self.wgrad),
            (&mut self.bias, &self.bgrad),
        ]
    }

    /// Squared L2 norm of the accumulated weight gradient (diagnostics).
    pub fn wgrad_sq_norm(&self) -> f32 {
        self.wgrad.sq_norm()
    }

    /// Mutable access to the accumulated weight gradient (used by freezing
    /// strategies that clear gradients before the optimizer step).
    pub fn wgrad_mut(&mut self) -> &mut Tensor {
        &mut self.wgrad
    }

    /// Mutable access to the accumulated bias gradient.
    pub fn bgrad_mut(&mut self) -> &mut Tensor {
        &mut self.bgrad
    }

    /// Number of parameters in a `(in_range, out_range)` window, bias included.
    pub fn window_param_count(&self, in_range: ChannelRange, out_range: ChannelRange) -> usize {
        out_range.width() * in_range.width() * self.kernel * self.kernel + out_range.width()
    }

    /// Multiply-accumulate count for one image of `h`×`w` input through the
    /// given window.
    pub fn window_macs(
        &self,
        in_range: ChannelRange,
        out_range: ChannelRange,
        h: usize,
        w: usize,
    ) -> u64 {
        let geo = Conv2dGeometry::new(h, w, self.kernel, self.stride, self.pad);
        (out_range.width() * in_range.width() * self.kernel * self.kernel) as u64
            * geo.out_positions() as u64
    }
}

/// Reorders a `[C, N·P]` matrix into `[N, C, OH, OW]` (workspace-backed).
pub(crate) fn cnp_to_nchw(
    m: &Tensor,
    n: usize,
    c: usize,
    oh: usize,
    ow: usize,
    ws: &mut Workspace,
) -> Tensor {
    let p = oh * ow;
    let mut out = ws.tensor_zeroed(&[n, c, oh, ow]);
    for ci in 0..c {
        for ni in 0..n {
            let src = ci * (n * p) + ni * p;
            let dst = (ni * c + ci) * p;
            out.data_mut()[dst..dst + p].copy_from_slice(&m.data()[src..src + p]);
        }
    }
    out
}

/// Reorders `[N, C, OH, OW]` into `[C, N·P]` (workspace-backed).
fn nchw_to_cnp(t: &Tensor, ws: &mut Workspace) -> Tensor {
    let d = t.dims();
    let (n, c, oh, ow) = (d[0], d[1], d[2], d[3]);
    let p = oh * ow;
    let mut out = ws.tensor_zeroed(&[c, n * p]);
    for ni in 0..n {
        for ci in 0..c {
            let src = (ni * c + ci) * p;
            let dst = ci * (n * p) + ni * p;
            out.data_mut()[dst..dst + p].copy_from_slice(&t.data()[src..src + p]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::max_relative_error;

    fn full(c: usize) -> ChannelRange {
        ChannelRange::prefix(c)
    }

    #[test]
    fn forward_shape_full_width() {
        let mut rng = Prng::new(0);
        let mut conv = RangedConv2d::new(8, 3, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(&[2, 3, 10, 10]);
        let y = conv.forward(&x, full(3), full(8), false);
        assert_eq!(y.dims(), &[2, 8, 10, 10]);
    }

    #[test]
    fn forward_shape_block_range() {
        let mut rng = Prng::new(0);
        let mut conv = RangedConv2d::new(16, 16, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(&[1, 8, 6, 6]);
        let y = conv.forward(
            &x,
            ChannelRange::new(8, 16),
            ChannelRange::new(8, 16),
            false,
        );
        assert_eq!(y.dims(), &[1, 8, 6, 6]);
    }

    #[test]
    fn prefix_window_matches_manual_slice() {
        // Running the 0..4 window must equal a dense conv built from the
        // corresponding weight sub-tensor.
        let mut rng = Prng::new(1);
        let mut conv = RangedConv2d::new(8, 6, 3, 1, 1, &mut rng);
        let x = Tensor::from_fn(&[2, 3, 5, 5], |i| (i as f32 * 0.1).sin());
        let y = conv.forward(&x, full(3), full(4), false);

        // Manual: small conv with weights copied from the window.
        let mut small = RangedConv2d::new(4, 3, 3, 1, 1, &mut Prng::new(99));
        let kk = 9;
        for co in 0..4 {
            for ci in 0..3 {
                let src = (co * 6 + ci) * kk;
                let dst = (co * 3 + ci) * kk;
                let w = conv.weight().data()[src..src + kk].to_vec();
                small.weight_mut().data_mut()[dst..dst + kk].copy_from_slice(&w);
            }
            small.bias_mut().data_mut()[co] = conv.bias().data()[co];
        }
        let y2 = small.forward(&x, full(3), full(4), false);
        assert!(y.allclose(&y2, 1e-5));
    }

    #[test]
    fn bias_applied_per_channel() {
        let mut rng = Prng::new(2);
        let mut conv = RangedConv2d::new(2, 1, 1, 1, 0, &mut rng);
        conv.weight_mut().fill(0.0);
        conv.bias_mut().data_mut()[0] = 1.5;
        conv.bias_mut().data_mut()[1] = -2.5;
        let x = Tensor::zeros(&[1, 1, 3, 3]);
        let y = conv.forward(&x, full(1), full(2), false);
        assert!(y.slice_channels(0, 1).data().iter().all(|&v| v == 1.5));
        assert!(y.slice_channels(1, 2).data().iter().all(|&v| v == -2.5));
    }

    #[test]
    fn gradcheck_weights_full_window() {
        let mut rng = Prng::new(3);
        let mut conv = RangedConv2d::new(3, 2, 3, 1, 1, &mut rng);
        let x = Tensor::from_fn(&[2, 2, 4, 4], |i| (i as f32 * 0.23).sin());

        // Loss = sum(forward(x)^2) / 2, analytic grad vs finite differences.
        let y = conv.forward(&x, full(2), full(3), true);
        let _ = conv.backward(&y);
        let mut analytic = Tensor::zeros(conv.wgrad.dims());
        analytic.data_mut().copy_from_slice(conv.wgrad.data());

        let eps = 1e-2;
        let mut max_err: f32 = 0.0;
        for i in 0..conv.weight.numel() {
            let orig = conv.weight.data()[i];
            conv.weight.data_mut()[i] = orig + eps;
            let lp = conv.forward(&x, full(2), full(3), false).sq_norm() / 2.0;
            conv.weight.data_mut()[i] = orig - eps;
            let lm = conv.forward(&x, full(2), full(3), false).sq_norm() / 2.0;
            conv.weight.data_mut()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            max_err = max_err.max(max_relative_error(analytic.data()[i], num));
        }
        assert!(max_err < 2e-2, "max weight grad error {max_err}");
    }

    #[test]
    fn gradcheck_input() {
        let mut rng = Prng::new(4);
        let mut conv = RangedConv2d::new(3, 2, 3, 1, 1, &mut rng);
        let mut x = Tensor::from_fn(&[1, 2, 4, 4], |i| (i as f32 * 0.31).cos());

        let y = conv.forward(&x, full(2), full(3), true);
        let gin = conv.backward(&y);

        let eps = 1e-2;
        let mut max_err: f32 = 0.0;
        for i in 0..x.numel() {
            let orig = x.data()[i];
            x.data_mut()[i] = orig + eps;
            let lp = conv.forward(&x, full(2), full(3), false).sq_norm() / 2.0;
            x.data_mut()[i] = orig - eps;
            let lm = conv.forward(&x, full(2), full(3), false).sq_norm() / 2.0;
            x.data_mut()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            max_err = max_err.max(max_relative_error(gin.data()[i], num));
        }
        assert!(max_err < 2e-2, "max input grad error {max_err}");
    }

    #[test]
    fn training_window_leaves_other_weights_untouched() {
        let mut rng = Prng::new(5);
        let mut conv = RangedConv2d::new(16, 16, 3, 1, 1, &mut rng);
        let x = Tensor::from_fn(&[1, 8, 4, 4], |i| (i as f32 * 0.2).sin());
        let lo = ChannelRange::new(0, 8);
        conv.zero_grad();
        let y = conv.forward(&x, lo, lo, true);
        let _ = conv.backward(&y);
        // All gradient mass must lie in the [0..8, 0..8] window.
        let kk = 9;
        for co in 0..16 {
            for ci in 0..16 {
                let base = (co * 16 + ci) * kk;
                let nonzero = conv.wgrad.data()[base..base + kk].iter().any(|&g| g != 0.0);
                let inside = co < 8 && ci < 8;
                assert_eq!(nonzero, inside, "window leak at co={co}, ci={ci}");
            }
        }
        for co in 8..16 {
            assert_eq!(conv.bgrad.data()[co], 0.0);
        }
    }

    #[test]
    fn workspace_reuse_is_bit_identical_across_steps() {
        // Two training steps through the same workspace must match the
        // allocating path exactly — dirty recycled buffers included.
        let mut rng = Prng::new(11);
        let mut conv = RangedConv2d::new(4, 3, 3, 1, 1, &mut rng);
        let mut twin = conv.clone();
        let mut ws = Workspace::new();
        let x = Tensor::from_fn(&[2, 3, 6, 6], |i| (i as f32 * 0.13).sin());
        for _ in 0..3 {
            let y_ws = conv.forward_ws(&x, full(3), full(4), true, &mut ws);
            let g_ws = conv.backward_ws(&y_ws, &mut ws);
            let y = twin.forward(&x, full(3), full(4), true);
            let g = twin.backward(&y);
            assert!(y_ws.allclose(&y, 0.0), "forward drifted");
            assert!(g_ws.allclose(&g, 0.0), "backward drifted");
        }
        assert!(ws.buffers_held() > 0, "scratch was recycled for reuse");
        assert!(
            conv.wgrad.allclose(&twin.wgrad, 0.0),
            "gradient accumulation drifted"
        );
    }

    #[test]
    #[should_panic(expected = "backward without cached forward")]
    fn backward_without_forward_panics() {
        let mut rng = Prng::new(6);
        let mut conv = RangedConv2d::new(2, 1, 3, 1, 1, &mut rng);
        let _ = conv.backward(&Tensor::zeros(&[1, 2, 3, 3]));
    }

    #[test]
    fn macs_scale_with_window() {
        let mut rng = Prng::new(7);
        let conv = RangedConv2d::new(16, 16, 3, 1, 1, &mut rng);
        let half = conv.window_macs(ChannelRange::prefix(8), ChannelRange::prefix(8), 28, 28);
        let fullm = conv.window_macs(ChannelRange::prefix(16), ChannelRange::prefix(16), 28, 28);
        assert_eq!(fullm, 4 * half);
    }
}
