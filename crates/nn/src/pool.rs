//! Max pooling.

use fluid_tensor::{Tensor, Workspace};

/// 2-D max pooling over square windows.
///
/// Caches the argmax positions during a training forward pass so the
/// backward pass routes each output gradient to the winning input element.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    size: usize,
    stride: usize,
    cache: Vec<PoolCache>,
}

#[derive(Debug, Clone)]
struct PoolCache {
    argmax: Vec<usize>,
    /// Inline `[usize; 4]` (not a `Vec`) so caching it never allocates.
    in_dims: [usize; 4],
}

impl MaxPool2d {
    /// Creates a pooling layer with the given window size and stride.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `stride == 0`.
    pub fn new(size: usize, stride: usize) -> Self {
        assert!(size > 0 && stride > 0, "pool size/stride must be positive");
        Self {
            size,
            stride,
            cache: Vec::new(),
        }
    }

    /// Output spatial extent for an input extent.
    pub fn out_extent(&self, in_extent: usize) -> usize {
        if in_extent < self.size {
            0
        } else {
            (in_extent - self.size) / self.stride + 1
        }
    }

    /// Applies max pooling to an `[N, C, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 4 or smaller than the window.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_ws(x, train, &mut Workspace::new())
    }

    /// [`forward`](MaxPool2d::forward) with the argmax table drawn from
    /// (and, after the matching backward, recycled into) `ws`.
    ///
    /// # Panics
    ///
    /// As for [`forward`](MaxPool2d::forward).
    pub fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let d = x.dims();
        assert_eq!(d.len(), 4, "pool input rank {}", d.len());
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let (oh, ow) = (self.out_extent(h), self.out_extent(w));
        assert!(
            oh > 0 && ow > 0,
            "input {h}x{w} smaller than pool window {}",
            self.size
        );
        let mut out = ws.tensor_zeroed(&[n, c, oh, ow]);
        let mut argmax = ws.take_indices(n * c * oh * ow);
        for ni in 0..n {
            for ci in 0..c {
                let in_base = (ni * c + ci) * h * w;
                let out_base = (ni * c + ci) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..self.size {
                            for kx in 0..self.size {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                let idx = in_base + iy * w + ix;
                                let v = x.data()[idx];
                                if v > best {
                                    best = v;
                                    best_idx = idx;
                                }
                            }
                        }
                        out.data_mut()[out_base + oy * ow + ox] = best;
                        argmax[out_base + oy * ow + ox] = best_idx;
                    }
                }
            }
        }
        if train {
            self.cache.push(PoolCache {
                argmax,
                in_dims: [n, c, h, w],
            });
        } else {
            ws.recycle_indices(argmax);
        }
        out
    }

    /// Routes gradients to the argmax winners of the cached forward pass.
    ///
    /// # Panics
    ///
    /// Panics if no training forward pass is cached or shapes mismatch.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// [`backward`](MaxPool2d::backward), recycling the cached argmax
    /// table into `ws`.
    ///
    /// # Panics
    ///
    /// As for [`backward`](MaxPool2d::backward).
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let cache = self.cache.pop().expect("backward without cached forward");
        assert_eq!(
            cache.argmax.len(),
            grad_out.numel(),
            "pool grad length mismatch"
        );
        let mut gin = ws.tensor_zeroed(&cache.in_dims);
        for (g, &idx) in grad_out.data().iter().zip(&cache.argmax) {
            gin.data_mut()[idx] += g;
        }
        ws.recycle_indices(cache.argmax);
        gin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_maximum() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        );
        let y = p.forward(&x, false);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn backward_routes_to_winner() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let _ = p.forward(&x, true);
        let g = p.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn odd_extent_truncates() {
        let p = MaxPool2d::new(2, 2);
        assert_eq!(p.out_extent(7), 3);
        assert_eq!(p.out_extent(1), 0);
    }

    #[test]
    fn handles_negative_values() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![-5.0, -2.0, -9.0, -4.0], &[1, 1, 2, 2]);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[-2.0]);
    }

    #[test]
    #[should_panic(expected = "backward without cached forward")]
    fn backward_without_forward_panics() {
        let mut p = MaxPool2d::new(2, 2);
        let _ = p.backward(&Tensor::zeros(&[1, 1, 1, 1]));
    }
}
