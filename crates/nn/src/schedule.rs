//! Learning-rate schedules.

/// A learning-rate schedule: maps an epoch index to a learning rate.
pub trait LrSchedule {
    /// Learning rate for `epoch` (0-based).
    fn lr_at(&self, epoch: usize) -> f32;
}

/// A constant learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantLr(
    /// The rate returned for every epoch.
    pub f32,
);

impl LrSchedule for ConstantLr {
    fn lr_at(&self, _epoch: usize) -> f32 {
        self.0
    }
}

/// Step decay: multiply by `gamma` every `step` epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepLr {
    /// Initial learning rate.
    pub base: f32,
    /// Epochs between decays.
    pub step: usize,
    /// Multiplicative decay factor.
    pub gamma: f32,
}

impl StepLr {
    /// Creates a step schedule.
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    pub fn new(base: f32, step: usize, gamma: f32) -> Self {
        assert!(step > 0, "step must be positive");
        Self { base, step, gamma }
    }
}

impl LrSchedule for StepLr {
    fn lr_at(&self, epoch: usize) -> f32 {
        self.base * self.gamma.powi((epoch / self.step) as i32)
    }
}

/// Cosine annealing from `base` to `min` over `total` epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineLr {
    /// Initial learning rate.
    pub base: f32,
    /// Final learning rate.
    pub min: f32,
    /// Total schedule length in epochs.
    pub total: usize,
}

impl CosineLr {
    /// Creates a cosine schedule.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn new(base: f32, min: f32, total: usize) -> Self {
        assert!(total > 0, "total must be positive");
        Self { base, min, total }
    }
}

impl LrSchedule for CosineLr {
    fn lr_at(&self, epoch: usize) -> f32 {
        let t = (epoch.min(self.total) as f32) / self.total as f32;
        self.min + 0.5 * (self.base - self.min) * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = ConstantLr(0.05);
        assert_eq!(s.lr_at(0), 0.05);
        assert_eq!(s.lr_at(100), 0.05);
    }

    #[test]
    fn step_decays() {
        let s = StepLr::new(1.0, 10, 0.1);
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert!((s.lr_at(10) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(25) - 0.01).abs() < 1e-7);
    }

    #[test]
    fn cosine_endpoints() {
        let s = CosineLr::new(0.1, 0.001, 20);
        assert!((s.lr_at(0) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(20) - 0.001).abs() < 1e-6);
        // Past the end it clamps.
        assert!((s.lr_at(100) - 0.001).abs() < 1e-6);
    }

    #[test]
    fn cosine_monotone_decreasing() {
        let s = CosineLr::new(0.1, 0.0, 10);
        for e in 0..10 {
            assert!(s.lr_at(e + 1) <= s.lr_at(e) + 1e-7);
        }
    }
}
