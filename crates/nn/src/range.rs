//! Channel and feature ranges for sliced layer execution.

/// A half-open index range `[lo, hi)` over channels or features.
///
/// Dynamic (slimmable) sub-networks use prefix ranges `0..w`; Fluid
/// sub-networks also use *block* ranges such as `8..16` (the "upper 50%"),
/// which is what lets them run on a device that holds only the upper
/// weights.
///
/// # Example
///
/// ```
/// use fluid_nn::ChannelRange;
/// let r = ChannelRange::new(8, 16);
/// assert_eq!(r.width(), 8);
/// assert!(r.contains(9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelRange {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Exclusive upper bound.
    pub hi: usize,
}

impl ChannelRange {
    /// Creates the range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: usize, hi: usize) -> Self {
        assert!(lo <= hi, "inverted channel range {lo}..{hi}");
        Self { lo, hi }
    }

    /// The prefix range `[0, w)`.
    pub fn prefix(w: usize) -> Self {
        Self { lo: 0, hi: w }
    }

    /// Number of channels in the range.
    pub fn width(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether `i` falls inside the range.
    pub fn contains(&self, i: usize) -> bool {
        (self.lo..self.hi).contains(&i)
    }

    /// Whether this range is fully inside `[0, max)`.
    pub fn fits(&self, max: usize) -> bool {
        self.hi <= max
    }

    /// Whether the two ranges share any index.
    pub fn overlaps(&self, other: &ChannelRange) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// Scales the channel range to a feature range given `features_per_channel`
    /// (used when flattening `[N, C, H, W]` to `[N, C·H·W]`: channel `c`
    /// occupies features `c·HW .. (c+1)·HW`).
    pub fn to_feature_range(&self, features_per_channel: usize) -> ChannelRange {
        ChannelRange {
            lo: self.lo * features_per_channel,
            hi: self.hi * features_per_channel,
        }
    }
}

impl std::fmt::Display for ChannelRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_and_width() {
        let r = ChannelRange::prefix(4);
        assert_eq!((r.lo, r.hi, r.width()), (0, 4, 4));
    }

    #[test]
    #[should_panic(expected = "inverted channel range")]
    fn inverted_panics() {
        let _ = ChannelRange::new(3, 2);
    }

    #[test]
    fn overlap_detection() {
        let a = ChannelRange::new(0, 8);
        let b = ChannelRange::new(8, 16);
        let c = ChannelRange::new(4, 12);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn feature_range_scaling() {
        let r = ChannelRange::new(8, 16).to_feature_range(9);
        assert_eq!((r.lo, r.hi), (72, 144));
    }

    #[test]
    fn empty_range_is_valid() {
        let r = ChannelRange::new(5, 5);
        assert_eq!(r.width(), 0);
        assert!(!r.contains(5));
    }
}
