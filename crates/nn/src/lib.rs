//! # fluid-nn
//!
//! Neural-network building blocks with hand-written backpropagation, sized
//! for the Fluid DyDNN paper's 3-conv + 1-FC model family.
//!
//! The distinguishing feature is that the parameterised layers are
//! **ranged**: [`RangedConv2d`] and [`RangedLinear`] hold full-width weight
//! tensors but can run forward/backward on an arbitrary *channel range*
//! (conv) or *input-feature range* (linear). Width-scalable Dynamic DNNs
//! use prefix ranges `0..w`; Fluid DyDNNs use block ranges such as
//! `c50..c100` for the independently-operable *upper* sub-networks.
//!
//! Gradients are accumulated into per-layer `grad` tensors (zero outside
//! the active range), and the optimizers skip zero-gradient elements so
//! that training one sub-network never perturbs the weights of another.
//!
//! ## Example
//!
//! ```
//! use fluid_nn::{RangedConv2d, ChannelRange};
//! use fluid_tensor::{Prng, Tensor};
//!
//! let mut rng = Prng::new(0);
//! let mut conv = RangedConv2d::new(16, 1, 3, 1, 1, &mut rng);
//! let x = Tensor::zeros(&[2, 1, 28, 28]);
//! // Run only the lower 50% (8 of 16) output kernels.
//! let y = conv.forward(&x, ChannelRange::new(0, 1), ChannelRange::new(0, 8), false);
//! assert_eq!(y.dims(), &[2, 8, 28, 28]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod conv;
mod flatten;
mod gradcheck;
mod layernorm;
mod linear;
mod loss;
mod optim;
mod pool;
mod qlayers;
mod range;
mod schedule;

pub use activation::Relu;
pub use conv::RangedConv2d;
pub use flatten::Flatten;
pub use fluid_tensor::Workspace;
pub use gradcheck::{finite_diff_gradient, max_relative_error};
pub use layernorm::LayerNorm;
pub use linear::RangedLinear;
pub use loss::{accuracy, softmax_cross_entropy, softmax_cross_entropy_ws};
pub use optim::{Adam, Optimizer, ParamSet, Sgd};
pub use pool::MaxPool2d;
pub use qlayers::{QuantConv2d, QuantLinear};
pub use range::ChannelRange;
pub use schedule::{ConstantLr, CosineLr, LrSchedule, StepLr};
