//! Flatten `[N, C, H, W]` activations into `[N, C·H·W]` feature rows.

use fluid_tensor::{Tensor, Workspace};

/// Reshapes conv activations into FC inputs and back.
///
/// Because the layout is channel-major, a conv channel range `[lo, hi)`
/// flattens to the contiguous feature range `[lo·HW, hi·HW)` — which is how
/// the models crate maps fluid branches onto FC column ranges.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    /// Cached input shapes; inline `[usize; 4]` entries keep training
    /// forwards allocation-free.
    in_dims: Vec<[usize; 4]>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self {
            in_dims: Vec::new(),
        }
    }

    /// Flattens an `[N, C, H, W]` tensor to `[N, C·H·W]`.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 4.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let d = x.dims();
        assert_eq!(d.len(), 4, "flatten input rank {}", d.len());
        if train {
            self.in_dims.push([d[0], d[1], d[2], d[3]]);
        }
        x.reshape(&[d[0], d[1] * d[2] * d[3]])
    }

    /// [`forward`](Flatten::forward) with the copy drawn from `ws`.
    ///
    /// # Panics
    ///
    /// As for [`forward`](Flatten::forward).
    pub fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let d = x.dims();
        assert_eq!(d.len(), 4, "flatten input rank {}", d.len());
        if train {
            self.in_dims.push([d[0], d[1], d[2], d[3]]);
        }
        let mut out = ws.tensor_copy(x);
        out.reshape_in_place(&[d[0], d[1] * d[2] * d[3]]);
        out
    }

    /// Restores the cached input shape on the gradient.
    ///
    /// # Panics
    ///
    /// Panics if no training forward pass is cached.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self.in_dims.pop().expect("backward without cached forward");
        grad_out.reshape(&dims)
    }

    /// [`backward`](Flatten::backward) with the copy drawn from `ws`.
    ///
    /// # Panics
    ///
    /// As for [`backward`](Flatten::backward).
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let dims = self.in_dims.pop().expect("backward without cached forward");
        let mut out = ws.tensor_copy(grad_out);
        out.reshape_in_place(&dims);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 4, 4], |i| i as f32);
        let y = f.forward(&x, true);
        assert_eq!(y.dims(), &[2, 48]);
        let g = f.backward(&y);
        assert_eq!(g.dims(), &[2, 3, 4, 4]);
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn channel_major_feature_layout() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn(&[1, 2, 2, 2], |i| i as f32);
        let y = f.forward(&x, false);
        // Channel 0 occupies features 0..4, channel 1 features 4..8.
        assert_eq!(y.data(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }
}
