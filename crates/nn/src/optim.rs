//! Optimizers with *masked* updates.
//!
//! Sliced training produces gradient tensors that are exactly zero outside
//! the trained window. The optimizers here skip zero-gradient elements
//! entirely — no momentum decay, no weight decay — so training one
//! sub-network can never perturb another sub-network's weights. This is the
//! property that lets Algorithm 1 interleave base-ladder and upper-ladder
//! phases over shared storage.

use fluid_tensor::Tensor;

type Pair<'a> = (&'a mut Tensor, &'a Tensor);

/// Pairs stored inline before spilling to the heap. Every model family in
/// this workspace has well under this many parameter tensors, so building
/// a set each step performs **zero heap allocation** — part of the
/// steady-state training contract (`docs/PERFORMANCE.md`).
const INLINE_PAIRS: usize = 32;

/// A set of `(param, grad)` pairs collected from layers for one step.
///
/// Layers expose `visit_params`; the training loop gathers them into a
/// `ParamSet` and hands it to an [`Optimizer`]. Because the set borrows
/// the layers, it is rebuilt every step — which is why its storage is
/// inline (a heap `Vec` here would be a per-step allocation).
pub struct ParamSet<'a> {
    inline: [Option<Pair<'a>>; INLINE_PAIRS],
    inline_len: usize,
    spill: Vec<Pair<'a>>,
}

impl<'a> ParamSet<'a> {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self {
            inline: std::array::from_fn(|_| None),
            inline_len: 0,
            spill: Vec::new(),
        }
    }

    /// Adds a `(param, grad)` pair.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn push(&mut self, param: &'a mut Tensor, grad: &'a Tensor) {
        assert_eq!(param.dims(), grad.dims(), "param/grad shape mismatch");
        if self.inline_len < INLINE_PAIRS {
            self.inline[self.inline_len] = Some((param, grad));
            self.inline_len += 1;
        } else {
            self.spill.push((param, grad));
        }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.inline_len + self.spill.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The pairs, in insertion order.
    fn iter(&self) -> impl Iterator<Item = &Pair<'a>> {
        self.inline[..self.inline_len]
            .iter()
            .map(|p| p.as_ref().expect("slots below inline_len are filled"))
            .chain(self.spill.iter())
    }

    /// The pairs, mutably, in insertion order.
    fn iter_mut(&mut self) -> impl Iterator<Item = &mut Pair<'a>> {
        self.inline[..self.inline_len]
            .iter_mut()
            .map(|p| p.as_mut().expect("slots below inline_len are filled"))
            .chain(self.spill.iter_mut())
    }
}

impl Default for ParamSet<'_> {
    fn default() -> Self {
        Self::new()
    }
}

/// An optimizer that applies one update step to a [`ParamSet`].
///
/// Implementations key internal state (momentum, Adam moments) by the
/// *position* of each pair, so callers must present parameters in a stable
/// order across steps.
pub trait Optimizer {
    /// Applies one update step. Elements whose gradient is exactly zero are
    /// skipped (masked update).
    fn step(&mut self, params: &mut ParamSet<'_>);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, `momentum < 0`, or `weight_decay < 0`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(momentum >= 0.0 && weight_decay >= 0.0);
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet<'_>) {
        if self.velocity.len() < params.len() {
            let have = self.velocity.len();
            for (p, _) in params.iter().skip(have) {
                self.velocity.push(Tensor::zeros(p.dims()));
            }
        }
        for (i, (param, grad)) in params.iter_mut().enumerate() {
            assert_eq!(
                self.velocity[i].dims(),
                param.dims(),
                "parameter {i} changed shape between steps"
            );
            let v = self.velocity[i].data_mut();
            let p = param.data_mut();
            let g = grad.data();
            for j in 0..p.len() {
                if g[j] == 0.0 {
                    continue; // masked: untouched by this sub-network
                }
                let eff = g[j] + self.weight_decay * p[j];
                v[j] = self.momentum * v[j] + eff;
                p[j] -= self.lr * v[j];
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction and masked updates.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet<'_>) {
        self.t += 1;
        while self.m.len() < params.len() {
            let dims = params
                .iter()
                .nth(self.m.len())
                .expect("len checked")
                .0
                .dims()
                .to_vec();
            self.m.push(Tensor::zeros(&dims));
            self.v.push(Tensor::zeros(&dims));
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (param, grad)) in params.iter_mut().enumerate() {
            let m = self.m[i].data_mut();
            let v = self.v[i].data_mut();
            let p = param.data_mut();
            let g = grad.data();
            for j in 0..p.len() {
                if g[j] == 0.0 {
                    continue;
                }
                let eff = g[j] + self.weight_decay * p[j];
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * eff;
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * eff * eff;
                let mh = m[j] / bc1;
                let vh = v[j] / bc2;
                p[j] -= self.lr * mh / (vh.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let g = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let mut set = ParamSet::new();
        set.push(&mut p, &g);
        opt.step(&mut set);
        assert!((p.data()[0] - 0.95).abs() < 1e-6);
        assert!((p.data()[1] - 1.05).abs() < 1e-6);
    }

    #[test]
    fn masked_elements_untouched_even_with_decay() {
        let mut p = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let g = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let mut opt = Sgd::new(0.1, 0.9, 0.01);
        let mut set = ParamSet::new();
        set.push(&mut p, &g);
        opt.step(&mut set);
        assert_eq!(p.data()[1], 2.0, "zero-grad element must not move");
        assert!(p.data()[0] < 1.0);
    }

    #[test]
    fn momentum_accelerates() {
        let g = Tensor::from_vec(vec![1.0], &[1]);
        let mut plain = Tensor::from_vec(vec![0.0], &[1]);
        let mut fast = Tensor::from_vec(vec![0.0], &[1]);
        let mut opt_plain = Sgd::new(0.1, 0.0, 0.0);
        let mut opt_momentum = Sgd::new(0.1, 0.9, 0.0);
        for _ in 0..5 {
            let mut s1 = ParamSet::new();
            s1.push(&mut plain, &g);
            opt_plain.step(&mut s1);
            let mut s2 = ParamSet::new();
            s2.push(&mut fast, &g);
            opt_momentum.step(&mut s2);
        }
        assert!(
            fast.data()[0] < plain.data()[0],
            "momentum should move farther"
        );
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimise (x - 3)^2 with gradient 2(x-3).
        let mut x = Tensor::from_vec(vec![0.0], &[1]);
        let mut opt = Adam::new(0.1, 0.0);
        for _ in 0..300 {
            let g = Tensor::from_vec(vec![2.0 * (x.data()[0] - 3.0)], &[1]);
            let mut s = ParamSet::new();
            s.push(&mut x, &g);
            opt.step(&mut s);
        }
        assert!((x.data()[0] - 3.0).abs() < 0.05, "x = {}", x.data()[0]);
    }

    #[test]
    fn adam_masked_elements_untouched() {
        let mut p = Tensor::from_vec(vec![5.0, 5.0], &[2]);
        let g = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        let mut opt = Adam::new(0.01, 0.1);
        for _ in 0..10 {
            let mut s = ParamSet::new();
            s.push(&mut p, &g);
            opt.step(&mut s);
        }
        assert_eq!(p.data()[0], 5.0);
        assert!(p.data()[1] < 5.0);
    }

    #[test]
    fn lr_override() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "param/grad shape mismatch")]
    fn mismatched_pair_panics() {
        let mut p = Tensor::zeros(&[2]);
        let g = Tensor::zeros(&[3]);
        let mut set = ParamSet::new();
        set.push(&mut p, &g);
    }
}
