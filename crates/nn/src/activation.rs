//! Activation layers.

use fluid_tensor::{pool, Tensor, Workspace};

/// Minimum elements per pool task for the in-place elementwise stages
/// (mirrors the tensor crate's elementwise grain).
const ELEM_GRAIN: usize = 4096;

/// Rectified linear unit with cached mask for backprop.
///
/// # Example
///
/// ```
/// use fluid_nn::Relu;
/// use fluid_tensor::Tensor;
/// let mut relu = Relu::new();
/// let y = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[2]), false);
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<Vec<bool>>,
    /// Retired mask buffers, reused by later training forwards so the
    /// steady-state step allocates nothing.
    spare: Vec<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fills a (possibly recycled) mask buffer with `x > 0`.
    fn push_mask(&mut self, x: &Tensor) {
        let mut mask = self.spare.pop().unwrap_or_default();
        mask.clear();
        mask.extend(x.data().iter().map(|&v| v > 0.0));
        self.mask.push(mask);
    }

    /// Applies `max(x, 0)` elementwise; caches the pass-through mask when
    /// `train` is set.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.push_mask(x);
        }
        x.relu()
    }

    /// [`forward`](Relu::forward) with the output buffer drawn from `ws`.
    pub fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        if train {
            self.push_mask(x);
        }
        let mut out = ws.tensor_copy(x);
        pool::parallel_rows_mut(out.data_mut(), 1, ELEM_GRAIN, |_, block| {
            for v in block {
                *v = v.max(0.0);
            }
        });
        out
    }

    /// Backpropagates using the cached mask.
    ///
    /// # Panics
    ///
    /// Panics if no training forward pass is cached or the element count
    /// differs.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// [`backward`](Relu::backward) with the output buffer drawn from `ws`.
    ///
    /// # Panics
    ///
    /// As for [`backward`](Relu::backward).
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let mask = self.mask.pop().expect("backward without cached forward");
        assert_eq!(mask.len(), grad_out.numel(), "relu mask length mismatch");
        let mut out = ws.tensor_copy(grad_out);
        {
            let mask = &mask[..];
            pool::parallel_rows_mut(out.data_mut(), 1, ELEM_GRAIN, |range, block| {
                for (g, &m) in block.iter_mut().zip(&mask[range]) {
                    if !m {
                        *g = 0.0;
                    }
                }
            });
        }
        self.spare.push(mask);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::from_vec(vec![-3.0, 0.0, 5.0], &[3]), false);
        assert_eq!(y.data(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, -0.5, 3.0], &[4]);
        let _ = r.forward(&x, true);
        let g = r.backward(&Tensor::ones(&[4]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn zero_input_blocks_gradient() {
        // ReLU'(0) is defined as 0 here (subgradient choice).
        let mut r = Relu::new();
        let _ = r.forward(&Tensor::zeros(&[2]), true);
        let g = r.backward(&Tensor::ones(&[2]));
        assert_eq!(g.data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "backward without cached forward")]
    fn backward_without_forward_panics() {
        let mut r = Relu::new();
        let _ = r.backward(&Tensor::ones(&[1]));
    }
}
