//! Activation layers.

use fluid_tensor::Tensor;

/// Rectified linear unit with cached mask for backprop.
///
/// # Example
///
/// ```
/// use fluid_nn::Relu;
/// use fluid_tensor::Tensor;
/// let mut relu = Relu::new();
/// let y = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[2]), false);
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self { mask: Vec::new() }
    }

    /// Applies `max(x, 0)` elementwise; caches the pass-through mask when
    /// `train` is set.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask.push(x.data().iter().map(|&v| v > 0.0).collect());
        }
        x.relu()
    }

    /// Backpropagates using the cached mask.
    ///
    /// # Panics
    ///
    /// Panics if no training forward pass is cached or the element count
    /// differs.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.pop().expect("backward without cached forward");
        assert_eq!(mask.len(), grad_out.numel(), "relu mask length mismatch");
        let data = grad_out
            .data()
            .iter()
            .zip(&mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_out.dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::from_vec(vec![-3.0, 0.0, 5.0], &[3]), false);
        assert_eq!(y.data(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, -0.5, 3.0], &[4]);
        let _ = r.forward(&x, true);
        let g = r.backward(&Tensor::ones(&[4]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn zero_input_blocks_gradient() {
        // ReLU'(0) is defined as 0 here (subgradient choice).
        let mut r = Relu::new();
        let _ = r.forward(&Tensor::zeros(&[2]), true);
        let g = r.backward(&Tensor::ones(&[2]));
        assert_eq!(g.data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "backward without cached forward")]
    fn backward_without_forward_panics() {
        let mut r = Relu::new();
        let _ = r.backward(&Tensor::ones(&[1]));
    }
}
