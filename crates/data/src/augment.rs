//! Lightweight train-time augmentation.

use fluid_tensor::{Prng, Tensor};

/// Integer-pixel random shift augmentation applied to image batches.
///
/// The synthetic generator already randomizes rendering; this augmenter adds
/// cheap per-epoch variety during training without re-rendering.
#[derive(Debug, Clone)]
pub struct Augment {
    max_shift: usize,
    rng: Prng,
}

impl Augment {
    /// Creates an augmenter shifting up to `max_shift` pixels in x and y.
    pub fn new(max_shift: usize, seed: u64) -> Self {
        Self {
            max_shift,
            rng: Prng::new(seed),
        }
    }

    /// Applies an independent random shift to each image in a `[N, C, H, W]`
    /// batch. Vacated pixels are zero-filled.
    ///
    /// # Panics
    ///
    /// Panics if the batch is not rank 4.
    pub fn apply(&mut self, batch: &Tensor) -> Tensor {
        let d = batch.dims();
        assert_eq!(d.len(), 4, "augment input rank {}", d.len());
        if self.max_shift == 0 {
            return batch.clone();
        }
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let mut out = Tensor::zeros(d);
        let span = 2 * self.max_shift + 1;
        for ni in 0..n {
            let dx = self.rng.below(span) as isize - self.max_shift as isize;
            let dy = self.rng.below(span) as isize - self.max_shift as isize;
            for ci in 0..c {
                for y in 0..h as isize {
                    let sy = y - dy;
                    if sy < 0 || sy >= h as isize {
                        continue;
                    }
                    for x in 0..w as isize {
                        let sx = x - dx;
                        if sx < 0 || sx >= w as isize {
                            continue;
                        }
                        let v = batch.at4(ni, ci, sy as usize, sx as usize);
                        out.set4(ni, ci, y as usize, x as usize, v);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shift_is_identity() {
        let mut aug = Augment::new(0, 0);
        let x = Tensor::from_fn(&[2, 1, 4, 4], |i| i as f32);
        assert_eq!(aug.apply(&x), x);
    }

    #[test]
    fn preserves_total_ink_up_to_cropping() {
        let mut aug = Augment::new(1, 1);
        // Single bright pixel in the centre cannot be cropped out by a
        // 1-pixel shift.
        let mut x = Tensor::zeros(&[1, 1, 5, 5]);
        x.set4(0, 0, 2, 2, 1.0);
        let y = aug.apply(&x);
        assert!((y.sum() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn shift_moves_content() {
        let mut aug = Augment::new(2, 7);
        let x = Tensor::from_fn(&[4, 1, 6, 6], |i| (i % 7) as f32);
        let y = aug.apply(&x);
        // With 4 images and ±2 shifts, at least one image moves.
        assert_ne!(x, y);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = Tensor::from_fn(&[3, 1, 6, 6], |i| (i % 5) as f32);
        let a = Augment::new(2, 9).apply(&x);
        let b = Augment::new(2, 9).apply(&x);
        assert_eq!(a, b);
    }
}
