//! The SynthDigits generator: a deterministic MNIST-shaped task.

use crate::dataset::Dataset;
use crate::strokes::{render_digit, RenderParams, IMAGE_SIDE};
use fluid_tensor::{Prng, Tensor};

/// Generates balanced, seeded synthetic digit datasets.
///
/// Every instance draws a digit skeleton with randomized rotation
/// (±0.25 rad), scale (0.85–1.1), translation (±2 px), stroke thickness
/// (1.0–1.7 px) and additive pixel noise — enough variation that wider
/// models measurably outperform narrower ones, mirroring MNIST behaviour.
///
/// # Example
///
/// ```
/// use fluid_data::SynthDigits;
/// let ds = SynthDigits::new(1).generate(50);
/// assert_eq!(ds.len(), 50);
/// // Balanced classes: each of the 10 digits appears 5 times.
/// assert!(ds.class_histogram().iter().all(|&c| c == 5));
/// ```
#[derive(Debug, Clone)]
pub struct SynthDigits {
    rng: Prng,
    noise_std: f32,
}

impl SynthDigits {
    /// Creates a generator with the given seed and default noise (0.08).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Prng::new(seed),
            noise_std: 0.08,
        }
    }

    /// Overrides the pixel-noise standard deviation.
    pub fn with_noise(mut self, noise_std: f32) -> Self {
        self.noise_std = noise_std;
        self
    }

    /// Generates `n` examples with balanced classes (class `i % 10` for the
    /// `i`-th example, then shuffled).
    pub fn generate(&mut self, n: usize) -> Dataset {
        let pixels = IMAGE_SIDE * IMAGE_SIDE;
        let mut images = Tensor::zeros(&[n, 1, IMAGE_SIDE, IMAGE_SIDE]);
        let mut labels = Vec::with_capacity(n);
        let mut order: Vec<usize> = (0..n).collect();
        self.rng.shuffle(&mut order);
        for (slot, &i) in order.iter().enumerate() {
            let digit = i % 10;
            let params = RenderParams {
                rotation: self.rng.uniform(-0.25, 0.25),
                scale: self.rng.uniform(0.85, 1.1),
                shift: (self.rng.uniform(-2.0, 2.0), self.rng.uniform(-2.0, 2.0)),
                thickness: self.rng.uniform(1.0, 1.7),
                noise_std: self.noise_std,
            };
            let noise: Vec<f32> = (0..pixels).map(|_| self.rng.normal() as f32).collect();
            let img = render_digit(digit, &params, &noise);
            images.data_mut()[slot * pixels..(slot + 1) * pixels].copy_from_slice(img.data());
            labels.push(digit);
        }
        Dataset::new(images, labels)
    }

    /// Generates the standard train/test pair used across the workspace's
    /// experiments (sizes chosen so the full evaluation runs in seconds).
    pub fn train_test(&mut self, train_n: usize, test_n: usize) -> (Dataset, Dataset) {
        (self.generate(train_n), self.generate(test_n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_classes() {
        let ds = SynthDigits::new(0).generate(200);
        let hist = ds.class_histogram();
        assert_eq!(hist.len(), 10);
        assert!(hist.iter().all(|&c| c == 20), "{hist:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SynthDigits::new(5).generate(30);
        let b = SynthDigits::new(5).generate(30);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthDigits::new(1).generate(30);
        let b = SynthDigits::new(2).generate(30);
        assert_ne!(a, b);
    }

    #[test]
    fn instances_of_same_class_vary() {
        let ds = SynthDigits::new(3).generate(40);
        // Find two examples of class 0 and check they differ (augmentation).
        let idx: Vec<usize> = (0..ds.len()).filter(|&i| ds.label(i) == 0).collect();
        let (a, _) = ds.gather(&[idx[0]]);
        let (b, _) = ds.gather(&[idx[1]]);
        assert!(a.sub(&b).sq_norm() > 0.1, "no augmentation variation");
    }

    #[test]
    fn pixels_are_normalized() {
        let ds = SynthDigits::new(4).generate(20);
        assert!(ds.images().data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn train_test_are_disjoint_streams() {
        let (train, test) = SynthDigits::new(6).train_test(50, 20);
        assert_eq!(train.len(), 50);
        assert_eq!(test.len(), 20);
        // Drawn from one RNG stream, so they can't be identical.
        let (a, _) = train.gather(&[0]);
        let (b, _) = test.gather(&[0]);
        assert_ne!(a, b);
    }
}
