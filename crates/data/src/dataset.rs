//! In-memory labelled image datasets.

use fluid_tensor::Tensor;

/// An in-memory dataset of `[N, 1, H, W]` images with class labels.
///
/// # Example
///
/// ```
/// use fluid_data::Dataset;
/// use fluid_tensor::Tensor;
/// let ds = Dataset::new(Tensor::zeros(&[2, 1, 28, 28]), vec![3, 7]);
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.label(1), 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
}

impl Dataset {
    /// Wraps images and labels.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not rank 4 or `labels.len() != N`.
    pub fn new(images: Tensor, labels: Vec<usize>) -> Self {
        assert_eq!(images.dims().len(), 4, "images must be [N, C, H, W]");
        assert_eq!(images.dim(0), labels.len(), "image/label count mismatch");
        Self { images, labels }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// All images as one `[N, C, H, W]` tensor.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Label of example `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Copies the examples at `indices` into a `([B, C, H, W], labels)` batch.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let d = self.images.dims();
        let (c, h, w) = (d[1], d[2], d[3]);
        let stride = c * h * w;
        let mut out = Tensor::zeros(&[indices.len(), c, h, w]);
        let mut labels = Vec::with_capacity(indices.len());
        for (b, &i) in indices.iter().enumerate() {
            assert!(i < self.len(), "index {i} out of {}", self.len());
            // `example` is a borrow-based view — the only copy is into the
            // batch being built.
            out.data_mut()[b * stride..(b + 1) * stride].copy_from_slice(self.images.example(i));
            labels.push(self.labels[i]);
        }
        (out, labels)
    }

    /// Borrowed `[C, H, W]` view of example `i` — no copy.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn example(&self, i: usize) -> &[f32] {
        self.images.example(i)
    }

    /// Splits into `(first, rest)` at example `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len(), "split point {n} beyond {}", self.len());
        let head: Vec<usize> = (0..n).collect();
        let tail: Vec<usize> = (n..self.len()).collect();
        let (hi, hl) = self.gather(&head);
        let (ti, tl) = self.gather(&tail);
        (Dataset::new(hi, hl), Dataset::new(ti, tl))
    }

    /// Per-class example counts (length 10 for the digit task, or
    /// `max_label + 1` generally).
    pub fn class_histogram(&self) -> Vec<usize> {
        let k = self.labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut hist = vec![0usize; k];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let images = Tensor::from_fn(&[4, 1, 2, 2], |i| i as f32);
        Dataset::new(images, vec![0, 1, 0, 2])
    }

    #[test]
    fn gather_preserves_content() {
        let ds = tiny();
        let (batch, labels) = ds.gather(&[2, 0]);
        assert_eq!(labels, vec![0, 0]);
        assert_eq!(batch.dims(), &[2, 1, 2, 2]);
        assert_eq!(&batch.data()[0..4], &[8.0, 9.0, 10.0, 11.0]);
        assert_eq!(&batch.data()[4..8], &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn split_partitions() {
        let ds = tiny();
        let (a, b) = ds.split_at(3);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 1);
        assert_eq!(b.label(0), 2);
    }

    #[test]
    fn histogram_counts() {
        assert_eq!(tiny().class_histogram(), vec![2, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "image/label count mismatch")]
    fn mismatched_labels_panic() {
        let _ = Dataset::new(Tensor::zeros(&[2, 1, 2, 2]), vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn gather_bad_index_panics() {
        let _ = tiny().gather(&[9]);
    }
}
