//! # fluid-data
//!
//! Datasets and loaders for the Fluid DyDNN reproduction.
//!
//! The paper evaluates on MNIST. Dataset files are not available in this
//! offline environment, so this crate provides **SynthDigits**: a
//! procedurally generated, MNIST-shaped task (28×28 grayscale, 10 classes).
//! Each digit class is rendered from a stroke skeleton with randomized
//! affine jitter, stroke thickness and pixel noise, giving a learnable,
//! fully deterministic (seeded) classification problem with the same tensor
//! shapes and a comparable difficulty ordering across model widths.
//! The substitution is documented in the workspace `DESIGN.md`.
//!
//! ## Example
//!
//! ```
//! use fluid_data::{SynthDigits, DataLoader};
//!
//! let ds = SynthDigits::new(42).generate(100);
//! assert_eq!(ds.len(), 100);
//! let mut loader = DataLoader::new(&ds, 32, true, 7);
//! let (images, labels) = loader.next_batch().expect("one batch");
//! assert_eq!(images.dims(), &[32, 1, 28, 28]);
//! assert_eq!(labels.len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augment;
mod dataset;
mod loader;
mod pgm;
mod strokes;
mod synth;

pub use augment::Augment;
pub use dataset::Dataset;
pub use loader::DataLoader;
pub use pgm::{contact_sheet, to_pgm};
pub use strokes::{digit_skeleton, render_digit, RenderParams, IMAGE_SIDE};
pub use synth::SynthDigits;
