//! Stroke skeletons and rasterisation for the synthetic digit task.
//!
//! Each digit class is a set of polylines in the unit square (y grows
//! downward). Rendering walks each polyline and stamps a soft disk at
//! every step, producing anti-aliased strokes similar in spirit to
//! handwritten digits.

use fluid_tensor::Tensor;

/// Side length of the generated images (matches MNIST).
pub const IMAGE_SIDE: usize = 28;

/// Returns the stroke skeleton of `digit` as polylines in the unit square.
///
/// # Panics
///
/// Panics if `digit > 9`.
pub fn digit_skeleton(digit: usize) -> Vec<Vec<(f32, f32)>> {
    assert!(digit <= 9, "digit {digit} out of range");
    // Helper: circular arc around (cx, cy) radius r from a0 to a1 (radians).
    let arc = |cx: f32, cy: f32, rx: f32, ry: f32, a0: f32, a1: f32, n: usize| -> Vec<(f32, f32)> {
        (0..=n)
            .map(|i| {
                let t = a0 + (a1 - a0) * i as f32 / n as f32;
                (cx + rx * t.cos(), cy + ry * t.sin())
            })
            .collect()
    };
    use std::f32::consts::PI;
    match digit {
        0 => vec![arc(0.5, 0.5, 0.26, 0.36, 0.0, 2.0 * PI, 40)],
        1 => vec![
            vec![(0.35, 0.3), (0.52, 0.14), (0.52, 0.86)],
            vec![(0.36, 0.86), (0.68, 0.86)],
        ],
        2 => {
            let mut top = arc(0.5, 0.32, 0.24, 0.18, -PI, 0.0, 16);
            top.extend([(0.72, 0.4), (0.3, 0.84)]);
            vec![top, vec![(0.3, 0.84), (0.74, 0.84)]]
        }
        3 => vec![
            arc(0.46, 0.32, 0.22, 0.17, -PI * 0.9, PI * 0.5, 20),
            arc(0.46, 0.67, 0.24, 0.19, -PI * 0.5, PI * 0.9, 20),
        ],
        4 => vec![
            vec![(0.62, 0.12), (0.28, 0.6), (0.76, 0.6)],
            vec![(0.62, 0.12), (0.62, 0.88)],
        ],
        5 => {
            let mut body = vec![(0.7, 0.14), (0.34, 0.14), (0.32, 0.48)];
            body.extend(arc(0.48, 0.64, 0.22, 0.2, -PI * 0.5, PI * 0.75, 20));
            vec![body]
        }
        6 => {
            let mut body = vec![(0.62, 0.12), (0.38, 0.42)];
            body.extend(arc(0.5, 0.65, 0.2, 0.2, -PI * 0.8, PI * 1.2, 28));
            vec![body]
        }
        7 => vec![
            vec![(0.28, 0.16), (0.74, 0.16), (0.44, 0.86)],
            vec![(0.34, 0.5), (0.62, 0.5)],
        ],
        8 => vec![
            arc(0.5, 0.32, 0.19, 0.17, 0.0, 2.0 * PI, 28),
            arc(0.5, 0.67, 0.23, 0.19, 0.0, 2.0 * PI, 28),
        ],
        9 => {
            let mut body = arc(0.52, 0.34, 0.2, 0.19, 0.0, 2.0 * PI, 28);
            body.extend([(0.72, 0.34), (0.6, 0.88)]);
            vec![body]
        }
        _ => unreachable!(),
    }
}

/// Randomised rendering parameters for one digit instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderParams {
    /// Rotation in radians about the image centre.
    pub rotation: f32,
    /// Isotropic scale factor.
    pub scale: f32,
    /// Translation in pixels (x, y).
    pub shift: (f32, f32),
    /// Stroke radius in pixels.
    pub thickness: f32,
    /// Additive Gaussian pixel-noise standard deviation.
    pub noise_std: f32,
}

impl Default for RenderParams {
    fn default() -> Self {
        Self {
            rotation: 0.0,
            scale: 1.0,
            shift: (0.0, 0.0),
            thickness: 1.3,
            noise_std: 0.0,
        }
    }
}

/// Rasterises a digit skeleton into a `[1, IMAGE_SIDE, IMAGE_SIDE]`-worth
/// buffer (returned as an `[IMAGE_SIDE * IMAGE_SIDE]` tensor), applying the
/// affine jitter in `params`.
///
/// Noise is added from `noise` samples (pass an empty slice for none); the
/// caller controls the randomness source so rendering stays deterministic.
///
/// # Panics
///
/// Panics if `digit > 9` or `noise` is non-empty but shorter than the
/// pixel count.
pub fn render_digit(digit: usize, params: &RenderParams, noise: &[f32]) -> Tensor {
    let side = IMAGE_SIDE as f32;
    let mut img = vec![0.0f32; IMAGE_SIDE * IMAGE_SIDE];
    let (sin, cos) = params.rotation.sin_cos();
    let stamp = |img: &mut [f32], px: f32, py: f32, radius: f32| {
        let r_ceil = radius.ceil() as isize + 1;
        let cx = px.round() as isize;
        let cy = py.round() as isize;
        for dy in -r_ceil..=r_ceil {
            for dx in -r_ceil..=r_ceil {
                let x = cx + dx;
                let y = cy + dy;
                if x < 0 || y < 0 || x >= IMAGE_SIDE as isize || y >= IMAGE_SIDE as isize {
                    continue;
                }
                let dist2 = (x as f32 - px).powi(2) + (y as f32 - py).powi(2);
                // Soft falloff: 1 inside, decaying to 0 at ~radius+0.8.
                let v = (1.0 - (dist2.sqrt() - radius).max(0.0) / 0.8).clamp(0.0, 1.0);
                let idx = (y as usize) * IMAGE_SIDE + x as usize;
                if v > img[idx] {
                    img[idx] = v;
                }
            }
        }
    };

    for polyline in digit_skeleton(digit) {
        for pair in polyline.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            let seg_len = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt() * side;
            let steps = (seg_len * 2.0).ceil().max(1.0) as usize;
            for s in 0..=steps {
                let t = s as f32 / steps as f32;
                // Point in unit space, centred for the affine transform.
                let ux = x0 + (x1 - x0) * t - 0.5;
                let uy = y0 + (y1 - y0) * t - 0.5;
                let rx = params.scale * (cos * ux - sin * uy);
                let ry = params.scale * (sin * ux + cos * uy);
                let px = (rx + 0.5) * side + params.shift.0;
                let py = (ry + 0.5) * side + params.shift.1;
                stamp(&mut img, px, py, params.thickness);
            }
        }
    }

    if !noise.is_empty() {
        assert!(
            noise.len() >= img.len(),
            "noise buffer {} shorter than {} pixels",
            noise.len(),
            img.len()
        );
        for (p, &n) in img.iter_mut().zip(noise) {
            *p = (*p + params.noise_std * n).clamp(0.0, 1.0);
        }
    }
    Tensor::from_vec(img, &[IMAGE_SIDE * IMAGE_SIDE])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_digits_have_skeletons() {
        for d in 0..10 {
            let strokes = digit_skeleton(d);
            assert!(!strokes.is_empty(), "digit {d} empty");
            assert!(strokes.iter().all(|p| p.len() >= 2), "digit {d} degenerate");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn digit_ten_panics() {
        let _ = digit_skeleton(10);
    }

    #[test]
    fn rendering_produces_ink() {
        for d in 0..10 {
            let img = render_digit(d, &RenderParams::default(), &[]);
            let ink = img.sum();
            assert!(ink > 10.0, "digit {d} too faint: {ink}");
            assert!(img.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn digits_are_visually_distinct() {
        // Pairwise L2 distance between clean renders must be nontrivial —
        // a sanity floor so the task is learnable.
        let renders: Vec<Tensor> = (0..10)
            .map(|d| render_digit(d, &RenderParams::default(), &[]))
            .collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                let diff = renders[i].sub(&renders[j]).sq_norm();
                assert!(diff > 5.0, "digits {i} and {j} nearly identical ({diff})");
            }
        }
    }

    #[test]
    fn rotation_moves_pixels() {
        let plain = render_digit(7, &RenderParams::default(), &[]);
        let rotated = render_digit(
            7,
            &RenderParams {
                rotation: 0.3,
                ..RenderParams::default()
            },
            &[],
        );
        assert!(plain.sub(&rotated).sq_norm() > 1.0);
    }

    #[test]
    fn noise_is_clamped() {
        let noise = vec![100.0f32; IMAGE_SIDE * IMAGE_SIDE];
        let img = render_digit(
            3,
            &RenderParams {
                noise_std: 1.0,
                ..RenderParams::default()
            },
            &noise,
        );
        assert!(img.data().iter().all(|&p| p <= 1.0));
    }

    #[test]
    fn deterministic() {
        let a = render_digit(5, &RenderParams::default(), &[]);
        let b = render_digit(5, &RenderParams::default(), &[]);
        assert_eq!(a, b);
    }
}
