//! PGM (portable graymap) export for visual dataset inspection.

use fluid_tensor::Tensor;

/// Encodes one grayscale image (`[H, W]`, `[1, H, W]` or `[1, 1, H, W]`,
/// values in `[0, 1]`) as a binary PGM (P5) file body.
///
/// # Panics
///
/// Panics if the tensor is not a single-channel image.
pub fn to_pgm(image: &Tensor) -> Vec<u8> {
    let d = image.dims();
    let (h, w) = match d.len() {
        2 => (d[0], d[1]),
        3 if d[0] == 1 => (d[1], d[2]),
        4 if d[0] == 1 && d[1] == 1 => (d[2], d[3]),
        _ => panic!("to_pgm expects a single grayscale image, got shape {d:?}"),
    };
    let mut out = format!("P5\n{w} {h}\n255\n").into_bytes();
    out.extend(
        image
            .data()
            .iter()
            .map(|&p| (p.clamp(0.0, 1.0) * 255.0).round() as u8),
    );
    out
}

/// Lays a batch `[N, 1, H, W]` out as one `cols`-wide contact sheet and
/// encodes it as PGM.
///
/// # Panics
///
/// Panics if the batch is not rank 4 with one channel, or `cols == 0`.
pub fn contact_sheet(batch: &Tensor, cols: usize) -> Vec<u8> {
    let d = batch.dims();
    assert_eq!(d.len(), 4, "contact_sheet expects [N, 1, H, W]");
    assert_eq!(d[1], 1, "contact_sheet expects one channel");
    assert!(cols > 0, "zero columns");
    let (n, h, w) = (d[0], d[2], d[3]);
    let rows = n.div_ceil(cols);
    let mut sheet = Tensor::zeros(&[rows * h, cols * w]);
    for i in 0..n {
        let (r, c) = (i / cols, i % cols);
        for y in 0..h {
            for x in 0..w {
                let v = batch.at4(i, 0, y, x);
                sheet.set2(r * h + y, c * w + x, v);
            }
        }
    }
    to_pgm(&sheet)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_size() {
        let img = Tensor::zeros(&[1, 1, 28, 28]);
        let pgm = to_pgm(&img);
        assert!(pgm.starts_with(b"P5\n28 28\n255\n"));
        assert_eq!(pgm.len(), b"P5\n28 28\n255\n".len() + 28 * 28);
    }

    #[test]
    fn values_scale_to_bytes() {
        let img = Tensor::from_vec(vec![0.0, 0.5, 1.0, 2.0], &[2, 2]);
        let pgm = to_pgm(&img);
        let body = &pgm[pgm.len() - 4..];
        assert_eq!(body, &[0, 128, 255, 255], "clamping and scaling");
    }

    #[test]
    fn contact_sheet_dimensions() {
        let batch = Tensor::zeros(&[5, 1, 4, 4]);
        let pgm = contact_sheet(&batch, 3);
        // 5 images in 3 columns -> 2 rows: 8 x 12 pixels.
        assert!(pgm.starts_with(b"P5\n12 8\n255\n"));
    }

    #[test]
    #[should_panic(expected = "single grayscale image")]
    fn multichannel_rejected() {
        let _ = to_pgm(&Tensor::zeros(&[3, 4, 4]));
    }
}
