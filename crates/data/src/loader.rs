//! Mini-batch iteration with optional shuffling.

use crate::dataset::Dataset;
use fluid_tensor::{Prng, Tensor};

/// Iterates a [`Dataset`] in mini-batches, reshuffling each epoch.
///
/// The final partial batch of an epoch is dropped when smaller than the
/// batch size, matching common training-loop practice (`drop_last = true`).
#[derive(Debug)]
pub struct DataLoader<'a> {
    dataset: &'a Dataset,
    batch_size: usize,
    shuffle: bool,
    rng: Prng,
    order: Vec<usize>,
    cursor: usize,
}

impl<'a> DataLoader<'a> {
    /// Creates a loader over `dataset`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(dataset: &'a Dataset, batch_size: usize, shuffle: bool, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let mut loader = Self {
            dataset,
            batch_size,
            shuffle,
            rng: Prng::new(seed),
            order: (0..dataset.len()).collect(),
            cursor: 0,
        };
        loader.reset();
        loader
    }

    /// Batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.dataset.len() / self.batch_size
    }

    /// Starts a new epoch (reshuffles when enabled).
    pub fn reset(&mut self) {
        self.cursor = 0;
        if self.shuffle {
            self.rng.shuffle(&mut self.order);
        }
    }

    /// Returns the next `([B, C, H, W], labels)` batch, or `None` at epoch end.
    pub fn next_batch(&mut self) -> Option<(Tensor, Vec<usize>)> {
        if self.cursor + self.batch_size > self.dataset.len() {
            return None;
        }
        let idx = &self.order[self.cursor..self.cursor + self.batch_size];
        self.cursor += self.batch_size;
        Some(self.dataset.gather(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> Dataset {
        let images = Tensor::from_fn(&[n, 1, 2, 2], |i| (i / 4) as f32);
        Dataset::new(images, (0..n).map(|i| i % 10).collect())
    }

    #[test]
    fn batches_cover_epoch() {
        let ds = dataset(10);
        let mut loader = DataLoader::new(&ds, 3, false, 0);
        assert_eq!(loader.batches_per_epoch(), 3);
        let mut count = 0;
        while let Some((images, labels)) = loader.next_batch() {
            assert_eq!(images.dims(), &[3, 1, 2, 2]);
            assert_eq!(labels.len(), 3);
            count += 1;
        }
        assert_eq!(count, 3, "partial batch must be dropped");
    }

    #[test]
    fn unshuffled_is_sequential() {
        let ds = dataset(6);
        let mut loader = DataLoader::new(&ds, 2, false, 0);
        let (first, labels) = loader.next_batch().expect("batch");
        assert_eq!(labels, vec![0, 1]);
        assert_eq!(first.data()[0], 0.0);
    }

    #[test]
    fn shuffled_covers_all_examples() {
        let ds = dataset(8);
        let mut loader = DataLoader::new(&ds, 2, true, 3);
        let mut seen = Vec::new();
        while let Some((images, _)) = loader.next_batch() {
            seen.push(images.data()[0] as usize);
            seen.push(images.data()[4] as usize);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn reshuffle_changes_order() {
        let ds = dataset(64);
        let mut loader = DataLoader::new(&ds, 64, true, 5);
        let (a, _) = loader.next_batch().expect("epoch 1");
        loader.reset();
        let (b, _) = loader.next_batch().expect("epoch 2");
        assert_ne!(
            a.data(),
            b.data(),
            "two epochs with identical order is wildly unlikely"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset(16);
        let mut l1 = DataLoader::new(&ds, 4, true, 11);
        let mut l2 = DataLoader::new(&ds, 4, true, 11);
        let (a, _) = l1.next_batch().expect("a");
        let (b, _) = l2.next_batch().expect("b");
        assert_eq!(a, b);
    }
}
