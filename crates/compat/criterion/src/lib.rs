//! A minimal, offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This workspace builds with no network access and no registry cache, so
//! the real crate cannot be fetched. This shim implements exactly the
//! subset the `fluid-bench` targets use — `Criterion`, benchmark groups,
//! `Bencher::iter`/`iter_batched`, and the `criterion_group!` /
//! `criterion_main!` macros — with warm-up, wall-clock sampling and a
//! median/mean report. Timings are comparable across runs on the same
//! machine; statistical niceties (outlier analysis, HTML reports) are out
//! of scope.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Controls how a batch of iterations is set up in
/// [`Bencher::iter_batched`]. The shim times each batch identically; the
/// variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per timed iteration.
    PerIteration,
}

/// Benchmark configuration and entry point, mirroring criterion's builder.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock budget for measurement.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the wall-clock budget for warm-up.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark under the current configuration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            cfg: self.clone(),
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&id.into());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            parent: self,
            _name: name,
        }
    }
}

/// A named collection of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    _name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.parent.bench_function(format!("  {}", id.into()), f);
        self
    }

    /// Ends the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    cfg: Criterion,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, amortising per-call overhead over growing batches.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up, and calibrate how many calls fit in one sample.
        let warm_deadline = Instant::now() + self.cfg.warm_up_time;
        let mut calls_per_sample = 1usize;
        loop {
            let t0 = Instant::now();
            for _ in 0..calls_per_sample {
                let _ = routine();
            }
            let elapsed = t0.elapsed();
            if Instant::now() >= warm_deadline {
                break;
            }
            let per_sample = self.cfg.measurement_time / (self.cfg.sample_size.max(1) as u32);
            if elapsed < per_sample / 2 {
                calls_per_sample = calls_per_sample.saturating_mul(2);
            }
        }
        // Measurement.
        let deadline = Instant::now() + self.cfg.measurement_time;
        while self.samples.len() < self.cfg.sample_size && Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..calls_per_sample {
                let _ = routine();
            }
            self.samples.push(t0.elapsed() / calls_per_sample as u32);
        }
        if self.samples.is_empty() {
            let t0 = Instant::now();
            let _ = routine();
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// measured.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let warm_deadline = Instant::now() + self.cfg.warm_up_time;
        while Instant::now() < warm_deadline {
            let input = setup();
            let _ = routine(input);
        }
        let deadline = Instant::now() + self.cfg.measurement_time;
        while self.samples.len() < self.cfg.sample_size && Instant::now() < deadline {
            let input = setup();
            let t0 = Instant::now();
            let _ = routine(input);
            self.samples.push(t0.elapsed());
        }
        if self.samples.is_empty() {
            let input = setup();
            let t0 = Instant::now();
            let _ = routine(input);
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{id}: median {} mean {} ({} samples)",
            fmt_duration(median),
            fmt_duration(mean),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut count = 0u64;
        quick().bench_function("counter", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut setups = 0u64;
        quick().bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(setups > 0);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("inner", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }
}
