//! A minimal, offline stand-in for the
//! [proptest](https://crates.io/crates/proptest) property-testing
//! framework.
//!
//! This workspace builds with no network access and no registry cache, so
//! the real crate cannot be fetched. The shim implements the subset the
//! workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map` / `prop_flat_map` / `boxed`
//! * numeric range strategies (`0u64..500`, `1usize..=8`, `-1.0f32..1.0`),
//!   [`any`], [`Just`], tuple strategies, [`collection::vec`], and
//!   character-class string patterns (`"[a-z]{1,12}"`)
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros and [`ProptestConfig::with_cases`]
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test's name and case index), so failures reproduce exactly on re-run.
//! There is no shrinking: the failing case's number is reported instead.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property inside a [`proptest!`] body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Deterministic per-test random source (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG for one test case from the test's name and the case
    /// index, so every case is reproducible.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if state == 0 {
            state = 0x853c_49e6_748f_ea9b;
        }
        Self { state }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over an empty set");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values for one test-case argument.
///
/// Unlike real proptest there is no shrinking tree: a strategy is just a
/// deterministic function of the [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then draws from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy's type (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.new_value(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice between type-erased strategies; built by [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! with no arms");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let arm = rng.index(self.arms.len());
        self.arms[arm].new_value(rng)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy {lo}..{hi}");
                let width = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy {lo}..={hi}");
                let width = (hi - lo + 1) as u128;
                (lo + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start
                    + (rng.unit_f64() as $t) * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Marker returned by [`any`]; produces uniformly random values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for an arbitrary `T` (mirrors `proptest::any`).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` patterns act as strategies for matching strings. The shim
/// supports the character-class-with-repetition subset the workspace uses:
/// sequences of `[class]{min,max}`, `[class]{n}`, `[class]` or literal
/// characters, where a class may contain ranges (`a-z`) and literals.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let mut options = Vec::new();
        if chars[i] == '[' {
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                let c1 = chars[i];
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let c2 = chars[i + 2];
                    for code in (c1 as u32)..=(c2 as u32) {
                        if let Some(c) = char::from_u32(code) {
                            options.push(c);
                        }
                    }
                    i += 3;
                } else {
                    options.push(c1);
                    i += 1;
                }
            }
            i += 1; // closing ']'
        } else {
            options.push(chars[i]);
            i += 1;
        }
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let mut spec = String::new();
            i += 1;
            while i < chars.len() && chars[i] != '}' {
                spec.push(chars[i]);
                i += 1;
            }
            i += 1; // closing '}'
            match spec.split_once(',') {
                Some((a, b)) => (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(0)),
                None => {
                    let n: usize = spec.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        if options.is_empty() {
            continue;
        }
        let count = min + rng.index(max.saturating_sub(min) + 1);
        for _ in 0..count {
            out.push(options[rng.index(options.len())]);
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive length range for generated collections; converts from
    /// `usize` (exact), `a..b` and `a..=b` like real proptest's `SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors with lengths in `size` (mirrors
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.min + rng.index(self.size.max - self.size.min + 1);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`ProptestConfig::cases`] random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __pt_config: $crate::ProptestConfig = $cfg;
            for __pt_case in 0..__pt_config.cases as u64 {
                let mut __pt_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __pt_case,
                );
                $(let $arg = $crate::Strategy::new_value(&($strategy), &mut __pt_rng);)*
                let __pt_result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        Ok(())
                    })();
                if let Err(e) = __pt_result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __pt_case,
                        __pt_config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = TestRng::for_case("int_ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::new_value(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::new_value(&(1usize..=8), &mut rng);
            assert!((1..=8).contains(&w));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = TestRng::for_case("float_ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::new_value(&(-2.5f32..4.0), &mut rng);
            assert!((-2.5..4.0).contains(&v));
        }
    }

    #[test]
    fn patterns_match_their_class_and_length() {
        let mut rng = TestRng::for_case("patterns", 0);
        for _ in 0..200 {
            let s = Strategy::new_value(&"[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let p = Strategy::new_value(&"[ -~]{0,32}", &mut rng);
            assert!(p.len() <= 32);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));

            let d = Strategy::new_value(&"[a-z.0-9]{1,16}", &mut rng);
            assert!(d
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '.' || c.is_ascii_digit()));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::for_case("compose", 0);
        let strat = crate::collection::vec((0usize..5, any::<bool>()), 2..6);
        for _ in 0..100 {
            let v = Strategy::new_value(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|(n, _)| *n < 5));
        }
        let exact = crate::collection::vec(0u64..10, 7usize);
        assert_eq!(Strategy::new_value(&exact, &mut rng).len(), 7);
    }

    #[test]
    fn oneof_map_and_flat_map_run() {
        let mut rng = TestRng::for_case("oneof", 0);
        let strat = prop_oneof![
            (0usize..3).prop_map(|n| vec![0u8; n]),
            Just(vec![9u8]),
            (1usize..4).prop_flat_map(|n| crate::collection::vec(any::<u8>(), n)),
        ];
        for _ in 0..100 {
            let v = Strategy::new_value(&strat, &mut rng);
            assert!(v.len() <= 4);
        }
    }

    #[test]
    fn cases_are_reproducible() {
        let a: Vec<u64> = (0..5)
            .map(|c| TestRng::for_case("repro", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| TestRng::for_case("repro", c).next_u64())
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: args bind, asserts work, config is honoured.
        #[allow(clippy::absurd_extreme_comparisons)]
        fn macro_generates_cases(a in 0usize..10, b in "[a-z]{2,4}") {
            prop_assert!(a < 10, "a was {a}");
            prop_assert_eq!(b.len().clamp(2, 4), b.len());
        }
    }
}
