//! Energy accounting — a standard DATE-audience extension.
//!
//! The paper reports throughput and accuracy; deployments on battery-backed
//! edge nodes also care about energy per inference. This module extends the
//! latency models with a two-state (active/idle) power model per device and
//! derives energy-per-image for every Fig. 2 scenario.

use crate::device::DeviceModel;
use crate::scenario::{DeviceAvailability, ModelFamily, SystemModel};
use std::time::Duration;

/// Two-state power model: the device draws `active_w` while computing or
/// communicating and `idle_w` otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Active power draw (watts).
    pub active_w: f64,
    /// Idle power draw (watts).
    pub idle_w: f64,
}

impl PowerModel {
    /// Jetson Xavier NX CPU-mode preset (≈10 W active, ≈3 W idle).
    pub fn jetson_cpu() -> Self {
        Self {
            active_w: 10.0,
            idle_w: 3.0,
        }
    }

    /// Energy for `active` seconds of work within a `window` of wall time
    /// (the remainder idles).
    ///
    /// # Panics
    ///
    /// Panics if `active > window`.
    pub fn energy_j(&self, active: Duration, window: Duration) -> f64 {
        assert!(active <= window, "active time exceeds the window");
        self.active_w * active.as_secs_f64() + self.idle_w * (window - active).as_secs_f64()
    }
}

/// Energy report for one deployment scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Joules consumed per inferred image, summed over both devices
    /// (including idle burn of a powered-but-unused device).
    pub joules_per_image: f64,
    /// Images inferred per joule (0 when the system cannot operate).
    pub images_per_joule: f64,
}

/// Evaluates energy per image for a scenario, given the system model and a
/// power model shared by both devices.
///
/// Accounting: within one system inference period, each *online* device is
/// active for its own compute share and idles for the rest. In HT mode both
/// devices are continuously active (independent streams, no idle gaps) —
/// which is why HT is also the energy-efficiency winner per image.
pub fn scenario_energy(
    system: &SystemModel,
    power: PowerModel,
    family: ModelFamily,
    availability: DeviceAvailability,
    ht: bool,
) -> EnergyReport {
    let result = system.evaluate(family, availability, ht);
    if result.throughput_ips == 0.0 {
        return EnergyReport {
            joules_per_image: 0.0,
            images_per_joule: 0.0,
        };
    }
    let devices_online = match availability {
        DeviceAvailability::Both => 2.0,
        _ => 1.0,
    };
    let joules_per_image = match result.latency {
        // Latency-defined scenarios: per image, each online device burns
        // (conservatively) active power for the whole period — compute and
        // communication keep both sides busy in collective execution —
        // except single-device scenarios where only the survivor is on.
        Some(lat) => power.active_w * devices_online * lat.as_secs_f64(),
        // HT: both devices fully active; throughput is the sum of streams.
        None => power.active_w * devices_online / result.throughput_ips,
    };
    EnergyReport {
        joules_per_image,
        images_per_joule: 1.0 / joules_per_image,
    }
}

/// Energy of a single standalone device running continuously at its own
/// rate (the failure-survivor case), for comparison tables.
pub fn standalone_energy(device: &DeviceModel, macs: u64, power: PowerModel) -> EnergyReport {
    let lat = device.latency(macs);
    let joules = power.active_w * lat.as_secs_f64();
    EnergyReport {
        joules_per_image: joules,
        images_per_joule: 1.0 / joules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemModel {
        SystemModel::paper_testbed()
    }

    #[test]
    fn power_model_mixes_active_and_idle() {
        let p = PowerModel {
            active_w: 10.0,
            idle_w: 2.0,
        };
        let e = p.energy_j(Duration::from_secs(1), Duration::from_secs(3));
        assert!((e - (10.0 + 4.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "active time exceeds")]
    fn active_beyond_window_panics() {
        let p = PowerModel::jetson_cpu();
        let _ = p.energy_j(Duration::from_secs(2), Duration::from_secs(1));
    }

    #[test]
    fn dead_scenarios_report_zero() {
        let r = scenario_energy(
            &sys(),
            PowerModel::jetson_cpu(),
            ModelFamily::Static,
            DeviceAvailability::OnlyMaster,
            false,
        );
        assert_eq!(r.images_per_joule, 0.0);
    }

    #[test]
    fn ht_is_most_energy_efficient_two_device_mode() {
        let p = PowerModel::jetson_cpu();
        let ht = scenario_energy(
            &sys(),
            p,
            ModelFamily::Fluid,
            DeviceAvailability::Both,
            true,
        );
        let ha = scenario_energy(
            &sys(),
            p,
            ModelFamily::Fluid,
            DeviceAvailability::Both,
            false,
        );
        let st = scenario_energy(
            &sys(),
            p,
            ModelFamily::Static,
            DeviceAvailability::Both,
            false,
        );
        assert!(
            ht.images_per_joule > ha.images_per_joule,
            "{ht:?} vs {ha:?}"
        );
        assert!(ht.images_per_joule > st.images_per_joule);
    }

    #[test]
    fn single_device_burns_half_the_power() {
        let p = PowerModel::jetson_cpu();
        let both = scenario_energy(
            &sys(),
            p,
            ModelFamily::Fluid,
            DeviceAvailability::Both,
            false,
        );
        let solo = scenario_energy(
            &sys(),
            p,
            ModelFamily::Fluid,
            DeviceAvailability::OnlyMaster,
            false,
        );
        // The survivor is slower per image, but only one device draws power.
        assert!(solo.joules_per_image < both.joules_per_image);
    }
}
