//! Discrete-event queueing simulation of the adaptive runtime.
//!
//! The paper claims Fluid DyDNNs "seamlessly transition between two modes
//! to meet varying performance demands". This simulator makes that claim
//! quantitative: Poisson request arrivals hit a two-device system that can
//! serve in High-Accuracy mode (one logical server, best accuracy) or
//! High-Throughput mode (two independent servers), with a backlog-driven
//! switching policy. Reported: sojourn-time statistics, achieved
//! throughput, time share per mode.

use crate::scenario::{DeviceAvailability, ModelFamily, SystemModel};
use fluid_tensor::Prng;
use std::collections::VecDeque;

/// Nearest-rank percentile of an ascending-sorted slice: `sorted[round(q·(n-1))]`.
///
/// `q` is clamped to `[0, 1]`; an empty slice yields `0.0`. This is the
/// convention the queueing simulator has always used for its p95, factored
/// out so live serving metrics (`fluid-serve`) report percentiles the same
/// way the simulator predicts them.
///
/// # Example
///
/// ```
/// use fluid_perf::percentile;
/// let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(percentile(&sorted, 0.5), 3.0);
/// assert_eq!(percentile(&sorted, 1.0), 5.0);
/// assert_eq!(percentile(&[], 0.95), 0.0); // empty window
/// ```
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// An append-only window of latency (or any scalar) samples with lazy
/// sorting, shared by the queueing simulator and the live serving metrics.
///
/// Percentiles follow [`percentile`]'s nearest-rank convention; an empty
/// window reports `0.0` for every statistic, and a single-sample window
/// reports that sample at every quantile.
///
/// # Example
///
/// ```
/// use fluid_perf::SampleWindow;
/// let mut w = SampleWindow::new();
/// assert_eq!(w.percentile(0.95), 0.0); // empty window
/// w.push(4.0);
/// assert_eq!(w.percentile(0.5), 4.0); // single sample ⇒ every quantile
/// assert_eq!(w.percentile(0.99), 4.0);
/// w.push(2.0);
/// assert_eq!(w.mean(), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleWindow {
    samples: Vec<f64>,
    sorted: bool,
}

impl SampleWindow {
    /// An empty window.
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Appends one sample.
    pub fn push(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `0.0` for an empty window.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Largest sample, or `0.0` for an empty window.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().reduce(f64::max).unwrap_or(0.0)
    }

    /// Nearest-rank percentile (see [`percentile`]); sorts lazily, so a run
    /// of percentile queries after a burst of pushes sorts once.
    pub fn percentile(&mut self, q: f64) -> f64 {
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        percentile(&self.samples, q)
    }

    /// Drops all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sorted = true;
    }
}

/// The mode-switching policy of the simulated controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Always serve collectively (peak accuracy).
    AlwaysHa,
    /// Always serve independently (peak throughput).
    AlwaysHt,
    /// Switch to HT when the backlog exceeds `hi`, back to HA at `lo`
    /// (hysteresis).
    Adaptive {
        /// Backlog that triggers High-Throughput mode.
        hi: usize,
        /// Backlog at which the system returns to High-Accuracy mode.
        lo: usize,
    },
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Requests completed.
    pub completed: usize,
    /// Mean sojourn time (queueing + service), seconds.
    pub mean_sojourn_s: f64,
    /// 95th-percentile sojourn time, seconds.
    pub p95_sojourn_s: f64,
    /// Achieved throughput over the run, images/s.
    pub throughput_ips: f64,
    /// Fraction of completions served in High-Accuracy mode.
    pub ha_fraction: f64,
    /// Number of mode switches the policy performed.
    pub mode_switches: usize,
}

/// Simulates `duration_s` seconds of Poisson arrivals at `lambda` req/s.
///
/// Service rates come from the calibrated system model: HA mode serves at
/// the collective rate on one logical server; HT mode serves with two
/// servers at the Master/Worker standalone rates.
///
/// # Panics
///
/// Panics if `lambda <= 0` or `duration_s <= 0`.
pub fn simulate(
    system: &SystemModel,
    policy: Policy,
    lambda: f64,
    duration_s: f64,
    seed: u64,
) -> SimReport {
    assert!(lambda > 0.0, "non-positive arrival rate");
    assert!(duration_s > 0.0, "non-positive duration");
    let ha_latency = 1.0
        / system
            .evaluate(ModelFamily::Fluid, DeviceAvailability::Both, false)
            .throughput_ips;
    let master_latency = 1.0
        / system
            .evaluate(ModelFamily::Fluid, DeviceAvailability::OnlyMaster, false)
            .throughput_ips;
    let worker_latency = 1.0
        / system
            .evaluate(ModelFamily::Fluid, DeviceAvailability::OnlyWorker, false)
            .throughput_ips;

    let mut rng = Prng::new(seed);
    // Pre-draw the arrival process.
    let mut arrivals = Vec::new();
    let mut t = 0.0f64;
    loop {
        // Exponential inter-arrival.
        t += -(1.0 - rng.next_f64()).ln() / lambda;
        if t > duration_s {
            break;
        }
        arrivals.push(t);
    }

    let mut queue: VecDeque<f64> = VecDeque::new(); // arrival stamps
    let mut next_arrival = 0usize;
    let mut now = 0.0f64;
    // Server busy-until times: in HA mode only server 0 is used.
    let mut busy_until = [0.0f64; 2];
    let mut ht_mode = matches!(policy, Policy::AlwaysHt);
    let mut sojourns = SampleWindow::new();
    let mut ha_count = 0usize;
    let mut switches = 0usize;

    loop {
        // Next event: arrival or a server becoming free with work queued.
        let arrival_t = arrivals.get(next_arrival).copied().unwrap_or(f64::INFINITY);
        if arrival_t == f64::INFINITY && queue.is_empty() {
            break;
        }
        // Admit all arrivals up to the time we can next serve.
        let serve_t = if queue.is_empty() {
            arrival_t
        } else {
            let earliest_server = if ht_mode {
                busy_until[0].min(busy_until[1])
            } else {
                busy_until[0]
            };
            earliest_server.max(now)
        };
        if arrival_t <= serve_t {
            queue.push_back(arrival_t);
            now = now.max(arrival_t);
            next_arrival += 1;
        } else {
            // Serve one request.
            let arrived = queue.pop_front().expect("non-empty queue");
            now = serve_t;
            let (server, latency) = if ht_mode {
                if busy_until[0] <= busy_until[1] {
                    (0, master_latency)
                } else {
                    (1, worker_latency)
                }
            } else {
                (0, ha_latency)
            };
            let start = now.max(busy_until[server]);
            let done = start + latency;
            busy_until[server] = done;
            sojourns.push(done - arrived);
            if !ht_mode {
                ha_count += 1;
            }
        }
        // Apply the switching policy on the current backlog.
        if let Policy::Adaptive { hi, lo } = policy {
            if !ht_mode && queue.len() >= hi {
                ht_mode = true;
                switches += 1;
            } else if ht_mode && queue.len() <= lo {
                ht_mode = false;
                switches += 1;
                // Collapse to the single logical server.
                busy_until[0] = busy_until[0].max(busy_until[1]);
            }
        }
    }

    let completed = sojourns.len();
    let mean = sojourns.mean();
    let p95 = sojourns.percentile(0.95);
    let last_done = busy_until[0].max(busy_until[1]).max(now);
    SimReport {
        completed,
        mean_sojourn_s: mean,
        p95_sojourn_s: p95,
        throughput_ips: if last_done > 0.0 {
            completed as f64 / last_done
        } else {
            0.0
        },
        ha_fraction: if completed == 0 {
            0.0
        } else {
            ha_count as f64 / completed as f64
        },
        mode_switches: switches,
    }
}

/// One node becoming unavailable for a window of simulated time (a crash
/// + restart, or a rolling-swap drain) inside [`simulate_cluster`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeOutage {
    /// Index of the node that goes dark.
    pub node: usize,
    /// Outage start, seconds into the run.
    pub from_s: f64,
    /// Outage end, seconds into the run.
    pub to_s: f64,
}

/// One router front going dark for a window of simulated time inside
/// [`simulate_cluster`]. Clients hold the *list* of routers, so with two
/// or more routers an outage costs the affected arrivals one retry (the
/// client reconnects to the next list entry); with a single router every
/// arrival of the window is simply lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterOutage {
    /// Index of the router that goes dark.
    pub router: usize,
    /// Outage start, seconds into the run.
    pub from_s: f64,
    /// Outage end, seconds into the run.
    pub to_s: f64,
}

/// A multi-shard serving cluster for [`simulate_cluster`]: `nodes`
/// single-server nodes, keys hashed over `shards` buckets, each bucket
/// served by `replication` consecutive nodes (an abstraction of the
/// router's rendezvous replica sets — the queueing behaviour only depends
/// on the replica *count*, not which hash picked them), fronted by
/// `routers` replicated routers that clients spread over uniformly.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterScenario {
    /// Serve nodes in the cluster.
    pub nodes: usize,
    /// Replicas per shard (clamped to `nodes`).
    pub replication: usize,
    /// Hash buckets the key space splits into.
    pub shards: usize,
    /// Poisson arrival rate, requests/s.
    pub lambda: f64,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Per-request service time on any node, seconds.
    pub service_s: f64,
    /// At most one node outage per run (the drill's discipline: never two
    /// nodes dark at once).
    pub outage: Option<NodeOutage>,
    /// Replicated router fronts; clients hold the full list and pick one
    /// uniformly per request.
    pub routers: usize,
    /// At most one router outage per run.
    pub router_outage: Option<RouterOutage>,
    /// A reachability partition: the node is *healthy* but severed from
    /// every router for the window (contrast `outage`, where the node is
    /// gone). Its shards fail over to replicas; until the verdict has
    /// gossiped to every router, each affected arrival also pays one
    /// failed attempt on the severed primary.
    pub partition: Option<NodeOutage>,
    /// Anti-entropy gossip interval between routers, seconds: the bound
    /// on how long routers keep dialing a partitioned node after the
    /// first failed attempt produced a health verdict somewhere.
    pub gossip_interval_s: f64,
    /// Client-visible cost of one failed attempt plus its retry (a
    /// connect timeout, roughly), seconds.
    pub retry_penalty_s: f64,
}

impl ClusterScenario {
    /// A scenario with 64 shards, one router, a 100 ms gossip interval, a
    /// 250 ms retry penalty, and no failure windows; set `outage`,
    /// `router_outage`, or `partition` afterwards to model one.
    pub fn new(
        nodes: usize,
        replication: usize,
        lambda: f64,
        duration_s: f64,
        service_s: f64,
    ) -> ClusterScenario {
        ClusterScenario {
            nodes,
            replication,
            shards: 64,
            lambda,
            duration_s,
            service_s,
            outage: None,
            routers: 1,
            router_outage: None,
            partition: None,
            gossip_interval_s: 0.1,
            retry_penalty_s: 0.25,
        }
    }
}

/// Result of one [`simulate_cluster`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSimReport {
    /// Requests served by some replica.
    pub completed: usize,
    /// Requests that arrived while *every* replica of their shard was in
    /// outage — the cluster-level drop the router's replication exists to
    /// prevent.
    pub dropped: usize,
    /// Mean sojourn (queueing + service), seconds, over completions.
    pub mean_sojourn_s: f64,
    /// 95th-percentile sojourn, seconds.
    pub p95_sojourn_s: f64,
    /// Completions per second of simulated time.
    pub throughput_ips: f64,
    /// Completions served by each node.
    pub per_node_served: Vec<usize>,
    /// Completions that paid at least one retry penalty (a dead router in
    /// the client's list, or an undetected partitioned primary).
    pub retried: usize,
}

/// Simulates Poisson arrivals against a sharded, replicated cluster
/// behind replicated routers: each arrival picks a router uniformly and
/// hashes to a shard; the least-backlogged *reachable* replica serves it
/// FIFO; if every replica is in outage (or partitioned) the request is
/// dropped.
///
/// This is the model that justifies `fluid-router`'s defaults:
///
/// * At `replication = 1` any node outage drops every request of that
///   node's shards for the whole window, while `replication = 2` rides
///   through a single-node outage with zero drops and only a latency
///   bump — why 2 is the default and the chaos drill's kill discipline is
///   one-node-at-a-time (`one_replica_drops_two_replicas_ride_through`).
/// * With a single router, a router outage drops its whole window; a
///   second router turns the same window into per-request retries
///   (`one_router_drops_its_outage_two_routers_retry_through_it`).
/// * During a node partition, arrivals keep paying a failed attempt on
///   the severed primary until the health verdict has gossiped to every
///   router — so the retry tail is proportional to the gossip interval,
///   which is why `fluid-router`'s anti-entropy default is 100 ms
///   (`shorter_gossip_interval_shrinks_the_partition_tail`).
///
/// # Panics
///
/// Panics if `nodes`, `replication`, `shards`, `routers`, `lambda`,
/// `duration_s`, `service_s`, or `gossip_interval_s` is
/// zero/non-positive, or `retry_penalty_s` is negative.
pub fn simulate_cluster(scenario: &ClusterScenario, seed: u64) -> ClusterSimReport {
    assert!(scenario.nodes > 0, "cluster needs at least one node");
    assert!(scenario.replication > 0, "replication must be >= 1");
    assert!(scenario.shards > 0, "cluster needs at least one shard");
    assert!(scenario.routers > 0, "cluster needs at least one router");
    assert!(scenario.lambda > 0.0, "non-positive arrival rate");
    assert!(scenario.duration_s > 0.0, "non-positive duration");
    assert!(scenario.service_s > 0.0, "non-positive service time");
    assert!(
        scenario.gossip_interval_s > 0.0,
        "non-positive gossip interval"
    );
    assert!(scenario.retry_penalty_s >= 0.0, "negative retry penalty");
    let replication = scenario.replication.min(scenario.nodes);
    let windowed = |w: &Option<NodeOutage>, node: usize, t: f64| match *w {
        Some(o) => node == o.node && t >= o.from_s && t < o.to_s,
        None => false,
    };
    // A node serves nothing while dead (outage) *or* severed (partition);
    // the difference is only in the retry tail below.
    let unreachable = |node: usize, t: f64| {
        windowed(&scenario.outage, node, t) || windowed(&scenario.partition, node, t)
    };

    let mut rng = Prng::new(seed);
    let mut busy_until = vec![0.0f64; scenario.nodes];
    let mut per_node_served = vec![0usize; scenario.nodes];
    let mut sojourns = SampleWindow::new();
    let mut dropped = 0usize;
    let mut retried = 0usize;
    let mut t = 0.0f64;
    loop {
        t += -(1.0 - rng.next_f64()).ln() / scenario.lambda;
        if t > scenario.duration_s {
            break;
        }
        let shard = rng.below(scenario.shards);
        // Drawn unconditionally so scenarios differing only in failure
        // windows or router count see the same arrival/shard stream.
        let router = rng.below(scenario.routers);
        let mut penalty = 0.0f64;
        if let Some(o) = scenario.router_outage {
            if router == o.router && t >= o.from_s && t < o.to_s {
                if scenario.routers == 1 {
                    // No list to retry across: the request is lost.
                    dropped += 1;
                    continue;
                }
                // The client's next list entry serves; the dead router
                // cost one reconnect.
                penalty += scenario.retry_penalty_s;
            }
        }
        // Replica set: `replication` consecutive nodes starting at the
        // shard's primary. Which nodes they are doesn't matter to the
        // queueing; that they are distinct and fixed per shard does.
        let primary = shard % scenario.nodes;
        if let Some(p) = scenario.partition {
            // Until every router has heard the verdict (one gossip
            // interval after the first failed attempt at window start),
            // a request whose replica set holds the severed node pays
            // one failed attempt before its replica answers.
            let undetected =
                t >= p.from_s && t < p.to_s && t < p.from_s + scenario.gossip_interval_s;
            let targets_severed =
                (0..replication).any(|j| (primary + j) % scenario.nodes == p.node);
            if undetected && targets_severed {
                penalty += scenario.retry_penalty_s;
            }
        }
        let chosen = (0..replication)
            .map(|j| (primary + j) % scenario.nodes)
            .filter(|&node| !unreachable(node, t))
            .min_by(|&a, &b| busy_until[a].total_cmp(&busy_until[b]));
        match chosen {
            None => dropped += 1,
            Some(node) => {
                let start = t.max(busy_until[node]);
                let done = start + scenario.service_s;
                busy_until[node] = done;
                per_node_served[node] += 1;
                // The retry penalty is client-side latency: it delays the
                // response, not the node's service slot.
                sojourns.push(done - t + penalty);
                if penalty > 0.0 {
                    retried += 1;
                }
            }
        }
    }

    let completed = sojourns.len();
    let last_done = busy_until.iter().copied().fold(t, f64::max);
    ClusterSimReport {
        completed,
        dropped,
        mean_sojourn_s: sojourns.mean(),
        p95_sojourn_s: sojourns.percentile(0.95),
        throughput_ips: if last_done > 0.0 {
            completed as f64 / last_done
        } else {
            0.0
        },
        per_node_served,
        retried,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemModel {
        SystemModel::paper_testbed()
    }

    #[test]
    fn light_load_ha_keeps_up() {
        // λ = 5 req/s against ~12 img/s HA capacity: stable queue.
        let r = simulate(&sys(), Policy::AlwaysHa, 5.0, 60.0, 1);
        assert!(r.completed > 200);
        assert!(r.mean_sojourn_s < 0.5, "mean sojourn {}", r.mean_sojourn_s);
        assert!((r.ha_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overload_ha_queue_explodes_ht_does_not() {
        // λ = 20 req/s exceeds HA capacity (~12) but not HT (~28).
        let ha = simulate(&sys(), Policy::AlwaysHa, 20.0, 60.0, 2);
        let ht = simulate(&sys(), Policy::AlwaysHt, 20.0, 60.0, 2);
        assert!(
            ha.p95_sojourn_s > 5.0 * ht.p95_sojourn_s,
            "HA p95 {} vs HT p95 {}",
            ha.p95_sojourn_s,
            ht.p95_sojourn_s
        );
        assert!(ht.throughput_ips > 19.0);
    }

    #[test]
    fn adaptive_policy_tracks_load() {
        // Under overload the adaptive policy must serve mostly in HT and
        // keep latency near the HT baseline while still taking HA requests
        // when the queue drains.
        let adaptive = simulate(&sys(), Policy::Adaptive { hi: 8, lo: 1 }, 20.0, 60.0, 3);
        let ht = simulate(&sys(), Policy::AlwaysHt, 20.0, 60.0, 3);
        assert!(adaptive.mode_switches > 0);
        assert!(adaptive.ha_fraction > 0.0 && adaptive.ha_fraction < 1.0);
        assert!(
            adaptive.p95_sojourn_s < 4.0 * ht.p95_sojourn_s,
            "adaptive p95 {} vs HT {}",
            adaptive.p95_sojourn_s,
            ht.p95_sojourn_s
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate(&sys(), Policy::AlwaysHa, 8.0, 30.0, 9);
        let b = simulate(&sys(), Policy::AlwaysHa, 8.0, 30.0, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-positive arrival rate")]
    fn zero_lambda_panics() {
        let _ = simulate(&sys(), Policy::AlwaysHa, 0.0, 1.0, 0);
    }

    #[test]
    fn empty_window_percentiles_are_zero() {
        // A measurement window that saw no completions must report zeros,
        // not NaN or a panic — live serving metrics snapshot whenever asked.
        let mut w = SampleWindow::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.max(), 0.0);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(w.percentile(q), 0.0, "q={q}");
        }
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn single_sample_window_reports_that_sample_everywhere() {
        let mut w = SampleWindow::new();
        w.push(3.25);
        assert_eq!(w.len(), 1);
        assert_eq!(w.mean(), 3.25);
        assert_eq!(w.max(), 3.25);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(w.percentile(q), 3.25, "q={q}");
        }
    }

    #[test]
    fn percentile_is_nearest_rank_and_clamps_q() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&sorted, 0.0), 10.0);
        assert_eq!(percentile(&sorted, 1.0), 40.0);
        // round(0.5 * 3) = 2 → 30.0 (nearest rank, not interpolation).
        assert_eq!(percentile(&sorted, 0.5), 30.0);
        // Out-of-range q is clamped, never an index panic.
        assert_eq!(percentile(&sorted, -1.0), 10.0);
        assert_eq!(percentile(&sorted, 7.0), 40.0);
    }

    #[test]
    fn max_of_all_negative_window_is_a_member() {
        // "any scalar" means negatives too: max must come from the window,
        // never from a 0.0 fold seed.
        let mut w = SampleWindow::new();
        w.push(-5.0);
        w.push(-2.0);
        assert_eq!(w.max(), -2.0);
    }

    #[test]
    fn window_sorts_lazily_and_clear_resets() {
        let mut w = SampleWindow::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            w.push(v);
        }
        assert_eq!(w.percentile(0.0), 1.0);
        assert_eq!(w.percentile(1.0), 5.0);
        // Pushing after a sort re-dirties the window.
        w.push(0.5);
        assert_eq!(w.percentile(0.0), 0.5);
        w.clear();
        assert_eq!(w.percentile(0.95), 0.0);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn one_replica_drops_two_replicas_ride_through() {
        // The replication-default justification: a 20 s single-node outage
        // at replication 1 drops every arrival of that node's shards, while
        // replication 2 serves all of them — same arrivals, same seed.
        let outage = NodeOutage {
            node: 1,
            from_s: 20.0,
            to_s: 40.0,
        };
        let mut r1 = ClusterScenario::new(3, 1, 60.0, 60.0, 0.01);
        r1.outage = Some(outage);
        let mut r2 = ClusterScenario::new(3, 2, 60.0, 60.0, 0.01);
        r2.outage = Some(outage);
        let seed = 5;
        let rep1 = simulate_cluster(&r1, seed);
        let rep2 = simulate_cluster(&r2, seed);
        assert!(
            rep1.dropped > 200,
            "a third of 20 s × 60 req/s should drop, saw {}",
            rep1.dropped
        );
        assert_eq!(rep2.dropped, 0, "replication 2 must ride out one outage");
        assert_eq!(rep2.completed, rep1.completed + rep1.dropped);
    }

    #[test]
    fn replicas_spread_load_and_absorb_the_outage_window() {
        let outage = NodeOutage {
            node: 0,
            from_s: 10.0,
            to_s: 20.0,
        };
        let mut sc = ClusterScenario::new(3, 2, 90.0, 30.0, 0.005);
        sc.outage = Some(outage);
        let rep = simulate_cluster(&sc, 11);
        assert_eq!(rep.dropped, 0);
        assert_eq!(rep.per_node_served.len(), 3);
        assert!(rep.per_node_served.iter().all(|&n| n > 0));
        // The downed node serves the least; its peers absorbed its window.
        let min = rep.per_node_served.iter().min().copied().unwrap_or(0);
        assert_eq!(rep.per_node_served[0], min);
        assert!(rep.throughput_ips > 80.0, "{}", rep.throughput_ips);
    }

    #[test]
    fn one_router_drops_its_outage_two_routers_retry_through_it() {
        // The replicated-router justification: a 10 s router outage with a
        // single router loses its entire window, while a second router
        // turns every one of those arrivals into a completed (if slightly
        // slower) request — same arrivals, same seed.
        let outage = RouterOutage {
            router: 0,
            from_s: 10.0,
            to_s: 20.0,
        };
        let mut one = ClusterScenario::new(3, 2, 60.0, 30.0, 0.005);
        one.router_outage = Some(outage);
        let mut two = ClusterScenario::new(3, 2, 60.0, 30.0, 0.005);
        two.routers = 2;
        two.router_outage = Some(outage);
        let a = simulate_cluster(&one, 21);
        let b = simulate_cluster(&two, 21);
        assert!(
            a.dropped > 200,
            "a single-router outage should drop ~600 arrivals, saw {}",
            a.dropped
        );
        assert_eq!(b.dropped, 0, "a second router absorbs the outage");
        assert!(b.retried > 0, "the dead router must cost retries");
        assert_eq!(b.completed, a.completed + a.dropped);
    }

    #[test]
    fn shorter_gossip_interval_shrinks_the_partition_tail() {
        // The 100 ms anti-entropy default: while a partition verdict has
        // not yet gossiped to every router, requests targeting the severed
        // primary pay a failed attempt before the replica answers. The
        // retry tail — and with it the p95 — scales with the interval.
        let partition = NodeOutage {
            node: 1,
            from_s: 10.0,
            to_s: 20.0,
        };
        let mk = |gossip_interval_s: f64| {
            let mut sc = ClusterScenario::new(3, 2, 60.0, 30.0, 0.005);
            sc.routers = 2;
            sc.partition = Some(partition);
            sc.gossip_interval_s = gossip_interval_s;
            sc
        };
        let fast = simulate_cluster(&mk(0.1), 23);
        let slow = simulate_cluster(&mk(5.0), 23);
        // Replication rides the partition out either way…
        assert_eq!(fast.dropped, 0);
        assert_eq!(slow.dropped, 0);
        assert_eq!(fast.completed, slow.completed);
        // …but a 50× slower gossip interval means a 50×-ish longer tail of
        // failed first attempts, and a visibly worse p95.
        assert!(
            10 * fast.retried < slow.retried,
            "fast {} vs slow {} retried",
            fast.retried,
            slow.retried
        );
        assert!(
            fast.p95_sojourn_s < slow.p95_sojourn_s,
            "fast p95 {} vs slow p95 {}",
            fast.p95_sojourn_s,
            slow.p95_sojourn_s
        );
    }

    #[test]
    fn cluster_sim_is_deterministic_given_seed() {
        let sc = ClusterScenario::new(4, 2, 50.0, 20.0, 0.01);
        assert_eq!(simulate_cluster(&sc, 3), simulate_cluster(&sc, 3));
    }

    #[test]
    fn stable_cluster_keeps_sojourns_near_service_time() {
        // Far under capacity, sojourn ≈ service time: queueing is rare.
        let sc = ClusterScenario::new(3, 2, 30.0, 30.0, 0.004);
        let rep = simulate_cluster(&sc, 8);
        assert_eq!(rep.dropped, 0);
        assert!(rep.mean_sojourn_s < 0.02, "{}", rep.mean_sojourn_s);
        assert!(rep.p95_sojourn_s >= rep.mean_sojourn_s * 0.5);
    }

    #[test]
    fn zero_arrivals_is_an_empty_report_not_a_nan() {
        // A rate so low the duration sees no arrivals: every counter is
        // zero and the percentiles are defined (0.0), not NaN.
        let sc = ClusterScenario::new(2, 2, 1e-9, 1.0, 0.01);
        let rep = simulate_cluster(&sc, 5);
        assert_eq!(rep.completed, 0);
        assert_eq!(rep.dropped, 0);
        assert_eq!(rep.mean_sojourn_s, 0.0);
        assert_eq!(rep.p95_sojourn_s, 0.0);
        assert_eq!(rep.throughput_ips, 0.0);
        assert!(rep.per_node_served.iter().all(|&n| n == 0));
    }

    #[test]
    fn single_shard_cluster_still_spreads_over_its_replicas() {
        // One shard with replication 2 on 3 nodes: exactly two nodes
        // serve; the third never sees a request.
        let sc = ClusterScenario {
            shards: 1,
            ..ClusterScenario::new(3, 2, 60.0, 20.0, 0.005)
        };
        let rep = simulate_cluster(&sc, 13);
        assert!(rep.completed > 0);
        assert_eq!(rep.dropped, 0);
        let serving = rep.per_node_served.iter().filter(|&&n| n > 0).count();
        assert_eq!(serving, 2, "{:?}", rep.per_node_served);
    }

    #[test]
    fn replication_beyond_node_count_is_clamped_not_fatal() {
        // Asking for 5 replicas on 2 nodes behaves exactly like full
        // replication: same completions, same spread, nothing panics.
        let want = ClusterScenario::new(2, 5, 40.0, 10.0, 0.005);
        let full = ClusterScenario::new(2, 2, 40.0, 10.0, 0.005);
        let a = simulate_cluster(&want, 17);
        let b = simulate_cluster(&full, 17);
        assert_eq!(a, b, "clamped replication must match full replication");
        assert!(a.completed > 0);
    }

    #[test]
    #[should_panic(expected = "replication must be >= 1")]
    fn zero_replication_panics() {
        let sc = ClusterScenario {
            replication: 0,
            ..ClusterScenario::new(2, 1, 10.0, 1.0, 0.01)
        };
        let _ = simulate_cluster(&sc, 0);
    }

    #[test]
    fn simulator_percentiles_match_the_shared_helper() {
        // The refactored simulate() must agree with a hand computation via
        // the public helper on the same sojourn distribution.
        let r = simulate(&sys(), Policy::AlwaysHa, 8.0, 30.0, 9);
        assert!(r.p95_sojourn_s >= r.mean_sojourn_s * 0.5);
        assert!(r.p95_sojourn_s.is_finite() && r.p95_sojourn_s > 0.0);
    }
}
