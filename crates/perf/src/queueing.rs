//! Discrete-event queueing simulation of the adaptive runtime.
//!
//! The paper claims Fluid DyDNNs "seamlessly transition between two modes
//! to meet varying performance demands". This simulator makes that claim
//! quantitative: Poisson request arrivals hit a two-device system that can
//! serve in High-Accuracy mode (one logical server, best accuracy) or
//! High-Throughput mode (two independent servers), with a backlog-driven
//! switching policy. Reported: sojourn-time statistics, achieved
//! throughput, time share per mode.

use crate::scenario::{DeviceAvailability, ModelFamily, SystemModel};
use fluid_tensor::Prng;
use std::collections::VecDeque;

/// Nearest-rank percentile of an ascending-sorted slice: `sorted[round(q·(n-1))]`.
///
/// `q` is clamped to `[0, 1]`; an empty slice yields `0.0`. This is the
/// convention the queueing simulator has always used for its p95, factored
/// out so live serving metrics (`fluid-serve`) report percentiles the same
/// way the simulator predicts them.
///
/// # Example
///
/// ```
/// use fluid_perf::percentile;
/// let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(percentile(&sorted, 0.5), 3.0);
/// assert_eq!(percentile(&sorted, 1.0), 5.0);
/// assert_eq!(percentile(&[], 0.95), 0.0); // empty window
/// ```
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// An append-only window of latency (or any scalar) samples with lazy
/// sorting, shared by the queueing simulator and the live serving metrics.
///
/// Percentiles follow [`percentile`]'s nearest-rank convention; an empty
/// window reports `0.0` for every statistic, and a single-sample window
/// reports that sample at every quantile.
///
/// # Example
///
/// ```
/// use fluid_perf::SampleWindow;
/// let mut w = SampleWindow::new();
/// assert_eq!(w.percentile(0.95), 0.0); // empty window
/// w.push(4.0);
/// assert_eq!(w.percentile(0.5), 4.0); // single sample ⇒ every quantile
/// assert_eq!(w.percentile(0.99), 4.0);
/// w.push(2.0);
/// assert_eq!(w.mean(), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleWindow {
    samples: Vec<f64>,
    sorted: bool,
}

impl SampleWindow {
    /// An empty window.
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Appends one sample.
    pub fn push(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `0.0` for an empty window.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Largest sample, or `0.0` for an empty window.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().reduce(f64::max).unwrap_or(0.0)
    }

    /// Nearest-rank percentile (see [`percentile`]); sorts lazily, so a run
    /// of percentile queries after a burst of pushes sorts once.
    pub fn percentile(&mut self, q: f64) -> f64 {
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        percentile(&self.samples, q)
    }

    /// Drops all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sorted = true;
    }
}

/// The mode-switching policy of the simulated controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Always serve collectively (peak accuracy).
    AlwaysHa,
    /// Always serve independently (peak throughput).
    AlwaysHt,
    /// Switch to HT when the backlog exceeds `hi`, back to HA at `lo`
    /// (hysteresis).
    Adaptive {
        /// Backlog that triggers High-Throughput mode.
        hi: usize,
        /// Backlog at which the system returns to High-Accuracy mode.
        lo: usize,
    },
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Requests completed.
    pub completed: usize,
    /// Mean sojourn time (queueing + service), seconds.
    pub mean_sojourn_s: f64,
    /// 95th-percentile sojourn time, seconds.
    pub p95_sojourn_s: f64,
    /// Achieved throughput over the run, images/s.
    pub throughput_ips: f64,
    /// Fraction of completions served in High-Accuracy mode.
    pub ha_fraction: f64,
    /// Number of mode switches the policy performed.
    pub mode_switches: usize,
}

/// Simulates `duration_s` seconds of Poisson arrivals at `lambda` req/s.
///
/// Service rates come from the calibrated system model: HA mode serves at
/// the collective rate on one logical server; HT mode serves with two
/// servers at the Master/Worker standalone rates.
///
/// # Panics
///
/// Panics if `lambda <= 0` or `duration_s <= 0`.
pub fn simulate(
    system: &SystemModel,
    policy: Policy,
    lambda: f64,
    duration_s: f64,
    seed: u64,
) -> SimReport {
    assert!(lambda > 0.0, "non-positive arrival rate");
    assert!(duration_s > 0.0, "non-positive duration");
    let ha_latency = 1.0
        / system
            .evaluate(ModelFamily::Fluid, DeviceAvailability::Both, false)
            .throughput_ips;
    let master_latency = 1.0
        / system
            .evaluate(ModelFamily::Fluid, DeviceAvailability::OnlyMaster, false)
            .throughput_ips;
    let worker_latency = 1.0
        / system
            .evaluate(ModelFamily::Fluid, DeviceAvailability::OnlyWorker, false)
            .throughput_ips;

    let mut rng = Prng::new(seed);
    // Pre-draw the arrival process.
    let mut arrivals = Vec::new();
    let mut t = 0.0f64;
    loop {
        // Exponential inter-arrival.
        t += -(1.0 - rng.next_f64()).ln() / lambda;
        if t > duration_s {
            break;
        }
        arrivals.push(t);
    }

    let mut queue: VecDeque<f64> = VecDeque::new(); // arrival stamps
    let mut next_arrival = 0usize;
    let mut now = 0.0f64;
    // Server busy-until times: in HA mode only server 0 is used.
    let mut busy_until = [0.0f64; 2];
    let mut ht_mode = matches!(policy, Policy::AlwaysHt);
    let mut sojourns = SampleWindow::new();
    let mut ha_count = 0usize;
    let mut switches = 0usize;

    loop {
        // Next event: arrival or a server becoming free with work queued.
        let arrival_t = arrivals.get(next_arrival).copied().unwrap_or(f64::INFINITY);
        if arrival_t == f64::INFINITY && queue.is_empty() {
            break;
        }
        // Admit all arrivals up to the time we can next serve.
        let serve_t = if queue.is_empty() {
            arrival_t
        } else {
            let earliest_server = if ht_mode {
                busy_until[0].min(busy_until[1])
            } else {
                busy_until[0]
            };
            earliest_server.max(now)
        };
        if arrival_t <= serve_t {
            queue.push_back(arrival_t);
            now = now.max(arrival_t);
            next_arrival += 1;
        } else {
            // Serve one request.
            let arrived = queue.pop_front().expect("non-empty queue");
            now = serve_t;
            let (server, latency) = if ht_mode {
                if busy_until[0] <= busy_until[1] {
                    (0, master_latency)
                } else {
                    (1, worker_latency)
                }
            } else {
                (0, ha_latency)
            };
            let start = now.max(busy_until[server]);
            let done = start + latency;
            busy_until[server] = done;
            sojourns.push(done - arrived);
            if !ht_mode {
                ha_count += 1;
            }
        }
        // Apply the switching policy on the current backlog.
        if let Policy::Adaptive { hi, lo } = policy {
            if !ht_mode && queue.len() >= hi {
                ht_mode = true;
                switches += 1;
            } else if ht_mode && queue.len() <= lo {
                ht_mode = false;
                switches += 1;
                // Collapse to the single logical server.
                busy_until[0] = busy_until[0].max(busy_until[1]);
            }
        }
    }

    let completed = sojourns.len();
    let mean = sojourns.mean();
    let p95 = sojourns.percentile(0.95);
    let last_done = busy_until[0].max(busy_until[1]).max(now);
    SimReport {
        completed,
        mean_sojourn_s: mean,
        p95_sojourn_s: p95,
        throughput_ips: if last_done > 0.0 {
            completed as f64 / last_done
        } else {
            0.0
        },
        ha_fraction: if completed == 0 {
            0.0
        } else {
            ha_count as f64 / completed as f64
        },
        mode_switches: switches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemModel {
        SystemModel::paper_testbed()
    }

    #[test]
    fn light_load_ha_keeps_up() {
        // λ = 5 req/s against ~12 img/s HA capacity: stable queue.
        let r = simulate(&sys(), Policy::AlwaysHa, 5.0, 60.0, 1);
        assert!(r.completed > 200);
        assert!(r.mean_sojourn_s < 0.5, "mean sojourn {}", r.mean_sojourn_s);
        assert!((r.ha_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overload_ha_queue_explodes_ht_does_not() {
        // λ = 20 req/s exceeds HA capacity (~12) but not HT (~28).
        let ha = simulate(&sys(), Policy::AlwaysHa, 20.0, 60.0, 2);
        let ht = simulate(&sys(), Policy::AlwaysHt, 20.0, 60.0, 2);
        assert!(
            ha.p95_sojourn_s > 5.0 * ht.p95_sojourn_s,
            "HA p95 {} vs HT p95 {}",
            ha.p95_sojourn_s,
            ht.p95_sojourn_s
        );
        assert!(ht.throughput_ips > 19.0);
    }

    #[test]
    fn adaptive_policy_tracks_load() {
        // Under overload the adaptive policy must serve mostly in HT and
        // keep latency near the HT baseline while still taking HA requests
        // when the queue drains.
        let adaptive = simulate(&sys(), Policy::Adaptive { hi: 8, lo: 1 }, 20.0, 60.0, 3);
        let ht = simulate(&sys(), Policy::AlwaysHt, 20.0, 60.0, 3);
        assert!(adaptive.mode_switches > 0);
        assert!(adaptive.ha_fraction > 0.0 && adaptive.ha_fraction < 1.0);
        assert!(
            adaptive.p95_sojourn_s < 4.0 * ht.p95_sojourn_s,
            "adaptive p95 {} vs HT {}",
            adaptive.p95_sojourn_s,
            ht.p95_sojourn_s
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate(&sys(), Policy::AlwaysHa, 8.0, 30.0, 9);
        let b = simulate(&sys(), Policy::AlwaysHa, 8.0, 30.0, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-positive arrival rate")]
    fn zero_lambda_panics() {
        let _ = simulate(&sys(), Policy::AlwaysHa, 0.0, 1.0, 0);
    }

    #[test]
    fn empty_window_percentiles_are_zero() {
        // A measurement window that saw no completions must report zeros,
        // not NaN or a panic — live serving metrics snapshot whenever asked.
        let mut w = SampleWindow::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.max(), 0.0);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(w.percentile(q), 0.0, "q={q}");
        }
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn single_sample_window_reports_that_sample_everywhere() {
        let mut w = SampleWindow::new();
        w.push(3.25);
        assert_eq!(w.len(), 1);
        assert_eq!(w.mean(), 3.25);
        assert_eq!(w.max(), 3.25);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(w.percentile(q), 3.25, "q={q}");
        }
    }

    #[test]
    fn percentile_is_nearest_rank_and_clamps_q() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&sorted, 0.0), 10.0);
        assert_eq!(percentile(&sorted, 1.0), 40.0);
        // round(0.5 * 3) = 2 → 30.0 (nearest rank, not interpolation).
        assert_eq!(percentile(&sorted, 0.5), 30.0);
        // Out-of-range q is clamped, never an index panic.
        assert_eq!(percentile(&sorted, -1.0), 10.0);
        assert_eq!(percentile(&sorted, 7.0), 40.0);
    }

    #[test]
    fn max_of_all_negative_window_is_a_member() {
        // "any scalar" means negatives too: max must come from the window,
        // never from a 0.0 fold seed.
        let mut w = SampleWindow::new();
        w.push(-5.0);
        w.push(-2.0);
        assert_eq!(w.max(), -2.0);
    }

    #[test]
    fn window_sorts_lazily_and_clear_resets() {
        let mut w = SampleWindow::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            w.push(v);
        }
        assert_eq!(w.percentile(0.0), 1.0);
        assert_eq!(w.percentile(1.0), 5.0);
        // Pushing after a sort re-dirties the window.
        w.push(0.5);
        assert_eq!(w.percentile(0.0), 0.5);
        w.clear();
        assert_eq!(w.percentile(0.95), 0.0);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn simulator_percentiles_match_the_shared_helper() {
        // The refactored simulate() must agree with a hand computation via
        // the public helper on the same sojourn distribution.
        let r = simulate(&sys(), Policy::AlwaysHa, 8.0, 30.0, 9);
        assert!(r.p95_sojourn_s >= r.mean_sojourn_s * 0.5);
        assert!(r.p95_sojourn_s.is_finite() && r.p95_sojourn_s > 0.0);
    }
}
