//! Communication latency model.

use std::time::Duration;

/// TCP-link model: `latency = messages × setup + bytes / bandwidth`.
///
/// The paper measures communication latency offline and adds it to compute
/// latency; this model plays that offline measurement's role. The preset is
/// calibrated so the distributed Static DNN lands at the paper's
/// 11.1 img/s given the device presets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommModel {
    per_message: Duration,
    bytes_per_sec: f64,
}

impl CommModel {
    /// Creates a communication model.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not positive.
    pub fn new(per_message: Duration, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "non-positive bandwidth");
        Self {
            per_message,
            bytes_per_sec,
        }
    }

    /// Calibrated embedded-Ethernet preset: ≈ 4.2 ms per message setup,
    /// 10 MB/s effective bandwidth.
    pub fn jetson_tcp() -> Self {
        Self::new(Duration::from_micros(4_160), 10.0e6)
    }

    /// An ideal zero-cost link (ablation baseline).
    pub fn ideal() -> Self {
        Self::new(Duration::ZERO, f64::MAX)
    }

    /// Per-message setup latency.
    pub fn per_message(&self) -> Duration {
        self.per_message
    }

    /// Effective bandwidth.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Latency of `messages` transfers moving `bytes` in total.
    pub fn latency(&self, messages: u64, bytes: u64) -> Duration {
        self.per_message * messages as u32
            + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Returns a model with the setup latency scaled by `factor`
    /// (communication-cost sweeps).
    pub fn scaled(&self, factor: f64) -> CommModel {
        CommModel {
            per_message: Duration::from_secs_f64(self.per_message.as_secs_f64() * factor),
            bytes_per_sec: self.bytes_per_sec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_composition() {
        let c = CommModel::new(Duration::from_millis(2), 1.0e6);
        let l = c.latency(3, 500_000);
        assert_eq!(l, Duration::from_millis(6) + Duration::from_millis(500));
    }

    #[test]
    fn ideal_link_is_free() {
        let c = CommModel::ideal();
        assert_eq!(c.latency(100, u64::MAX / 2), Duration::ZERO);
    }

    #[test]
    fn scaling_multiplies_setup() {
        let c = CommModel::jetson_tcp().scaled(2.0);
        assert!((c.per_message().as_secs_f64() - 2.0 * 0.00416).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-positive bandwidth")]
    fn zero_bandwidth_panics() {
        let _ = CommModel::new(Duration::ZERO, 0.0);
    }
}
