//! Offline simulation of the serving layer's multi-tenant scheduler.
//!
//! The scheduler in `fluid-serve` admits each request through its tenant's
//! token bucket, queues it per tenant, and assembles batches by weighted
//! deficit round robin with interactive tenants boarding first. Before
//! trusting quota/weight knobs in production — and to sanity-check the
//! live fairness suite — this module replays the same decision rules
//! against a discrete-event queueing model: per-tenant Poisson arrivals
//! hit per-tenant queues behind a pool of identical servers, and each
//! freed server pulls a batch under the chosen [`TenantDiscipline`]. The
//! report says what each tenant *saw* (sojourn percentiles, quota
//! refusals, capacity sheds), so disciplines can be ranked offline the
//! same way the live loadgen ranks them.

use crate::queueing::SampleWindow;
use fluid_tensor::Prng;
use std::collections::VecDeque;

/// How the simulated front-end picks the next batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantDiscipline {
    /// One global FIFO across tenants — the pre-tenancy scheduler. A
    /// flooding tenant's backlog delays everyone behind it.
    GlobalFifo,
    /// Weighted deficit round robin over per-tenant queues, interactive
    /// tenants first — the live scheduler's assembly rule.
    WeightedDrr,
}

/// One simulated tenant: its scheduling policy and its offered load.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTenant {
    /// Display name for the report row.
    pub name: String,
    /// Interactive tenants board a forming batch before batch-class ones
    /// under [`TenantDiscipline::WeightedDrr`].
    pub interactive: bool,
    /// DRR weight (requests of credit per assembly round).
    pub weight: u32,
    /// Token-bucket sustained admission rate, requests/s
    /// (`f64::INFINITY` = unmetered).
    pub rate: f64,
    /// Token-bucket burst allowance, requests.
    pub burst: f64,
    /// Poisson arrival rate of this tenant's offered load, requests/s.
    pub lambda: f64,
}

impl SimTenant {
    /// An unmetered tenant with weight 1 offering `lambda` req/s.
    pub fn new(name: &str, interactive: bool, lambda: f64) -> SimTenant {
        SimTenant {
            name: name.to_string(),
            interactive,
            weight: 1,
            rate: f64::INFINITY,
            burst: f64::INFINITY,
            lambda,
        }
    }
}

/// What one tenant observed in a [`simulate_tenants`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSimRow {
    /// The tenant's name.
    pub name: String,
    /// Requests served.
    pub completed: usize,
    /// Requests refused by the tenant's own token bucket.
    pub quota_rejected: usize,
    /// Requests shed by the shared queue capacity.
    pub shed: usize,
    /// Mean sojourn (queueing + service), seconds, over completions.
    pub mean_sojourn_s: f64,
    /// 95th-percentile sojourn, seconds.
    pub p95_sojourn_s: f64,
}

/// Result of one [`simulate_tenants`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSimReport {
    /// Per-tenant rows, in the order the tenants were given.
    pub tenants: Vec<TenantSimRow>,
    /// Total requests served across tenants.
    pub completed: usize,
    /// Completions per second of simulated time.
    pub throughput_rps: f64,
}

/// Simulates `duration_s` seconds of multi-tenant serving: each tenant
/// offers Poisson arrivals at its `lambda`, admission charges its token
/// bucket and the shared `queue_cap`, and every time a server frees up it
/// assembles a batch of up to `max_batch` queued requests under
/// `discipline`. A batch of `b` requests occupies its server for
/// `batch_overhead_s + b * service_s` (the overhead is what makes
/// batching worthwhile, exactly as on the live path).
///
/// Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if `tenants` is empty, any `lambda` is negative, any `weight`
/// is zero, any `rate`/`burst` is non-positive, or `servers`,
/// `max_batch`, `queue_cap`, `service_s`, or `duration_s` is
/// zero/non-positive.
#[allow(clippy::too_many_arguments)]
pub fn simulate_tenants(
    service_s: f64,
    batch_overhead_s: f64,
    servers: usize,
    max_batch: usize,
    queue_cap: usize,
    discipline: TenantDiscipline,
    tenants: &[SimTenant],
    duration_s: f64,
    seed: u64,
) -> TenantSimReport {
    assert!(!tenants.is_empty(), "no tenants");
    assert!(service_s > 0.0, "non-positive service time");
    assert!(batch_overhead_s >= 0.0, "negative batch overhead");
    assert!(servers >= 1, "no servers");
    assert!(max_batch >= 1, "zero max_batch");
    assert!(queue_cap >= 1, "zero queue_cap");
    assert!(duration_s > 0.0, "non-positive duration");
    for t in tenants {
        assert!(t.lambda >= 0.0, "negative arrival rate");
        assert!(t.weight >= 1, "zero weight");
        assert!(t.rate > 0.0, "non-positive quota rate");
        assert!(t.burst >= 1.0, "burst below one request");
    }
    let n = tenants.len();

    // Pre-draw every tenant's arrival process, then merge to one timeline.
    let mut rng = Prng::new(seed);
    let mut arrivals: Vec<(f64, usize)> = Vec::new();
    for (i, tenant) in tenants.iter().enumerate() {
        if tenant.lambda <= 0.0 {
            continue;
        }
        let mut t = 0.0f64;
        loop {
            t += -(1.0 - rng.next_f64()).ln() / tenant.lambda;
            if t > duration_s {
                break;
            }
            arrivals.push((t, i));
        }
    }
    arrivals.sort_by(|a, b| a.0.total_cmp(&b.0));

    // Interactive-first assembly ring, mirroring the live scheduler.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| u8::from(!tenants[i].interactive));

    let mut queues: Vec<VecDeque<f64>> = (0..n).map(|_| VecDeque::new()).collect();
    let mut tokens: Vec<f64> = tenants.iter().map(|t| t.burst).collect();
    let mut refilled_at: Vec<f64> = vec![0.0; n];
    let mut deficits: Vec<u64> = vec![0; n];
    let mut cursor = 0usize;
    let mut servers_busy: Vec<f64> = vec![0.0; servers]; // busy-until stamps
    let mut sojourns: Vec<SampleWindow> = (0..n).map(|_| SampleWindow::new()).collect();
    let mut quota_rejected = vec![0usize; n];
    let mut shed = vec![0usize; n];
    let mut queued_total = 0usize;
    let mut last_done = 0.0f64;
    let mut ai = 0usize;

    loop {
        let arrival = arrivals.get(ai).copied();
        // Work-conserving: a freed server immediately takes whatever is
        // queued (a batch starts no earlier than its latest member's
        // arrival, handled at dispatch below).
        let serve_t = if queued_total == 0 {
            f64::INFINITY
        } else {
            servers_busy.iter().copied().fold(f64::INFINITY, f64::min)
        };
        match arrival {
            None if queued_total == 0 => break,
            Some((at, tenant)) if at <= serve_t => {
                ai += 1;
                // Refill-on-access token bucket, same rule as the live one.
                let t = &tenants[tenant];
                if t.rate.is_finite() {
                    let dt = at - refilled_at[tenant];
                    tokens[tenant] = t.burst.min(tokens[tenant] + dt * t.rate);
                    refilled_at[tenant] = at;
                    if tokens[tenant] < 1.0 {
                        quota_rejected[tenant] += 1;
                        continue;
                    }
                    tokens[tenant] -= 1.0;
                }
                if queued_total >= queue_cap {
                    shed[tenant] += 1;
                    continue;
                }
                queues[tenant].push_back(at);
                queued_total += 1;
            }
            _ => {
                // A server frees: assemble one batch under the discipline.
                let (slot, _) = servers_busy
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .expect("pool is never empty");
                let now = servers_busy[slot];
                let mut batch: Vec<(usize, f64)> = Vec::new();
                match discipline {
                    TenantDiscipline::GlobalFifo => {
                        // Pop the globally earliest arrival, repeatedly.
                        while batch.len() < max_batch {
                            let next = (0..n)
                                .filter(|&i| !queues[i].is_empty())
                                .min_by(|&a, &b| queues[a][0].total_cmp(&queues[b][0]));
                            match next {
                                Some(i) => {
                                    batch.push((i, queues[i].pop_front().expect("non-empty")))
                                }
                                None => break,
                            }
                        }
                    }
                    TenantDiscipline::WeightedDrr => assemble_drr(
                        &mut queues,
                        &order,
                        tenants,
                        &mut deficits,
                        &mut cursor,
                        max_batch,
                        &mut batch,
                    ),
                }
                debug_assert!(!batch.is_empty(), "serve event with empty backlog");
                queued_total -= batch.len();
                let done = now.max(batch.iter().map(|&(_, a)| a).fold(0.0, f64::max))
                    + batch_overhead_s
                    + batch.len() as f64 * service_s;
                servers_busy[slot] = done;
                last_done = last_done.max(done);
                for (tenant, arrived) in batch {
                    sojourns[tenant].push(done - arrived);
                }
            }
        }
    }

    let rows: Vec<TenantSimRow> = tenants
        .iter()
        .enumerate()
        .map(|(i, t)| TenantSimRow {
            name: t.name.clone(),
            completed: sojourns[i].len(),
            quota_rejected: quota_rejected[i],
            shed: shed[i],
            mean_sojourn_s: sojourns[i].mean(),
            p95_sojourn_s: sojourns[i].percentile(0.95),
        })
        .collect();
    let completed = rows.iter().map(|r| r.completed).sum();
    TenantSimReport {
        tenants: rows,
        completed,
        throughput_rps: if last_done > 0.0 {
            completed as f64 / last_done
        } else {
            0.0
        },
    }
}

/// The live scheduler's DRR assembly rule specialised to one-row
/// requests: per round each non-empty queue earns `weight` credit, pops
/// while it has credit, and an empty queue forfeits its deficit.
fn assemble_drr(
    queues: &mut [VecDeque<f64>],
    order: &[usize],
    tenants: &[SimTenant],
    deficits: &mut [u64],
    cursor: &mut usize,
    max_batch: usize,
    out: &mut Vec<(usize, f64)>,
) {
    let n = order.len();
    loop {
        let mut popped = false;
        for k in 0..n {
            let idx = (*cursor + k) % n;
            let slot = order[idx];
            if queues[slot].is_empty() {
                deficits[slot] = 0;
                continue;
            }
            deficits[slot] = deficits[slot].saturating_add(u64::from(tenants[slot].weight));
            while deficits[slot] >= 1 && !queues[slot].is_empty() {
                if out.len() >= max_batch {
                    // Capacity cut this queue short: it opens the next
                    // batch, exactly like the live cursor rule.
                    *cursor = idx;
                    return;
                }
                deficits[slot] -= 1;
                out.push((slot, queues[slot].pop_front().expect("non-empty")));
                popped = true;
            }
            if queues[slot].is_empty() {
                deficits[slot] = 0;
            }
        }
        if out.len() >= max_batch || (!popped && !out.is_empty()) {
            return;
        }
        if !popped && queues.iter().all(VecDeque::is_empty) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 5ms per row, 2ms per batch: one server sustains ~140 rows/s at
    /// batch 8.
    const SERVICE_S: f64 = 0.005;
    const OVERHEAD_S: f64 = 0.002;

    fn run(discipline: TenantDiscipline, tenants: &[SimTenant]) -> TenantSimReport {
        simulate_tenants(
            SERVICE_S, OVERHEAD_S, 1, 8, 64, discipline, tenants, 10.0, 42,
        )
    }

    #[test]
    fn drr_protects_interactive_p95_from_a_flood() {
        // A polite interactive tenant next to a 10× batch flood. Under
        // global FIFO the interactive tenant waits behind the flood's
        // backlog; under DRR it boards every batch.
        let tenants = [
            SimTenant::new("web", true, 20.0),
            SimTenant::new("etl", false, 200.0),
        ];
        let fifo = run(TenantDiscipline::GlobalFifo, &tenants);
        let drr = run(TenantDiscipline::WeightedDrr, &tenants);
        let (f_web, d_web) = (&fifo.tenants[0], &drr.tenants[0]);
        assert!(
            d_web.p95_sojourn_s < f_web.p95_sojourn_s / 2.0,
            "DRR web p95 {} vs FIFO {}",
            d_web.p95_sojourn_s,
            f_web.p95_sojourn_s
        );
        // The flood still gets served — fairness, not starvation.
        assert!(drr.tenants[1].completed > 0);
    }

    #[test]
    fn weights_drain_a_shared_burst_proportionally() {
        // Both tenants dump ~100-request bursts in the first 100ms; the
        // weight-3 tenant drains ~3 rows for every 1 of its rival's, so
        // its backlog clears far sooner and its sojourns stay far lower.
        let mut a = SimTenant::new("a", false, 1000.0);
        a.weight = 3;
        let b = SimTenant::new("b", false, 1000.0);
        let r = simulate_tenants(
            SERVICE_S,
            OVERHEAD_S,
            1,
            8,
            512,
            TenantDiscipline::WeightedDrr,
            &[a, b],
            0.1,
            7,
        );
        assert_eq!(r.tenants[0].shed + r.tenants[1].shed, 0, "{r:?}");
        assert!(r.tenants[0].completed > 50, "{r:?}");
        assert!(
            r.tenants[0].mean_sojourn_s * 1.8 < r.tenants[1].mean_sojourn_s,
            "weight 3 did not drain faster: a {} vs b {} ({r:?})",
            r.tenants[0].mean_sojourn_s,
            r.tenants[1].mean_sojourn_s
        );
    }

    #[test]
    fn quota_clips_a_tenant_without_touching_the_other() {
        let mut metered = SimTenant::new("metered", false, 100.0);
        metered.rate = 10.0;
        metered.burst = 5.0;
        let free = SimTenant::new("free", false, 20.0);
        let r = run(TenantDiscipline::WeightedDrr, &[metered, free]);
        assert!(r.tenants[0].quota_rejected > 0, "{r:?}");
        assert_eq!(r.tenants[1].quota_rejected, 0);
        assert!(
            r.tenants[0].completed as f64 <= 10.0 * 10.0 + 5.0 + 1.0,
            "metered tenant served past its quota: {r:?}"
        );
    }

    #[test]
    fn zero_lambda_tenant_is_an_empty_row() {
        let tenants = [
            SimTenant::new("busy", false, 50.0),
            SimTenant::new("idle", true, 0.0),
        ];
        let r = run(TenantDiscipline::WeightedDrr, &tenants);
        assert!(r.tenants[0].completed > 0);
        assert_eq!(r.tenants[1].completed, 0);
        assert_eq!(r.tenants[1].quota_rejected, 0);
        assert_eq!(r.tenants[1].shed, 0);
    }

    #[test]
    fn work_is_conserved_across_disciplines() {
        // Same arrivals (same seed), no quota, ample cap: both
        // disciplines must serve every request — they only reorder.
        let tenants = [
            SimTenant::new("x", true, 30.0),
            SimTenant::new("y", false, 60.0),
        ];
        let fifo = run(TenantDiscipline::GlobalFifo, &tenants);
        let drr = run(TenantDiscipline::WeightedDrr, &tenants);
        assert_eq!(fifo.completed, drr.completed, "{fifo:?} vs {drr:?}");
        for (f, d) in fifo.tenants.iter().zip(&drr.tenants) {
            assert_eq!(f.completed, d.completed);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let tenants = [
            SimTenant::new("p", true, 40.0),
            SimTenant::new("q", false, 80.0),
        ];
        let a = run(TenantDiscipline::WeightedDrr, &tenants);
        let b = run(TenantDiscipline::WeightedDrr, &tenants);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "no tenants")]
    fn empty_tenant_table_panics() {
        let _ = simulate_tenants(
            SERVICE_S,
            OVERHEAD_S,
            1,
            8,
            64,
            TenantDiscipline::WeightedDrr,
            &[],
            1.0,
            0,
        );
    }
}
