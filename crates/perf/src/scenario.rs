//! Scenario evaluation: the paper's Fig. 2 throughput bars, derived from
//! connectivity classes.

use crate::comm::CommModel;
use crate::device::DeviceModel;
use fluid_models::{branch_cost, static_partition_comm_bytes, Arch, BranchSpec};
use fluid_nn::ChannelRange;
use std::time::Duration;

/// The three model families the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Dense CNN (distribution requires per-layer activation exchange).
    Static,
    /// Slimmable CNN with triangular containment (ref \[3\]).
    Dynamic,
    /// Fluid DyDNN with block structure (this paper).
    Fluid,
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelFamily::Static => write!(f, "Static"),
            ModelFamily::Dynamic => write!(f, "Dynamic"),
            ModelFamily::Fluid => write!(f, "Fluid"),
        }
    }
}

/// Which devices are online.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceAvailability {
    /// Both devices operational.
    Both,
    /// The Worker has failed.
    OnlyMaster,
    /// The Master has failed.
    OnlyWorker,
}

impl std::fmt::Display for DeviceAvailability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceAvailability::Both => write!(f, "Master & Worker"),
            DeviceAvailability::OnlyMaster => write!(f, "Only Master"),
            DeviceAvailability::OnlyWorker => write!(f, "Only Worker"),
        }
    }
}

/// Result of evaluating one deployment scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario label (e.g. `"Fluid HT, Master & Worker"`).
    pub label: String,
    /// System throughput in images/s (0 when the system cannot operate).
    pub throughput_ips: f64,
    /// Per-image latency, `None` when the system cannot operate.
    pub latency: Option<Duration>,
}

impl ScenarioResult {
    fn dead(label: String) -> Self {
        Self {
            label,
            throughput_ips: 0.0,
            latency: None,
        }
    }

    fn from_latency(label: String, lat: Duration) -> Self {
        Self {
            label,
            throughput_ips: 1.0 / lat.as_secs_f64(),
            latency: Some(lat),
        }
    }
}

/// One row of the Fig. 2 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Row {
    /// Model family.
    pub family: ModelFamily,
    /// Execution-mode label (`"HA"`, `"HT"`, or `"-"` for Static).
    pub mode: &'static str,
    /// Device availability.
    pub availability: DeviceAvailability,
    /// Modelled throughput.
    pub throughput_ips: f64,
    /// Paper-reported throughput for comparison (img/s).
    pub paper_ips: f64,
}

/// The two-device system: Master + Worker devices, a link, and the model
/// architecture whose sub-network MAC counts drive everything.
#[derive(Debug, Clone)]
pub struct SystemModel {
    master: DeviceModel,
    worker: DeviceModel,
    comm: CommModel,
    arch: Arch,
}

impl SystemModel {
    /// Creates a system model.
    pub fn new(master: DeviceModel, worker: DeviceModel, comm: CommModel, arch: Arch) -> Self {
        Self {
            master,
            worker,
            comm,
            arch,
        }
    }

    /// The calibrated paper testbed: two Jetson-class CPUs over TCP running
    /// the paper architecture.
    pub fn paper_testbed() -> Self {
        Self::new(
            DeviceModel::jetson_master(),
            DeviceModel::jetson_worker(),
            CommModel::jetson_tcp(),
            Arch::paper(),
        )
    }

    /// The architecture in use.
    pub fn arch(&self) -> &Arch {
        &self.arch
    }

    /// Replaces the link model (communication sweeps).
    pub fn with_comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// MACs of a block branch covering `range` at every stage.
    fn block_macs(&self, range: ChannelRange) -> u64 {
        let b = BranchSpec::uniform("b", range, self.arch.conv_stages, true);
        branch_cost(&self.arch, &b).macs
    }

    /// MACs per device for the dense model split by output channels: each
    /// device computes half the outputs but reads *all* inputs.
    fn dense_half_macs(&self) -> u64 {
        let kk = (self.arch.kernel * self.arch.kernel) as u64;
        let max = self.arch.ladder.max() as u64;
        let half = max / 2;
        let mut macs = 0u64;
        for stage in 0..self.arch.conv_stages {
            let in_full = if stage == 0 {
                self.arch.image_channels as u64
            } else {
                max
            };
            let side = self.arch.side_after(stage) as u64;
            macs += half * in_full * kk * side * side;
        }
        // FC as column partials over the device's half of the features.
        macs += (self.arch.fc_in_max() as u64 / 2) * self.arch.classes as u64;
        macs
    }

    fn lower50(&self) -> ChannelRange {
        ChannelRange::new(0, self.arch.ladder.half())
    }

    fn upper50(&self) -> ChannelRange {
        ChannelRange::new(self.arch.ladder.half(), self.arch.ladder.max())
    }

    /// Latency of the dense model distributed across both devices:
    /// parallel halves + per-layer activation exchange.
    fn dense_distributed_latency(&self) -> Duration {
        let macs = self.dense_half_macs();
        let compute = self.master.latency(macs).max(self.worker.latency(macs));
        let messages = self.arch.conv_stages as u64; // (stages-1) exchanges + logit merge
        let bytes = static_partition_comm_bytes(&self.arch);
        compute + self.comm.latency(messages, bytes)
    }

    /// Fluid High-Accuracy latency: ship the input, run both branches in
    /// parallel, return the partial logits.
    fn fluid_ha_latency(&self) -> Duration {
        let m = self.master.latency(self.block_macs(self.lower50()));
        let w = self.worker.latency(self.block_macs(self.upper50()));
        let input_bytes =
            (self.arch.image_channels * self.arch.image_side * self.arch.image_side * 4) as u64;
        let logits_bytes = (self.arch.classes * 4) as u64;
        self.comm.latency(2, input_bytes + logits_bytes) + m.max(w)
    }

    /// Evaluates one (family, availability, mode) cell. `ht` selects
    /// High-Throughput for the adaptive families; Static has no modes.
    pub fn evaluate(
        &self,
        family: ModelFamily,
        availability: DeviceAvailability,
        ht: bool,
    ) -> ScenarioResult {
        let mode = if matches!(family, ModelFamily::Static) {
            "-"
        } else if ht {
            "HT"
        } else {
            "HA"
        };
        let label = format!("{family} {mode}, {availability}");
        match (family, availability) {
            // --- Static: dense split; any failure is fatal. -------------
            (ModelFamily::Static, DeviceAvailability::Both) => {
                ScenarioResult::from_latency(label, self.dense_distributed_latency())
            }
            (ModelFamily::Static, _) => ScenarioResult::dead(label),

            // --- Dynamic: prefix sub-networks on the Master only. -------
            (ModelFamily::Dynamic, DeviceAvailability::Both) => {
                if ht {
                    // 50% model on the Master; the Worker's triangular
                    // upper weights cannot run independently, so it idles.
                    let lat = self.master.latency(self.block_macs(self.lower50()));
                    ScenarioResult::from_latency(label, lat)
                } else {
                    // Full model distributed; same exchange pattern as the
                    // dense split (upper groups read all lower channels).
                    ScenarioResult::from_latency(label, self.dense_distributed_latency())
                }
            }
            (ModelFamily::Dynamic, DeviceAvailability::OnlyMaster) => {
                let lat = self.master.latency(self.block_macs(self.lower50()));
                ScenarioResult::from_latency(label, lat)
            }
            (ModelFamily::Dynamic, DeviceAvailability::OnlyWorker) => ScenarioResult::dead(label),

            // --- Fluid: every block is standalone. ----------------------
            (ModelFamily::Fluid, DeviceAvailability::Both) => {
                if ht {
                    let m = self.master.throughput(self.block_macs(self.lower50()));
                    let w = self.worker.throughput(self.block_macs(self.upper50()));
                    ScenarioResult {
                        label,
                        throughput_ips: m + w,
                        latency: None, // two independent streams
                    }
                } else {
                    ScenarioResult::from_latency(label, self.fluid_ha_latency())
                }
            }
            (ModelFamily::Fluid, DeviceAvailability::OnlyMaster) => {
                let lat = self.master.latency(self.block_macs(self.lower50()));
                ScenarioResult::from_latency(label, lat)
            }
            (ModelFamily::Fluid, DeviceAvailability::OnlyWorker) => {
                let lat = self.worker.latency(self.block_macs(self.upper50()));
                ScenarioResult::from_latency(label, lat)
            }
        }
    }

    /// Produces every bar of the paper's Fig. 2 throughput panel, with the
    /// paper's reported values attached for comparison.
    pub fn fig2_table(&self) -> Vec<Fig2Row> {
        use DeviceAvailability::*;
        use ModelFamily::*;
        let cells: [(ModelFamily, &'static str, bool, DeviceAvailability, f64); 10] = [
            (Static, "-", false, Both, 11.1),
            (Static, "-", false, OnlyMaster, 0.0),
            (Static, "-", false, OnlyWorker, 0.0),
            (Dynamic, "HA", false, Both, 11.1),
            (Dynamic, "HT", true, Both, 14.4),
            (Dynamic, "-", false, OnlyMaster, 14.4),
            (Dynamic, "-", false, OnlyWorker, 0.0),
            (Fluid, "HA", false, Both, 11.1),
            (Fluid, "HT", true, Both, 28.3),
            (Fluid, "-", false, OnlyMaster, 14.4),
        ];
        let mut rows: Vec<Fig2Row> = cells
            .iter()
            .map(|&(family, mode, ht, availability, paper_ips)| Fig2Row {
                family,
                mode,
                availability,
                throughput_ips: self.evaluate(family, availability, ht).throughput_ips,
                paper_ips,
            })
            .collect();
        rows.push(Fig2Row {
            family: Fluid,
            mode: "-",
            availability: OnlyWorker,
            throughput_ips: self.evaluate(Fluid, OnlyWorker, false).throughput_ips,
            paper_ips: 13.9,
        });
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemModel {
        SystemModel::paper_testbed()
    }

    #[test]
    fn static_both_near_paper() {
        let r = sys().evaluate(ModelFamily::Static, DeviceAvailability::Both, false);
        assert!(
            (r.throughput_ips - 11.1).abs() < 1.0,
            "{}",
            r.throughput_ips
        );
    }

    #[test]
    fn static_fails_on_any_device_loss() {
        for avail in [
            DeviceAvailability::OnlyMaster,
            DeviceAvailability::OnlyWorker,
        ] {
            let r = sys().evaluate(ModelFamily::Static, avail, false);
            assert_eq!(r.throughput_ips, 0.0);
            assert!(r.latency.is_none());
        }
    }

    #[test]
    fn dynamic_survives_only_master() {
        let s = sys();
        let m = s.evaluate(ModelFamily::Dynamic, DeviceAvailability::OnlyMaster, false);
        assert!(
            (m.throughput_ips - 14.4).abs() < 0.3,
            "{}",
            m.throughput_ips
        );
        let w = s.evaluate(ModelFamily::Dynamic, DeviceAvailability::OnlyWorker, false);
        assert_eq!(w.throughput_ips, 0.0);
    }

    #[test]
    fn fluid_survives_both_single_failures() {
        let s = sys();
        let m = s.evaluate(ModelFamily::Fluid, DeviceAvailability::OnlyMaster, false);
        let w = s.evaluate(ModelFamily::Fluid, DeviceAvailability::OnlyWorker, false);
        assert!(
            (m.throughput_ips - 14.4).abs() < 0.3,
            "{}",
            m.throughput_ips
        );
        assert!(
            (w.throughput_ips - 13.9).abs() < 0.3,
            "{}",
            w.throughput_ips
        );
    }

    #[test]
    fn fluid_ht_hits_headline_ratios() {
        let s = sys();
        let fluid_ht = s
            .evaluate(ModelFamily::Fluid, DeviceAvailability::Both, true)
            .throughput_ips;
        let static_both = s
            .evaluate(ModelFamily::Static, DeviceAvailability::Both, false)
            .throughput_ips;
        let dynamic_ht = s
            .evaluate(ModelFamily::Dynamic, DeviceAvailability::Both, true)
            .throughput_ips;
        assert!((fluid_ht - 28.3).abs() < 0.5, "fluid HT {fluid_ht}");
        let vs_static = fluid_ht / static_both;
        let vs_dynamic = fluid_ht / dynamic_ht;
        assert!((2.2..=2.8).contains(&vs_static), "vs static {vs_static}");
        assert!((1.8..=2.2).contains(&vs_dynamic), "vs dynamic {vs_dynamic}");
    }

    #[test]
    fn fluid_ha_between_static_and_single_device() {
        let s = sys();
        let ha = s
            .evaluate(ModelFamily::Fluid, DeviceAvailability::Both, false)
            .throughput_ips;
        let static_both = s
            .evaluate(ModelFamily::Static, DeviceAvailability::Both, false)
            .throughput_ips;
        // HA avoids per-layer exchange, so it must beat static slightly and
        // stay below the single-device 50% rate.
        assert!(ha >= static_both, "ha {ha} vs static {static_both}");
        assert!(ha <= 14.4);
    }

    #[test]
    fn fig2_table_shape_matches_paper() {
        let rows = sys().fig2_table();
        assert_eq!(rows.len(), 11);
        for row in &rows {
            let dead_in_paper = row.paper_ips == 0.0;
            let dead_here = row.throughput_ips == 0.0;
            assert_eq!(
                dead_in_paper, dead_here,
                "capability mismatch for {} {} {}",
                row.family, row.mode, row.availability
            );
            if !dead_in_paper {
                let rel = (row.throughput_ips - row.paper_ips).abs() / row.paper_ips;
                assert!(
                    rel < 0.15,
                    "{} {} {}: {} vs paper {}",
                    row.family,
                    row.mode,
                    row.availability,
                    row.throughput_ips,
                    row.paper_ips
                );
            }
        }
    }

    #[test]
    fn ideal_link_collapses_distribution_penalty() {
        let s = sys().with_comm(CommModel::ideal());
        let static_ideal = s
            .evaluate(ModelFamily::Static, DeviceAvailability::Both, false)
            .throughput_ips;
        let static_real = sys()
            .evaluate(ModelFamily::Static, DeviceAvailability::Both, false)
            .throughput_ips;
        assert!(static_ideal > static_real);
    }
}
