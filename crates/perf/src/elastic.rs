//! Offline simulation of the serving layer's elasticity controller.
//!
//! The autoscaler in `fluid-serve` grows and shrinks a worker pool from
//! watermark rules (queue depth high-water, calm-streak scale-down,
//! cooldown between actions). Before trusting knobs in production — and
//! to choose the shipped defaults — this module replays the same decision
//! rules against a discrete-event queueing model: Poisson arrivals with a
//! piecewise-constant rate hit a pool of identical servers, and a
//! simulated controller ticks alongside, reconfiguring the pool exactly
//! as the live one would. The report says what the controller *did*
//! (scale events, peak/mean pool size) and what the clients *saw*
//! (sojourn percentiles, throughput).

use crate::queueing::SampleWindow;
use fluid_tensor::Prng;
use std::collections::VecDeque;

/// The simulated controller's knobs — the same watermark rules as the
/// live `fluid_serve::AutoscaleConfig`, in simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticPolicy {
    /// Pool floor (also the starting size).
    pub min_servers: usize,
    /// Pool ceiling.
    pub max_servers: usize,
    /// Seconds between controller observations.
    pub tick_s: f64,
    /// Scale up when the queue length reaches this at a tick.
    pub up_queue_depth: usize,
    /// A tick is calm when the queue length is at or below this (1 by
    /// default, so a single in-flight request does not break a streak).
    pub down_queue_depth: usize,
    /// Consecutive calm ticks before one server is retired.
    pub idle_ticks: usize,
    /// Ticks to wait after any scale action before the next.
    pub cooldown_ticks: usize,
}

impl Default for ElasticPolicy {
    fn default() -> Self {
        Self {
            min_servers: 1,
            max_servers: 4,
            tick_s: 0.02,
            up_queue_depth: 8,
            down_queue_depth: 1,
            idle_ticks: 25,
            cooldown_ticks: 5,
        }
    }
}

/// What one [`simulate_elastic`] run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticSimReport {
    /// Requests completed.
    pub completed: usize,
    /// Mean sojourn time (queueing + service), seconds.
    pub mean_sojourn_s: f64,
    /// 95th-percentile sojourn time, seconds.
    pub p95_sojourn_s: f64,
    /// Achieved throughput over the run, requests/s.
    pub throughput_rps: f64,
    /// Servers added by the controller.
    pub scale_ups: usize,
    /// Servers retired by the controller.
    pub scale_downs: usize,
    /// Largest pool size reached.
    pub peak_servers: usize,
    /// Pool size when the run ended.
    pub final_servers: usize,
    /// Time-weighted mean pool size — the capacity (cost) actually spent.
    pub mean_servers: f64,
}

/// Simulates the controller against Poisson arrivals whose rate is
/// piecewise-constant: `phases` is a sequence of `(duration_s, lambda)`
/// segments (a `lambda` of `0.0` is a silent stretch). Each server
/// completes one request per `service_s` seconds; the pool starts at
/// `policy.min_servers`.
///
/// Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if `service_s <= 0`, `phases` is empty or contains a
/// non-positive duration or negative lambda, or the policy is inconsistent
/// (`min_servers == 0`, `max_servers < min_servers`, `tick_s <= 0`).
pub fn simulate_elastic(
    service_s: f64,
    policy: &ElasticPolicy,
    phases: &[(f64, f64)],
    seed: u64,
) -> ElasticSimReport {
    assert!(service_s > 0.0, "non-positive service time");
    assert!(!phases.is_empty(), "no arrival phases");
    assert!(policy.min_servers >= 1, "min_servers must be at least 1");
    assert!(
        policy.max_servers >= policy.min_servers,
        "max_servers below min_servers"
    );
    assert!(policy.tick_s > 0.0, "non-positive tick");

    // Pre-draw the arrival process across the phases.
    let mut rng = Prng::new(seed);
    let mut arrivals = Vec::new();
    let mut phase_start = 0.0f64;
    for &(duration, lambda) in phases {
        assert!(duration > 0.0, "non-positive phase duration");
        assert!(lambda >= 0.0, "negative arrival rate");
        if lambda > 0.0 {
            let mut t = phase_start;
            loop {
                t += -(1.0 - rng.next_f64()).ln() / lambda;
                if t > phase_start + duration {
                    break;
                }
                arrivals.push(t);
            }
        }
        phase_start += duration;
    }

    let mut queue: VecDeque<f64> = VecDeque::new();
    let mut servers: Vec<f64> = vec![0.0; policy.min_servers]; // busy-until stamps
    let mut ai = 0usize;
    let mut now = 0.0f64;
    let mut tick_i = 1u64;
    let mut sojourns = SampleWindow::new();
    let mut calm_ticks = 0usize;
    let mut cooldown = 0usize;
    let mut scale_ups = 0usize;
    let mut scale_downs = 0usize;
    let mut peak_servers = servers.len();
    let mut server_seconds = 0.0f64;
    let mut last_done = 0.0f64;

    let advance = |now: &mut f64, to: f64, pool: usize, server_seconds: &mut f64| {
        if to > *now {
            *server_seconds += pool as f64 * (to - *now);
            *now = to;
        }
    };

    let total_duration = phase_start;
    loop {
        let arrival_t = arrivals.get(ai).copied().unwrap_or(f64::INFINITY);
        let drained = arrival_t.is_infinite() && queue.is_empty();
        // The controller ticks for the whole configured timeline (so calm
        // stretches produce scale-down decisions), and past it only while
        // work remains.
        let tick_t = {
            let t = tick_i as f64 * policy.tick_s;
            if drained && t > total_duration {
                f64::INFINITY
            } else {
                t
            }
        };
        let serve_t = if queue.is_empty() {
            f64::INFINITY
        } else {
            let earliest = servers.iter().copied().fold(f64::INFINITY, f64::min);
            earliest.max(now)
        };
        if drained && serve_t.is_infinite() && tick_t.is_infinite() {
            break;
        }

        if serve_t <= arrival_t && serve_t <= tick_t {
            // Serve one request on the earliest-free server.
            let arrived = queue.pop_front().expect("non-empty queue");
            advance(&mut now, serve_t, servers.len(), &mut server_seconds);
            let (slot, _) = servers
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("pool is never empty");
            let start = servers[slot].max(now);
            let done = start + service_s;
            servers[slot] = done;
            last_done = last_done.max(done);
            sojourns.push(done - arrived);
        } else if arrival_t <= tick_t {
            advance(&mut now, arrival_t, servers.len(), &mut server_seconds);
            queue.push_back(arrival_t);
            ai += 1;
        } else {
            advance(&mut now, tick_t, servers.len(), &mut server_seconds);
            tick_i += 1;
            // The live controller's decision rules, verbatim.
            if cooldown > 0 {
                cooldown -= 1;
            } else if queue.len() >= policy.up_queue_depth {
                calm_ticks = 0;
                if servers.len() < policy.max_servers {
                    servers.push(now); // fresh server, free from `now`
                    scale_ups += 1;
                    cooldown = policy.cooldown_ticks;
                    peak_servers = peak_servers.max(servers.len());
                }
            } else if queue.len() <= policy.down_queue_depth {
                calm_ticks += 1;
                if calm_ticks >= policy.idle_ticks && servers.len() > policy.min_servers {
                    // Retire the idlest server (the live drain protocol
                    // lets its in-flight work finish, which this model's
                    // dispatch-time completion already accounts for).
                    let (slot, _) = servers
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.total_cmp(b.1))
                        .expect("pool is never empty");
                    servers.remove(slot);
                    scale_downs += 1;
                    cooldown = policy.cooldown_ticks;
                    calm_ticks = 0;
                }
            } else {
                calm_ticks = 0;
            }
        }
    }

    let completed = sojourns.len();
    let end = last_done.max(now);
    ElasticSimReport {
        completed,
        mean_sojourn_s: sojourns.mean(),
        p95_sojourn_s: sojourns.percentile(0.95),
        throughput_rps: if end > 0.0 {
            completed as f64 / end
        } else {
            0.0
        },
        scale_ups,
        scale_downs,
        peak_servers,
        final_servers: servers.len(),
        mean_servers: if now > 0.0 {
            server_seconds / now
        } else {
            servers.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 25ms service → one server sustains 40 req/s.
    const SERVICE_S: f64 = 0.025;

    #[test]
    fn ramp_overload_grows_the_pool_and_recovers_p95() {
        let policy = ElasticPolicy::default();
        // Phase 2 offers 3× one server's capacity.
        let phases = [(2.0, 10.0), (4.0, 120.0), (2.0, 10.0)];
        let elastic = simulate_elastic(SERVICE_S, &policy, &phases, 7);
        assert!(elastic.scale_ups >= 1, "{elastic:?}");
        assert!(elastic.peak_servers > 1, "{elastic:?}");

        let mut fixed = policy.clone();
        fixed.max_servers = 1;
        let pinned = simulate_elastic(SERVICE_S, &fixed, &phases, 7);
        assert_eq!(pinned.peak_servers, 1);
        assert!(
            elastic.p95_sojourn_s < pinned.p95_sojourn_s / 2.0,
            "elastic p95 {} vs pinned {}",
            elastic.p95_sojourn_s,
            pinned.p95_sojourn_s
        );
        assert_eq!(
            elastic.completed, pinned.completed,
            "work must be conserved"
        );
    }

    #[test]
    fn calm_tail_scales_back_to_min() {
        let policy = ElasticPolicy {
            idle_ticks: 10,
            ..ElasticPolicy::default()
        };
        // A burst, then a long silent stretch for the drain decisions.
        let phases = [(2.0, 120.0), (20.0, 0.0)];
        let r = simulate_elastic(SERVICE_S, &policy, &phases, 3);
        assert!(r.scale_ups >= 1, "{r:?}");
        assert!(r.scale_downs >= 1, "{r:?}");
        assert_eq!(r.final_servers, policy.min_servers, "{r:?}");
        assert!(r.mean_servers < policy.max_servers as f64);
    }

    #[test]
    fn quiet_load_never_scales() {
        let policy = ElasticPolicy::default();
        let r = simulate_elastic(SERVICE_S, &policy, &[(10.0, 5.0)], 11);
        assert_eq!(r.scale_ups, 0, "{r:?}");
        assert_eq!(r.scale_downs, 0);
        assert_eq!(r.peak_servers, 1);
        assert!(r.completed > 20);
    }

    #[test]
    fn deterministic_given_seed() {
        let policy = ElasticPolicy::default();
        let phases = [(3.0, 60.0), (3.0, 10.0)];
        let a = simulate_elastic(SERVICE_S, &policy, &phases, 42);
        let b = simulate_elastic(SERVICE_S, &policy, &phases, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn silent_timeline_completes_nothing_and_scales_nothing_up() {
        // Every phase offers zero arrivals: the controller still ticks
        // (and may scale down to min, where it already is), but nothing
        // completes and no percentile is NaN.
        let policy = ElasticPolicy::default();
        let r = simulate_elastic(SERVICE_S, &policy, &[(1.0, 0.0), (1.0, 0.0)], 5);
        assert_eq!(r.completed, 0);
        assert_eq!(r.scale_ups, 0);
        assert_eq!(r.peak_servers, policy.min_servers);
        assert_eq!(r.final_servers, policy.min_servers);
        assert_eq!(r.mean_sojourn_s, 0.0);
        assert_eq!(r.p95_sojourn_s, 0.0);
        assert_eq!(r.throughput_rps, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-positive service time")]
    fn zero_service_time_panics() {
        let _ = simulate_elastic(0.0, &ElasticPolicy::default(), &[(1.0, 1.0)], 0);
    }

    #[test]
    #[should_panic(expected = "max_servers below min_servers")]
    fn inverted_bounds_panic() {
        let p = ElasticPolicy {
            min_servers: 3,
            max_servers: 2,
            ..ElasticPolicy::default()
        };
        let _ = simulate_elastic(SERVICE_S, &p, &[(1.0, 1.0)], 0);
    }
}
