//! # fluid-perf
//!
//! Calibrated device and communication latency models, and the scenario
//! evaluator that regenerates the paper's Fig. 2 throughput panel.
//!
//! ## Methodology (the paper's own)
//!
//! The paper measures computation latency on two Jetson Xavier NX CPUs and
//! communication latency offline, then composes system throughput as the
//! sum of the two. We reproduce exactly that composition:
//!
//! * [`DeviceModel`] — per-image latency = per-image overhead +
//!   MACs / effective MAC rate. MAC counts come from
//!   [`fluid_models::branch_cost`], so the numbers are driven by the actual
//!   sub-network structure.
//! * [`CommModel`] — per-transfer latency = per-message setup +
//!   bytes / bandwidth, with message counts and byte volumes derived from
//!   each model family's connectivity class (dense / triangular / block).
//! * [`SystemModel`] — composes the two into the paper's ten bars.
//!
//! The preset constants are calibrated so the *anchor* configurations land
//! on the paper's measurements (50% sub-network on the Master ⇒
//! ≈ 14.4 img/s; distributed Static ⇒ ≈ 11.1 img/s); every other scenario
//! is then **derived**, not fitted — reproducing the paper's headline
//! ratios (HT ≈ 2.5× Static, ≈ 2× Dynamic) is a consequence of the
//! structure, which is the point of the reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comm;
mod device;
mod elastic;
mod energy;
mod queueing;
mod scenario;
mod tenants;

pub use comm::CommModel;
pub use device::DeviceModel;
pub use elastic::{simulate_elastic, ElasticPolicy, ElasticSimReport};
pub use energy::{scenario_energy, standalone_energy, EnergyReport, PowerModel};
pub use queueing::{
    percentile, simulate, simulate_cluster, ClusterScenario, ClusterSimReport, NodeOutage, Policy,
    RouterOutage, SampleWindow, SimReport,
};
pub use scenario::{DeviceAvailability, Fig2Row, ModelFamily, ScenarioResult, SystemModel};
pub use tenants::{simulate_tenants, SimTenant, TenantDiscipline, TenantSimReport, TenantSimRow};
