//! Per-device compute latency model.

use std::time::Duration;

/// A device's inference-latency model: `latency = overhead + macs / rate`.
///
/// `overhead` captures the per-image framework cost (interpreter dispatch,
/// tensor allocation, cache behaviour) that dominates tiny models on
/// embedded CPUs — which is why the paper's 50% model is nowhere near 2×
/// faster than the 100% model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    name: String,
    macs_per_sec: f64,
    overhead: Duration,
}

impl DeviceModel {
    /// Creates a device model.
    ///
    /// # Panics
    ///
    /// Panics if `macs_per_sec` is not positive.
    pub fn new(name: &str, macs_per_sec: f64, overhead: Duration) -> Self {
        assert!(macs_per_sec > 0.0, "non-positive MAC rate");
        Self {
            name: name.to_owned(),
            macs_per_sec,
            overhead,
        }
    }

    /// Calibrated Master preset (Jetson Xavier NX class CPU).
    ///
    /// Anchor: the 50% sub-network (198 288 MACs) runs at ≈ 69.4 ms/image
    /// (14.4 img/s), the paper's "Only Master" fluid measurement.
    pub fn jetson_master() -> Self {
        Self::new("jetson-master", 30.0e6, Duration::from_micros(62_834))
    }

    /// Calibrated Worker preset: the paper's Worker measures ≈ 4% slower
    /// (13.9 img/s on the upper-50% sub-network).
    pub fn jetson_worker() -> Self {
        Self::new("jetson-worker", 29.0e6, Duration::from_micros(65_105))
    }

    /// The device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Effective MAC rate.
    pub fn macs_per_sec(&self) -> f64 {
        self.macs_per_sec
    }

    /// Per-image overhead.
    pub fn overhead(&self) -> Duration {
        self.overhead
    }

    /// Latency for one image requiring `macs` multiply-accumulates.
    pub fn latency(&self, macs: u64) -> Duration {
        self.overhead + Duration::from_secs_f64(macs as f64 / self.macs_per_sec)
    }

    /// Images per second for a per-image MAC count.
    pub fn throughput(&self, macs: u64) -> f64 {
        1.0 / self.latency(macs).as_secs_f64()
    }

    /// Scales the MAC rate by `factor` (used by heterogeneity sweeps).
    pub fn scaled(&self, factor: f64) -> DeviceModel {
        DeviceModel {
            name: format!("{}x{factor:.2}", self.name),
            macs_per_sec: self.macs_per_sec * factor,
            overhead: self.overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// MACs of the paper's 50% sub-network (see `fluid_models::branch_cost`).
    const LOWER50_MACS: u64 = 198_288;

    #[test]
    fn master_anchor_matches_paper() {
        let d = DeviceModel::jetson_master();
        let ips = d.throughput(LOWER50_MACS);
        assert!((ips - 14.4).abs() < 0.2, "master 50% throughput {ips}");
    }

    #[test]
    fn worker_anchor_matches_paper() {
        let d = DeviceModel::jetson_worker();
        let ips = d.throughput(LOWER50_MACS);
        assert!((ips - 13.9).abs() < 0.2, "worker 50% throughput {ips}");
    }

    #[test]
    fn latency_monotone_in_macs() {
        let d = DeviceModel::jetson_master();
        assert!(d.latency(1_000_000) > d.latency(100_000));
    }

    #[test]
    fn overhead_dominates_tiny_models() {
        // The paper's observation: width scaling yields sub-linear speedup.
        let d = DeviceModel::jetson_master();
        let t25 = d.throughput(63_864);
        let t100 = d.throughput(678_816);
        assert!(t25 / t100 < 2.0, "25% vs 100% speedup {}", t25 / t100);
    }

    #[test]
    fn scaled_changes_rate_only() {
        let d = DeviceModel::jetson_master();
        let s = d.scaled(2.0);
        assert_eq!(s.overhead(), d.overhead());
        assert!((s.macs_per_sec() - 2.0 * d.macs_per_sec()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-positive MAC rate")]
    fn zero_rate_panics() {
        let _ = DeviceModel::new("bad", 0.0, Duration::ZERO);
    }
}
