//! The dynamic cluster harness: N announcing serve nodes behind R
//! gossip-replicated routers.
//!
//! Where [`LocalCluster`](crate::LocalCluster) wires a *static* node list
//! into one in-process router, this harness exercises the full dynamic
//! membership story: every node runs a background
//! [`Announcer`](fluid_serve::Announcer) that Joins and heartbeats every
//! router, every router runs a TCP front-end ([`route_tcp`]) plus a
//! gossip thread ([`spawn_gossip`]), and nothing is wired by hand — a
//! router learns the cluster from announcements and from its peers, and
//! clients learn to survive a router by retrying across the router list.
//! The membership drill ([`run_membership_drill`](crate::run_membership_drill))
//! runs against exactly this harness.

use crate::gossip::{spawn_gossip, GossipConfig};
use crate::node::ServeNode;
use crate::router::{route_tcp, Router, RouterConfig};
use fluid_models::{ConvNet, SubnetSpec};
use fluid_serve::{AnnounceConfig, Announcer, ServeConfig, ServeError};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One router process-in-miniature: the [`Router`] state, its TCP
/// front-end thread, and (optionally) its gossip thread, with a kill
/// switch that takes all of it down at once — the unit the membership
/// drill kills to prove router loss is invisible.
pub struct RouterNode {
    router: Router,
    addr: String,
    shutdown: Arc<AtomicBool>,
    front: Option<std::thread::JoinHandle<std::io::Result<()>>>,
    gossip: Option<std::thread::JoinHandle<()>>,
}

impl RouterNode {
    /// Spawns a router front-end on `listener`, plus a gossip thread when
    /// `gossip` is given.
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] when the listener's local address cannot
    /// be read.
    pub fn spawn_on(
        listener: TcpListener,
        router: Router,
        gossip: Option<GossipConfig>,
    ) -> Result<RouterNode, ServeError> {
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Transport(e.to_string()))?
            .to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let front = {
            let (router, shutdown) = (router.clone(), Arc::clone(&shutdown));
            std::thread::spawn(move || route_tcp(listener, router, shutdown))
        };
        let gossip = gossip.map(|cfg| spawn_gossip(router.clone(), cfg, Arc::clone(&shutdown)));
        Ok(RouterNode {
            router,
            addr,
            shutdown,
            front: Some(front),
            gossip,
        })
    }

    /// Spawns on a fresh loopback port.
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] when the port cannot be bound.
    pub fn spawn(router: Router, gossip: Option<GossipConfig>) -> Result<RouterNode, ServeError> {
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| ServeError::Transport(format!("bind router: {e}")))?;
        RouterNode::spawn_on(listener, router, gossip)
    }

    /// The router state behind this front-end (cheap clone; see
    /// [`Router`]).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The front-end's `host:port`.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the front-end is still accepting.
    pub fn is_up(&self) -> bool {
        self.front.is_some()
    }

    /// Kills the router: front-end and gossip stop, open client
    /// connections die. Idempotent. The [`Router`] state survives (it is
    /// shared), but nothing serves it anymore — from a client's point of
    /// view this router is gone.
    pub fn kill(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(front) = self.front.take() {
            let _ = front.join();
        }
        if let Some(gossip) = self.gossip.take() {
            let _ = gossip.join();
        }
    }
}

impl Drop for RouterNode {
    fn drop(&mut self) {
        self.kill();
    }
}

impl std::fmt::Debug for RouterNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterNode")
            .field("addr", &self.addr)
            .field("up", &self.is_up())
            .finish_non_exhaustive()
    }
}

/// Shape of a [`DynamicCluster`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DynamicClusterConfig {
    /// Serve nodes to boot (`node-0` …).
    pub nodes: usize,
    /// Engine workers per node.
    pub workers_per_node: usize,
    /// Routers to boot (`router-0` …), each with a TCP front-end and a
    /// gossip thread over the others.
    pub routers: usize,
    /// Per-node serving configuration.
    pub serve: ServeConfig,
    /// Router template; each router gets it with its own `id`.
    pub router: RouterConfig,
    /// Gossip cadence between routers.
    pub gossip_interval: Duration,
    /// Node heartbeat cadence.
    pub announce_interval: Duration,
    /// Seed for the routers' gossip peer-choice streams.
    pub seed: u64,
}

impl Default for DynamicClusterConfig {
    fn default() -> DynamicClusterConfig {
        DynamicClusterConfig {
            nodes: 3,
            workers_per_node: 1,
            routers: 2,
            serve: ServeConfig::default(),
            router: RouterConfig::default(),
            gossip_interval: Duration::from_millis(100),
            announce_interval: Duration::from_millis(100),
            seed: 0,
        }
    }
}

/// One announcing serve node: the node itself plus its membership
/// announcer (absent after an abrupt kill).
struct Member {
    node: ServeNode,
    announcer: Option<Announcer>,
}

/// N announcing serve nodes behind R gossip-replicated routers — the
/// dynamic-membership counterpart of [`LocalCluster`](crate::LocalCluster).
/// See the module docs for the wiring.
pub struct DynamicCluster {
    members: Vec<Member>,
    routers: Vec<RouterNode>,
    router_addrs: Vec<String>,
    net: ConvNet,
    spec: SubnetSpec,
    cfg: DynamicClusterConfig,
}

impl DynamicCluster {
    /// Boots the routers first (so nodes have someone to announce to),
    /// then the nodes with their announcers. Returns as soon as
    /// everything is *spawned*; call
    /// [`wait_converged`](DynamicCluster::wait_converged) before
    /// asserting on membership.
    ///
    /// # Errors
    ///
    /// Any bind or spawn failure aborts the boot (already-started pieces
    /// are dropped, which kills them).
    ///
    /// # Panics
    ///
    /// If the config asks for zero routers (nodes would announce into the
    /// void).
    pub fn boot(
        net: &ConvNet,
        spec: &SubnetSpec,
        cfg: DynamicClusterConfig,
    ) -> Result<DynamicCluster, ServeError> {
        assert!(cfg.routers >= 1, "a dynamic cluster needs a router");
        // Bind every router port first: gossip configs need the full
        // peer list before any router starts.
        let listeners = (0..cfg.routers)
            .map(|_| {
                TcpListener::bind("127.0.0.1:0")
                    .map_err(|e| ServeError::Transport(format!("bind router: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let router_addrs = listeners
            .iter()
            .map(|l| {
                l.local_addr()
                    .map(|a| a.to_string())
                    .map_err(|e| ServeError::Transport(e.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let routers = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                let router = Router::new_dynamic(RouterConfig {
                    id: format!("router-{i}"),
                    ..cfg.router.clone()
                });
                let peers: Vec<String> = router_addrs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, a)| a.clone())
                    .collect();
                let gossip = (!peers.is_empty()).then(|| GossipConfig {
                    peers,
                    interval: cfg.gossip_interval,
                    seed: cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ..GossipConfig::new(Vec::new())
                });
                RouterNode::spawn_on(listener, router, gossip)
            })
            .collect::<Result<Vec<_>, _>>()?;

        let mut cluster = DynamicCluster {
            members: Vec::new(),
            routers,
            router_addrs,
            net: net.clone(),
            spec: spec.clone(),
            cfg,
        };
        for _ in 0..cluster.cfg.nodes {
            cluster.join_node()?;
        }
        Ok(cluster)
    }

    /// Boots one more serve node (`node-{next}`) with an announcer and
    /// returns its id — the "scale up under traffic" move the membership
    /// drill performs. The routers learn it from its Join/heartbeats; no
    /// router is touched directly.
    ///
    /// # Errors
    ///
    /// Node spawn failures pass through.
    pub fn join_node(&mut self) -> Result<String, ServeError> {
        let id = format!("node-{}", self.members.len());
        let node = ServeNode::spawn(
            &id,
            &self.net,
            &self.spec,
            self.cfg.workers_per_node,
            self.cfg.serve.clone(),
        )?;
        let announce = AnnounceConfig {
            interval: self.cfg.announce_interval,
            ..AnnounceConfig::new(&id, node.addr(), self.router_addrs.clone())
        };
        let announcer = Announcer::spawn(announce, node.handle()?);
        self.members.push(Member {
            node,
            announcer: Some(announcer),
        });
        Ok(id)
    }

    /// Gracefully removes node `index`: its announcer sends Leave to
    /// every reachable router, then the node shuts down.
    ///
    /// # Panics
    ///
    /// If `index` is out of range.
    pub fn leave_node(&mut self, index: usize) {
        if let Some(announcer) = self.members[index].announcer.take() {
            announcer.stop();
        }
        self.members[index].node.kill();
    }

    /// Abruptly kills node `index` — no Leave, no goodbye; routers find
    /// out from failed traffic and health marking.
    ///
    /// # Panics
    ///
    /// If `index` is out of range.
    pub fn crash_node(&mut self, index: usize) {
        if let Some(announcer) = self.members[index].announcer.take() {
            announcer.abort();
        }
        self.members[index].node.kill();
    }

    /// Kills router `index` (front-end and gossip). Clients holding its
    /// address must retry elsewhere; surviving routers keep serving.
    ///
    /// # Panics
    ///
    /// If `index` is out of range.
    pub fn kill_router(&mut self, index: usize) {
        self.routers[index].kill();
    }

    /// Every router front-end address, killed ones included — exactly the
    /// list a client should retry across.
    pub fn router_addrs(&self) -> &[String] {
        &self.router_addrs
    }

    /// The router at `index`.
    ///
    /// # Panics
    ///
    /// If `index` is out of range.
    pub fn router(&self, index: usize) -> &RouterNode {
        &self.routers[index]
    }

    /// Number of routers (up or down).
    pub fn routers_len(&self) -> usize {
        self.routers.len()
    }

    /// Number of serve nodes ever booted (alive or not).
    pub fn nodes_len(&self) -> usize {
        self.members.len()
    }

    /// The serve node at `index`.
    ///
    /// # Panics
    ///
    /// If `index` is out of range.
    pub fn node(&self, index: usize) -> &ServeNode {
        &self.members[index].node
    }

    /// Blocks until every *living* router agrees with the harness about
    /// the cluster: identical membership epochs, the living node ids
    /// exactly, and every one of them healthy. Returns `false` on
    /// timeout — callers assert on it, so a convergence failure names
    /// itself instead of surfacing as downstream flakiness.
    pub fn wait_converged(&self, timeout: Duration) -> bool {
        let expected: Vec<String> = self
            .members
            .iter()
            .filter(|m| m.node.is_up())
            .map(|m| m.node.id().to_string())
            .collect();
        let deadline = Instant::now() + timeout;
        loop {
            let live: Vec<&RouterNode> = self.routers.iter().filter(|r| r.is_up()).collect();
            let settled = !live.is_empty()
                && live.iter().all(|r| {
                    let m = r.router().metrics();
                    let mut ids: Vec<String> = m.nodes.iter().map(|n| n.id.clone()).collect();
                    ids.sort();
                    let mut want = expected.clone();
                    want.sort();
                    ids == want && m.nodes.iter().all(|n| n.up)
                })
                && live
                    .windows(2)
                    .all(|w| w[0].router().membership_epoch() == w[1].router().membership_epoch());
            if settled {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl std::fmt::Debug for DynamicCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicCluster")
            .field("nodes", &self.members.len())
            .field("routers", &self.routers)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluid_models::{Arch, FluidModel};
    use fluid_serve::TcpClient;
    use fluid_tensor::{Prng, Tensor};

    fn model() -> (ConvNet, SubnetSpec) {
        let model = FluidModel::new(Arch::tiny_28(), &mut Prng::new(11));
        let spec = model.spec("combined100").expect("spec").clone();
        (model.net().clone(), spec)
    }

    fn fast_cfg() -> DynamicClusterConfig {
        DynamicClusterConfig {
            nodes: 2,
            routers: 2,
            router: RouterConfig {
                connect_timeout: Duration::from_millis(300),
                request_timeout: Duration::from_secs(5),
                probe_backoff: Duration::from_millis(50),
                ..RouterConfig::default()
            },
            gossip_interval: Duration::from_millis(50),
            announce_interval: Duration::from_millis(50),
            ..DynamicClusterConfig::default()
        }
    }

    #[test]
    fn nodes_announce_themselves_and_routers_converge() {
        let (net, spec) = model();
        let cluster = DynamicCluster::boot(&net, &spec, fast_cfg()).expect("boot");
        assert!(
            cluster.wait_converged(Duration::from_secs(10)),
            "routers never converged: {:?} vs {:?}",
            cluster.router(0).router().metrics(),
            cluster.router(1).router().metrics(),
        );
        // Both routers route — no static membership was ever given.
        let x = Tensor::from_fn(&[1, 1, 28, 28], |i| (i % 7) as f32 / 7.0);
        let mut oracle = net.clone();
        let expected = oracle.forward_subnet(&x, &spec, false);
        for r in 0..cluster.routers_len() {
            let mut client = TcpClient::connect(cluster.router(r).addr()).expect("connect");
            let got = client.infer_keyed(5, &x).expect("routed infer");
            assert!(got.allclose(&expected, 0.0), "router {r} diverged");
        }
    }

    #[test]
    fn graceful_leave_tombstones_the_node_on_every_router() {
        let (net, spec) = model();
        let mut cluster = DynamicCluster::boot(&net, &spec, fast_cfg()).expect("boot");
        assert!(cluster.wait_converged(Duration::from_secs(10)));
        cluster.leave_node(1);
        assert!(
            cluster.wait_converged(Duration::from_secs(10)),
            "leave did not converge: {:?} vs {:?}",
            cluster.router(0).router().member_ids(),
            cluster.router(1).router().member_ids(),
        );
        for r in 0..cluster.routers_len() {
            assert_eq!(cluster.router(r).router().member_ids(), vec!["node-0"]);
        }
    }

    #[test]
    fn a_joining_node_is_learned_by_every_router() {
        let (net, spec) = model();
        let mut cluster = DynamicCluster::boot(&net, &spec, fast_cfg()).expect("boot");
        assert!(cluster.wait_converged(Duration::from_secs(10)));
        let id = cluster.join_node().expect("join");
        assert_eq!(id, "node-2");
        assert!(
            cluster.wait_converged(Duration::from_secs(10)),
            "join did not converge"
        );
        for r in 0..cluster.routers_len() {
            assert!(
                cluster
                    .router(r)
                    .router()
                    .member_ids()
                    .contains(&"node-2".to_string()),
                "router {r} never learned node-2"
            );
        }
    }

    #[test]
    fn a_killed_router_leaves_the_survivor_serving() {
        let (net, spec) = model();
        let mut cluster = DynamicCluster::boot(&net, &spec, fast_cfg()).expect("boot");
        assert!(cluster.wait_converged(Duration::from_secs(10)));
        cluster.kill_router(0);
        assert!(!cluster.router(0).is_up());
        // Convergence is now defined over the survivor alone.
        assert!(cluster.wait_converged(Duration::from_secs(10)));
        let x = Tensor::from_fn(&[1, 1, 28, 28], |i| (i % 3) as f32 / 3.0);
        let mut client = TcpClient::connect(cluster.router(1).addr()).expect("survivor");
        client.infer_keyed(9, &x).expect("survivor still routes");
    }
}
