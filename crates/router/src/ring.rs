//! Deterministic shard → replica-set assignment via rendezvous hashing.
//!
//! The router splits the key space into a fixed number of shards and
//! assigns each shard a replica set of `replication` nodes using
//! highest-random-weight (HRW, "rendezvous") hashing: every (node, shard)
//! pair gets a pseudo-random score derived only from the node's id and the
//! shard index, and the shard's replicas are the top-scoring nodes.
//!
//! Two properties fall out of that construction, and both are load-bearing
//! for the cluster tier:
//!
//! * **Restart determinism** — the assignment is a pure function of the
//!   node id list and the shard/replication counts. Rebuilding the map
//!   (router restart, failover to a standby router) reproduces the exact
//!   same table, so in-flight clients keep hitting the same shards.
//! * **Minimal disruption** — removing a node only changes the replica
//!   sets of shards that node actually served (everyone else's top-R is
//!   unchanged), and adding a node only claims the shards where it now
//!   scores into the top-R. No global reshuffle on membership change.
//!
//! Both properties are pinned by property tests in
//! `crates/router/tests/routing_props.rs`.

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit bijection.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a byte string; seeds the per-node half of the HRW score.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The HRW score of `node` for `shard`: combine the node hash with a
/// mixed shard index, then finalize. `shard + 1` keeps shard 0 from
/// degenerating to `mix64(0) = a constant` xor.
fn hrw_score(node_hash: u64, shard: usize) -> u64 {
    mix64(node_hash ^ mix64(shard as u64 + 1))
}

/// An immutable shard table: `shards` buckets, each assigned a replica
/// set of node indices (into the node list the map was built from).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    replication: usize,
    table: Vec<Vec<usize>>,
}

impl ShardMap {
    /// Builds the table for `node_ids` with `shards` buckets and
    /// `replication` replicas per bucket (clamped to the node count).
    ///
    /// # Panics
    ///
    /// If `node_ids` is empty, `shards` is zero, or `replication` is zero.
    pub fn new(node_ids: &[String], shards: usize, replication: usize) -> ShardMap {
        assert!(!node_ids.is_empty(), "ShardMap needs at least one node");
        assert!(shards > 0, "ShardMap needs at least one shard");
        assert!(replication > 0, "ShardMap needs replication >= 1");
        let replication = replication.min(node_ids.len());
        let hashes: Vec<u64> = node_ids.iter().map(|id| fnv1a(id.as_bytes())).collect();
        let table = (0..shards)
            .map(|shard| {
                let mut scored: Vec<(u64, usize)> = hashes
                    .iter()
                    .enumerate()
                    .map(|(i, &h)| (hrw_score(h, shard), i))
                    .collect();
                // Highest score wins; break score ties by node id so the
                // table is a pure function of the id list even under hash
                // collisions.
                scored.sort_by(|a, b| {
                    b.0.cmp(&a.0)
                        .then_with(|| node_ids[a.1].cmp(&node_ids[b.1]))
                });
                scored.truncate(replication);
                scored.into_iter().map(|(_, i)| i).collect()
            })
            .collect();
        ShardMap {
            shards,
            replication,
            table,
        }
    }

    /// Number of shard buckets.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Effective replication (requested, clamped to the node count).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The shard a routing key belongs to.
    pub fn shard_of(&self, key: u64) -> usize {
        (mix64(key) % self.shards as u64) as usize
    }

    /// The replica set (node indices, preference order) for a shard.
    ///
    /// # Panics
    ///
    /// If `shard >= self.shards()`.
    pub fn replicas(&self, shard: usize) -> &[usize] {
        &self.table[shard]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rebuild_is_bit_identical() {
        let nodes = ids(&["node-a", "node-b", "node-c"]);
        let a = ShardMap::new(&nodes, 64, 2);
        let b = ShardMap::new(&nodes, 64, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn replication_is_clamped_to_node_count() {
        let map = ShardMap::new(&ids(&["only"]), 8, 3);
        assert_eq!(map.replication(), 1);
        for shard in 0..8 {
            assert_eq!(map.replicas(shard), &[0]);
        }
    }

    #[test]
    fn replica_sets_are_distinct_nodes() {
        let nodes = ids(&["n0", "n1", "n2", "n3"]);
        let map = ShardMap::new(&nodes, 128, 3);
        for shard in 0..128 {
            let reps = map.replicas(shard);
            assert_eq!(reps.len(), 3);
            let mut sorted = reps.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "shard {shard} repeats a node: {reps:?}");
        }
    }

    #[test]
    fn shards_spread_across_nodes() {
        // HRW should give every node a meaningful share of primaries; with
        // 3 nodes and 192 shards a perfectly fair split is 64 each.
        let nodes = ids(&["n0", "n1", "n2"]);
        let map = ShardMap::new(&nodes, 192, 1);
        let mut primaries = [0usize; 3];
        for shard in 0..192 {
            primaries[map.replicas(shard)[0]] += 1;
        }
        for (i, &count) in primaries.iter().enumerate() {
            assert!(
                (32..=96).contains(&count),
                "node {i} owns {count}/192 primaries — badly skewed"
            );
        }
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let map = ShardMap::new(&ids(&["a", "b"]), 16, 2);
        for key in [0u64, 1, 42, u64::MAX] {
            let s = map.shard_of(key);
            assert!(s < 16);
            assert_eq!(s, map.shard_of(key));
        }
    }

    #[test]
    fn removing_a_node_only_remaps_its_own_shards() {
        let full = ids(&["n0", "n1", "n2", "n3"]);
        let without_n3 = ids(&["n0", "n1", "n2"]);
        let before = ShardMap::new(&full, 64, 2);
        let after = ShardMap::new(&without_n3, 64, 2);
        for shard in 0..64 {
            let had_n3 = before.replicas(shard).contains(&3);
            if !had_n3 {
                // Node indices 0..=2 mean the same nodes in both maps, so
                // untouched shards must keep identical replica sets.
                assert_eq!(
                    before.replicas(shard),
                    after.replicas(shard),
                    "shard {shard} moved although n3 never served it"
                );
            }
        }
    }
}
