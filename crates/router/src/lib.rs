//! # fluid-router
//!
//! The cluster tier: a sharding, replicating TCP front-end over N
//! independent `fluid-serve` nodes. One serving instance scales to one
//! machine's workers; this crate is what turns a *set* of those instances
//! into a single endpoint that survives node death, sheds overload
//! explicitly, and rolls model upgrades through the fleet without
//! dropping a request (the cluster-scale face of the paper's
//! failure-resilience story; details in the "Cluster tier" section of
//! `docs/SERVING.md` and the router data path in `docs/ARCHITECTURE.md`).
//!
//! ```text
//! client ─▶ route_tcp ─▶ Router::infer ─▶ admission cap ─▶ shard = hash(key)
//!                                           │ sheds            │
//!                                           ▼                  ▼ replicas (HRW)
//!                                        Reject       least-loaded up node
//!                                                     │ retry next on failure
//!                                                     ▼
//!                                              node TCP endpoint (serve_tcp)
//! ```
//!
//! * **Deterministic sharding** ([`ShardMap`]): rendezvous hashing maps
//!   each key to a shard and each shard to a replica set; rebuilding the
//!   map reproduces it exactly, and membership changes remap only the
//!   affected shards.
//! * **Passive health + probing** ([`HealthState`]): failures observed on
//!   live traffic mark a node down with an exponentially backed-off probe
//!   window; one request per elapsed window re-tests it.
//! * **Cluster-wide admission** ([`RouterConfig::admit_per_node`]): the
//!   router sheds with an explicit verdict *before* node queues overflow,
//!   scaled to the live node count.
//! * **Rolling swap** ([`LocalCluster::rolling_swap`]): cordon → drain →
//!   in-place [`hot_swap`](fluid_serve::ElasticHandle::hot_swap) →
//!   uncordon, one node at a time; with replication ≥ 2 every shard keeps
//!   a serving replica throughout.
//! * **Chaos drill** ([`run_drill`]): Poisson load against a live local
//!   cluster while nodes are killed, restarted, and rolled — every answer
//!   checked bit-identically against a single-node oracle.
//! * **Dynamic membership** ([`Router::new_dynamic`]): nodes announce
//!   themselves over the wire (`Join`/`Leave`/`NodeHeartbeat`); every
//!   change bumps an epoch and rebuilds the shard map, heartbeats double
//!   as implicit re-joins, and leaves are tombstoned so stale gossip
//!   cannot resurrect a departed member.
//! * **Replicated routers** ([`spawn_gossip`], [`DynamicCluster`]): N
//!   routers converge on membership, health verdicts, and per-shard load
//!   by push-pull anti-entropy gossip — no primary, any router serves any
//!   request, and a killed router is invisible to clients retrying across
//!   the router list.
//! * **Membership drill** ([`run_membership_drill`]): Poisson load through
//!   replicated routers while a router is killed, a node joins, and a
//!   seeded [`FaultPlan`](fluid_dist::FaultPlan) injects drops, duplicates
//!   and a partition window under the transport — zero admitted drops,
//!   completions oracle-checked, faults replayable from the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod drill;
mod gossip;
mod health;
mod node;
mod ring;
mod router;

pub use cluster::{DynamicCluster, DynamicClusterConfig, RouterNode};
pub use drill::{
    run_drill, run_membership_drill, DrillConfig, DrillReport, MembershipDrillConfig,
    MembershipDrillReport,
};
pub use gossip::{spawn_gossip, GossipConfig};
pub use health::HealthState;
pub use node::{LocalCluster, ServeNode};
pub use ring::ShardMap;
pub use router::{route_tcp, NodeStatus, Router, RouterConfig, RouterMetrics};
