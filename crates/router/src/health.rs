//! Per-node health state with exponential-backoff re-probing.
//!
//! The router learns about node failure passively — a connect or request
//! fails, or a node answers with a streak of `Reject`s — and marks the
//! node *down* for a backoff window. While down, the node is skipped by
//! replica selection **except** when the window has elapsed: then exactly
//! the next request is allowed through as a probe. A successful probe
//! resets the node to *up*; a failed one doubles the backoff (capped), so
//! a flapping node converges to being asked about rarely rather than
//! hammered.

use std::time::{Duration, Instant};

/// Health of one serve node, as observed by the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Serving normally.
    Up,
    /// Marked down; skipped until `until`, then eligible for one probe.
    Down {
        /// When the node becomes due for a re-probe.
        until: Instant,
        /// The backoff that produced `until`; doubles on repeated failure.
        backoff: Duration,
    },
}

impl HealthState {
    /// Whether the node is currently considered serving.
    pub fn is_up(&self) -> bool {
        matches!(self, HealthState::Up)
    }

    /// Whether a down node's backoff window has elapsed, making it
    /// eligible for a probe request. Always `false` while up.
    pub fn due_for_probe(&self, now: Instant) -> bool {
        match self {
            HealthState::Up => false,
            HealthState::Down { until, .. } => now >= *until,
        }
    }

    /// Records a failure: an up node goes down for `initial`; an already
    /// down node doubles its backoff, capped at `max`.
    pub fn mark_down(&mut self, initial: Duration, max: Duration, now: Instant) {
        let backoff = match *self {
            HealthState::Up => initial,
            HealthState::Down { backoff, .. } => (backoff * 2).min(max),
        };
        *self = HealthState::Down {
            until: now + backoff,
            backoff,
        };
    }

    /// Records a success: the node is up and any backoff history is
    /// forgotten.
    pub fn mark_up(&mut self) {
        *self = HealthState::Up;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INITIAL: Duration = Duration::from_millis(100);
    const MAX: Duration = Duration::from_millis(800);

    #[test]
    fn up_is_neither_down_nor_probing() {
        let state = HealthState::Up;
        assert!(state.is_up());
        assert!(!state.due_for_probe(Instant::now()));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let now = Instant::now();
        let mut state = HealthState::Up;
        let mut expected = [100u64, 200, 400, 800, 800].into_iter();
        for ms in expected.by_ref() {
            state.mark_down(INITIAL, MAX, now);
            match state {
                HealthState::Down { backoff, until } => {
                    assert_eq!(backoff, Duration::from_millis(ms));
                    assert_eq!(until, now + backoff);
                }
                HealthState::Up => unreachable!("mark_down left the node up"),
            }
        }
    }

    #[test]
    fn probe_due_after_window_then_reset_on_success() {
        let now = Instant::now();
        let mut state = HealthState::Up;
        state.mark_down(INITIAL, MAX, now);
        assert!(!state.due_for_probe(now));
        assert!(state.due_for_probe(now + INITIAL));
        state.mark_up();
        assert!(state.is_up());
        // Backoff history is forgotten: next failure starts at INITIAL.
        state.mark_down(INITIAL, MAX, now);
        assert_eq!(
            state,
            HealthState::Down {
                until: now + INITIAL,
                backoff: INITIAL
            }
        );
    }
}
