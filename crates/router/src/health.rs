//! Per-node health state with exponential-backoff re-probing.
//!
//! The router learns about node failure passively — a connect or request
//! fails, or a node answers with a streak of `Reject`s — and marks the
//! node *down* for a backoff window. While down, the node is skipped by
//! replica selection **except** when the window has elapsed: then exactly
//! the next request is allowed through as a probe. A successful probe
//! resets the node to *up*; a failed one doubles the backoff (capped), so
//! a flapping node converges to being asked about rarely rather than
//! hammered.

use std::time::{Duration, Instant};

/// Health of one serve node, as observed by the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Serving normally.
    Up,
    /// Marked down; skipped until `until`, then eligible for one probe.
    Down {
        /// When the node becomes due for a re-probe.
        until: Instant,
        /// The backoff that produced `until`; doubles on repeated failure.
        backoff: Duration,
    },
}

impl HealthState {
    /// Whether the node is currently considered serving.
    pub fn is_up(&self) -> bool {
        matches!(self, HealthState::Up)
    }

    /// Whether a down node's backoff window has elapsed, making it
    /// eligible for a probe request. Always `false` while up.
    pub fn due_for_probe(&self, now: Instant) -> bool {
        match self {
            HealthState::Up => false,
            HealthState::Down { until, .. } => now >= *until,
        }
    }

    /// Records a failure: an up node goes down for `initial`; a down node
    /// whose window had *elapsed* (a failed probe) doubles its backoff,
    /// capped at `max`.
    ///
    /// Failures landing **inside** an un-elapsed window leave the window
    /// untouched: they are echoes of the same outage — concurrent in-flight
    /// requests all failing at once — not evidence the node failed a probe
    /// it was never sent. Doubling on them used to multiply the re-probe
    /// delay by the request concurrency, so a node that recovered during
    /// the backoff window sat out a window it never earned.
    pub fn mark_down(&mut self, initial: Duration, max: Duration, now: Instant) {
        *self = match *self {
            HealthState::Up => HealthState::Down {
                until: now + initial,
                backoff: initial,
            },
            HealthState::Down { until, backoff } if now < until => {
                HealthState::Down { until, backoff }
            }
            HealthState::Down { backoff, .. } => {
                let doubled = (backoff * 2).min(max);
                HealthState::Down {
                    until: now + doubled,
                    backoff: doubled,
                }
            }
        };
    }

    /// Records a success: the node is up and any backoff history is
    /// forgotten.
    pub fn mark_up(&mut self) {
        *self = HealthState::Up;
    }

    /// Makes a down node due for a probe *now*, keeping its backoff
    /// history. Used when out-of-band evidence of recovery arrives (a
    /// heartbeat or re-join from the node itself) so the next tick probes
    /// it instead of waiting out the remaining window. No-op while up.
    pub fn expedite(&mut self, now: Instant) {
        if let HealthState::Down { backoff, .. } = *self {
            *self = HealthState::Down {
                until: now,
                backoff,
            };
        }
    }

    /// How far away this node's re-probe is: zero when up or already due.
    /// This is what rides the gossip payload (`probe_in_ms`) — instants
    /// don't cross the wire, remaining durations do.
    pub fn probe_in(&self, now: Instant) -> Duration {
        match self {
            HealthState::Up => Duration::ZERO,
            HealthState::Down { until, .. } => until.saturating_duration_since(now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INITIAL: Duration = Duration::from_millis(100);
    const MAX: Duration = Duration::from_millis(800);

    #[test]
    fn up_is_neither_down_nor_probing() {
        let state = HealthState::Up;
        assert!(state.is_up());
        assert!(!state.due_for_probe(Instant::now()));
    }

    #[test]
    fn backoff_doubles_on_failed_probes_and_caps() {
        // Each iteration advances the clock past the window first — the
        // failure is a genuine failed probe, which is what earns doubling.
        let mut now = Instant::now();
        let mut state = HealthState::Up;
        let mut expected = [100u64, 200, 400, 800, 800].into_iter();
        for ms in expected.by_ref() {
            state.mark_down(INITIAL, MAX, now);
            match state {
                HealthState::Down { backoff, until } => {
                    assert_eq!(backoff, Duration::from_millis(ms));
                    assert_eq!(until, now + backoff);
                    now = until; // window elapsed: next mark_down is a probe
                }
                HealthState::Up => unreachable!("mark_down left the node up"),
            }
        }
    }

    #[test]
    fn echo_failures_inside_the_window_do_not_double() {
        // One outage, eight concurrent in-flight requests: the first
        // failure opens the window, the other seven land inside it. The
        // re-probe must still come due at `now + INITIAL`, not at
        // `now + INITIAL * 2^7` — a node that recovers during the window
        // gets probed at the next tick.
        let now = Instant::now();
        let mut state = HealthState::Up;
        for i in 0..8 {
            state.mark_down(INITIAL, MAX, now + Duration::from_millis(i));
        }
        assert_eq!(
            state,
            HealthState::Down {
                until: now + INITIAL,
                backoff: INITIAL
            }
        );
        assert!(state.due_for_probe(now + INITIAL));
    }

    #[test]
    fn expedite_makes_a_down_node_probe_due_without_resetting_backoff() {
        let now = Instant::now();
        let mut state = HealthState::Up;
        state.mark_down(INITIAL, MAX, now);
        state.mark_down(INITIAL, MAX, now + INITIAL); // failed probe → 200ms
        assert!(!state.due_for_probe(now + INITIAL + Duration::from_millis(50)));

        // A heartbeat arrives mid-window: probe now, but keep the doubled
        // backoff so a lying heartbeat doesn't reset the flap damping.
        let hb_at = now + INITIAL + Duration::from_millis(50);
        state.expedite(hb_at);
        assert!(state.due_for_probe(hb_at));
        state.mark_down(INITIAL, MAX, hb_at);
        assert_eq!(
            state,
            HealthState::Down {
                until: hb_at + Duration::from_millis(400),
                backoff: Duration::from_millis(400)
            }
        );

        // Expedite while up is a no-op.
        let mut up = HealthState::Up;
        up.expedite(now);
        assert!(up.is_up());
    }

    #[test]
    fn probe_in_reports_the_remaining_window() {
        let now = Instant::now();
        let mut state = HealthState::Up;
        assert_eq!(state.probe_in(now), Duration::ZERO);
        state.mark_down(INITIAL, MAX, now);
        assert_eq!(state.probe_in(now), INITIAL);
        assert_eq!(
            state.probe_in(now + Duration::from_millis(40)),
            Duration::from_millis(60)
        );
        assert_eq!(state.probe_in(now + INITIAL), Duration::ZERO);
        assert_eq!(state.probe_in(now + MAX), Duration::ZERO);
    }

    #[test]
    fn probe_due_after_window_then_reset_on_success() {
        let now = Instant::now();
        let mut state = HealthState::Up;
        state.mark_down(INITIAL, MAX, now);
        assert!(!state.due_for_probe(now));
        assert!(state.due_for_probe(now + INITIAL));
        state.mark_up();
        assert!(state.is_up());
        // Backoff history is forgotten: next failure starts at INITIAL.
        state.mark_down(INITIAL, MAX, now);
        assert_eq!(
            state,
            HealthState::Down {
                until: now + INITIAL,
                backoff: INITIAL
            }
        );
    }
}
