//! In-process serve nodes and the local cluster harness.
//!
//! A [`ServeNode`] is one complete serving instance — batching server,
//! engine workers, TCP front-end — bound to its own loopback port, with a
//! kill/restart lifecycle: exactly the unit the router shards over and
//! the chaos drill kills. [`LocalCluster`] boots N of them behind one
//! [`Router`] and adds the cluster-level orchestration the single-node
//! layer cannot express: address re-registration on restart and the
//! shard-by-shard rolling hot swap.
//!
//! A restarted node binds a *fresh* ephemeral port rather than re-binding
//! its old one (the old socket may linger in `TIME_WAIT`); the router is
//! repointed via [`Router::update_addr`], which is exactly what a real
//! deployment's service discovery would do.

use crate::router::{Router, RouterConfig};
use fluid_models::{ConvNet, SubnetSpec};
use fluid_serve::{
    serve_tcp, Backend, ElasticHandle, EngineBackend, ServeConfig, ServeError, Server,
};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The live half of a [`ServeNode`]; absent while the node is killed.
struct Running {
    server: Server,
    shutdown: Arc<AtomicBool>,
    front: std::thread::JoinHandle<std::io::Result<()>>,
}

/// One serving instance with its own TCP endpoint and a kill/restart
/// lifecycle: batching server, engine workers, TCP front-end, bound to
/// its own loopback port — the unit the router shards over and the
/// chaos drill kills.
pub struct ServeNode {
    id: String,
    addr: String,
    net: ConvNet,
    spec: SubnetSpec,
    workers: usize,
    cfg: ServeConfig,
    /// Monotonic swap generation, so replacement worker names stay unique
    /// across repeated hot swaps.
    swaps: usize,
    running: Option<Running>,
}

impl ServeNode {
    /// Builds the node's worker backends for the current model.
    fn backends(&self, name_tag: &str) -> Vec<Box<dyn Backend>> {
        (0..self.workers)
            .map(|w| {
                Box::new(EngineBackend::new(
                    &format!("{}-{name_tag}{w}", self.id),
                    self.net.clone(),
                    self.spec.clone(),
                )) as Box<dyn Backend>
            })
            .collect()
    }

    /// Starts a node named `id` with `workers` engine workers serving
    /// `net`/`spec`, listening on a fresh loopback port.
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] when the listener cannot bind;
    /// server-start failures pass through.
    pub fn spawn(
        id: &str,
        net: &ConvNet,
        spec: &SubnetSpec,
        workers: usize,
        cfg: ServeConfig,
    ) -> Result<ServeNode, ServeError> {
        let mut node = ServeNode {
            id: id.to_string(),
            addr: String::new(),
            net: net.clone(),
            spec: spec.clone(),
            workers,
            cfg,
            swaps: 0,
            running: None,
        };
        node.boot()?;
        Ok(node)
    }

    /// Brings the node up on a fresh ephemeral port.
    fn boot(&mut self) -> Result<(), ServeError> {
        let server = Server::start(self.cfg.clone(), self.backends("w"))?;
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| ServeError::Transport(format!("bind {}: {e}", self.id)))?;
        self.addr = listener
            .local_addr()
            .map_err(|e| ServeError::Transport(e.to_string()))?
            .to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let front = {
            let (handle, shutdown) = (server.handle(), Arc::clone(&shutdown));
            std::thread::spawn(move || serve_tcp(listener, handle, shutdown))
        };
        self.running = Some(Running {
            server,
            shutdown,
            front,
        });
        Ok(())
    }

    /// The node's id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The node's current `host:port` (changes across restarts).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the node is currently serving.
    pub fn is_up(&self) -> bool {
        self.running.is_some()
    }

    /// The running server's elastic pool handle.
    ///
    /// # Errors
    ///
    /// [`ServeError::Elastic`] while the node is killed.
    pub fn elastic(&self) -> Result<ElasticHandle, ServeError> {
        match &self.running {
            Some(running) => Ok(running.server.elastic()),
            None => Err(ServeError::Elastic(format!("node {} is down", self.id))),
        }
    }

    /// The running server's submission handle (what a membership
    /// [`Announcer`](fluid_serve::Announcer) reads queue depth from).
    ///
    /// # Errors
    ///
    /// [`ServeError::Elastic`] while the node is killed.
    pub fn handle(&self) -> Result<fluid_serve::ServerHandle, ServeError> {
        match &self.running {
            Some(running) => Ok(running.server.handle()),
            None => Err(ServeError::Elastic(format!("node {} is down", self.id))),
        }
    }

    /// Tears the node down abruptly: the front-end stops, open
    /// connections die, queued requests drain with errors. Idempotent.
    pub fn kill(&mut self) {
        if let Some(running) = self.running.take() {
            running.shutdown.store(true, Ordering::SeqCst);
            let _ = running.front.join();
            let _ = running.server.shutdown();
        }
    }

    /// Boots the node again (killing it first if it is still up) on a
    /// *new* ephemeral port, with the node's current model.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`spawn`](ServeNode::spawn).
    pub fn restart(&mut self) -> Result<(), ServeError> {
        self.kill();
        self.boot()
    }

    /// Replaces this node's model in place via the elastic pool's
    /// batch-boundary-atomic [`ElasticHandle::hot_swap`]: zero dropped
    /// requests, node stays on its port. The stored model is updated so a
    /// later restart comes back with the *new* weights.
    ///
    /// # Errors
    ///
    /// [`ServeError::Elastic`] while the node is killed or when the swap
    /// itself fails (e.g. old workers did not drain within
    /// `retire_timeout`).
    pub fn hot_swap(
        &mut self,
        net: &ConvNet,
        spec: &SubnetSpec,
        retire_timeout: Duration,
    ) -> Result<(), ServeError> {
        let elastic = self.elastic()?;
        self.net = net.clone();
        self.spec = spec.clone();
        self.swaps += 1;
        let tag = format!("swap{}-w", self.swaps);
        elastic.hot_swap(self.backends(&tag), retire_timeout)?;
        Ok(())
    }
}

impl Drop for ServeNode {
    fn drop(&mut self) {
        self.kill();
    }
}

impl std::fmt::Debug for ServeNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeNode")
            .field("id", &self.id)
            .field("addr", &self.addr)
            .field("workers", &self.workers)
            .field("up", &self.is_up())
            .finish_non_exhaustive()
    }
}

/// N in-process [`ServeNode`]s behind one [`Router`]: the harness the
/// chaos drill and the cluster tests run against, and the reference shape
/// for wiring real nodes to a router.
pub struct LocalCluster {
    nodes: Vec<ServeNode>,
    router: Router,
}

impl LocalCluster {
    /// Boots `n` nodes (`node-0` … `node-{n-1}`, `workers_per_node`
    /// engine workers each) and a router over them.
    ///
    /// # Errors
    ///
    /// Any node spawn failure aborts the boot (already-started nodes are
    /// dropped, which kills them).
    ///
    /// # Panics
    ///
    /// If `n` is zero (the router refuses an empty membership).
    pub fn boot(
        net: &ConvNet,
        spec: &SubnetSpec,
        n: usize,
        workers_per_node: usize,
        serve_cfg: ServeConfig,
        router_cfg: RouterConfig,
    ) -> Result<LocalCluster, ServeError> {
        let nodes = (0..n)
            .map(|i| {
                ServeNode::spawn(
                    &format!("node-{i}"),
                    net,
                    spec,
                    workers_per_node,
                    serve_cfg.clone(),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        let membership = nodes
            .iter()
            .map(|node| (node.id().to_string(), node.addr().to_string()))
            .collect();
        let router = Router::new(router_cfg, membership);
        Ok(LocalCluster { nodes, router })
    }

    /// The shared router (cheap clone; see [`Router`]).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Number of nodes in the membership (up or down).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes (never true after a successful
    /// [`boot`](LocalCluster::boot)).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at `index`.
    ///
    /// # Panics
    ///
    /// If `index` is out of range.
    pub fn node(&self, index: usize) -> &ServeNode {
        &self.nodes[index]
    }

    /// Abruptly kills node `index` (the router finds out the hard way, on
    /// the next request that dials it).
    ///
    /// # Panics
    ///
    /// If `index` is out of range.
    pub fn kill_node(&mut self, index: usize) {
        self.nodes[index].kill();
    }

    /// Restarts node `index` on a fresh port and repoints the router at
    /// it (immediately due for a probe — no backoff wait).
    ///
    /// # Errors
    ///
    /// Spawn failures pass through; the router keeps its old address on
    /// failure.
    ///
    /// # Panics
    ///
    /// If `index` is out of range.
    pub fn restart_node(&mut self, index: usize) -> Result<(), ServeError> {
        self.nodes[index].restart()?;
        self.router
            .update_addr(&self.nodes[index].id, &self.nodes[index].addr)
    }

    /// Rolls a new model across the cluster one node at a time: cordon,
    /// wait for the router's in-flight count on the node to reach zero,
    /// hot-swap the node in place (its own zero-drop drain), uncordon,
    /// next. With `replication ≥ 2` every shard keeps a serving replica
    /// throughout, so the cluster as a whole never refuses a shard.
    ///
    /// Downed nodes are skipped (their next restart boots the new model
    /// only if it was swapped into `net`/`spec` storage first — callers
    /// restart, then swap). Returns the number of nodes swapped.
    ///
    /// # Errors
    ///
    /// [`ServeError::Elastic`] when a node's router-side in-flight count
    /// does not drain within `drain_timeout`, or when the node's own hot
    /// swap fails. The node is uncordoned either way — a failed swap must
    /// not leave the cluster smaller.
    pub fn rolling_swap(
        &mut self,
        net: &ConvNet,
        spec: &SubnetSpec,
        drain_timeout: Duration,
        retire_timeout: Duration,
    ) -> Result<usize, ServeError> {
        let mut swapped = 0;
        for i in 0..self.nodes.len() {
            if !self.nodes[i].is_up() {
                continue;
            }
            let id = self.nodes[i].id().to_string();
            self.router.cordon(&id)?;
            let drained = {
                let deadline = Instant::now() + drain_timeout;
                loop {
                    if self.router.node_in_flight(&id)? == 0 {
                        break true;
                    }
                    if Instant::now() >= deadline {
                        break false;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            };
            let result = if drained {
                self.nodes[i].hot_swap(net, spec, retire_timeout)
            } else {
                Err(ServeError::Elastic(format!(
                    "node {id} did not drain within {drain_timeout:?}"
                )))
            };
            self.router.uncordon(&id)?;
            result?;
            swapped += 1;
        }
        Ok(swapped)
    }
}

impl std::fmt::Debug for LocalCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalCluster")
            .field("nodes", &self.nodes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluid_models::{Arch, FluidModel};
    use fluid_serve::TcpClient;
    use fluid_tensor::{Prng, Tensor};

    fn model() -> (ConvNet, SubnetSpec) {
        let model = FluidModel::new(Arch::tiny_28(), &mut Prng::new(11));
        let spec = model.spec("combined100").expect("spec").clone();
        (model.net().clone(), spec)
    }

    fn fast_router_cfg() -> RouterConfig {
        RouterConfig {
            connect_timeout: Duration::from_millis(300),
            request_timeout: Duration::from_secs(5),
            probe_backoff: Duration::from_millis(50),
            ..RouterConfig::default()
        }
    }

    #[test]
    fn node_restart_moves_ports_and_keeps_serving() {
        let (net, spec) = model();
        let mut node =
            ServeNode::spawn("solo", &net, &spec, 1, ServeConfig::default()).expect("spawn");
        let first_addr = node.addr().to_string();
        let x = Tensor::from_fn(&[1, 1, 28, 28], |i| (i % 5) as f32 / 5.0);
        let mut client = TcpClient::connect(&first_addr).expect("connect");
        let before = client.infer(&x).expect("infer before restart");
        node.kill();
        assert!(!node.is_up());
        node.kill(); // idempotent
        node.restart().expect("restart");
        assert!(node.is_up());
        assert_ne!(node.addr(), first_addr, "restart must take a fresh port");
        let mut client = TcpClient::connect(node.addr()).expect("reconnect");
        let after = client.infer(&x).expect("infer after restart");
        assert!(
            before.allclose(&after, 0.0),
            "weights changed across restart"
        );
    }

    #[test]
    fn cluster_routes_around_a_killed_node_and_back() {
        let (net, spec) = model();
        let mut cluster =
            LocalCluster::boot(&net, &spec, 3, 1, ServeConfig::default(), fast_router_cfg())
                .expect("boot");
        let x = Tensor::from_fn(&[1, 1, 28, 28], |i| (i % 9) as f32 / 9.0);
        let mut oracle = net.clone();
        let expected = oracle.forward_subnet(&x, &spec, false);

        // Every key routes correctly on the healthy cluster.
        for key in 0..16u64 {
            let got = cluster.router().infer(key, &x).expect("healthy infer");
            assert!(got.allclose(&expected, 0.0), "key {key} diverged");
        }
        // Kill one node: with replication 2 every shard keeps a replica,
        // so every key still gets bit-identical logits (retries allowed).
        cluster.kill_node(1);
        for key in 0..16u64 {
            let got = cluster.router().infer(key, &x).expect("degraded infer");
            assert!(
                got.allclose(&expected, 0.0),
                "key {key} diverged while degraded"
            );
        }
        // Restart: the router is repointed and the node serves again.
        cluster.restart_node(1).expect("restart");
        for key in 0..16u64 {
            cluster.router().infer(key, &x).expect("recovered infer");
        }
        let served: u64 = cluster
            .router()
            .metrics()
            .nodes
            .iter()
            .map(|n| n.served)
            .sum();
        assert_eq!(served, 48, "every request must be served by some node");
    }

    #[test]
    fn tenant_requests_ride_through_the_router_to_a_tenanted_node() {
        use fluid_serve::{ServeError, TenancyConfig, TenantClass, TenantPolicy};
        let (net, spec) = model();
        let mut cfg = ServeConfig::default();
        cfg.tenancy = Some(TenancyConfig::new(vec![
            TenantPolicy::new(7, "web", TenantClass::Interactive),
            TenantPolicy::new(8, "etl", TenantClass::Batch),
        ]));
        let cluster = LocalCluster::boot(&net, &spec, 2, 1, cfg, fast_router_cfg()).expect("boot");
        let x = Tensor::from_fn(&[1, 1, 28, 28], |i| (i % 6) as f32 / 6.0);
        let mut oracle = net.clone();
        let expected = oracle.forward_subnet(&x, &spec, false);
        for tenant in [7u64, 8] {
            let got = cluster
                .router()
                .infer_tenant(tenant, &x)
                .expect("tenant infer");
            assert!(got.allclose(&expected, 0.0), "tenant {tenant} diverged");
        }
        // A tenant id missing from every node's table is an explicit
        // end-to-end reject, not a timeout or a silent default.
        let err = cluster
            .router()
            .infer_tenant(99, &x)
            .expect_err("unknown tenant");
        match err {
            ServeError::Rejected(reason) => assert!(reason.contains("99"), "{reason}"),
            other => panic!("expected Rejected, got {other}"),
        }
    }

    #[test]
    fn rolling_swap_changes_the_served_model_with_zero_refusals() {
        let (net, spec) = model();
        let mut cluster =
            LocalCluster::boot(&net, &spec, 3, 1, ServeConfig::default(), fast_router_cfg())
                .expect("boot");
        let x = Tensor::from_fn(&[1, 1, 28, 28], |i| (i % 4) as f32 / 4.0);
        let replacement = FluidModel::new(Arch::tiny_28(), &mut Prng::new(77));
        let new_spec = replacement.spec("combined100").expect("spec").clone();
        let mut oracle = replacement.net().clone();
        let expected = oracle.forward_subnet(&x, &new_spec, false);

        let swapped = cluster
            .rolling_swap(
                replacement.net(),
                &new_spec,
                Duration::from_secs(5),
                Duration::from_secs(5),
            )
            .expect("rolling swap");
        assert_eq!(swapped, 3);
        for key in 0..12u64 {
            let got = cluster.router().infer(key, &x).expect("post-swap infer");
            assert!(
                got.allclose(&expected, 0.0),
                "key {key} not on the new model"
            );
        }
        let m = cluster.router().metrics();
        assert!(
            m.nodes.iter().all(|n| !n.cordoned),
            "swap must uncordon every node"
        );
    }
}
