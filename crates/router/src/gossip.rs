//! The anti-entropy gossip driver: a background thread that keeps one
//! [`Router`] convergent with its peer routers over TCP.
//!
//! Each tick the driver picks **one** peer — chosen by a seeded
//! [`Prng`], so a drill seed fixes the whole gossip schedule — pushes
//! this router's digest ([`Router::gossip_digest`]), and merges the
//! peer's reply ([`Router::merge_gossip`]); the peer merged the pushed
//! digest before replying, so every exchange is a full push-pull round.
//! Connections are kept per peer and re-dialed when broken; a dead or
//! partitioned peer costs one bounded connect attempt per tick it is
//! picked, never a hang.
//!
//! The merge rules themselves (and the in-process
//! [`Router::gossip_with`] used by the convergence proptests) live on
//! [`Router`]; this module is only the wire pump.

use crate::router::Router;
use fluid_dist::{TcpTransport, Transport};
use fluid_serve::ServeError;
use fluid_tensor::Prng;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where and how often one router gossips.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct GossipConfig {
    /// Peer router addresses (this router's own address must not be in
    /// the list).
    pub peers: Vec<String>,
    /// Pause between exchanges. The default (100 ms) bounds the
    /// membership-convergence lag between two routers at roughly one
    /// interval per hop; `fluid-perf`'s cluster scenario is how that
    /// default was chosen against partition-recovery p95.
    pub interval: Duration,
    /// Bound on dialing a peer (a dead peer costs at most this per tick
    /// it is picked).
    pub connect_timeout: Duration,
    /// Seed for the per-tick peer choice. Same seed, same schedule —
    /// the deterministic-replay property the drills lean on.
    pub seed: u64,
}

impl GossipConfig {
    /// A config with the default cadence (100 ms ticks, 250 ms connect
    /// bound, seed 0).
    pub fn new(peers: Vec<String>) -> GossipConfig {
        GossipConfig {
            peers,
            interval: Duration::from_millis(100),
            connect_timeout: Duration::from_millis(250),
            seed: 0,
        }
    }
}

/// Spawns the gossip thread for `router`. The thread exits when
/// `shutdown` flips (checked every 10 ms, so teardown is prompt).
pub fn spawn_gossip(
    router: Router,
    cfg: GossipConfig,
    shutdown: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || gossip_loop(&router, &cfg, &shutdown))
}

/// Connects to one peer within the config's bound.
fn dial(addr: &str, timeout: Duration) -> Result<TcpTransport, ServeError> {
    use std::net::ToSocketAddrs;
    let sockaddr = addr
        .to_socket_addrs()
        .map_err(|e| ServeError::Transport(format!("resolve {addr}: {e}")))?
        .next()
        .ok_or_else(|| ServeError::Transport(format!("{addr} resolves to nothing")))?;
    let stream = TcpStream::connect_timeout(&sockaddr, timeout)
        .map_err(|e| ServeError::Transport(format!("connect {addr}: {e}")))?;
    TcpTransport::new(stream).map_err(|e| ServeError::Transport(e.to_string()))
}

fn gossip_loop(router: &Router, cfg: &GossipConfig, shutdown: &AtomicBool) {
    let mut rng = Prng::new(cfg.seed);
    let mut links: Vec<Option<TcpTransport>> = cfg.peers.iter().map(|_| None).collect();
    while !shutdown.load(Ordering::SeqCst) {
        if !cfg.peers.is_empty() {
            let i = (rng.next_u64() % cfg.peers.len() as u64) as usize;
            if links[i].is_none() {
                links[i] = dial(&cfg.peers[i], cfg.connect_timeout).ok();
            }
            if let Some(t) = links[i].as_mut() {
                let ok = t.send(&router.gossip_digest()).is_ok()
                    && match t.recv_timeout(cfg.connect_timeout) {
                        Ok(Some(reply)) => {
                            let _ = router.merge_gossip(&reply);
                            true
                        }
                        // Timeout or transport error: assume the link is
                        // broken and re-dial next time this peer comes up.
                        _ => false,
                    };
                if !ok {
                    links[i] = None;
                }
            }
        }
        // Sleep in small steps so shutdown takes effect promptly.
        let mut slept = Duration::ZERO;
        while slept < cfg.interval && !shutdown.load(Ordering::SeqCst) {
            let step = Duration::from_millis(10).min(cfg.interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
    }
}
