//! The cluster chaos drill: open-loop Poisson traffic against a
//! [`LocalCluster`] while a chaos thread kills and restarts nodes and
//! rolls a hot swap across the cluster — with every accepted answer
//! checked bit-identically against a single-node oracle.
//!
//! The drill's contract is the cluster tier's contract:
//!
//! * **Zero admitted requests dropped** — a request the router admits is
//!   either answered with logits or (under pathological overlap of
//!   failures) refused *explicitly*; the drill counts those downstream
//!   refusals separately so a passing run can require exactly zero.
//! * **Bit-identical logits** — replication, retry, restart, and the
//!   rolling swap must never change an answer: every completion is
//!   compared `allclose(·, 0.0)` against `forward_subnet` on an oracle
//!   copy of the model.
//! * **Disruptions are sequential** — with `replication = 2` the cluster
//!   tolerates one unavailable node at a time, so kill/restart cycles
//!   finish before the rolling swap begins (a real operator would hold a
//!   rollout during an incident, too).

use crate::node::LocalCluster;
use crate::router::{RouterConfig, RouterMetrics};
use fluid_models::{ConvNet, SubnetSpec};
use fluid_serve::loadgen::{run_open_loop_indexed, LoadgenReport};
use fluid_serve::{ServeConfig, ServeError};
use fluid_tensor::{Prng, Tensor};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Shape of one chaos drill run.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DrillConfig {
    /// Serve nodes to boot.
    pub nodes: usize,
    /// Engine workers per node.
    pub workers_per_node: usize,
    /// Replicas per shard (must be ≥ 2 for the drill to survive a kill).
    pub replication: usize,
    /// Poisson arrival rate, requests/s.
    pub lambda: f64,
    /// Total arrivals to generate.
    pub requests: usize,
    /// Concurrent submitter threads draining the arrival process.
    pub concurrency: usize,
    /// Kill → restart cycles the chaos thread performs (round-robin over
    /// the nodes) before the rolling swap.
    pub kill_cycles: usize,
    /// Pause between chaos actions (also the warmup before the first
    /// kill).
    pub kill_pause: Duration,
    /// Whether to finish the drill with one rolling hot swap across the
    /// cluster (same weights — a rolling "rebuild", so answers stay
    /// bit-identical).
    pub rolling_swap: bool,
    /// Seed for inputs and the arrival process.
    pub seed: u64,
    /// Per-node serving configuration.
    pub serve: ServeConfig,
}

impl Default for DrillConfig {
    fn default() -> DrillConfig {
        DrillConfig {
            nodes: 3,
            workers_per_node: 1,
            replication: 2,
            lambda: 150.0,
            requests: 300,
            concurrency: 16,
            kill_cycles: 1,
            kill_pause: Duration::from_millis(150),
            rolling_swap: true,
            seed: 42,
            serve: ServeConfig::default(),
        }
    }
}

/// What one drill run did and observed.
#[derive(Debug, Clone)]
pub struct DrillReport {
    /// The traffic ledger: submitted / completed / shed / failed.
    pub loadgen: LoadgenReport,
    /// Completions whose logits differed from the oracle (must be 0).
    pub mismatched: usize,
    /// Requests admitted by the router but then refused — every error
    /// other than admission-control [`ServeError::Overloaded`] (must be 0
    /// for a passing drill).
    pub rejected_downstream: usize,
    /// Nodes the chaos thread killed.
    pub kills: usize,
    /// Nodes the chaos thread restarted (fresh port, router repointed).
    pub restarts: usize,
    /// Nodes the rolling swap replaced in place.
    pub swaps: usize,
    /// Router counters and per-node status at the end of the run.
    pub router: RouterMetrics,
}

impl DrillReport {
    /// Whether the drill met the cluster tier's contract: every arrival
    /// accounted for, nothing admitted was dropped or refused downstream,
    /// and every answer matched the oracle.
    pub fn passed(&self) -> bool {
        self.loadgen.failed == 0
            && self.rejected_downstream == 0
            && self.mismatched == 0
            && self.loadgen.completed + self.loadgen.shed == self.loadgen.submitted
    }
}

impl std::fmt::Display for DrillReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "drill: {} | submitted {} | completed {} | shed {} | failed {} | mismatched {} | \
             downstream rejects {}",
            if self.passed() { "PASS" } else { "FAIL" },
            self.loadgen.submitted,
            self.loadgen.completed,
            self.loadgen.shed,
            self.loadgen.failed,
            self.mismatched,
            self.rejected_downstream
        )?;
        writeln!(
            f,
            "chaos: kills {} | restarts {} | rolling swaps {} | achieved {:.1} req/s",
            self.kills, self.restarts, self.swaps, self.loadgen.achieved_rps
        )?;
        write!(f, "{}", self.router)
    }
}

/// Runs one chaos drill: boot, load, kill, restart, roll, verify.
///
/// The whole cluster lives in this process; the only network involved is
/// loopback TCP, so the drill is deterministic enough for CI (the arrival
/// process and inputs are seeded; thread interleaving varies, but the
/// *contract* — zero drops, zero mismatches — must hold under every
/// interleaving).
///
/// # Errors
///
/// Infrastructure failures only (boot, restart, or swap machinery);
/// per-request failures are *reported*, not returned, so a failing drill
/// comes back as a [`DrillReport`] whose [`passed`](DrillReport::passed)
/// is false.
///
/// # Panics
///
/// If the config asks for zero nodes, a zero arrival rate, or
/// `replication < 2` with chaos enabled (the drill would be guaranteed to
/// drop requests, which is a configuration error, not a finding).
pub fn run_drill(
    net: &ConvNet,
    spec: &SubnetSpec,
    cfg: DrillConfig,
) -> Result<DrillReport, ServeError> {
    assert!(cfg.nodes >= 2, "a cluster drill needs at least 2 nodes");
    assert!(
        cfg.replication >= 2 || cfg.kill_cycles == 0,
        "killing nodes at replication 1 is guaranteed data loss"
    );
    assert!(cfg.lambda > 0.0 && cfg.requests > 0 && cfg.concurrency > 0);

    // Deterministic inputs and their single-node oracle answers.
    let arch = net.arch();
    let dims = [1, arch.image_channels, arch.image_side, arch.image_side];
    let mut rng = Prng::new(cfg.seed);
    let inputs: Vec<Tensor> = (0..16)
        .map(|_| Tensor::from_fn(&dims, |_| rng.next_f32()))
        .collect();
    let mut oracle = net.clone();
    let expected: Vec<Tensor> = inputs
        .iter()
        .map(|x| oracle.forward_subnet(x, spec, false))
        .collect();

    let router_cfg = RouterConfig {
        replication: cfg.replication,
        connect_timeout: Duration::from_millis(250),
        request_timeout: Duration::from_secs(5),
        probe_backoff: Duration::from_millis(50),
        ..RouterConfig::default()
    };
    let mut cluster = LocalCluster::boot(
        net,
        spec,
        cfg.nodes,
        cfg.workers_per_node,
        cfg.serve.clone(),
        router_cfg,
    )?;
    let router = cluster.router().clone();

    let mismatched = AtomicUsize::new(0);
    let rejected_downstream = AtomicUsize::new(0);

    let (loadgen, chaos) = std::thread::scope(|scope| {
        // Chaos owns the cluster; traffic goes through the shared router.
        let chaos = scope.spawn(|| -> Result<(usize, usize, usize), ServeError> {
            let (mut kills, mut restarts, mut swaps) = (0, 0, 0);
            std::thread::sleep(cfg.kill_pause); // let traffic build up
            for cycle in 0..cfg.kill_cycles {
                let victim = cycle % cfg.nodes;
                cluster.kill_node(victim);
                kills += 1;
                std::thread::sleep(cfg.kill_pause);
                cluster.restart_node(victim)?;
                restarts += 1;
                std::thread::sleep(cfg.kill_pause);
            }
            if cfg.rolling_swap {
                // Same weights: a rolling rebuild. Bit-identical answers
                // stay provable while every node is replaced in place.
                swaps = cluster.rolling_swap(
                    net,
                    spec,
                    Duration::from_secs(10),
                    Duration::from_secs(10),
                )?;
            }
            Ok((kills, restarts, swaps))
        });

        let loadgen = run_open_loop_indexed(
            |k| {
                let x = &inputs[k % inputs.len()];
                match router.infer(k as u64, x) {
                    Ok(got) => {
                        if !got.allclose(&expected[k % expected.len()], 0.0) {
                            mismatched.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(got)
                    }
                    Err(e) => {
                        if !matches!(e, ServeError::Overloaded { .. }) {
                            rejected_downstream.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e)
                    }
                }
            },
            cfg.concurrency,
            cfg.lambda,
            cfg.requests,
            cfg.seed,
        );
        let chaos = chaos
            .join()
            .unwrap_or_else(|_| Err(ServeError::Elastic("chaos thread panicked".into())));
        (loadgen, chaos)
    });
    let (kills, restarts, swaps) = chaos?;

    Ok(DrillReport {
        loadgen,
        mismatched: mismatched.into_inner(),
        rejected_downstream: rejected_downstream.into_inner(),
        kills,
        restarts,
        swaps,
        router: router.metrics(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluid_models::{Arch, FluidModel};

    #[test]
    fn quiet_drill_without_chaos_is_clean() {
        // Sanity for the harness itself: no kills, no swap — nothing may
        // be shed, refused, or mismatched.
        let model = FluidModel::new(Arch::tiny_28(), &mut Prng::new(3));
        let spec = model.spec("combined100").expect("spec").clone();
        let cfg = DrillConfig {
            nodes: 2,
            lambda: 80.0,
            requests: 40,
            concurrency: 8,
            kill_cycles: 0,
            rolling_swap: false,
            ..DrillConfig::default()
        };
        let report = run_drill(model.net(), &spec, cfg).expect("drill");
        assert!(report.passed(), "quiet drill failed:\n{report}");
        assert_eq!(report.loadgen.completed, 40, "{report}");
        assert_eq!(report.kills + report.restarts + report.swaps, 0);
    }

    #[test]
    #[should_panic(expected = "guaranteed data loss")]
    fn killing_at_replication_one_is_refused() {
        let model = FluidModel::new(Arch::tiny_28(), &mut Prng::new(3));
        let spec = model.spec("combined100").expect("spec").clone();
        let cfg = DrillConfig {
            replication: 1,
            ..DrillConfig::default()
        };
        let _ = run_drill(model.net(), &spec, cfg);
    }

    #[test]
    fn report_display_names_the_verdict() {
        let model = FluidModel::new(Arch::tiny_28(), &mut Prng::new(3));
        let spec = model.spec("combined100").expect("spec").clone();
        let cfg = DrillConfig {
            nodes: 2,
            lambda: 100.0,
            requests: 10,
            kill_cycles: 0,
            rolling_swap: false,
            ..DrillConfig::default()
        };
        let report = run_drill(model.net(), &spec, cfg).expect("drill");
        let text = report.to_string();
        assert!(text.contains("PASS") || text.contains("FAIL"));
        assert!(text.contains("kills 0"));
    }
}
