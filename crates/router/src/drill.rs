//! The cluster chaos drill: open-loop Poisson traffic against a
//! [`LocalCluster`] while a chaos thread kills and restarts nodes and
//! rolls a hot swap across the cluster — with every accepted answer
//! checked bit-identically against a single-node oracle.
//!
//! The drill's contract is the cluster tier's contract:
//!
//! * **Zero admitted requests dropped** — a request the router admits is
//!   either answered with logits or (under pathological overlap of
//!   failures) refused *explicitly*; the drill counts those downstream
//!   refusals separately so a passing run can require exactly zero.
//! * **Bit-identical logits** — replication, retry, restart, and the
//!   rolling swap must never change an answer: every completion is
//!   compared `allclose(·, 0.0)` against `forward_subnet` on an oracle
//!   copy of the model.
//! * **Disruptions are sequential** — with `replication = 2` the cluster
//!   tolerates one unavailable node at a time, so kill/restart cycles
//!   finish before the rolling swap begins (a real operator would hold a
//!   rollout during an incident, too).

use crate::cluster::{DynamicCluster, DynamicClusterConfig};
use crate::node::LocalCluster;
use crate::router::{RouterConfig, RouterMetrics};
use fluid_dist::{FaultPlan, FaultReport, FaultSpec, PartitionWindow};
use fluid_models::{ConvNet, SubnetSpec};
use fluid_serve::loadgen::{run_open_loop_indexed, LoadgenReport};
use fluid_serve::{ServeConfig, ServeError, TcpClient};
use fluid_tensor::{Prng, Tensor};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Shape of one chaos drill run.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DrillConfig {
    /// Serve nodes to boot.
    pub nodes: usize,
    /// Engine workers per node.
    pub workers_per_node: usize,
    /// Replicas per shard (must be ≥ 2 for the drill to survive a kill).
    pub replication: usize,
    /// Poisson arrival rate, requests/s.
    pub lambda: f64,
    /// Total arrivals to generate.
    pub requests: usize,
    /// Concurrent submitter threads draining the arrival process.
    pub concurrency: usize,
    /// Kill → restart cycles the chaos thread performs (round-robin over
    /// the nodes) before the rolling swap.
    pub kill_cycles: usize,
    /// Pause between chaos actions (also the warmup before the first
    /// kill).
    pub kill_pause: Duration,
    /// Whether to finish the drill with one rolling hot swap across the
    /// cluster (same weights — a rolling "rebuild", so answers stay
    /// bit-identical).
    pub rolling_swap: bool,
    /// Seed for inputs and the arrival process.
    pub seed: u64,
    /// Per-node serving configuration.
    pub serve: ServeConfig,
}

impl Default for DrillConfig {
    fn default() -> DrillConfig {
        DrillConfig {
            nodes: 3,
            workers_per_node: 1,
            replication: 2,
            lambda: 150.0,
            requests: 300,
            concurrency: 16,
            kill_cycles: 1,
            kill_pause: Duration::from_millis(150),
            rolling_swap: true,
            seed: 42,
            serve: ServeConfig::default(),
        }
    }
}

/// What one drill run did and observed.
#[derive(Debug, Clone)]
pub struct DrillReport {
    /// The traffic ledger: submitted / completed / shed / failed.
    pub loadgen: LoadgenReport,
    /// Completions whose logits differed from the oracle (must be 0).
    pub mismatched: usize,
    /// Requests admitted by the router but then refused — every error
    /// other than admission-control [`ServeError::Overloaded`] (must be 0
    /// for a passing drill).
    pub rejected_downstream: usize,
    /// Nodes the chaos thread killed.
    pub kills: usize,
    /// Nodes the chaos thread restarted (fresh port, router repointed).
    pub restarts: usize,
    /// Nodes the rolling swap replaced in place.
    pub swaps: usize,
    /// Router counters and per-node status at the end of the run.
    pub router: RouterMetrics,
}

impl DrillReport {
    /// Whether the drill met the cluster tier's contract: every arrival
    /// accounted for, nothing admitted was dropped or refused downstream,
    /// and every answer matched the oracle.
    pub fn passed(&self) -> bool {
        self.loadgen.failed == 0
            && self.rejected_downstream == 0
            && self.mismatched == 0
            && self.loadgen.completed + self.loadgen.shed == self.loadgen.submitted
    }
}

impl std::fmt::Display for DrillReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "drill: {} | submitted {} | completed {} | shed {} | failed {} | mismatched {} | \
             downstream rejects {}",
            if self.passed() { "PASS" } else { "FAIL" },
            self.loadgen.submitted,
            self.loadgen.completed,
            self.loadgen.shed,
            self.loadgen.failed,
            self.mismatched,
            self.rejected_downstream
        )?;
        writeln!(
            f,
            "chaos: kills {} | restarts {} | rolling swaps {} | achieved {:.1} req/s",
            self.kills, self.restarts, self.swaps, self.loadgen.achieved_rps
        )?;
        write!(f, "{}", self.router)
    }
}

/// Runs one chaos drill: boot, load, kill, restart, roll, verify.
///
/// The whole cluster lives in this process; the only network involved is
/// loopback TCP, so the drill is deterministic enough for CI (the arrival
/// process and inputs are seeded; thread interleaving varies, but the
/// *contract* — zero drops, zero mismatches — must hold under every
/// interleaving).
///
/// # Errors
///
/// Infrastructure failures only (boot, restart, or swap machinery);
/// per-request failures are *reported*, not returned, so a failing drill
/// comes back as a [`DrillReport`] whose [`passed`](DrillReport::passed)
/// is false.
///
/// # Panics
///
/// If the config asks for zero nodes, a zero arrival rate, or
/// `replication < 2` with chaos enabled (the drill would be guaranteed to
/// drop requests, which is a configuration error, not a finding).
pub fn run_drill(
    net: &ConvNet,
    spec: &SubnetSpec,
    cfg: DrillConfig,
) -> Result<DrillReport, ServeError> {
    assert!(cfg.nodes >= 2, "a cluster drill needs at least 2 nodes");
    assert!(
        cfg.replication >= 2 || cfg.kill_cycles == 0,
        "killing nodes at replication 1 is guaranteed data loss"
    );
    assert!(cfg.lambda > 0.0 && cfg.requests > 0 && cfg.concurrency > 0);

    // Deterministic inputs and their single-node oracle answers.
    let arch = net.arch();
    let dims = [1, arch.image_channels, arch.image_side, arch.image_side];
    let mut rng = Prng::new(cfg.seed);
    let inputs: Vec<Tensor> = (0..16)
        .map(|_| Tensor::from_fn(&dims, |_| rng.next_f32()))
        .collect();
    let mut oracle = net.clone();
    let expected: Vec<Tensor> = inputs
        .iter()
        .map(|x| oracle.forward_subnet(x, spec, false))
        .collect();

    let router_cfg = RouterConfig {
        replication: cfg.replication,
        connect_timeout: Duration::from_millis(250),
        request_timeout: Duration::from_secs(5),
        probe_backoff: Duration::from_millis(50),
        ..RouterConfig::default()
    };
    let mut cluster = LocalCluster::boot(
        net,
        spec,
        cfg.nodes,
        cfg.workers_per_node,
        cfg.serve.clone(),
        router_cfg,
    )?;
    let router = cluster.router().clone();

    let mismatched = AtomicUsize::new(0);
    let rejected_downstream = AtomicUsize::new(0);

    let (loadgen, chaos) = std::thread::scope(|scope| {
        // Chaos owns the cluster; traffic goes through the shared router.
        let chaos = scope.spawn(|| -> Result<(usize, usize, usize), ServeError> {
            let (mut kills, mut restarts, mut swaps) = (0, 0, 0);
            std::thread::sleep(cfg.kill_pause); // let traffic build up
            for cycle in 0..cfg.kill_cycles {
                let victim = cycle % cfg.nodes;
                cluster.kill_node(victim);
                kills += 1;
                std::thread::sleep(cfg.kill_pause);
                cluster.restart_node(victim)?;
                restarts += 1;
                std::thread::sleep(cfg.kill_pause);
            }
            if cfg.rolling_swap {
                // Same weights: a rolling rebuild. Bit-identical answers
                // stay provable while every node is replaced in place.
                swaps = cluster.rolling_swap(
                    net,
                    spec,
                    Duration::from_secs(10),
                    Duration::from_secs(10),
                )?;
            }
            Ok((kills, restarts, swaps))
        });

        let loadgen = run_open_loop_indexed(
            |k| {
                let x = &inputs[k % inputs.len()];
                match router.infer(k as u64, x) {
                    Ok(got) => {
                        if !got.allclose(&expected[k % expected.len()], 0.0) {
                            mismatched.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(got)
                    }
                    Err(e) => {
                        if !matches!(e, ServeError::Overloaded { .. }) {
                            rejected_downstream.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e)
                    }
                }
            },
            cfg.concurrency,
            cfg.lambda,
            cfg.requests,
            cfg.seed,
        );
        let chaos = chaos
            .join()
            .unwrap_or_else(|_| Err(ServeError::Elastic("chaos thread panicked".into())));
        (loadgen, chaos)
    });
    let (kills, restarts, swaps) = chaos?;

    Ok(DrillReport {
        loadgen,
        mismatched: mismatched.into_inner(),
        rejected_downstream: rejected_downstream.into_inner(),
        kills,
        restarts,
        swaps,
        router: router.metrics(),
    })
}

/// Shape of one membership drill run: dynamic membership + replicated
/// routers + deterministic fault injection, all at once.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct MembershipDrillConfig {
    /// Serve nodes to boot (announced, not statically wired).
    pub nodes: usize,
    /// Engine workers per node.
    pub workers_per_node: usize,
    /// Routers to boot (front-end + gossip each). Must be ≥ 2 when
    /// `kill_router` is set.
    pub routers: usize,
    /// Replicas per shard (must be ≥ 2 — the drill partitions a node).
    pub replication: usize,
    /// Poisson arrival rate, requests/s.
    pub lambda: f64,
    /// Total arrivals to generate.
    pub requests: usize,
    /// Concurrent submitter threads draining the arrival process.
    pub concurrency: usize,
    /// Kill one router (the last one) mid-run; clients must ride through
    /// by retrying across the router list.
    pub kill_router: bool,
    /// Boot one extra node mid-run; routers must learn it from its
    /// announcements alone.
    pub join_node: bool,
    /// Partition window `(from, to)` severing every router's links to
    /// `node-0`, measured from traffic start. Replication must cover the
    /// window; it heals on schedule.
    pub partition: Option<(Duration, Duration)>,
    /// Probability a router→node message is silently dropped (surfaces
    /// upstream as a reply deadline, then a retry on the replica).
    pub drop_p: f64,
    /// Probability a router→node message is delivered twice (the reply
    /// matcher must not be confused by the echo).
    pub duplicate_p: f64,
    /// Pause before the first chaos action, and between actions.
    pub chaos_pause: Duration,
    /// Gossip cadence between routers.
    pub gossip_interval: Duration,
    /// Node heartbeat cadence.
    pub announce_interval: Duration,
    /// Seed for inputs, arrivals, gossip schedules, and the fault plan —
    /// one seed replays the whole run, faults included.
    pub seed: u64,
    /// Per-node serving configuration.
    pub serve: ServeConfig,
}

impl Default for MembershipDrillConfig {
    fn default() -> MembershipDrillConfig {
        MembershipDrillConfig {
            nodes: 3,
            workers_per_node: 1,
            routers: 2,
            replication: 2,
            lambda: 120.0,
            requests: 240,
            concurrency: 12,
            kill_router: true,
            join_node: true,
            partition: Some((Duration::from_millis(300), Duration::from_millis(2300))),
            drop_p: 0.02,
            duplicate_p: 0.02,
            chaos_pause: Duration::from_millis(200),
            gossip_interval: Duration::from_millis(100),
            announce_interval: Duration::from_millis(100),
            seed: 42,
            serve: ServeConfig::default(),
        }
    }
}

/// What one membership drill run did and observed.
#[derive(Debug, Clone)]
pub struct MembershipDrillReport {
    /// The traffic ledger: submitted / completed / shed / failed.
    pub loadgen: LoadgenReport,
    /// Completions whose logits differed from the oracle (must be 0).
    pub mismatched: usize,
    /// Requests some router admitted but then refused downstream after
    /// the client exhausted its retries (must be 0 for a passing drill).
    pub rejected_downstream: usize,
    /// Routers killed mid-run.
    pub router_kills: usize,
    /// Nodes joined mid-run.
    pub joins: usize,
    /// What the fault plan's links actually did.
    pub faults: FaultReport,
    /// Whether the surviving routers re-converged after the run.
    pub converged: bool,
    /// Final counters of every surviving router.
    pub routers: Vec<RouterMetrics>,
}

impl MembershipDrillReport {
    /// Whether the run met the drill's contract: every arrival accounted
    /// for, zero admitted requests dropped or refused downstream, every
    /// answer bit-identical to the oracle, and the surviving routers
    /// agreeing on the final membership.
    pub fn passed(&self) -> bool {
        self.loadgen.failed == 0
            && self.rejected_downstream == 0
            && self.mismatched == 0
            && self.converged
            && self.loadgen.completed + self.loadgen.shed == self.loadgen.submitted
    }
}

impl std::fmt::Display for MembershipDrillReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "membership drill: {} | submitted {} | completed {} | shed {} | failed {} | \
             mismatched {} | downstream rejects {}",
            if self.passed() { "PASS" } else { "FAIL" },
            self.loadgen.submitted,
            self.loadgen.completed,
            self.loadgen.shed,
            self.loadgen.failed,
            self.mismatched,
            self.rejected_downstream
        )?;
        writeln!(
            f,
            "chaos: router kills {} | joins {} | converged {} | achieved {:.1} req/s",
            self.router_kills,
            self.joins,
            if self.converged { "yes" } else { "NO" },
            self.loadgen.achieved_rps
        )?;
        writeln!(f, "{}", self.faults)?;
        for r in &self.routers {
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

/// One submitter's set of per-router connections, checked out of a pool
/// around each request so clients are reused, not re-dialed.
type ClientSet = Vec<Option<TcpClient>>;

/// Submits one keyed request through the router list, retrying across
/// routers (and briefly across time) so only a *cluster-wide* refusal
/// surfaces: a dead router, a dropped reply, or a partitioned node must
/// be absorbed by another router, a retry, or a replica.
fn submit_via_routers(
    clients: &mut ClientSet,
    addrs: &[String],
    k: usize,
    x: &Tensor,
    connect_timeout: Duration,
    request_timeout: Duration,
) -> Result<Tensor, ServeError> {
    const PASSES: usize = 3;
    let mut last: Option<ServeError> = None;
    for pass in 0..PASSES {
        if pass > 0 {
            std::thread::sleep(Duration::from_millis(50));
        }
        for attempt in 0..addrs.len() {
            let i = (k + attempt) % addrs.len();
            if clients[i].is_none() {
                clients[i] = TcpClient::connect_timeout(&addrs[i], connect_timeout)
                    .ok()
                    .map(|c| c.with_timeout(request_timeout));
            }
            let Some(client) = clients[i].as_mut() else {
                continue; // router unreachable (likely killed): next one
            };
            match client.infer_keyed(k as u64, x) {
                Ok(logits) => return Ok(logits),
                Err(ServeError::Rejected(reason)) => {
                    if reason.contains("overloaded") {
                        // Admission shed: an explicit verdict, not a drop.
                        return Err(ServeError::Overloaded { queue_cap: 0 });
                    }
                    // "no live workers" or a downstream refusal: this
                    // router's view may be stale — try the others, then
                    // wait out a gossip/probe beat and try again.
                    last = Some(ServeError::Rejected(reason));
                }
                Err(e) => {
                    // Transport-level failure: the connection is suspect
                    // (killed router, mid-request silence). Drop it and
                    // move on; the next pass re-dials.
                    clients[i] = None;
                    last = Some(e);
                }
            }
        }
    }
    Err(last.unwrap_or(ServeError::NoWorkers))
}

/// Runs one membership drill: boot a [`DynamicCluster`], converge, arm a
/// seeded [`FaultPlan`] on every router, then drive open-loop Poisson
/// traffic through the router list while the chaos thread kills a
/// router and joins a node — and the plan severs `node-0` for a window.
///
/// Every completion is checked bit-identically against a single-process
/// oracle; the same seed replays the same inputs, arrivals, gossip
/// schedule, and fault schedule.
///
/// # Errors
///
/// Infrastructure failures only (boot or join machinery); per-request
/// failures are *reported*, so a failing drill comes back as a
/// [`MembershipDrillReport`] whose
/// [`passed`](MembershipDrillReport::passed) is false.
///
/// # Panics
///
/// If the config asks for chaos its redundancy cannot cover: killing a
/// router with fewer than two routers, partitioning at `replication < 2`,
/// zero nodes, or a non-positive arrival rate. Also if the cluster does
/// not converge within 30 s of boot (the drill would be measuring noise).
pub fn run_membership_drill(
    net: &ConvNet,
    spec: &SubnetSpec,
    cfg: MembershipDrillConfig,
) -> Result<MembershipDrillReport, ServeError> {
    assert!(cfg.nodes >= 2, "a membership drill needs at least 2 nodes");
    assert!(
        cfg.routers >= 2 || !cfg.kill_router,
        "killing the only router is guaranteed unavailability"
    );
    assert!(
        cfg.replication >= 2 || cfg.partition.is_none(),
        "partitioning a node at replication 1 is guaranteed data loss"
    );
    assert!(cfg.lambda > 0.0 && cfg.requests > 0 && cfg.concurrency > 0);

    // Deterministic inputs and their single-process oracle answers.
    let arch = net.arch();
    let dims = [1, arch.image_channels, arch.image_side, arch.image_side];
    let mut rng = Prng::new(cfg.seed);
    let inputs: Vec<Tensor> = (0..16)
        .map(|_| Tensor::from_fn(&dims, |_| rng.next_f32()))
        .collect();
    let mut oracle = net.clone();
    let expected: Vec<Tensor> = inputs
        .iter()
        .map(|x| oracle.forward_subnet(x, spec, false))
        .collect();

    let connect_timeout = Duration::from_millis(250);
    let request_timeout = Duration::from_secs(2);
    let cluster_cfg = DynamicClusterConfig {
        nodes: cfg.nodes,
        workers_per_node: cfg.workers_per_node,
        routers: cfg.routers,
        serve: cfg.serve.clone(),
        router: RouterConfig {
            replication: cfg.replication,
            connect_timeout,
            // Low enough that a dropped reply turns into a retry well
            // inside the client's patience.
            request_timeout: Duration::from_millis(800),
            probe_backoff: Duration::from_millis(50),
            ..RouterConfig::default()
        },
        gossip_interval: cfg.gossip_interval,
        announce_interval: cfg.announce_interval,
        seed: cfg.seed,
        ..DynamicClusterConfig::default()
    };
    let mut cluster = DynamicCluster::boot(net, spec, cluster_cfg)?;
    assert!(
        cluster.wait_converged(Duration::from_secs(30)),
        "cluster never converged before traffic"
    );

    // One shared fault plan (clones share schedule, clock, counters):
    // every router's node links draw from it, and the partition window is
    // measured from the single arm() below.
    let plan = FaultPlan::new(
        FaultSpec {
            drop_p: cfg.drop_p,
            duplicate_p: cfg.duplicate_p,
            partitions: cfg
                .partition
                .iter()
                .map(|&(from, to)| PartitionWindow {
                    from,
                    to,
                    peer_match: Some("node-0".to_string()),
                })
                .collect(),
            ..FaultSpec::default()
        },
        cfg.seed,
    );
    for r in 0..cluster.routers_len() {
        cluster
            .router(r)
            .router()
            .set_fault_plan(Some(plan.clone()));
    }

    let addrs: Vec<String> = cluster.router_addrs().to_vec();
    let mismatched = AtomicUsize::new(0);
    let rejected_downstream = AtomicUsize::new(0);
    let pool: Mutex<Vec<ClientSet>> = Mutex::new(Vec::new());

    plan.arm(); // the partition clock starts with the traffic
    let (loadgen, chaos) = std::thread::scope(|scope| {
        let chaos = scope.spawn(|| -> Result<(usize, usize), ServeError> {
            let (mut kills, mut joins) = (0, 0);
            std::thread::sleep(cfg.chaos_pause); // let traffic build up
            if cfg.kill_router {
                cluster.kill_router(cfg.routers - 1);
                kills += 1;
                std::thread::sleep(cfg.chaos_pause);
            }
            if cfg.join_node {
                cluster.join_node()?;
                joins += 1;
            }
            Ok((kills, joins))
        });

        let loadgen = run_open_loop_indexed(
            |k| {
                let x = &inputs[k % inputs.len()];
                let mut clients = lock_pool(&pool)
                    .pop()
                    .unwrap_or_else(|| addrs.iter().map(|_| None).collect());
                let result = submit_via_routers(
                    &mut clients,
                    &addrs,
                    k,
                    x,
                    connect_timeout,
                    request_timeout,
                );
                lock_pool(&pool).push(clients);
                match result {
                    Ok(got) => {
                        if !got.allclose(&expected[k % expected.len()], 0.0) {
                            mismatched.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(got)
                    }
                    Err(e) => {
                        if !matches!(e, ServeError::Overloaded { .. }) {
                            rejected_downstream.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e)
                    }
                }
            },
            cfg.concurrency,
            cfg.lambda,
            cfg.requests,
            cfg.seed,
        );
        let chaos = chaos
            .join()
            .unwrap_or_else(|_| Err(ServeError::Elastic("chaos thread panicked".into())));
        (loadgen, chaos)
    });
    let (router_kills, joins) = chaos?;

    // Let the partition heal before judging convergence.
    if let Some((_, to)) = cfg.partition {
        let elapsed = Duration::from_secs_f64(loadgen.elapsed_s);
        if elapsed < to {
            std::thread::sleep(to - elapsed);
        }
    }
    // Health is passive — a marked-down node only comes back when a
    // request probes it — so drive a light settling trickle through the
    // survivors until every router has re-probed the healed nodes (or the
    // timeout names the failure). Heartbeats keep the probes expedited;
    // the trickle is what executes them.
    let converged = {
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        let mut key = 0u64;
        loop {
            if cluster.wait_converged(Duration::from_millis(100)) {
                break true;
            }
            if std::time::Instant::now() >= deadline {
                break false;
            }
            for r in 0..cluster.routers_len() {
                if !cluster.router(r).is_up() {
                    continue;
                }
                let router = cluster.router(r).router();
                for _ in 0..8 {
                    let _ = router.infer(key, &inputs[key as usize % inputs.len()]);
                    key += 1;
                }
            }
        }
    };

    let routers = (0..cluster.routers_len())
        .filter(|&r| cluster.router(r).is_up())
        .map(|r| cluster.router(r).router().metrics())
        .collect();
    Ok(MembershipDrillReport {
        loadgen,
        mismatched: mismatched.into_inner(),
        rejected_downstream: rejected_downstream.into_inner(),
        router_kills,
        joins,
        faults: plan.report(),
        converged,
        routers,
    })
}

/// Locks the client pool, recovering from a poisoned lock (a panicked
/// submitter forfeits its client set; others keep theirs).
fn lock_pool(pool: &Mutex<Vec<ClientSet>>) -> std::sync::MutexGuard<'_, Vec<ClientSet>> {
    pool.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluid_models::{Arch, FluidModel};

    #[test]
    fn quiet_drill_without_chaos_is_clean() {
        // Sanity for the harness itself: no kills, no swap — nothing may
        // be shed, refused, or mismatched.
        let model = FluidModel::new(Arch::tiny_28(), &mut Prng::new(3));
        let spec = model.spec("combined100").expect("spec").clone();
        let cfg = DrillConfig {
            nodes: 2,
            lambda: 80.0,
            requests: 40,
            concurrency: 8,
            kill_cycles: 0,
            rolling_swap: false,
            ..DrillConfig::default()
        };
        let report = run_drill(model.net(), &spec, cfg).expect("drill");
        assert!(report.passed(), "quiet drill failed:\n{report}");
        assert_eq!(report.loadgen.completed, 40, "{report}");
        assert_eq!(report.kills + report.restarts + report.swaps, 0);
    }

    #[test]
    #[should_panic(expected = "guaranteed data loss")]
    fn killing_at_replication_one_is_refused() {
        let model = FluidModel::new(Arch::tiny_28(), &mut Prng::new(3));
        let spec = model.spec("combined100").expect("spec").clone();
        let cfg = DrillConfig {
            replication: 1,
            ..DrillConfig::default()
        };
        let _ = run_drill(model.net(), &spec, cfg);
    }

    #[test]
    fn quiet_membership_drill_without_chaos_is_clean() {
        // Harness sanity: announced membership + 2 routers + benign plan,
        // no kill/join/partition — nothing may fail or mismatch.
        let model = FluidModel::new(Arch::tiny_28(), &mut Prng::new(3));
        let spec = model.spec("combined100").expect("spec").clone();
        let cfg = MembershipDrillConfig {
            nodes: 2,
            lambda: 60.0,
            requests: 30,
            concurrency: 6,
            kill_router: false,
            join_node: false,
            partition: None,
            drop_p: 0.0,
            duplicate_p: 0.0,
            ..MembershipDrillConfig::default()
        };
        let report = run_membership_drill(model.net(), &spec, cfg).expect("drill");
        assert!(report.passed(), "quiet membership drill failed:\n{report}");
        assert_eq!(report.loadgen.completed, 30, "{report}");
        assert_eq!(report.router_kills + report.joins, 0);
    }

    #[test]
    #[should_panic(expected = "guaranteed unavailability")]
    fn killing_the_only_router_is_refused() {
        let model = FluidModel::new(Arch::tiny_28(), &mut Prng::new(3));
        let spec = model.spec("combined100").expect("spec").clone();
        let cfg = MembershipDrillConfig {
            routers: 1,
            ..MembershipDrillConfig::default()
        };
        let _ = run_membership_drill(model.net(), &spec, cfg);
    }

    #[test]
    fn report_display_names_the_verdict() {
        let model = FluidModel::new(Arch::tiny_28(), &mut Prng::new(3));
        let spec = model.spec("combined100").expect("spec").clone();
        let cfg = DrillConfig {
            nodes: 2,
            lambda: 100.0,
            requests: 10,
            kill_cycles: 0,
            rolling_swap: false,
            ..DrillConfig::default()
        };
        let report = run_drill(model.net(), &spec, cfg).expect("drill");
        let text = report.to_string();
        assert!(text.contains("PASS") || text.contains("FAIL"));
        assert!(text.contains("kills 0"));
    }
}
