//! The routing core: admission control, replica selection, retry, dynamic
//! membership, gossip, and the TCP front-end loop.
//!
//! A [`Router`] owns an **epoch-numbered membership table**: serve nodes
//! join, leave, and heartbeat over the wire ([`Message::Join`] /
//! [`Message::Leave`] / [`Message::NodeHeartbeat`]), and every membership
//! change bumps the epoch and rebuilds the [`ShardMap`] — rendezvous
//! hashing keeps the rebuild minimal-remap. Routers replicate: peers
//! exchange membership records, health verdicts, and per-shard queue
//! depths via anti-entropy gossip ([`Message::Gossip`]), so any router can
//! serve any request and a killed router is invisible to clients that
//! retry across a router list.
//!
//! Each request is hashed to a shard and admitted against that **shard's**
//! queue depth — the router's own in-flight count for the shard plus the
//! freshest gossiped counts from peer routers — with the cap scaled by the
//! shard's live replica count. Admitted requests try the shard's replicas
//! in least-loaded order (local in-flight plus the node's heartbeat-reported
//! queue depth); a replica that rejects or fails costs a retry on the next
//! one, so a request admitted by the router is only refused when *every*
//! replica of its shard has refused it. Health bookkeeping is passive
//! (failures are observed on live traffic) with exponential-backoff
//! probing — see [`HealthState`].

use crate::health::HealthState;
use crate::ring::ShardMap;
use fluid_dist::{FaultPlan, GossipNode, Message, TcpTransport, Transport};
use fluid_perf::SampleWindow;
use fluid_serve::{ServeError, TcpClient};
use fluid_tensor::Tensor;
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// How often the front-end accept loop and connection threads poll for
/// shutdown (mirrors `fluid_serve::serve_tcp`).
const POLL: Duration = Duration::from_millis(100);

/// Locks a mutex, recovering the guard if a holder panicked — none of the
/// router's guarded state can be left logically inconsistent by a panic
/// (addresses, health enums, connection pools are each updated in one
/// step).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// Tuning knobs for a [`Router`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct RouterConfig {
    /// This router's identity in gossip exchanges (`from` in its digests;
    /// peers key their per-router depth tables by it). Must be unique
    /// within a replicated router group.
    pub id: String,
    /// Replicas per shard (clamped to the node count).
    pub replication: usize,
    /// Number of hash buckets the key space is split into.
    pub shards: usize,
    /// Per-shard admission cap, expressed per *live replica* of the shard:
    /// at most `admit_per_node × max(live_replicas, 1)` requests in flight
    /// for one shard — counting this router's own in-flight plus the
    /// freshest gossiped per-shard depths of its peers; everything past
    /// that is shed with [`ServeError::Overloaded`] before any node queue
    /// sees it.
    pub admit_per_node: usize,
    /// Bound on TCP connection establishment to a node.
    pub connect_timeout: Duration,
    /// Bound on one node round trip (send request → receive reply).
    pub request_timeout: Duration,
    /// First mark-down window after a node failure.
    pub probe_backoff: Duration,
    /// Ceiling for the doubling mark-down window.
    pub probe_backoff_max: Duration,
    /// Consecutive `Reject`s from one node before it is marked down (the
    /// node is alive but drowning; give it a backoff window of quiet).
    pub reject_markdown: usize,
    /// How long a peer router's gossiped per-shard depths keep counting
    /// toward admission. Past this age the peer is assumed dead (its
    /// in-flight load died with it) and its depths stop throttling this
    /// router.
    pub peer_depth_ttl: Duration,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            id: "router-0".to_string(),
            replication: 2,
            shards: 64,
            admit_per_node: 64,
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(10),
            probe_backoff: Duration::from_millis(100),
            probe_backoff_max: Duration::from_millis(3200),
            reject_markdown: 3,
            peer_depth_ttl: Duration::from_secs(1),
        }
    }
}

/// Decrements a gauge when dropped, so early returns and panics cannot
/// leak in-flight counts.
struct Gauge<'a>(&'a AtomicUsize);

impl Drop for Gauge<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Everything the router tracks about one serve node. Shared via `Arc` so
/// in-flight requests keep a departed node's bookkeeping alive and health
/// history survives shard-map rebuilds.
struct NodeEntry {
    id: String,
    addr: Mutex<String>,
    state: Mutex<HealthState>,
    /// Bumped on every health-state change; orders verdicts across
    /// gossiping routers (higher version wins, down wins ties).
    health_version: AtomicU64,
    /// The node's own serve queue depth, from its last heartbeat.
    queue_depth: AtomicUsize,
    /// Operator-requested: skip for new requests (rolling swap). Local to
    /// this router — never gossiped.
    cordoned: AtomicBool,
    /// Requests currently being served by this node via the router.
    in_flight: AtomicUsize,
    /// Consecutive `Reject` verdicts; any success resets it.
    reject_streak: AtomicUsize,
    /// Requests this node answered with logits.
    served: AtomicU64,
    /// Link-level failures observed (connect/transport/timeout).
    deaths: AtomicU64,
    /// Idle connections, reused across requests.
    pool: Mutex<Vec<TcpClient>>,
}

impl NodeEntry {
    fn new(id: &str, addr: &str, state: HealthState) -> NodeEntry {
        NodeEntry {
            id: id.to_string(),
            addr: Mutex::new(addr.to_string()),
            state: Mutex::new(state),
            health_version: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            cordoned: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            reject_streak: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            deaths: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Applies a health transition, bumping `health_version` iff the state
    /// actually changed (echo failures inside a window change nothing and
    /// must not churn gossip).
    fn transition(&self, f: impl FnOnce(&mut HealthState)) {
        let mut st = lock(&self.state);
        let before = *st;
        f(&mut st);
        if *st != before {
            self.health_version.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// One row of the membership table. `version` is the epoch at which the
/// membership fields (`alive`, address) last changed; gossip merges adopt
/// the higher version. A `!alive` row is a tombstone — kept so a stale
/// peer cannot resurrect a departed node.
struct MemberRecord {
    entry: Arc<NodeEntry>,
    alive: bool,
    version: u64,
}

/// The epoch-numbered membership table plus the shard map built from its
/// living rows. `map` pairs the [`ShardMap`] with the record index of each
/// mapped node (`live[i]` is the record backing map node `i`); `None` when
/// no node is alive.
struct Membership {
    epoch: u64,
    records: Vec<MemberRecord>,
    map: Option<(ShardMap, Vec<usize>)>,
}

impl Membership {
    /// Rebuilds the shard map over the living rows. Ids are sorted first so
    /// the map is a pure function of the living id *set* — join order and
    /// gossip arrival order cannot produce different tables on different
    /// routers.
    fn rebuild(&mut self, cfg: &RouterConfig) {
        let mut live: Vec<usize> = (0..self.records.len())
            .filter(|&i| self.records[i].alive)
            .collect();
        live.sort_by(|&a, &b| self.records[a].entry.id.cmp(&self.records[b].entry.id));
        if live.is_empty() {
            self.map = None;
            return;
        }
        let ids: Vec<String> = live
            .iter()
            .map(|&i| self.records[i].entry.id.clone())
            .collect();
        self.map = Some((ShardMap::new(&ids, cfg.shards, cfg.replication), live));
    }

    fn find(&self, id: &str) -> Option<usize> {
        self.records.iter().position(|r| r.entry.id == id)
    }
}

/// Why one node attempt did not produce logits.
enum NodeFailure {
    /// The node is alive but refused the request (shed, bad input, …).
    Reject(String),
    /// The link failed — connect error, dropped socket, reply timeout,
    /// injected partition. The detail is already folded into the node's
    /// health bookkeeping.
    Link,
}

struct Inner {
    cfg: RouterConfig,
    membership: RwLock<Membership>,
    /// This router's own in-flight count per shard (admission numerator).
    shard_pending: Vec<AtomicUsize>,
    /// Freshest gossiped per-shard depths per peer router, with receipt
    /// time (stale entries age out of admission via `peer_depth_ttl`).
    peer_pending: Mutex<HashMap<String, (Vec<u32>, Instant)>>,
    /// Installed fault schedule: node links are wrapped in it and severed
    /// links fail before dialing. `None` outside drills.
    faults: Mutex<Option<FaultPlan>>,
    in_flight_total: AtomicUsize,
    admitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    unroutable: AtomicU64,
    retries: AtomicU64,
    node_deaths: AtomicU64,
    latencies: Mutex<SampleWindow>,
}

/// Liveness and load of one node, as seen in a [`RouterMetrics`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStatus {
    /// The node's id.
    pub id: String,
    /// Current address (changes when a node restarts on a new port).
    pub addr: String,
    /// Whether the router currently considers the node serving.
    pub up: bool,
    /// Whether an operator has cordoned the node (rolling swap).
    pub cordoned: bool,
    /// Requests in flight to this node right now.
    pub in_flight: usize,
    /// The node's own serve queue depth, from its last heartbeat.
    pub queue_depth: usize,
    /// Requests this node has answered with logits.
    pub served: u64,
    /// Link failures the router has observed on this node.
    pub deaths: u64,
}

/// A point-in-time snapshot of the router's counters and latency window.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterMetrics {
    /// The membership epoch this snapshot was taken at.
    pub epoch: u64,
    /// Requests admitted past the per-shard cap.
    pub admitted: u64,
    /// Admitted requests answered with logits.
    pub completed: u64,
    /// Requests shed at admission ([`ServeError::Overloaded`]).
    pub shed: u64,
    /// Admitted requests refused after every replica was tried.
    pub rejected: u64,
    /// Requests that found no replica to even try (no live member at all,
    /// or all replicas of the shard down/cordoned and not yet due for a
    /// probe).
    pub unroutable: u64,
    /// Extra node attempts beyond the first, across all requests.
    pub retries: u64,
    /// Link failures observed across all nodes.
    pub node_deaths: u64,
    /// Median end-to-end router latency (admission → logits), ms.
    pub p50_ms: f64,
    /// 95th-percentile router latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile router latency, ms.
    pub p99_ms: f64,
    /// Per-node status of living members, in membership order.
    pub nodes: Vec<NodeStatus>,
}

impl std::fmt::Display for RouterMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "router: epoch {} | admitted {} | completed {} | shed {} | rejected {} | \
             unroutable {} | retries {} | node deaths {}",
            self.epoch,
            self.admitted,
            self.completed,
            self.shed,
            self.rejected,
            self.unroutable,
            self.retries,
            self.node_deaths
        )?;
        writeln!(
            f,
            "latency ms: p50 {:.2} | p95 {:.2} | p99 {:.2}",
            self.p50_ms, self.p95_ms, self.p99_ms
        )?;
        for n in &self.nodes {
            writeln!(
                f,
                "  {:<12} {:<21} {} {} in-flight {:>3} | queue {:>3} | served {:>6} | deaths {}",
                n.id,
                n.addr,
                if n.up { "up  " } else { "DOWN" },
                if n.cordoned {
                    "[cordoned]"
                } else {
                    "          "
                },
                n.in_flight,
                n.queue_depth,
                n.served,
                n.deaths
            )?;
        }
        Ok(())
    }
}

/// The sharding/replicating front-end over a set of `fluid-serve` nodes.
///
/// Cheap to clone (an [`Arc`] inside); clones share all state, so the TCP
/// front-end's per-connection threads, the gossip driver, and an
/// in-process orchestrator (the drill, `LocalCluster::rolling_swap`)
/// observe one consistent cluster view.
///
/// Membership is dynamic: start from a static list ([`Router::new`]) or
/// empty ([`Router::new_dynamic`]) and let nodes announce themselves —
/// [`join`](Router::join), [`leave`](Router::leave),
/// [`node_heartbeat`](Router::node_heartbeat) are what the wire frames
/// call into.
///
/// # Example
///
/// Routing against a single in-process node (multi-node drills live in
/// [`run_drill`](crate::run_drill)):
///
/// ```
/// use fluid_router::{Router, RouterConfig, ServeNode};
/// use fluid_models::{Arch, FluidModel};
/// use fluid_tensor::{Prng, Tensor};
/// use fluid_serve::ServeConfig;
///
/// let model = FluidModel::new(Arch::tiny_28(), &mut Prng::new(0));
/// let spec = model.spec("combined100").unwrap().clone();
/// let mut node =
///     ServeNode::spawn("n0", model.net(), &spec, 1, ServeConfig::default()).unwrap();
/// let router = Router::new(
///     RouterConfig::default(),
///     vec![("n0".to_string(), node.addr().to_string())],
/// );
/// let logits = router.infer(7, &Tensor::zeros(&[1, 1, 28, 28])).unwrap();
/// assert_eq!(logits.dims(), &[1, 10]);
/// assert_eq!(router.metrics().completed, 1);
/// node.kill();
/// ```
#[derive(Clone)]
pub struct Router {
    inner: Arc<Inner>,
}

impl Router {
    /// Builds a router over a static starting membership of `nodes`
    /// (`(id, addr)` pairs), at epoch 1. Nodes may still join and leave
    /// afterwards.
    ///
    /// # Panics
    ///
    /// If `nodes` is empty (use [`Router::new_dynamic`] for an empty
    /// start), node ids repeat, or the config's shard / replication /
    /// admission counts are zero.
    pub fn new(cfg: RouterConfig, nodes: Vec<(String, String)>) -> Router {
        assert!(!nodes.is_empty(), "router needs at least one node");
        let ids: Vec<String> = nodes.iter().map(|(id, _)| id.clone()).collect();
        {
            let mut dedup = ids.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), ids.len(), "node ids must be unique");
        }
        let router = Router::new_dynamic(cfg);
        {
            let mut m = write_lock(&router.inner.membership);
            m.epoch = 1;
            m.records = nodes
                .into_iter()
                .map(|(id, addr)| MemberRecord {
                    entry: Arc::new(NodeEntry::new(&id, &addr, HealthState::Up)),
                    alive: true,
                    version: 1,
                })
                .collect();
            m.rebuild(&router.inner.cfg);
        }
        router
    }

    /// Builds a router with an **empty** membership table (epoch 0): every
    /// member arrives by announcement — [`join`](Router::join) /
    /// [`node_heartbeat`](Router::node_heartbeat) over the wire — or by
    /// gossip from a peer router. Requests before the first member are
    /// refused with [`ServeError::NoWorkers`].
    ///
    /// # Panics
    ///
    /// If the config's shard / replication / admission counts are zero.
    pub fn new_dynamic(cfg: RouterConfig) -> Router {
        assert!(cfg.admit_per_node > 0, "admit_per_node must be >= 1");
        assert!(cfg.shards > 0, "shards must be >= 1");
        assert!(cfg.replication > 0, "replication must be >= 1");
        let shard_pending = (0..cfg.shards).map(|_| AtomicUsize::new(0)).collect();
        Router {
            inner: Arc::new(Inner {
                cfg,
                membership: RwLock::new(Membership {
                    epoch: 0,
                    records: Vec::new(),
                    map: None,
                }),
                shard_pending,
                peer_pending: Mutex::new(HashMap::new()),
                faults: Mutex::new(None),
                in_flight_total: AtomicUsize::new(0),
                admitted: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                unroutable: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                node_deaths: AtomicU64::new(0),
                latencies: Mutex::new(SampleWindow::new()),
            }),
        }
    }

    // ── membership ──────────────────────────────────────────────────────

    /// Admits (or re-admits) a node to the member set and returns the
    /// resulting epoch. Idempotent: re-joining a living node at its known
    /// address changes nothing. A changed address drops the node's pooled
    /// connections; a re-join after a leave or crash clears its tombstone
    /// and trusts the announcement enough to mark it up.
    pub fn join(&self, id: &str, addr: &str) -> u64 {
        let mut m = write_lock(&self.inner.membership);
        match m.find(id) {
            Some(i) => {
                let same_addr = *lock(&m.records[i].entry.addr) == addr;
                if m.records[i].alive && same_addr {
                    return m.epoch; // idempotent re-announce
                }
                m.epoch += 1;
                let epoch = m.epoch;
                let was_alive = {
                    let r = &mut m.records[i];
                    r.version = epoch;
                    let was = r.alive;
                    r.alive = true;
                    if !same_addr {
                        *lock(&r.entry.addr) = addr.to_string();
                        lock(&r.entry.pool).clear();
                    }
                    r.entry.transition(|st| st.mark_up());
                    was
                };
                if !was_alive {
                    m.rebuild(&self.inner.cfg);
                }
                epoch
            }
            None => {
                m.epoch += 1;
                let epoch = m.epoch;
                m.records.push(MemberRecord {
                    entry: Arc::new(NodeEntry::new(id, addr, HealthState::Up)),
                    alive: true,
                    version: epoch,
                });
                m.rebuild(&self.inner.cfg);
                epoch
            }
        }
    }

    /// Gracefully withdraws a node: tombstones its record (so gossip from
    /// a stale peer cannot resurrect it), drops its pooled connections,
    /// and rebuilds the shard map. Returns the resulting epoch; unknown or
    /// already-departed ids change nothing.
    pub fn leave(&self, id: &str) -> u64 {
        let mut m = write_lock(&self.inner.membership);
        if let Some(i) = m.find(id) {
            if m.records[i].alive {
                m.epoch += 1;
                let epoch = m.epoch;
                let r = &mut m.records[i];
                r.version = epoch;
                r.alive = false;
                lock(&r.entry.pool).clear();
                m.rebuild(&self.inner.cfg);
            }
        }
        m.epoch
    }

    /// Applies one node heartbeat: refreshes the node's reported queue
    /// depth and — because a heartbeat is out-of-band evidence of life —
    /// expedites a down node's re-probe to the next tick instead of the
    /// rest of its backoff window. A heartbeat from an unknown,
    /// tombstoned, or re-addressed node is an implicit (re-)join: that is
    /// what lets a router that restarted with empty membership re-learn
    /// its cluster with zero orchestration. Returns the current epoch.
    pub fn node_heartbeat(&self, id: &str, addr: &str, queue_depth: u32) -> u64 {
        {
            let m = read_lock(&self.inner.membership);
            if let Some(i) = m.find(id) {
                let r = &m.records[i];
                if r.alive && *lock(&r.entry.addr) == addr {
                    r.entry
                        .queue_depth
                        .store(queue_depth as usize, Ordering::SeqCst);
                    let now = Instant::now();
                    r.entry.transition(|st| st.expedite(now));
                    return m.epoch;
                }
            }
        }
        let epoch = self.join(id, addr);
        let m = read_lock(&self.inner.membership);
        if let Some(i) = m.find(id) {
            m.records[i]
                .entry
                .queue_depth
                .store(queue_depth as usize, Ordering::SeqCst);
        }
        epoch
    }

    /// Records an externally observed failure of a node (an operator, a
    /// sidecar prober, or a test): same health consequence as the router
    /// seeing the failure on its own traffic. Returns `false` for ids not
    /// in the living member set.
    pub fn report_node_failure(&self, id: &str) -> bool {
        let m = read_lock(&self.inner.membership);
        match m.find(id) {
            Some(i) if m.records[i].alive => {
                let entry = Arc::clone(&m.records[i].entry);
                drop(m);
                self.note_link_failure(&entry);
                true
            }
            _ => false,
        }
    }

    /// The current membership epoch.
    pub fn membership_epoch(&self) -> u64 {
        read_lock(&self.inner.membership).epoch
    }

    /// Ids of the living members, sorted.
    pub fn member_ids(&self) -> Vec<String> {
        let m = read_lock(&self.inner.membership);
        let mut ids: Vec<String> = m
            .records
            .iter()
            .filter(|r| r.alive)
            .map(|r| r.entry.id.clone())
            .collect();
        ids.sort();
        ids
    }

    /// The replica set (node ids, preference order) currently assigned to
    /// `shard`; empty when no member is alive.
    ///
    /// # Panics
    ///
    /// If `shard >=` the configured shard count.
    pub fn shard_replicas(&self, shard: usize) -> Vec<String> {
        assert!(shard < self.inner.cfg.shards, "shard out of range");
        let m = read_lock(&self.inner.membership);
        match &m.map {
            Some((map, live)) => map
                .replicas(shard)
                .iter()
                .map(|&li| m.records[live[li]].entry.id.clone())
                .collect(),
            None => Vec::new(),
        }
    }

    // ── fault injection ─────────────────────────────────────────────────

    /// Installs (or clears) a deterministic fault schedule on this
    /// router's node links: new connections are wrapped in the plan, and a
    /// link inside a partition window fails before dialing. Existing
    /// pooled connections are dropped so the schedule applies immediately.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *lock(&self.inner.faults) = plan;
        let m = read_lock(&self.inner.membership);
        for r in &m.records {
            lock(&r.entry.pool).clear();
        }
    }

    // ── routing ─────────────────────────────────────────────────────────

    /// Routes one request: admit against the shard's queue depth, then try
    /// that shard's replicas least-loaded-first until one answers.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Overloaded`] — shed at admission; no node saw it.
    /// * [`ServeError::Rejected`] — every tried replica refused; carries
    ///   the last node's reason.
    /// * [`ServeError::NoWorkers`] — no member is alive, every replica is
    ///   down or cordoned with no probe due, or every attempt failed at
    ///   the link level.
    pub fn infer(&self, key: u64, x: &Tensor) -> Result<Tensor, ServeError> {
        self.infer_inner(key, None, x)
    }

    /// Routes one tenant-tagged request: the tenant id doubles as the
    /// shard key (all of a tenant's traffic lands on one shard, so its
    /// quota is enforced at a single node) and the tag is forwarded to the
    /// serve node ([`Message::InferTenant`]), whose tenancy table delivers
    /// the per-tenant verdict.
    ///
    /// # Errors
    ///
    /// Same verdicts as [`infer`](Router::infer); a quota refusal or
    /// unknown-tenant verdict from the node surfaces as
    /// [`ServeError::Rejected`] with the node's reason.
    pub fn infer_tenant(&self, tenant: u64, x: &Tensor) -> Result<Tensor, ServeError> {
        self.infer_inner(tenant, Some(tenant), x)
    }

    fn infer_inner(&self, key: u64, tenant: Option<u64>, x: &Tensor) -> Result<Tensor, ServeError> {
        let inner = &self.inner;
        // Snapshot the shard's replica entries under the read lock; the
        // Arcs keep entries valid even if membership changes mid-request.
        let (shard, replicas) = {
            let m = read_lock(&inner.membership);
            let Some((map, live)) = &m.map else {
                inner.unroutable.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::NoWorkers);
            };
            let shard = map.shard_of(key);
            let replicas: Vec<Arc<NodeEntry>> = map
                .replicas(shard)
                .iter()
                .map(|&li| Arc::clone(&m.records[live[li]].entry))
                .collect();
            (shard, replicas)
        };

        // Admission: the shard's cap follows its live replica count (a
        // shrunken replica set sheds sooner; the max(1) floor keeps probe
        // traffic flowing when everything is marked down). The depth is
        // this router's own in-flight for the shard plus every fresh
        // gossiped peer depth — N routers admit against one shared number,
        // not N private ones.
        let live_replicas = replicas
            .iter()
            .filter(|n| !n.cordoned.load(Ordering::SeqCst) && lock(&n.state).is_up())
            .count();
        let cap = inner.cfg.admit_per_node * live_replicas.max(1);
        let remote = self.peer_shard_depth(shard);
        if inner.shard_pending[shard]
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                (cur + remote < cap).then_some(cur + 1)
            })
            .is_err()
        {
            inner.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded { queue_cap: cap });
        }
        let _shard_gauge = Gauge(&inner.shard_pending[shard]);
        inner.in_flight_total.fetch_add(1, Ordering::SeqCst);
        let _total_gauge = Gauge(&inner.in_flight_total);
        inner.admitted.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();

        // Candidate order: any down replica whose backoff window has
        // elapsed goes *first* — a due probe is the only road back to Up,
        // and behind healthy replicas it would never see traffic (the bet
        // is bounded: one failed attempt re-arms a doubled window and the
        // request falls through to the up replicas) — then up replicas by
        // ascending load (local in-flight plus the node's own reported
        // queue depth).
        let now = Instant::now();
        let mut up: Vec<&Arc<NodeEntry>> = Vec::with_capacity(replicas.len());
        let mut candidates: Vec<&Arc<NodeEntry>> = Vec::new();
        for node in &replicas {
            if node.cordoned.load(Ordering::SeqCst) {
                continue;
            }
            let state = *lock(&node.state);
            if state.is_up() {
                up.push(node);
            } else if state.due_for_probe(now) {
                candidates.push(node);
            }
        }
        up.sort_by_key(|n| {
            n.in_flight.load(Ordering::SeqCst) + n.queue_depth.load(Ordering::SeqCst)
        });
        candidates.extend(up);
        if candidates.is_empty() {
            inner.unroutable.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::NoWorkers);
        }

        let mut last_reject: Option<String> = None;
        for (attempt, node) in candidates.into_iter().enumerate() {
            if attempt > 0 {
                inner.retries.fetch_add(1, Ordering::Relaxed);
            }
            match self.try_node(node, key, tenant, x) {
                Ok(logits) => {
                    inner.completed.fetch_add(1, Ordering::Relaxed);
                    lock(&inner.latencies).push(t0.elapsed().as_secs_f64() * 1e3);
                    return Ok(logits);
                }
                Err(NodeFailure::Reject(reason)) => last_reject = Some(reason),
                Err(NodeFailure::Link) => {}
            }
        }
        inner.rejected.fetch_add(1, Ordering::Relaxed);
        match last_reject {
            Some(reason) => Err(ServeError::Rejected(reason)),
            None => Err(ServeError::NoWorkers),
        }
    }

    /// Sum of fresh gossiped peer depths for one shard.
    fn peer_shard_depth(&self, shard: usize) -> usize {
        let now = Instant::now();
        let ttl = self.inner.cfg.peer_depth_ttl;
        lock(&self.inner.peer_pending)
            .values()
            .filter(|(_, at)| now.saturating_duration_since(*at) <= ttl)
            .map(|(depths, _)| depths.get(shard).copied().unwrap_or(0) as usize)
            .sum()
    }

    /// One attempt against one node: check out (or open) a connection,
    /// run the keyed round trip, and fold the verdict into health state.
    fn try_node(
        &self,
        node: &NodeEntry,
        key: u64,
        tenant: Option<u64>,
        x: &Tensor,
    ) -> Result<Tensor, NodeFailure> {
        let inner = &self.inner;
        // A severed link (injected partition) fails before dialing: the
        // connect would be refused by the real network, and the health
        // consequence must be identical.
        let faults = lock(&inner.faults).clone();
        if let Some(plan) = &faults {
            if plan.severed(&node.id) {
                self.note_link_failure(node);
                return Err(NodeFailure::Link);
            }
        }
        node.in_flight.fetch_add(1, Ordering::SeqCst);
        let _node_gauge = Gauge(&node.in_flight);
        // Bind the pop in its own statement: a `match` on the guard
        // expression would hold the pool lock across the whole match —
        // including `note_link_failure`, which locks the pool again.
        let pooled = lock(&node.pool).pop();
        let mut client = match pooled {
            Some(client) => client,
            None => {
                let addr = lock(&node.addr).clone();
                match TcpClient::connect_timeout(&addr, inner.cfg.connect_timeout) {
                    Ok(client) => {
                        let client = client.with_timeout(inner.cfg.request_timeout);
                        match &faults {
                            Some(plan) => client.with_faults(plan.link(&node.id)),
                            None => client,
                        }
                    }
                    Err(_) => {
                        self.note_link_failure(node);
                        return Err(NodeFailure::Link);
                    }
                }
            }
        };
        let verdict = match tenant {
            Some(t) => client.infer_tenant(t, x),
            None => client.infer_keyed(key, x),
        };
        match verdict {
            Ok(logits) => {
                node.transition(|st| st.mark_up());
                node.reject_streak.store(0, Ordering::SeqCst);
                node.served.fetch_add(1, Ordering::Relaxed);
                lock(&node.pool).push(client);
                Ok(logits)
            }
            Err(ServeError::Rejected(reason)) => {
                // The node is alive (it answered) but refusing. A streak of
                // refusals earns it a quiet backoff window; the connection
                // itself is still good.
                let streak = node.reject_streak.fetch_add(1, Ordering::SeqCst) + 1;
                if streak >= inner.cfg.reject_markdown {
                    let (initial, max) = (inner.cfg.probe_backoff, inner.cfg.probe_backoff_max);
                    let now = Instant::now();
                    node.transition(|st| st.mark_down(initial, max, now));
                }
                lock(&node.pool).push(client);
                Err(NodeFailure::Reject(reason))
            }
            Err(_) => {
                // Link-level failure: drop this connection and everything
                // pooled for the node — they share its fate.
                self.note_link_failure(node);
                Err(NodeFailure::Link)
            }
        }
    }

    /// Marks a node down after a link failure and drops its pooled
    /// connections.
    fn note_link_failure(&self, node: &NodeEntry) {
        let (initial, max) = (
            self.inner.cfg.probe_backoff,
            self.inner.cfg.probe_backoff_max,
        );
        let now = Instant::now();
        node.transition(|st| st.mark_down(initial, max, now));
        node.deaths.fetch_add(1, Ordering::Relaxed);
        self.inner.node_deaths.fetch_add(1, Ordering::Relaxed);
        lock(&node.pool).clear();
    }

    // ── gossip ──────────────────────────────────────────────────────────

    /// This router's full anti-entropy digest: every membership record
    /// (tombstones included), its health verdict, and the router's own
    /// per-shard in-flight depths.
    pub fn gossip_digest(&self) -> Message {
        let now = Instant::now();
        let m = read_lock(&self.inner.membership);
        let nodes = m
            .records
            .iter()
            .map(|r| {
                let st = *lock(&r.entry.state);
                GossipNode {
                    id: r.entry.id.clone(),
                    addr: lock(&r.entry.addr).clone(),
                    alive: r.alive,
                    member_version: r.version,
                    up: st.is_up(),
                    probe_in_ms: st.probe_in(now).as_millis().min(u128::from(u32::MAX)) as u32,
                    health_version: r.entry.health_version.load(Ordering::SeqCst),
                    queue_depth: r.entry.queue_depth.load(Ordering::SeqCst) as u32,
                }
            })
            .collect();
        Message::Gossip {
            from: self.inner.cfg.id.clone(),
            epoch: m.epoch,
            shard_pending: self
                .inner
                .shard_pending
                .iter()
                .map(|d| d.load(Ordering::SeqCst) as u32)
                .collect(),
            nodes,
        }
    }

    /// Merges a peer's digest into this router and returns this router's
    /// own (post-merge) digest as the reply — one call is one half of a
    /// push-pull exchange. Non-gossip messages and this router's own
    /// digests merge nothing.
    ///
    /// Merge rules, chosen so any two routers that stop changing and keep
    /// exchanging converge to identical tables:
    /// * membership rows by higher `member_version`; ties prefer the
    ///   tombstone, then the smaller address — deterministic on both sides.
    /// * health verdicts by higher `health_version`; ties prefer *down*
    ///   (pessimism is recoverable by one probe; optimism costs traffic).
    /// * the peer's per-shard depths replace its previous ones and feed
    ///   admission until `peer_depth_ttl` ages them out.
    pub fn merge_gossip(&self, msg: &Message) -> Message {
        if let Message::Gossip {
            from,
            epoch,
            shard_pending,
            nodes,
        } = msg
        {
            if *from != self.inner.cfg.id {
                lock(&self.inner.peer_pending)
                    .insert(from.clone(), (shard_pending.clone(), Instant::now()));
                self.merge_records(*epoch, nodes);
            }
        }
        self.gossip_digest()
    }

    fn merge_records(&self, peer_epoch: u64, nodes: &[GossipNode]) {
        let now = Instant::now();
        let cfg_backoff = self.inner.cfg.probe_backoff;
        let mut m = write_lock(&self.inner.membership);
        let mut membership_changed = false;
        for g in nodes {
            match m.find(&g.id) {
                None => {
                    let state = if g.up {
                        HealthState::Up
                    } else {
                        HealthState::Down {
                            until: now + Duration::from_millis(u64::from(g.probe_in_ms)),
                            backoff: cfg_backoff,
                        }
                    };
                    let entry = NodeEntry::new(&g.id, &g.addr, state);
                    entry
                        .health_version
                        .store(g.health_version, Ordering::SeqCst);
                    entry
                        .queue_depth
                        .store(g.queue_depth as usize, Ordering::SeqCst);
                    m.records.push(MemberRecord {
                        entry: Arc::new(entry),
                        alive: g.alive,
                        version: g.member_version,
                    });
                    membership_changed |= g.alive;
                }
                Some(i) => {
                    let r = &mut m.records[i];
                    let local_addr = lock(&r.entry.addr).clone();
                    let adopt_member = g.member_version > r.version
                        || (g.member_version == r.version
                            && ((!g.alive && r.alive)
                                || (g.alive == r.alive && g.addr < local_addr)));
                    if adopt_member {
                        r.version = g.member_version;
                        if r.alive != g.alive {
                            r.alive = g.alive;
                            membership_changed = true;
                        }
                        if local_addr != g.addr {
                            *lock(&r.entry.addr) = g.addr.clone();
                            lock(&r.entry.pool).clear();
                        }
                    }
                    let local_hv = r.entry.health_version.load(Ordering::SeqCst);
                    let local_up = lock(&r.entry.state).is_up();
                    let adopt_health = g.health_version > local_hv
                        || (g.health_version == local_hv && !g.up && local_up);
                    if adopt_health {
                        r.entry
                            .health_version
                            .store(g.health_version, Ordering::SeqCst);
                        *lock(&r.entry.state) = if g.up {
                            HealthState::Up
                        } else {
                            // The remote probe deadline crosses the wire as
                            // a remaining duration; the backoff history
                            // restarts locally (a probe failure here will
                            // rebuild it).
                            HealthState::Down {
                                until: now + Duration::from_millis(u64::from(g.probe_in_ms)),
                                backoff: cfg_backoff,
                            }
                        };
                        r.entry
                            .queue_depth
                            .store(g.queue_depth as usize, Ordering::SeqCst);
                    }
                }
            }
        }
        if peer_epoch > m.epoch {
            m.epoch = peer_epoch;
        }
        // The epoch dominates every record version by construction; keep
        // that invariant across merges of records from newer peers.
        let max_version = m.records.iter().map(|r| r.version).max().unwrap_or(0);
        if m.epoch < max_version {
            m.epoch = max_version;
        }
        if membership_changed {
            m.rebuild(&self.inner.cfg);
        }
    }

    /// One full in-process push-pull exchange with `peer`: push this
    /// digest, let the peer merge it, merge the peer's reply. Drives the
    /// gossip convergence proptests without sockets.
    pub fn gossip_with(&self, peer: &Router) {
        let reply = peer.merge_gossip(&self.gossip_digest());
        let _ = self.merge_gossip(&reply);
    }

    // ── operator surface ────────────────────────────────────────────────

    /// Looks up a living member's entry by id.
    fn living_entry(&self, id: &str) -> Result<Arc<NodeEntry>, ServeError> {
        let m = read_lock(&self.inner.membership);
        m.records
            .iter()
            .find(|r| r.alive && r.entry.id == id)
            .map(|r| Arc::clone(&r.entry))
            .ok_or_else(|| ServeError::Elastic(format!("unknown node {id}")))
    }

    /// Excludes a node from new requests (in-flight ones finish). The
    /// rolling-swap orchestration cordons, waits for
    /// [`node_in_flight`](Router::node_in_flight) to reach zero, swaps,
    /// then uncordons.
    ///
    /// # Errors
    ///
    /// [`ServeError::Elastic`] when no living node has this id.
    pub fn cordon(&self, id: &str) -> Result<(), ServeError> {
        self.living_entry(id)?
            .cordoned
            .store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Readmits a cordoned node to replica selection.
    ///
    /// # Errors
    ///
    /// [`ServeError::Elastic`] when no living node has this id.
    pub fn uncordon(&self, id: &str) -> Result<(), ServeError> {
        self.living_entry(id)?
            .cordoned
            .store(false, Ordering::SeqCst);
        Ok(())
    }

    /// Requests currently in flight to the node named `id` via this
    /// router.
    ///
    /// # Errors
    ///
    /// [`ServeError::Elastic`] when no living node has this id.
    pub fn node_in_flight(&self, id: &str) -> Result<usize, ServeError> {
        Ok(self.living_entry(id)?.in_flight.load(Ordering::SeqCst))
    }

    /// Points a node id at a new address (a restarted node binds a fresh
    /// ephemeral port). A membership change: bumps the epoch and the
    /// record's version so gossip propagates the new address. Pooled
    /// connections to the old address are dropped and the node is made
    /// immediately due for a probe, so the next request to its shards
    /// re-establishes contact without waiting out a backoff window.
    ///
    /// # Errors
    ///
    /// [`ServeError::Elastic`] when no living node has this id.
    pub fn update_addr(&self, id: &str, addr: &str) -> Result<(), ServeError> {
        let mut m = write_lock(&self.inner.membership);
        let i = m
            .records
            .iter()
            .position(|r| r.alive && r.entry.id == id)
            .ok_or_else(|| ServeError::Elastic(format!("unknown node {id}")))?;
        m.epoch += 1;
        let epoch = m.epoch;
        let backoff = self.inner.cfg.probe_backoff;
        let r = &mut m.records[i];
        r.version = epoch;
        *lock(&r.entry.addr) = addr.to_string();
        lock(&r.entry.pool).clear();
        let now = Instant::now();
        r.entry.transition(|st| {
            *st = HealthState::Down {
                until: now,
                backoff,
            };
        });
        Ok(())
    }

    /// Snapshots counters, the latency window, and per-node status.
    pub fn metrics(&self) -> RouterMetrics {
        let inner = &self.inner;
        let m = read_lock(&inner.membership);
        let mut window = lock(&inner.latencies);
        RouterMetrics {
            epoch: m.epoch,
            admitted: inner.admitted.load(Ordering::Relaxed),
            completed: inner.completed.load(Ordering::Relaxed),
            shed: inner.shed.load(Ordering::Relaxed),
            rejected: inner.rejected.load(Ordering::Relaxed),
            unroutable: inner.unroutable.load(Ordering::Relaxed),
            retries: inner.retries.load(Ordering::Relaxed),
            node_deaths: inner.node_deaths.load(Ordering::Relaxed),
            p50_ms: window.percentile(0.50),
            p95_ms: window.percentile(0.95),
            p99_ms: window.percentile(0.99),
            nodes: m
                .records
                .iter()
                .filter(|r| r.alive)
                .map(|r| NodeStatus {
                    id: r.entry.id.clone(),
                    addr: lock(&r.entry.addr).clone(),
                    up: lock(&r.entry.state).is_up(),
                    cordoned: r.entry.cordoned.load(Ordering::SeqCst),
                    in_flight: r.entry.in_flight.load(Ordering::SeqCst),
                    queue_depth: r.entry.queue_depth.load(Ordering::SeqCst),
                    served: r.entry.served.load(Ordering::Relaxed),
                    deaths: r.entry.deaths.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = read_lock(&self.inner.membership);
        f.debug_struct("Router")
            .field("cfg", &self.inner.cfg)
            .field("epoch", &m.epoch)
            .field("records", &m.records.len())
            .finish_non_exhaustive()
    }
}

/// Serves the router over TCP until `shutdown` flips: one client-facing
/// endpoint of the cluster, speaking the same wire dialect as a plain
/// serve node plus the membership/gossip frames.
///
/// [`Message::InferKeyed`] routes by its `shard_key`; a plain
/// [`Message::Infer`] is accepted too, using `request_id` as the key (so
/// existing clients work unchanged, at the cost of key affinity).
/// [`Message::Join`] / [`Message::Leave`] / [`Message::NodeHeartbeat`]
/// mutate membership and are acknowledged; [`Message::Gossip`] is merged
/// and answered with this router's digest. Failures come back as
/// [`Message::Reject`] with the router's verdict as the reason.
///
/// # Errors
///
/// Returns the listener's I/O error; per-connection failures only end
/// that connection.
pub fn route_tcp(
    listener: TcpListener,
    router: Router,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut connections = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let router = router.clone();
                let shutdown = Arc::clone(&shutdown);
                connections.push(std::thread::spawn(move || {
                    let _ = route_connection(stream, &router, &shutdown);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                connections.retain(|c: &std::thread::JoinHandle<()>| !c.is_finished());
                std::thread::sleep(POLL)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    for c in connections {
        let _ = c.join();
    }
    Ok(())
}

/// One front-end connection: route each request, answer `Logits` or
/// `Reject`; apply membership and gossip frames in place.
fn route_connection(
    stream: TcpStream,
    router: &Router,
    shutdown: &AtomicBool,
) -> Result<(), ServeError> {
    let mut transport =
        TcpTransport::new(stream).map_err(|e| ServeError::Transport(e.to_string()))?;
    let send = |transport: &mut TcpTransport, msg: &Message| {
        transport
            .send(msg)
            .map_err(|e| ServeError::Transport(e.to_string()))
    };
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let (request_id, key, tenant, input) = match transport.recv_timeout(POLL) {
            Ok(Some(Message::InferKeyed {
                request_id,
                shard_key,
                input,
            })) => (request_id, shard_key, None, input),
            // A tenant tag shards by tenant id and rides through to the
            // node, whose tenancy table gives the per-tenant verdict.
            Ok(Some(Message::InferTenant {
                request_id,
                tenant,
                input,
            })) => (request_id, tenant, Some(tenant), input),
            Ok(Some(Message::Infer { request_id, input })) => (request_id, request_id, None, input),
            Ok(Some(Message::Shutdown)) => return Ok(()),
            Ok(Some(Message::Heartbeat { seq })) => {
                send(&mut transport, &Message::HeartbeatAck { seq })?;
                continue;
            }
            Ok(Some(Message::Join { node, addr })) => {
                let epoch = router.join(&node, &addr);
                send(&mut transport, &Message::MembershipAck { epoch })?;
                continue;
            }
            Ok(Some(Message::Leave { node })) => {
                let epoch = router.leave(&node);
                send(&mut transport, &Message::MembershipAck { epoch })?;
                continue;
            }
            Ok(Some(Message::NodeHeartbeat {
                node,
                addr,
                seq,
                queue_depth,
            })) => {
                router.node_heartbeat(&node, &addr, queue_depth);
                send(&mut transport, &Message::HeartbeatAck { seq })?;
                continue;
            }
            Ok(Some(msg @ Message::Gossip { .. })) => {
                let reply = router.merge_gossip(&msg);
                send(&mut transport, &reply)?;
                continue;
            }
            Ok(Some(_)) => continue, // not part of the routing dialogue
            Ok(None) => continue,
            Err(e) => return Err(ServeError::Transport(e.to_string())),
        };
        let routed = match tenant {
            Some(t) => router.infer_tenant(t, &input),
            None => router.infer(key, &input),
        };
        let reply = match routed {
            Ok(logits) => Message::Logits { request_id, logits },
            Err(e) => Message::Reject {
                request_id,
                reason: e.to_string(),
            },
        };
        send(&mut transport, &reply)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dead_nodes(n: usize) -> Vec<(String, String)> {
        // Port 1 refuses connections immediately on loopback.
        (0..n)
            .map(|i| (format!("n{i}"), "127.0.0.1:1".to_string()))
            .collect()
    }

    fn fast_cfg() -> RouterConfig {
        RouterConfig {
            connect_timeout: Duration::from_millis(200),
            request_timeout: Duration::from_millis(500),
            probe_backoff: Duration::from_millis(50),
            ..RouterConfig::default()
        }
    }

    /// The shard a key lands on, for tests that poke per-shard state.
    fn shard_of(router: &Router, key: u64) -> usize {
        let m = read_lock(&router.inner.membership);
        m.map.as_ref().expect("live members").0.shard_of(key)
    }

    #[test]
    fn all_replicas_dead_is_a_verdict_not_a_hang() {
        let router = Router::new(fast_cfg(), dead_nodes(3));
        let t0 = Instant::now();
        let err = router
            .infer(1, &Tensor::zeros(&[1, 1, 28, 28]))
            .expect_err("nothing listens");
        assert!(matches!(err, ServeError::NoWorkers), "{err}");
        assert!(t0.elapsed() < Duration::from_secs(3));
        let m = router.metrics();
        assert_eq!(m.admitted, 1);
        assert_eq!(m.completed, 0);
        assert!(m.node_deaths >= 1, "failures must be recorded");
    }

    #[test]
    fn downed_replicas_make_the_shard_unroutable_until_probe_time() {
        let router = Router::new(fast_cfg(), dead_nodes(3));
        // First request marks this shard's replicas down…
        let _ = router.infer(1, &Tensor::zeros(&[1, 1, 28, 28]));
        // …so an immediate retry of the same key finds no candidate at all
        // (the backoff window has not elapsed) and fails fast.
        let t0 = Instant::now();
        let err = router
            .infer(1, &Tensor::zeros(&[1, 1, 28, 28]))
            .expect_err("replicas are in backoff");
        assert!(matches!(err, ServeError::NoWorkers), "{err}");
        assert!(
            t0.elapsed() < Duration::from_millis(100),
            "did not fail fast"
        );
        assert_eq!(router.metrics().unroutable, 1);
        // After the window, the same key is probed again (and fails again,
        // but by *trying*, which is the point).
        std::thread::sleep(Duration::from_millis(60));
        let deaths_before = router.metrics().node_deaths;
        let _ = router.infer(1, &Tensor::zeros(&[1, 1, 28, 28]));
        assert!(router.metrics().node_deaths > deaths_before);
    }

    #[test]
    fn cordoning_every_node_refuses_without_trying() {
        let router = Router::new(fast_cfg(), dead_nodes(2));
        router.cordon("n0").expect("cordon n0");
        router.cordon("n1").expect("cordon n1");
        let err = router
            .infer(9, &Tensor::zeros(&[1, 1, 28, 28]))
            .expect_err("everything cordoned");
        assert!(matches!(err, ServeError::NoWorkers), "{err}");
        let m = router.metrics();
        assert_eq!(m.unroutable, 1);
        assert_eq!(m.node_deaths, 0, "cordoned nodes must not be dialed");
        router.uncordon("n0").expect("uncordon");
        assert!(!router.metrics().nodes[0].cordoned);
    }

    #[test]
    fn admission_cap_sheds_per_shard_before_dialing_anyone() {
        let mut cfg = fast_cfg();
        cfg.admit_per_node = 1;
        let router = Router::new(cfg, dead_nodes(1));
        // Hold the key's shard slot by parking a gauge manually.
        let shard = shard_of(&router, 3);
        router.inner.shard_pending[shard].fetch_add(1, Ordering::SeqCst);
        let err = router
            .infer(3, &Tensor::zeros(&[1, 1, 28, 28]))
            .expect_err("shard cap is full");
        assert!(
            matches!(err, ServeError::Overloaded { queue_cap: 1 }),
            "{err}"
        );
        let m = router.metrics();
        assert_eq!(m.shed, 1);
        assert_eq!(m.admitted, 0);
        assert_eq!(m.node_deaths, 0, "shed requests must not touch nodes");
        router.inner.shard_pending[shard].fetch_sub(1, Ordering::SeqCst);
        // A key on a *different* shard is not throttled by that slot: the
        // cap is per shard, not a flat cluster-wide count.
        let other = (4..999)
            .find(|&k| shard_of(&router, k) != shard)
            .expect("another shard");
        let err = router
            .infer(other, &Tensor::zeros(&[1, 1, 28, 28]))
            .expect_err("dead node, but admitted");
        assert!(matches!(err, ServeError::NoWorkers), "{err}");
        assert_eq!(router.metrics().admitted, 1, "other shard was admitted");
    }

    #[test]
    fn gossiped_peer_depth_feeds_admission_until_it_goes_stale() {
        let mut cfg = fast_cfg();
        cfg.admit_per_node = 1;
        cfg.peer_depth_ttl = Duration::from_millis(80);
        let shards = cfg.shards;
        let router = Router::new(cfg, dead_nodes(1));
        // A peer router reports every one of its shards saturated.
        let _ = router.merge_gossip(&Message::Gossip {
            from: "router-9".into(),
            epoch: 0,
            shard_pending: vec![1; shards],
            nodes: vec![],
        });
        let err = router
            .infer(3, &Tensor::zeros(&[1, 1, 28, 28]))
            .expect_err("peer depth saturates the shard cap");
        assert!(matches!(err, ServeError::Overloaded { .. }), "{err}");
        assert_eq!(router.metrics().shed, 1);
        // Once the peer's report ages past the TTL it stops throttling —
        // a dead router's last gasp must not choke the survivors forever.
        std::thread::sleep(Duration::from_millis(100));
        let err = router
            .infer(3, &Tensor::zeros(&[1, 1, 28, 28]))
            .expect_err("dead node, but admitted");
        assert!(matches!(err, ServeError::NoWorkers), "{err}");
        assert_eq!(router.metrics().admitted, 1);
    }

    #[test]
    fn join_leave_bump_the_epoch_and_rebuild_the_map() {
        let router = Router::new_dynamic(fast_cfg());
        assert_eq!(router.membership_epoch(), 0);
        assert!(router.member_ids().is_empty());
        // Requests before any member: a verdict, not a panic.
        let err = router
            .infer(1, &Tensor::zeros(&[1, 1, 28, 28]))
            .expect_err("no members yet");
        assert!(matches!(err, ServeError::NoWorkers), "{err}");

        assert_eq!(router.join("n0", "127.0.0.1:1"), 1);
        assert_eq!(router.join("n1", "127.0.0.1:1"), 2);
        // Idempotent re-announce: same node, same addr, same epoch.
        assert_eq!(router.join("n0", "127.0.0.1:1"), 2);
        assert_eq!(router.member_ids(), vec!["n0", "n1"]);
        assert!(!router.shard_replicas(0).is_empty());

        assert_eq!(router.leave("n1"), 3);
        assert_eq!(router.member_ids(), vec!["n0"]);
        // Leaving twice (or an unknown id) changes nothing.
        assert_eq!(router.leave("n1"), 3);
        assert_eq!(router.leave("ghost"), 3);
        // A re-join clears the tombstone.
        assert_eq!(router.join("n1", "127.0.0.1:2"), 4);
        assert_eq!(router.member_ids(), vec!["n0", "n1"]);
    }

    #[test]
    fn heartbeat_is_an_implicit_join_and_refreshes_depth() {
        let router = Router::new_dynamic(fast_cfg());
        let epoch = router.node_heartbeat("n7", "127.0.0.1:1", 5);
        assert_eq!(epoch, 1, "unknown node's heartbeat joins it");
        assert_eq!(router.member_ids(), vec!["n7"]);
        let m = router.metrics();
        assert_eq!(m.nodes[0].queue_depth, 5);
        // Same node, same addr: depth refresh only, no epoch churn.
        assert_eq!(router.node_heartbeat("n7", "127.0.0.1:1", 2), 1);
        assert_eq!(router.metrics().nodes[0].queue_depth, 2);
        // A re-addressed heartbeat is a membership change.
        assert_eq!(router.node_heartbeat("n7", "127.0.0.1:2", 2), 2);
        assert_eq!(router.metrics().nodes[0].addr, "127.0.0.1:2");
    }

    #[test]
    fn gossip_propagates_members_health_and_tombstones() {
        let a = Router::new_dynamic(RouterConfig {
            id: "router-a".into(),
            ..fast_cfg()
        });
        let b = Router::new_dynamic(RouterConfig {
            id: "router-b".into(),
            ..fast_cfg()
        });
        a.join("n0", "127.0.0.1:1");
        a.join("n1", "127.0.0.1:1");
        assert!(a.report_node_failure("n1"), "n1 is a living member");

        // One push-pull: b learns a's members and its verdict on n1.
        b.gossip_with(&a);
        assert_eq!(b.member_ids(), vec!["n0", "n1"]);
        assert_eq!(b.membership_epoch(), a.membership_epoch());
        let n1 = b
            .metrics()
            .nodes
            .into_iter()
            .find(|n| n.id == "n1")
            .expect("n1 known to b");
        assert!(!n1.up, "health verdict must ride the gossip");

        // A leave on b tombstones n0 everywhere after one more exchange —
        // and a's stale record cannot resurrect it.
        b.leave("n0");
        a.gossip_with(&b);
        assert_eq!(a.member_ids(), vec!["n1"]);
        a.gossip_with(&b);
        assert_eq!(a.member_ids(), vec!["n1"]);
        assert_eq!(b.member_ids(), vec!["n1"]);
        assert_eq!(a.membership_epoch(), b.membership_epoch());
    }

    #[test]
    fn own_digest_and_non_gossip_messages_merge_nothing() {
        let router = Router::new_dynamic(fast_cfg());
        router.join("n0", "127.0.0.1:1");
        let epoch = router.membership_epoch();
        let own = router.gossip_digest();
        let _ = router.merge_gossip(&own);
        let _ = router.merge_gossip(&Message::Shutdown);
        assert_eq!(router.membership_epoch(), epoch);
        assert_eq!(router.member_ids(), vec!["n0"]);
    }

    #[test]
    fn unknown_node_ids_are_elastic_errors() {
        let router = Router::new(fast_cfg(), dead_nodes(1));
        for result in [
            router.cordon("ghost"),
            router.uncordon("ghost"),
            router.update_addr("ghost", "127.0.0.1:2"),
            router.node_in_flight("ghost").map(|_| ()),
        ] {
            assert!(matches!(result, Err(ServeError::Elastic(_))));
        }
    }

    #[test]
    #[should_panic(expected = "node ids must be unique")]
    fn duplicate_node_ids_panic() {
        let mut nodes = dead_nodes(1);
        nodes.push(nodes[0].clone());
        let _ = Router::new(RouterConfig::default(), nodes);
    }

    #[test]
    fn metrics_display_mentions_every_node_and_the_epoch() {
        let router = Router::new(fast_cfg(), dead_nodes(3));
        let text = router.metrics().to_string();
        for id in ["n0", "n1", "n2"] {
            assert!(text.contains(id), "missing {id} in:\n{text}");
        }
        assert!(text.contains("p95"));
        assert!(text.contains("epoch 1"));
    }
}
