//! The routing core: admission control, replica selection, retry, and the
//! TCP front-end loop.
//!
//! A [`Router`] owns a static node membership (ids + addresses; addresses
//! may be updated as nodes restart) and a [`ShardMap`] built from it. Each
//! request is admitted against a cluster-wide in-flight cap, hashed to a
//! shard, and tried against that shard's replicas in least-loaded order;
//! a replica that rejects or fails costs a retry on the next one, so a
//! request admitted by the router is only refused when *every* replica of
//! its shard has refused it. Health bookkeeping is passive (failures are
//! observed on live traffic) with exponential-backoff probing — see
//! [`HealthState`].

use crate::health::HealthState;
use crate::ring::ShardMap;
use fluid_dist::{Message, TcpTransport, Transport};
use fluid_perf::SampleWindow;
use fluid_serve::{ServeError, TcpClient};
use fluid_tensor::Tensor;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How often the front-end accept loop and connection threads poll for
/// shutdown (mirrors `fluid_serve::serve_tcp`).
const POLL: Duration = Duration::from_millis(100);

/// Locks a mutex, recovering the guard if a holder panicked — none of the
/// router's guarded state can be left logically inconsistent by a panic
/// (addresses, health enums, connection pools are each updated in one
/// step).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Tuning knobs for a [`Router`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct RouterConfig {
    /// Replicas per shard (clamped to the node count).
    pub replication: usize,
    /// Number of hash buckets the key space is split into.
    pub shards: usize,
    /// Cluster-wide admission cap, expressed per *up* node: at most
    /// `admit_per_node × max(up_nodes, 1)` requests in flight through the
    /// router; everything past that is shed with
    /// [`ServeError::Overloaded`] before any node queue sees it.
    pub admit_per_node: usize,
    /// Bound on TCP connection establishment to a node.
    pub connect_timeout: Duration,
    /// Bound on one node round trip (send request → receive reply).
    pub request_timeout: Duration,
    /// First mark-down window after a node failure.
    pub probe_backoff: Duration,
    /// Ceiling for the doubling mark-down window.
    pub probe_backoff_max: Duration,
    /// Consecutive `Reject`s from one node before it is marked down (the
    /// node is alive but drowning; give it a backoff window of quiet).
    pub reject_markdown: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            replication: 2,
            shards: 64,
            admit_per_node: 64,
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(10),
            probe_backoff: Duration::from_millis(100),
            probe_backoff_max: Duration::from_millis(3200),
            reject_markdown: 3,
        }
    }
}

/// Decrements a gauge when dropped, so early returns and panics cannot
/// leak in-flight counts.
struct Gauge<'a>(&'a AtomicUsize);

impl Drop for Gauge<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Everything the router tracks about one serve node.
struct NodeEntry {
    id: String,
    addr: Mutex<String>,
    state: Mutex<HealthState>,
    /// Operator-requested: skip for new requests (rolling swap).
    cordoned: AtomicBool,
    /// Requests currently being served by this node via the router.
    in_flight: AtomicUsize,
    /// Consecutive `Reject` verdicts; any success resets it.
    reject_streak: AtomicUsize,
    /// Requests this node answered with logits.
    served: AtomicU64,
    /// Link-level failures observed (connect/transport/timeout).
    deaths: AtomicU64,
    /// Idle connections, reused across requests.
    pool: Mutex<Vec<TcpClient>>,
}

/// Why one node attempt did not produce logits.
enum NodeFailure {
    /// The node is alive but refused the request (shed, bad input, …).
    Reject(String),
    /// The link failed — connect error, dropped socket, reply timeout.
    /// The detail is already folded into the node's health bookkeeping.
    Link,
}

struct Inner {
    cfg: RouterConfig,
    map: ShardMap,
    nodes: Vec<NodeEntry>,
    in_flight_total: AtomicUsize,
    admitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    unroutable: AtomicU64,
    retries: AtomicU64,
    node_deaths: AtomicU64,
    latencies: Mutex<SampleWindow>,
}

/// Liveness and load of one node, as seen in a [`RouterMetrics`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStatus {
    /// The node's id.
    pub id: String,
    /// Current address (changes when a node restarts on a new port).
    pub addr: String,
    /// Whether the router currently considers the node serving.
    pub up: bool,
    /// Whether an operator has cordoned the node (rolling swap).
    pub cordoned: bool,
    /// Requests in flight to this node right now.
    pub in_flight: usize,
    /// Requests this node has answered with logits.
    pub served: u64,
    /// Link failures the router has observed on this node.
    pub deaths: u64,
}

/// A point-in-time snapshot of the router's counters and latency window.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterMetrics {
    /// Requests admitted past the cluster-wide cap.
    pub admitted: u64,
    /// Admitted requests answered with logits.
    pub completed: u64,
    /// Requests shed at admission ([`ServeError::Overloaded`]).
    pub shed: u64,
    /// Admitted requests refused after every replica was tried.
    pub rejected: u64,
    /// Admitted requests that found no replica to even try (all replicas
    /// of the shard down/cordoned and not yet due for a probe).
    pub unroutable: u64,
    /// Extra node attempts beyond the first, across all requests.
    pub retries: u64,
    /// Link failures observed across all nodes.
    pub node_deaths: u64,
    /// Median end-to-end router latency (admission → logits), ms.
    pub p50_ms: f64,
    /// 95th-percentile router latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile router latency, ms.
    pub p99_ms: f64,
    /// Per-node status, in membership order.
    pub nodes: Vec<NodeStatus>,
}

impl std::fmt::Display for RouterMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "router: admitted {} | completed {} | shed {} | rejected {} | unroutable {} | \
             retries {} | node deaths {}",
            self.admitted,
            self.completed,
            self.shed,
            self.rejected,
            self.unroutable,
            self.retries,
            self.node_deaths
        )?;
        writeln!(
            f,
            "latency ms: p50 {:.2} | p95 {:.2} | p99 {:.2}",
            self.p50_ms, self.p95_ms, self.p99_ms
        )?;
        for n in &self.nodes {
            writeln!(
                f,
                "  {:<12} {:<21} {} {} in-flight {:>3} | served {:>6} | deaths {}",
                n.id,
                n.addr,
                if n.up { "up  " } else { "DOWN" },
                if n.cordoned {
                    "[cordoned]"
                } else {
                    "          "
                },
                n.in_flight,
                n.served,
                n.deaths
            )?;
        }
        Ok(())
    }
}

/// The sharding/replicating front-end over a set of `fluid-serve` nodes.
///
/// Cheap to clone (an [`Arc`] inside); clones share all state, so the TCP
/// front-end's per-connection threads and an in-process orchestrator (the
/// drill, `LocalCluster::rolling_swap`) observe one consistent cluster
/// view.
///
/// # Example
///
/// Routing against a single in-process node (multi-node drills live in
/// [`run_drill`](crate::run_drill)):
///
/// ```
/// use fluid_router::{Router, RouterConfig, ServeNode};
/// use fluid_models::{Arch, FluidModel};
/// use fluid_tensor::{Prng, Tensor};
/// use fluid_serve::ServeConfig;
///
/// let model = FluidModel::new(Arch::tiny_28(), &mut Prng::new(0));
/// let spec = model.spec("combined100").unwrap().clone();
/// let mut node =
///     ServeNode::spawn("n0", model.net(), &spec, 1, ServeConfig::default()).unwrap();
/// let router = Router::new(
///     RouterConfig::default(),
///     vec![("n0".to_string(), node.addr().to_string())],
/// );
/// let logits = router.infer(7, &Tensor::zeros(&[1, 1, 28, 28])).unwrap();
/// assert_eq!(logits.dims(), &[1, 10]);
/// assert_eq!(router.metrics().completed, 1);
/// node.kill();
/// ```
#[derive(Clone)]
pub struct Router {
    inner: Arc<Inner>,
}

impl Router {
    /// Builds a router over `nodes` (`(id, addr)` pairs).
    ///
    /// # Panics
    ///
    /// If `nodes` is empty, node ids repeat, or the config's shard /
    /// replication / admission counts are zero.
    pub fn new(cfg: RouterConfig, nodes: Vec<(String, String)>) -> Router {
        assert!(!nodes.is_empty(), "router needs at least one node");
        assert!(cfg.admit_per_node > 0, "admit_per_node must be >= 1");
        let ids: Vec<String> = nodes.iter().map(|(id, _)| id.clone()).collect();
        {
            let mut dedup = ids.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), ids.len(), "node ids must be unique");
        }
        let map = ShardMap::new(&ids, cfg.shards, cfg.replication);
        let entries = nodes
            .into_iter()
            .map(|(id, addr)| NodeEntry {
                id,
                addr: Mutex::new(addr),
                state: Mutex::new(HealthState::Up),
                cordoned: AtomicBool::new(false),
                in_flight: AtomicUsize::new(0),
                reject_streak: AtomicUsize::new(0),
                served: AtomicU64::new(0),
                deaths: AtomicU64::new(0),
                pool: Mutex::new(Vec::new()),
            })
            .collect();
        Router {
            inner: Arc::new(Inner {
                cfg,
                map,
                nodes: entries,
                in_flight_total: AtomicUsize::new(0),
                admitted: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                unroutable: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                node_deaths: AtomicU64::new(0),
                latencies: Mutex::new(SampleWindow::new()),
            }),
        }
    }

    /// Nodes currently considered up (neither marked down nor cordoned).
    fn up_count(&self) -> usize {
        self.inner
            .nodes
            .iter()
            .filter(|n| !n.cordoned.load(Ordering::SeqCst) && lock(&n.state).is_up())
            .count()
    }

    /// Routes one request: admit, hash to a shard, try that shard's
    /// replicas least-loaded-first until one answers.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Overloaded`] — shed at admission; no node saw it.
    /// * [`ServeError::Rejected`] — every tried replica refused; carries
    ///   the last node's reason.
    /// * [`ServeError::NoWorkers`] — every replica is down or cordoned and
    ///   none was due for a probe, or every attempt failed at the link
    ///   level.
    pub fn infer(&self, key: u64, x: &Tensor) -> Result<Tensor, ServeError> {
        self.infer_inner(key, None, x)
    }

    /// Routes one tenant-tagged request: the tenant id doubles as the
    /// shard key (all of a tenant's traffic lands on one shard, so its
    /// quota is enforced at a single node) and the tag is forwarded to the
    /// serve node ([`Message::InferTenant`]), whose tenancy table delivers
    /// the per-tenant verdict.
    ///
    /// # Errors
    ///
    /// Same verdicts as [`infer`](Router::infer); a quota refusal or
    /// unknown-tenant verdict from the node surfaces as
    /// [`ServeError::Rejected`] with the node's reason.
    pub fn infer_tenant(&self, tenant: u64, x: &Tensor) -> Result<Tensor, ServeError> {
        self.infer_inner(tenant, Some(tenant), x)
    }

    fn infer_inner(&self, key: u64, tenant: Option<u64>, x: &Tensor) -> Result<Tensor, ServeError> {
        let inner = &self.inner;
        // Admission: the cap follows the live node count so a shrunken
        // cluster sheds sooner; the max(1) floor keeps probe traffic
        // flowing when everything is marked down.
        let cap = inner.cfg.admit_per_node * self.up_count().max(1);
        if inner
            .in_flight_total
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                (cur < cap).then_some(cur + 1)
            })
            .is_err()
        {
            inner.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded { queue_cap: cap });
        }
        let _admitted_gauge = Gauge(&inner.in_flight_total);
        inner.admitted.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();

        // Candidate order: up replicas by ascending in-flight, then any
        // down replica whose backoff window has elapsed (probes last — a
        // probe is a bet, not a preference).
        let now = Instant::now();
        let replicas = inner.map.replicas(inner.map.shard_of(key));
        let mut up: Vec<usize> = Vec::with_capacity(replicas.len());
        let mut probes: Vec<usize> = Vec::new();
        for &i in replicas {
            let node = &inner.nodes[i];
            if node.cordoned.load(Ordering::SeqCst) {
                continue;
            }
            let state = *lock(&node.state);
            if state.is_up() {
                up.push(i);
            } else if state.due_for_probe(now) {
                probes.push(i);
            }
        }
        up.sort_by_key(|&i| inner.nodes[i].in_flight.load(Ordering::SeqCst));
        up.extend(probes);
        if up.is_empty() {
            inner.unroutable.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::NoWorkers);
        }

        let mut last_reject: Option<String> = None;
        for (attempt, &i) in up.iter().enumerate() {
            if attempt > 0 {
                inner.retries.fetch_add(1, Ordering::Relaxed);
            }
            match self.try_node(i, key, tenant, x) {
                Ok(logits) => {
                    inner.completed.fetch_add(1, Ordering::Relaxed);
                    lock(&inner.latencies).push(t0.elapsed().as_secs_f64() * 1e3);
                    return Ok(logits);
                }
                Err(NodeFailure::Reject(reason)) => last_reject = Some(reason),
                Err(NodeFailure::Link) => {}
            }
        }
        inner.rejected.fetch_add(1, Ordering::Relaxed);
        match last_reject {
            Some(reason) => Err(ServeError::Rejected(reason)),
            None => Err(ServeError::NoWorkers),
        }
    }

    /// One attempt against one node: check out (or open) a connection,
    /// run the keyed round trip, and fold the verdict into health state.
    fn try_node(
        &self,
        i: usize,
        key: u64,
        tenant: Option<u64>,
        x: &Tensor,
    ) -> Result<Tensor, NodeFailure> {
        let inner = &self.inner;
        let node = &inner.nodes[i];
        node.in_flight.fetch_add(1, Ordering::SeqCst);
        let _node_gauge = Gauge(&node.in_flight);
        // Bind the pop in its own statement: a `match` on the guard
        // expression would hold the pool lock across the whole match —
        // including `note_link_failure`, which locks the pool again.
        let pooled = lock(&node.pool).pop();
        let mut client = match pooled {
            Some(client) => client,
            None => {
                let addr = lock(&node.addr).clone();
                match TcpClient::connect_timeout(&addr, inner.cfg.connect_timeout) {
                    Ok(client) => client.with_timeout(inner.cfg.request_timeout),
                    Err(_) => {
                        self.note_link_failure(i);
                        return Err(NodeFailure::Link);
                    }
                }
            }
        };
        let verdict = match tenant {
            Some(t) => client.infer_tenant(t, x),
            None => client.infer_keyed(key, x),
        };
        match verdict {
            Ok(logits) => {
                lock(&node.state).mark_up();
                node.reject_streak.store(0, Ordering::SeqCst);
                node.served.fetch_add(1, Ordering::Relaxed);
                lock(&node.pool).push(client);
                Ok(logits)
            }
            Err(ServeError::Rejected(reason)) => {
                // The node is alive (it answered) but refusing. A streak of
                // refusals earns it a quiet backoff window; the connection
                // itself is still good.
                let streak = node.reject_streak.fetch_add(1, Ordering::SeqCst) + 1;
                if streak >= inner.cfg.reject_markdown {
                    lock(&node.state).mark_down(
                        inner.cfg.probe_backoff,
                        inner.cfg.probe_backoff_max,
                        Instant::now(),
                    );
                }
                lock(&node.pool).push(client);
                Err(NodeFailure::Reject(reason))
            }
            Err(_) => {
                // Link-level failure: drop this connection and everything
                // pooled for the node — they share its fate.
                self.note_link_failure(i);
                Err(NodeFailure::Link)
            }
        }
    }

    /// Marks node `i` down after a link failure and drops its pooled
    /// connections.
    fn note_link_failure(&self, i: usize) {
        let node = &self.inner.nodes[i];
        lock(&node.state).mark_down(
            self.inner.cfg.probe_backoff,
            self.inner.cfg.probe_backoff_max,
            Instant::now(),
        );
        node.deaths.fetch_add(1, Ordering::Relaxed);
        self.inner.node_deaths.fetch_add(1, Ordering::Relaxed);
        lock(&node.pool).clear();
    }

    /// Index of the node named `id`.
    fn index_of(&self, id: &str) -> Result<usize, ServeError> {
        self.inner
            .nodes
            .iter()
            .position(|n| n.id == id)
            .ok_or_else(|| ServeError::Elastic(format!("unknown node {id}")))
    }

    /// Excludes a node from new requests (in-flight ones finish). The
    /// rolling-swap orchestration cordons, waits for
    /// [`node_in_flight`](Router::node_in_flight) to reach zero, swaps,
    /// then uncordons.
    ///
    /// # Errors
    ///
    /// [`ServeError::Elastic`] when no node has this id.
    pub fn cordon(&self, id: &str) -> Result<(), ServeError> {
        let i = self.index_of(id)?;
        self.inner.nodes[i].cordoned.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Readmits a cordoned node to replica selection.
    ///
    /// # Errors
    ///
    /// [`ServeError::Elastic`] when no node has this id.
    pub fn uncordon(&self, id: &str) -> Result<(), ServeError> {
        let i = self.index_of(id)?;
        self.inner.nodes[i].cordoned.store(false, Ordering::SeqCst);
        Ok(())
    }

    /// Requests currently in flight to the node named `id` via this
    /// router.
    ///
    /// # Errors
    ///
    /// [`ServeError::Elastic`] when no node has this id.
    pub fn node_in_flight(&self, id: &str) -> Result<usize, ServeError> {
        let i = self.index_of(id)?;
        Ok(self.inner.nodes[i].in_flight.load(Ordering::SeqCst))
    }

    /// Points a node id at a new address (a restarted node binds a fresh
    /// ephemeral port). Pooled connections to the old address are dropped
    /// and the node is made immediately due for a probe, so the next
    /// request to its shards re-establishes contact without waiting out a
    /// backoff window.
    ///
    /// # Errors
    ///
    /// [`ServeError::Elastic`] when no node has this id.
    pub fn update_addr(&self, id: &str, addr: &str) -> Result<(), ServeError> {
        let i = self.index_of(id)?;
        let node = &self.inner.nodes[i];
        *lock(&node.addr) = addr.to_string();
        lock(&node.pool).clear();
        *lock(&node.state) = HealthState::Down {
            until: Instant::now(),
            backoff: self.inner.cfg.probe_backoff,
        };
        Ok(())
    }

    /// Snapshots counters, the latency window, and per-node status.
    pub fn metrics(&self) -> RouterMetrics {
        let inner = &self.inner;
        let mut window = lock(&inner.latencies);
        RouterMetrics {
            admitted: inner.admitted.load(Ordering::Relaxed),
            completed: inner.completed.load(Ordering::Relaxed),
            shed: inner.shed.load(Ordering::Relaxed),
            rejected: inner.rejected.load(Ordering::Relaxed),
            unroutable: inner.unroutable.load(Ordering::Relaxed),
            retries: inner.retries.load(Ordering::Relaxed),
            node_deaths: inner.node_deaths.load(Ordering::Relaxed),
            p50_ms: window.percentile(0.50),
            p95_ms: window.percentile(0.95),
            p99_ms: window.percentile(0.99),
            nodes: inner
                .nodes
                .iter()
                .map(|n| NodeStatus {
                    id: n.id.clone(),
                    addr: lock(&n.addr).clone(),
                    up: lock(&n.state).is_up(),
                    cordoned: n.cordoned.load(Ordering::SeqCst),
                    in_flight: n.in_flight.load(Ordering::SeqCst),
                    served: n.served.load(Ordering::Relaxed),
                    deaths: n.deaths.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("cfg", &self.inner.cfg)
            .field("nodes", &self.inner.nodes.len())
            .finish_non_exhaustive()
    }
}

/// Serves the router over TCP until `shutdown` flips: the cluster's
/// single client-facing endpoint, speaking the same wire dialect as a
/// plain serve node.
///
/// [`Message::InferKeyed`] routes by its `shard_key`; a plain
/// [`Message::Infer`] is accepted too, using `request_id` as the key (so
/// existing clients work unchanged, at the cost of key affinity).
/// Failures come back as [`Message::Reject`] with the router's verdict as
/// the reason.
///
/// # Errors
///
/// Returns the listener's I/O error; per-connection failures only end
/// that connection.
pub fn route_tcp(
    listener: TcpListener,
    router: Router,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut connections = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let router = router.clone();
                let shutdown = Arc::clone(&shutdown);
                connections.push(std::thread::spawn(move || {
                    let _ = route_connection(stream, &router, &shutdown);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                connections.retain(|c: &std::thread::JoinHandle<()>| !c.is_finished());
                std::thread::sleep(POLL)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    for c in connections {
        let _ = c.join();
    }
    Ok(())
}

/// One front-end connection: route each request, answer `Logits` or
/// `Reject`.
fn route_connection(
    stream: TcpStream,
    router: &Router,
    shutdown: &AtomicBool,
) -> Result<(), ServeError> {
    let mut transport =
        TcpTransport::new(stream).map_err(|e| ServeError::Transport(e.to_string()))?;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let (request_id, key, tenant, input) = match transport.recv_timeout(POLL) {
            Ok(Some(Message::InferKeyed {
                request_id,
                shard_key,
                input,
            })) => (request_id, shard_key, None, input),
            // A tenant tag shards by tenant id and rides through to the
            // node, whose tenancy table gives the per-tenant verdict.
            Ok(Some(Message::InferTenant {
                request_id,
                tenant,
                input,
            })) => (request_id, tenant, Some(tenant), input),
            Ok(Some(Message::Infer { request_id, input })) => (request_id, request_id, None, input),
            Ok(Some(Message::Shutdown)) => return Ok(()),
            Ok(Some(Message::Heartbeat { seq })) => {
                transport
                    .send(&Message::HeartbeatAck { seq })
                    .map_err(|e| ServeError::Transport(e.to_string()))?;
                continue;
            }
            Ok(Some(_)) => continue, // not part of the routing dialogue
            Ok(None) => continue,
            Err(e) => return Err(ServeError::Transport(e.to_string())),
        };
        let routed = match tenant {
            Some(t) => router.infer_tenant(t, &input),
            None => router.infer(key, &input),
        };
        let reply = match routed {
            Ok(logits) => Message::Logits { request_id, logits },
            Err(e) => Message::Reject {
                request_id,
                reason: e.to_string(),
            },
        };
        transport
            .send(&reply)
            .map_err(|e| ServeError::Transport(e.to_string()))?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dead_nodes(n: usize) -> Vec<(String, String)> {
        // Port 1 refuses connections immediately on loopback.
        (0..n)
            .map(|i| (format!("n{i}"), "127.0.0.1:1".to_string()))
            .collect()
    }

    fn fast_cfg() -> RouterConfig {
        RouterConfig {
            connect_timeout: Duration::from_millis(200),
            request_timeout: Duration::from_millis(500),
            probe_backoff: Duration::from_millis(50),
            ..RouterConfig::default()
        }
    }

    #[test]
    fn all_replicas_dead_is_a_verdict_not_a_hang() {
        let router = Router::new(fast_cfg(), dead_nodes(3));
        let t0 = Instant::now();
        let err = router
            .infer(1, &Tensor::zeros(&[1, 1, 28, 28]))
            .expect_err("nothing listens");
        assert!(matches!(err, ServeError::NoWorkers), "{err}");
        assert!(t0.elapsed() < Duration::from_secs(3));
        let m = router.metrics();
        assert_eq!(m.admitted, 1);
        assert_eq!(m.completed, 0);
        assert!(m.node_deaths >= 1, "failures must be recorded");
    }

    #[test]
    fn downed_replicas_make_the_shard_unroutable_until_probe_time() {
        let router = Router::new(fast_cfg(), dead_nodes(3));
        // First request marks this shard's replicas down…
        let _ = router.infer(1, &Tensor::zeros(&[1, 1, 28, 28]));
        // …so an immediate retry of the same key finds no candidate at all
        // (the backoff window has not elapsed) and fails fast.
        let t0 = Instant::now();
        let err = router
            .infer(1, &Tensor::zeros(&[1, 1, 28, 28]))
            .expect_err("replicas are in backoff");
        assert!(matches!(err, ServeError::NoWorkers), "{err}");
        assert!(
            t0.elapsed() < Duration::from_millis(100),
            "did not fail fast"
        );
        assert_eq!(router.metrics().unroutable, 1);
        // After the window, the same key is probed again (and fails again,
        // but by *trying*, which is the point).
        std::thread::sleep(Duration::from_millis(60));
        let deaths_before = router.metrics().node_deaths;
        let _ = router.infer(1, &Tensor::zeros(&[1, 1, 28, 28]));
        assert!(router.metrics().node_deaths > deaths_before);
    }

    #[test]
    fn cordoning_every_node_refuses_without_trying() {
        let router = Router::new(fast_cfg(), dead_nodes(2));
        router.cordon("n0").expect("cordon n0");
        router.cordon("n1").expect("cordon n1");
        let err = router
            .infer(9, &Tensor::zeros(&[1, 1, 28, 28]))
            .expect_err("everything cordoned");
        assert!(matches!(err, ServeError::NoWorkers), "{err}");
        let m = router.metrics();
        assert_eq!(m.unroutable, 1);
        assert_eq!(m.node_deaths, 0, "cordoned nodes must not be dialed");
        router.uncordon("n0").expect("uncordon");
        assert!(!router.metrics().nodes[0].cordoned);
    }

    #[test]
    fn admission_cap_sheds_before_dialing_anyone() {
        let mut cfg = fast_cfg();
        cfg.admit_per_node = 1;
        let router = Router::new(cfg, dead_nodes(1));
        // Hold the only admission slot by parking a gauge manually.
        router.inner.in_flight_total.fetch_add(1, Ordering::SeqCst);
        let err = router
            .infer(3, &Tensor::zeros(&[1, 1, 28, 28]))
            .expect_err("cap is full");
        assert!(
            matches!(err, ServeError::Overloaded { queue_cap: 1 }),
            "{err}"
        );
        let m = router.metrics();
        assert_eq!(m.shed, 1);
        assert_eq!(m.admitted, 0);
        assert_eq!(m.node_deaths, 0, "shed requests must not touch nodes");
        router.inner.in_flight_total.fetch_sub(1, Ordering::SeqCst);
    }

    #[test]
    fn unknown_node_ids_are_elastic_errors() {
        let router = Router::new(fast_cfg(), dead_nodes(1));
        for result in [
            router.cordon("ghost"),
            router.uncordon("ghost"),
            router.update_addr("ghost", "127.0.0.1:2"),
            router.node_in_flight("ghost").map(|_| ()),
        ] {
            assert!(matches!(result, Err(ServeError::Elastic(_))));
        }
    }

    #[test]
    #[should_panic(expected = "node ids must be unique")]
    fn duplicate_node_ids_panic() {
        let mut nodes = dead_nodes(1);
        nodes.push(nodes[0].clone());
        let _ = Router::new(RouterConfig::default(), nodes);
    }

    #[test]
    fn metrics_display_mentions_every_node() {
        let router = Router::new(fast_cfg(), dead_nodes(3));
        let text = router.metrics().to_string();
        for id in ["n0", "n1", "n2"] {
            assert!(text.contains(id), "missing {id} in:\n{text}");
        }
        assert!(text.contains("p95"));
    }
}
