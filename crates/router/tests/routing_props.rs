//! Property tests for the router's shard assignment: restart determinism
//! and minimal disruption under membership change. These are the two
//! guarantees that make the cluster tier operable — a router restart must
//! not reshuffle traffic, and losing (or adding) one node must only move
//! the keys that node actually served.

use fluid_router::{Router, RouterConfig, ShardMap};
use proptest::prelude::*;

/// A strategy for small, unique node-id lists (2–8 nodes).
fn node_ids() -> impl Strategy<Value = Vec<String>> {
    (2usize..=8).prop_map(|n| (0..n).map(|i| format!("node-{i}")).collect())
}

/// A dynamic router with the given table shape (no sockets involved —
/// membership and shard assignment are pure state).
fn dyn_router(shards: usize, replication: usize) -> Router {
    let mut cfg = RouterConfig::default();
    cfg.shards = shards;
    cfg.replication = replication;
    Router::new_dynamic(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same membership + config ⇒ the same shard for every key, across
    /// independently built maps (a router restart).
    fn restart_reproduces_every_assignment(
        nodes in node_ids(),
        shards in 1usize..=128,
        replication in 1usize..=4,
        keys in proptest::collection::vec(any::<u64>(), 1..32),
    ) {
        let a = ShardMap::new(&nodes, shards, replication);
        let b = ShardMap::new(&nodes, shards, replication);
        for &key in &keys {
            let shard = a.shard_of(key);
            prop_assert_eq!(shard, b.shard_of(key));
            prop_assert_eq!(a.replicas(shard), b.replicas(shard));
            prop_assert!(shard < shards);
        }
    }

    /// The membership order must not matter beyond index naming: building
    /// from the same ids yields replica sets naming the same *nodes* for
    /// every shard, whatever order the ids arrived in.
    fn membership_order_is_irrelevant(
        nodes in node_ids(),
        shards in 1usize..=64,
        replication in 1usize..=3,
        rot in 0usize..8,
    ) {
        let mut rotated = nodes.clone();
        rotated.rotate_left(rot % nodes.len());
        let a = ShardMap::new(&nodes, shards, replication);
        let b = ShardMap::new(&rotated, shards, replication);
        for shard in 0..shards {
            let names_a: Vec<&str> =
                a.replicas(shard).iter().map(|&i| nodes[i].as_str()).collect();
            let names_b: Vec<&str> =
                b.replicas(shard).iter().map(|&i| rotated[i].as_str()).collect();
            prop_assert_eq!(names_a, names_b, "shard {} depends on id order", shard);
        }
    }

    /// Removing one node remaps only the shards it served: every shard
    /// whose replica set did not contain the removed node keeps exactly
    /// the same replica set (by node *name*), in the same order.
    fn removing_a_node_touches_only_its_shards(
        nodes in node_ids(),
        shards in 1usize..=128,
        replication in 1usize..=3,
        victim in 0usize..8,
    ) {
        let victim = victim % nodes.len();
        let survivors: Vec<String> = nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim)
            .map(|(_, id)| id.clone())
            .collect();
        // One survivor is below the 2-node floor of the strategy only when
        // nodes.len() == 2; a 1-node map is still valid, so no filtering.
        let before = ShardMap::new(&nodes, shards, replication);
        let after = ShardMap::new(&survivors, shards, replication);
        for shard in 0..shards {
            let names_before: Vec<&str> =
                before.replicas(shard).iter().map(|&i| nodes[i].as_str()).collect();
            if names_before.contains(&nodes[victim].as_str()) {
                continue; // this shard is allowed (expected) to change
            }
            let names_after: Vec<&str> =
                after.replicas(shard).iter().map(|&i| survivors[i].as_str()).collect();
            // When the survivor count no longer supports the requested
            // replication the set legitimately shrinks; the preserved
            // prefix must still match.
            prop_assert_eq!(
                &names_before[..names_after.len()],
                &names_after[..],
                "shard {} reshuffled although node {} never served it",
                shard,
                &nodes[victim]
            );
        }
    }

    /// Adding a node only ever *inserts* it into some replica sets: a
    /// shard that does not adopt the newcomer keeps its replica set
    /// verbatim.
    fn adding_a_node_touches_only_adopting_shards(
        nodes in node_ids(),
        shards in 1usize..=128,
        replication in 1usize..=3,
    ) {
        let mut grown = nodes.clone();
        grown.push("node-new".to_string());
        let before = ShardMap::new(&nodes, shards, replication);
        let after = ShardMap::new(&grown, shards, replication);
        let mut adopted = 0usize;
        for shard in 0..shards {
            let names_after: Vec<&str> =
                after.replicas(shard).iter().map(|&i| grown[i].as_str()).collect();
            if names_after.contains(&"node-new") {
                adopted += 1;
                continue;
            }
            let names_before: Vec<&str> =
                before.replicas(shard).iter().map(|&i| nodes[i].as_str()).collect();
            prop_assert_eq!(
                names_before,
                names_after,
                "shard {} reshuffled without adopting the new node",
                shard
            );
        }
        // With enough shards the newcomer must claim some share — HRW
        // without that would silently strand new capacity.
        if shards >= 64 {
            prop_assert!(adopted > 0, "new node got no shards out of {}", shards);
        }
    }

    /// Key → shard assignment never depends on membership at all (only
    /// the shard count), so resharding is the only operation that moves a
    /// key between buckets.
    fn key_to_shard_ignores_membership(
        nodes in node_ids(),
        shards in 1usize..=128,
        key in any::<u64>(),
    ) {
        let small = ShardMap::new(&nodes[..2.min(nodes.len())], shards, 1);
        let large = ShardMap::new(&nodes, shards, 2);
        prop_assert_eq!(small.shard_of(key), large.shard_of(key));
    }

    /// Announced churn — an arbitrary interleaving of Join/Leave frames
    /// applied through the router's membership API — lands on exactly the
    /// shard table a *fresh* map over the surviving ids would build:
    /// dynamic membership inherits every ShardMap property (restart
    /// determinism, minimal remap) by construction, whatever order the
    /// announcements arrived in.
    fn announced_churn_matches_a_fresh_map(
        ops in proptest::collection::vec((any::<bool>(), 0usize..8), 1..24),
        shards in 1usize..=64,
        replication in 1usize..=3,
    ) {
        let router = dyn_router(shards, replication);
        let mut alive = std::collections::BTreeSet::new();
        let mut last_epoch = 0;
        for (join, n) in ops {
            let id = format!("node-{n}");
            let epoch = if join {
                alive.insert(id.clone());
                router.join(&id, "127.0.0.1:1")
            } else {
                alive.remove(&id);
                router.leave(&id)
            };
            prop_assert!(epoch >= last_epoch, "epochs must be monotonic");
            last_epoch = epoch;
        }
        let ids: Vec<String> = alive.iter().cloned().collect();
        prop_assert_eq!(router.member_ids(), ids.clone());
        if ids.is_empty() {
            for shard in 0..shards {
                prop_assert!(router.shard_replicas(shard).is_empty());
            }
        } else {
            let fresh = ShardMap::new(&ids, shards, replication);
            for shard in 0..shards {
                let want: Vec<String> = fresh
                    .replicas(shard)
                    .iter()
                    .map(|&i| ids[i].clone())
                    .collect();
                prop_assert_eq!(
                    router.shard_replicas(shard),
                    want,
                    "shard {} diverged from the fresh map",
                    shard
                );
            }
        }
    }

    /// An announced Leave remaps only the shards the departing node
    /// served — the minimal-remap guarantee, asserted through the live
    /// membership path (tombstone + rebuild) rather than on raw maps.
    fn an_announced_leave_touches_only_the_victims_shards(
        nodes in node_ids(),
        shards in 1usize..=64,
        replication in 1usize..=3,
        victim in 0usize..8,
    ) {
        let router = dyn_router(shards, replication);
        for id in &nodes {
            router.join(id, "127.0.0.1:1");
        }
        let victim = nodes[victim % nodes.len()].clone();
        let before: Vec<Vec<String>> =
            (0..shards).map(|s| router.shard_replicas(s)).collect();
        router.leave(&victim);
        for (shard, names_before) in before.iter().enumerate() {
            if names_before.contains(&victim) {
                continue; // this shard is allowed (expected) to change
            }
            let names_after = router.shard_replicas(shard);
            // When the survivor count no longer supports the requested
            // replication the set legitimately shrinks; the preserved
            // prefix must still match.
            prop_assert_eq!(
                &names_before[..names_after.len()],
                &names_after[..],
                "shard {} reshuffled although {} never served it",
                shard,
                &victim
            );
        }
    }
}
