//! Property tests for router gossip convergence: R routers that apply an
//! arbitrary interleaving of membership operations — with gossip
//! exchanges happening only where the generated schedule allows them, a
//! stand-in for arbitrary partitions between routers — must, once the
//! partition heals (full anti-entropy rounds), converge to **identical**
//! membership epochs, member sets, addresses, and health verdicts within
//! a bounded number of rounds.
//!
//! This is the replicated-router safety argument in executable form: no
//! operation order, no lost exchange, and no conflicting concurrent
//! verdict may leave two routers permanently disagreeing about the
//! cluster.

use fluid_router::{Router, RouterConfig};
use proptest::prelude::*;

/// One step of an adversarial history. Router and node indices are taken
/// modulo the live counts, so every generated value is meaningful.
#[derive(Debug, Clone)]
enum Op {
    /// `Join(router, node, addr_variant)` — a node announces itself to
    /// one router, possibly at a different address than other routers
    /// heard (the tie the merge's addr ordering must settle).
    Join(u8, u8, u8),
    /// A node leaves through one router (tombstone).
    Leave(u8, u8),
    /// One router observes a node failure (health verdict down).
    Fail(u8, u8),
    /// A heartbeat reaches one router (implicit join + depth refresh).
    Heartbeat(u8, u8, u8),
    /// One gossip exchange the "network" let through.
    Exchange(u8, u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(r, n, a)| Op::Join(r, n, a)),
        (any::<u8>(), any::<u8>()).prop_map(|(r, n)| Op::Leave(r, n)),
        (any::<u8>(), any::<u8>()).prop_map(|(r, n)| Op::Fail(r, n)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(r, n, d)| Op::Heartbeat(r, n, d)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Exchange(a, b)),
    ]
}

/// Everything two converged routers must agree on: epoch, and per living
/// member its id, address, and health verdict. (Probe deadlines are
/// wall-clock-relative and queue depths are load telemetry; neither is
/// part of the agreement.)
fn view(router: &Router) -> (u64, Vec<(String, String, bool)>) {
    let mut nodes: Vec<(String, String, bool)> = router
        .metrics()
        .nodes
        .into_iter()
        .map(|n| (n.id, n.addr, n.up))
        .collect();
    nodes.sort();
    (router.membership_epoch(), nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    fn routers_converge_within_bounded_rounds_after_heal(
        n_routers in 2usize..=4,
        ops in proptest::collection::vec(op(), 1..40),
    ) {
        let routers: Vec<Router> = (0..n_routers)
            .map(|i| {
                let mut cfg = RouterConfig::default();
                cfg.id = format!("router-{i}");
                Router::new_dynamic(cfg)
            })
            .collect();
        let node_id = |n: u8| format!("node-{}", n % 6);
        let addr = |a: u8| format!("127.0.0.1:{}", 1000 + u16::from(a % 3));
        for op in &ops {
            match *op {
                Op::Join(r, n, a) => {
                    routers[r as usize % n_routers].join(&node_id(n), &addr(a));
                }
                Op::Leave(r, n) => {
                    routers[r as usize % n_routers].leave(&node_id(n));
                }
                Op::Fail(r, n) => {
                    let _ = routers[r as usize % n_routers].report_node_failure(&node_id(n));
                }
                Op::Heartbeat(r, n, d) => {
                    routers[r as usize % n_routers].node_heartbeat(
                        &node_id(n),
                        &addr(0),
                        u32::from(d),
                    );
                }
                Op::Exchange(a, b) => {
                    let (i, j) = (a as usize % n_routers, b as usize % n_routers);
                    if i != j {
                        routers[i].gossip_with(&routers[j]);
                    }
                }
            }
        }

        // Heal: full all-pairs anti-entropy rounds. One round already
        // spreads any record transitively (push-pull along the chain);
        // the bound is deliberately generous so a failure here means
        // *divergence*, not slowness.
        let bound = 2 * n_routers;
        let mut rounds = 0usize;
        let converged = loop {
            let views: Vec<_> = routers.iter().map(view).collect();
            if views.windows(2).all(|w| w[0] == w[1]) {
                break true;
            }
            if rounds >= bound {
                break false;
            }
            for i in 0..n_routers {
                for j in (i + 1)..n_routers {
                    routers[i].gossip_with(&routers[j]);
                }
            }
            rounds += 1;
        };
        prop_assert!(
            converged,
            "routers still disagree after {} healed rounds:\n{:#?}",
            bound,
            routers.iter().map(view).collect::<Vec<_>>()
        );

        // Convergence must be *stable*: another round changes nothing.
        let before: Vec<_> = routers.iter().map(view).collect();
        for i in 0..n_routers {
            for j in (i + 1)..n_routers {
                routers[i].gossip_with(&routers[j]);
            }
        }
        let after: Vec<_> = routers.iter().map(view).collect();
        prop_assert_eq!(before, after, "a converged cluster must stay put");
    }
}
