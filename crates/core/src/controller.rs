//! The runtime controller: chooses mode and deployment to meet a goal.

use crate::reliability::{can_operate, surviving_subnet};
use fluid_dist::Mode;
use fluid_perf::{DeviceAvailability, ModelFamily, SystemModel};

/// What the application currently wants from the system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Goal {
    /// Peak accuracy: prefer collective execution of the widest model.
    MaxAccuracy,
    /// Peak throughput: prefer independent parallel sub-networks.
    MaxThroughput,
    /// Meet a throughput floor (img/s) with the most accurate deployment
    /// that satisfies it.
    ThroughputFloor(f64),
}

/// A concrete deployment decision.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentPlan {
    /// Sub-network (registry name) on the Master, if the Master is alive.
    pub master_subnet: Option<String>,
    /// Sub-network on the Worker, if the Worker is alive.
    pub worker_subnet: Option<String>,
    /// Execution mode (meaningful only when both devices are alive).
    pub mode: Mode,
    /// Modelled throughput of this plan (img/s).
    pub expected_ips: f64,
}

/// Decides deployments for a model family from goals and availability,
/// using the performance model to rank options — the paper's "seamlessly
/// transition between two modes to meet varying performance demands".
#[derive(Debug, Clone)]
pub struct RuntimeController {
    family: ModelFamily,
    system: SystemModel,
}

impl RuntimeController {
    /// Creates a controller for `family` over the given system model.
    pub fn new(family: ModelFamily, system: SystemModel) -> Self {
        Self { family, system }
    }

    /// The model family being controlled.
    pub fn family(&self) -> ModelFamily {
        self.family
    }

    /// Chooses a deployment for the goal under the given availability.
    /// Returns `None` when the family cannot operate at all (the paper's
    /// zero bars).
    pub fn plan(&self, goal: Goal, availability: DeviceAvailability) -> Option<DeploymentPlan> {
        if !can_operate(self.family, availability) {
            return None;
        }
        if availability != DeviceAvailability::Both {
            // Degraded: the only choice is the surviving sub-network.
            let name = surviving_subnet(self.family, availability)?;
            let ips = self
                .system
                .evaluate(self.family, availability, false)
                .throughput_ips;
            let (master, worker) = match availability {
                DeviceAvailability::OnlyMaster => (Some(name.to_owned()), None),
                DeviceAvailability::OnlyWorker => (None, Some(name.to_owned())),
                DeviceAvailability::Both => unreachable!(),
            };
            return Some(DeploymentPlan {
                master_subnet: master,
                worker_subnet: worker,
                mode: Mode::HighThroughput,
                expected_ips: ips,
            });
        }

        let ha = self.both_plan(false);
        let ht = self.both_plan(true);
        match goal {
            Goal::MaxAccuracy => Some(ha),
            Goal::MaxThroughput => Some(if ht.expected_ips >= ha.expected_ips {
                ht
            } else {
                ha
            }),
            Goal::ThroughputFloor(floor) => {
                // Prefer the accurate plan when it meets the floor.
                if ha.expected_ips >= floor {
                    Some(ha)
                } else {
                    Some(ht)
                }
            }
        }
    }

    fn both_plan(&self, ht: bool) -> DeploymentPlan {
        let ips = self
            .system
            .evaluate(self.family, DeviceAvailability::Both, ht)
            .throughput_ips;
        let (master, worker, mode) = match (self.family, ht) {
            (ModelFamily::Static, _) => ("full", Some("full"), Mode::HighAccuracy),
            (ModelFamily::Dynamic, false) => ("width16", Some("width16"), Mode::HighAccuracy),
            (ModelFamily::Dynamic, true) => ("width8", None, Mode::HighThroughput),
            (ModelFamily::Fluid, false) => ("lower50", Some("upper50"), Mode::HighAccuracy),
            (ModelFamily::Fluid, true) => ("lower50", Some("upper50"), Mode::HighThroughput),
        };
        DeploymentPlan {
            master_subnet: Some(master.to_owned()),
            worker_subnet: worker.map(str::to_owned),
            mode,
            expected_ips: ips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(family: ModelFamily) -> RuntimeController {
        RuntimeController::new(family, SystemModel::paper_testbed())
    }

    #[test]
    fn fluid_accuracy_goal_selects_ha() {
        let plan = controller(ModelFamily::Fluid)
            .plan(Goal::MaxAccuracy, DeviceAvailability::Both)
            .expect("plan");
        assert_eq!(plan.mode, Mode::HighAccuracy);
        assert_eq!(plan.master_subnet.as_deref(), Some("lower50"));
        assert_eq!(plan.worker_subnet.as_deref(), Some("upper50"));
    }

    #[test]
    fn fluid_throughput_goal_selects_ht() {
        let plan = controller(ModelFamily::Fluid)
            .plan(Goal::MaxThroughput, DeviceAvailability::Both)
            .expect("plan");
        assert_eq!(plan.mode, Mode::HighThroughput);
        assert!(plan.expected_ips > 25.0, "{}", plan.expected_ips);
    }

    #[test]
    fn throughput_floor_picks_accurate_when_feasible() {
        let c = controller(ModelFamily::Fluid);
        let easy = c
            .plan(Goal::ThroughputFloor(5.0), DeviceAvailability::Both)
            .expect("plan");
        assert_eq!(easy.mode, Mode::HighAccuracy);
        let hard = c
            .plan(Goal::ThroughputFloor(20.0), DeviceAvailability::Both)
            .expect("plan");
        assert_eq!(hard.mode, Mode::HighThroughput);
    }

    #[test]
    fn static_has_no_degraded_plan() {
        let c = controller(ModelFamily::Static);
        assert!(c
            .plan(Goal::MaxThroughput, DeviceAvailability::OnlyMaster)
            .is_none());
        assert!(c
            .plan(Goal::MaxThroughput, DeviceAvailability::OnlyWorker)
            .is_none());
    }

    #[test]
    fn dynamic_degrades_to_master_prefix() {
        let plan = controller(ModelFamily::Dynamic)
            .plan(Goal::MaxAccuracy, DeviceAvailability::OnlyMaster)
            .expect("plan");
        assert_eq!(plan.master_subnet.as_deref(), Some("width8"));
        assert_eq!(plan.worker_subnet, None);
    }

    #[test]
    fn fluid_survives_master_loss_on_worker() {
        let plan = controller(ModelFamily::Fluid)
            .plan(Goal::MaxAccuracy, DeviceAvailability::OnlyWorker)
            .expect("plan");
        assert_eq!(plan.worker_subnet.as_deref(), Some("upper50"));
        assert!(plan.expected_ips > 10.0);
    }
}
