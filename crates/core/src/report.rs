//! Plain-text tables for examples and the bench harness.

use crate::reliability::can_operate;
use crate::scenarios::AccuracyRow;
use fluid_perf::{DeviceAvailability, Fig2Row, ModelFamily};

/// Formats the Fig. 2 throughput panel as an aligned text table.
pub fn format_throughput_table(rows: &[Fig2Row]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 2 (throughput, image/s) — modelled vs paper\n");
    out.push_str(&format!(
        "{:<8} {:<4} {:<16} {:>9} {:>9}\n",
        "model", "mode", "devices", "modelled", "paper"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<4} {:<16} {:>9.1} {:>9.1}\n",
            r.family.to_string(),
            r.mode,
            r.availability.to_string(),
            r.throughput_ips,
            r.paper_ips
        ));
    }
    out
}

/// Formats the Fig. 2 accuracy panel as an aligned text table.
pub fn format_accuracy_table(rows: &[AccuracyRow]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 2 (accuracy, %) — measured on SynthDigits vs paper (MNIST)\n");
    out.push_str(&format!(
        "{:<8} {:<4} {:<16} {:>9} {:>9}\n",
        "model", "mode", "devices", "measured", "paper"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<4} {:<16} {:>9.1} {:>9.1}\n",
            r.family.to_string(),
            r.mode,
            r.availability.to_string(),
            r.accuracy * 100.0,
            r.paper_pct
        ));
    }
    out
}

/// Formats the Fig. 1(b,c) capability matrix.
pub fn format_capability_matrix() -> String {
    let mut out = String::new();
    out.push_str("Fig. 1(b,c) capability matrix (can the system keep inferring?)\n");
    out.push_str(&format!(
        "{:<8} {:<16} {:<10}\n",
        "model", "devices", "operates"
    ));
    for family in [
        ModelFamily::Static,
        ModelFamily::Dynamic,
        ModelFamily::Fluid,
    ] {
        for avail in [
            DeviceAvailability::Both,
            DeviceAvailability::OnlyMaster,
            DeviceAvailability::OnlyWorker,
        ] {
            out.push_str(&format!(
                "{:<8} {:<16} {:<10}\n",
                family.to_string(),
                avail.to_string(),
                if can_operate(family, avail) {
                    "yes"
                } else {
                    "NO"
                }
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluid_perf::SystemModel;

    #[test]
    fn throughput_table_contains_all_families() {
        let rows = SystemModel::paper_testbed().fig2_table();
        let s = format_throughput_table(&rows);
        for needle in ["Static", "Dynamic", "Fluid", "28.3", "modelled"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn capability_matrix_has_nine_rows() {
        let s = format_capability_matrix();
        let data_lines = s
            .lines()
            .filter(|l| l.contains("yes") || l.contains("NO"))
            .count();
        assert_eq!(data_lines, 9);
    }

    #[test]
    fn accuracy_table_formats_percentages() {
        let rows = vec![AccuracyRow {
            family: ModelFamily::Fluid,
            mode: "HA",
            availability: DeviceAvailability::Both,
            accuracy: 0.987,
            paper_pct: 99.2,
        }];
        let s = format_accuracy_table(&rows);
        assert!(s.contains("98.7"), "{s}");
        assert!(s.contains("99.2"), "{s}");
    }
}
