//! Branch→device assignment planning for heterogeneous devices.
//!
//! The paper's Worker measures ~4% slower than its Master. With asymmetric
//! branches (e.g. the combined75 model's lower50 + upper25) the assignment
//! matters: High-Accuracy latency is the *maximum* of the branch latencies,
//! so the wider branch belongs on the faster device. This planner
//! enumerates assignments and picks the best for the requested mode.

use fluid_models::{branch_cost, Arch, SubnetSpec};
use fluid_perf::DeviceModel;
use std::time::Duration;

/// One branch→device assignment with its modelled performance.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `slots[d]` is the index of the branch assigned to device `d`
    /// (devices in the order given to the planner).
    pub slots: Vec<usize>,
    /// Modelled HA latency (max branch latency; communication excluded —
    /// it is assignment-independent).
    pub ha_latency: Duration,
    /// Modelled HT throughput (sum of device rates on their branches).
    pub ht_throughput_ips: f64,
}

/// Enumerates all assignments of a collective sub-network's branches onto
/// the given devices (one branch per device) and returns them sorted by HA
/// latency, best first.
///
/// # Panics
///
/// Panics if the branch count differs from the device count or exceeds 8
/// (factorial enumeration guard).
pub fn enumerate_assignments(
    arch: &Arch,
    subnet: &SubnetSpec,
    devices: &[DeviceModel],
) -> Vec<Assignment> {
    let n = subnet.branches.len();
    assert_eq!(
        n,
        devices.len(),
        "{n} branches for {} devices",
        devices.len()
    );
    assert!(n <= 8, "assignment enumeration capped at 8 branches");

    let macs: Vec<u64> = subnet
        .branches
        .iter()
        .map(|b| branch_cost(arch, b).macs)
        .collect();

    let mut result = Vec::new();
    let mut perm: Vec<usize> = (0..n).collect();
    permute(&mut perm, 0, &mut |p: &[usize]| {
        let mut worst = Duration::ZERO;
        let mut ht = 0.0f64;
        for (device_idx, &branch_idx) in p.iter().enumerate() {
            let lat = devices[device_idx].latency(macs[branch_idx]);
            worst = worst.max(lat);
            ht += devices[device_idx].throughput(macs[branch_idx]);
        }
        result.push(Assignment {
            slots: p.to_vec(),
            ha_latency: worst,
            ht_throughput_ips: ht,
        });
    });
    result.sort_by_key(|a| a.ha_latency);
    result
}

/// The assignment minimising High-Accuracy latency.
///
/// # Panics
///
/// Panics under the same conditions as [`enumerate_assignments`].
pub fn best_ha_assignment(arch: &Arch, subnet: &SubnetSpec, devices: &[DeviceModel]) -> Assignment {
    enumerate_assignments(arch, subnet, devices)
        .into_iter()
        .next()
        .expect("at least one assignment")
}

/// The assignment maximising High-Throughput rate.
///
/// # Panics
///
/// Panics under the same conditions as [`enumerate_assignments`].
pub fn best_ht_assignment(arch: &Arch, subnet: &SubnetSpec, devices: &[DeviceModel]) -> Assignment {
    enumerate_assignments(arch, subnet, devices)
        .into_iter()
        .max_by(|a, b| {
            a.ht_throughput_ips
                .partial_cmp(&b.ht_throughput_ips)
                .expect("finite")
        })
        .expect("at least one assignment")
}

fn permute(xs: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == xs.len() {
        visit(xs);
        return;
    }
    for i in k..xs.len() {
        xs.swap(k, i);
        permute(xs, k + 1, visit);
        xs.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluid_models::FluidModel;
    use fluid_tensor::Prng;

    fn combined75() -> (Arch, SubnetSpec) {
        let arch = Arch::paper();
        let model = FluidModel::new(arch.clone(), &mut Prng::new(0));
        (
            arch.clone(),
            model.spec("combined75").expect("spec").clone(),
        )
    }

    #[test]
    fn wider_branch_goes_to_faster_device() {
        // combined75 = lower50 (wider) + upper25 (narrower). With a fast
        // master and slow worker, HA latency is minimised by putting the
        // wider branch on the faster device.
        let (arch, subnet) = combined75();
        let fast = DeviceModel::jetson_master().scaled(2.0);
        let slow = DeviceModel::jetson_worker();
        let best = best_ha_assignment(&arch, &subnet, &[fast, slow]);
        // Device 0 (fast) must take branch 0 (lower50, the wider one).
        assert_eq!(best.slots, vec![0, 1]);
    }

    #[test]
    fn symmetric_branches_tie_within_rounding() {
        // combined100's branches are equal-cost, so both assignments have
        // identical HA latency per device pair.
        let arch = Arch::paper();
        let model = FluidModel::new(arch.clone(), &mut Prng::new(1));
        let subnet = model.spec("combined100").expect("spec").clone();
        let d = [DeviceModel::jetson_master(), DeviceModel::jetson_worker()];
        let all = enumerate_assignments(&arch, &subnet, &d);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].ha_latency, all[1].ha_latency);
    }

    #[test]
    fn enumeration_counts_factorial() {
        let arch = Arch::paper();
        let model = fluid_models::MultiBlockFluid::new(arch.clone(), 4, &mut Prng::new(2));
        let subnet = model.spec("combined4").expect("spec").clone();
        let devices: Vec<DeviceModel> = (0..4)
            .map(|i| DeviceModel::jetson_master().scaled(1.0 + i as f64 * 0.1))
            .collect();
        let all = enumerate_assignments(&arch, &subnet, &devices);
        assert_eq!(all.len(), 24);
        // Sorted best-first.
        for w in all.windows(2) {
            assert!(w[0].ha_latency <= w[1].ha_latency);
        }
    }

    #[test]
    fn ht_best_pairs_heavy_work_with_fast_devices() {
        let (arch, subnet) = combined75();
        let fast = DeviceModel::jetson_master().scaled(3.0);
        let slow = DeviceModel::jetson_worker();
        let best = best_ht_assignment(&arch, &subnet, &[fast.clone(), slow.clone()]);
        let worst = enumerate_assignments(&arch, &subnet, &[fast, slow])
            .into_iter()
            .min_by(|a, b| {
                a.ht_throughput_ips
                    .partial_cmp(&b.ht_throughput_ips)
                    .expect("finite")
            })
            .expect("assignment");
        assert!(best.ht_throughput_ips >= worst.ht_throughput_ips);
    }

    #[test]
    #[should_panic(expected = "branches for")]
    fn mismatched_device_count_panics() {
        let (arch, subnet) = combined75();
        let _ = enumerate_assignments(&arch, &subnet, &[DeviceModel::jetson_master()]);
    }
}
