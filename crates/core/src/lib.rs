//! # fluid-core
//!
//! The public API of the Fluid DyDNN reproduction: the paper's training
//! algorithms, the runtime controller that adapts between High-Accuracy and
//! High-Throughput modes, the reliability manager that reacts to device
//! failure, and the end-to-end experiment drivers that regenerate the
//! paper's evaluation.
//!
//! ## The three training algorithms
//!
//! * [`training::train_plain`] — ordinary SGD on one sub-network
//!   (the Static baseline).
//! * [`training::train_incremental`] — incremental training of a width
//!   ladder with previous levels frozen (the Dynamic baseline, paper
//!   ref \[3\]).
//! * [`training::train_nested`] — **Algorithm 1**, nested incremental
//!   training: iterate (base ladder → nested upper ladder) over shared
//!   weights so every standalone *and* combined sub-network works.
//!
//! ## Quickstart
//!
//! ```no_run
//! use fluid_core::training::{train_nested, NestedSchedule, TrainConfig};
//! use fluid_core::Experiment;
//! use fluid_data::SynthDigits;
//! use fluid_models::{Arch, FluidModel};
//! use fluid_tensor::Prng;
//!
//! let (train, test) = SynthDigits::new(7).train_test(2000, 500);
//! let mut model = FluidModel::new(Arch::paper(), &mut Prng::new(0));
//! let cfg = TrainConfig::default();
//! let stats = train_nested(&mut model, &train, &cfg, &NestedSchedule::default());
//! println!("final loss {:?}", stats.final_loss());
//! let spec = model.spec("combined100").expect("spec").clone();
//! let acc = Experiment::evaluate_subnet(model.net_mut(), &spec, &test);
//! println!("combined100 accuracy {acc}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod error;
mod planner;
mod reliability;
mod report;
mod scenarios;
pub mod training;

pub use controller::{DeploymentPlan, Goal, RuntimeController};
pub use error::CoreError;
pub use planner::{best_ha_assignment, best_ht_assignment, enumerate_assignments, Assignment};
pub use reliability::{can_operate, surviving_subnet, ReliabilityManager};
pub use report::{format_accuracy_table, format_capability_matrix, format_throughput_table};
pub use scenarios::{AccuracyRow, Experiment, Fig2Accuracy};
