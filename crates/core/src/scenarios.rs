//! End-to-end experiment drivers regenerating the paper's evaluation.

use crate::training::{
    evaluate_subnet as eval_subnet, train_incremental, train_nested, train_plain, NestedSchedule,
    TrainConfig,
};
use fluid_data::{Dataset, SynthDigits};
use fluid_models::{Arch, ConvNet, DynamicModel, FluidModel, StaticModel, SubnetSpec};
use fluid_perf::{DeviceAvailability, ModelFamily};
use fluid_tensor::Prng;

/// One row of the Fig. 2 accuracy panel.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Model family.
    pub family: ModelFamily,
    /// Mode label (`"HA"`, `"HT"`, or `"-"`).
    pub mode: &'static str,
    /// Device availability.
    pub availability: DeviceAvailability,
    /// Measured accuracy on the synthetic test set (0–1; 0 when the system
    /// cannot operate).
    pub accuracy: f32,
    /// The paper's reported accuracy (%; 0 when the system fails).
    pub paper_pct: f32,
}

/// The trained triple (Static, Dynamic, Fluid) plus the shared test set.
///
/// Construction trains all three models with their respective algorithms on
/// the same synthetic data — the Fig. 2 accuracy panel is then a pure
/// evaluation pass.
#[derive(Debug)]
pub struct Fig2Accuracy {
    static_model: StaticModel,
    dynamic_model: DynamicModel,
    fluid_model: FluidModel,
    test: Dataset,
}

impl Fig2Accuracy {
    /// Trains the three models on a synthetic dataset of the given size.
    ///
    /// `arch` is typically [`Arch::paper`]; tests use [`Arch::tiny_28`] for
    /// speed. `epochs` scales every phase; the Static baseline gets the
    /// same *total* epoch budget as the fluid schedule so the comparison is
    /// compute-fair.
    pub fn train(arch: Arch, train_n: usize, test_n: usize, epochs: usize, seed: u64) -> Self {
        let (train, test) = SynthDigits::new(seed).train_test(train_n, test_n);
        let mut cfg = TrainConfig {
            epochs_per_phase: epochs,
            seed,
            ..TrainConfig::default()
        };

        let mut fluid_model = FluidModel::new(arch.clone(), &mut Prng::new(seed ^ 0xF));
        let schedule = NestedSchedule::default();
        let _ = train_nested(&mut fluid_model, &train, &cfg, &schedule);

        let mut dynamic_model = DynamicModel::new(arch.clone(), &mut Prng::new(seed ^ 0xD));
        let _ = train_incremental(&mut dynamic_model, &train, &cfg);

        // Fair budget: fluid saw 6 phases × iterations; give static the
        // same number of epochs over its single network.
        let fluid_phase_count =
            (schedule.base_ladder.len() + schedule.upper_ladder.len()) * schedule.iterations;
        cfg.epochs_per_phase = epochs * fluid_phase_count;
        let mut static_model = StaticModel::new(arch, &mut Prng::new(seed ^ 0x5));
        let _ = train_plain(&mut static_model, &train, &cfg);

        Self {
            static_model,
            dynamic_model,
            fluid_model,
            test,
        }
    }

    /// The shared test set.
    pub fn test_set(&self) -> &Dataset {
        &self.test
    }

    /// Accuracy of a named fluid sub-network.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not registered.
    pub fn fluid_accuracy(&mut self, name: &str) -> f32 {
        let spec = self
            .fluid_model
            .spec(name)
            .unwrap_or_else(|| panic!("unknown sub-network {name:?}"))
            .clone();
        eval_subnet(self.fluid_model.net_mut(), &spec, &self.test)
    }

    /// Accuracy of a dynamic ladder level.
    pub fn dynamic_accuracy(&mut self, level: usize) -> f32 {
        let spec = self.dynamic_model.level(level).clone();
        eval_subnet(self.dynamic_model.net_mut(), &spec, &self.test)
    }

    /// Accuracy of the static model.
    pub fn static_accuracy(&mut self) -> f32 {
        let spec = self.static_model.spec().clone();
        eval_subnet(self.static_model.net_mut(), &spec, &self.test)
    }

    /// Produces every bar of the paper's Fig. 2 accuracy panel.
    pub fn table(&mut self) -> Vec<AccuracyRow> {
        use DeviceAvailability::*;
        use ModelFamily::*;
        let levels = self.dynamic_model.specs().len();
        let dyn_full = self.dynamic_accuracy(levels - 1);
        let dyn_half = self.dynamic_accuracy(levels / 2 - 1);
        let st = self.static_accuracy();
        let fl_comb = self.fluid_accuracy("combined100");
        let fl_lo = self.fluid_accuracy("lower50");
        let fl_hi = self.fluid_accuracy("upper50");
        vec![
            AccuracyRow {
                family: Static,
                mode: "-",
                availability: Both,
                accuracy: st,
                paper_pct: 98.9,
            },
            AccuracyRow {
                family: Static,
                mode: "-",
                availability: OnlyMaster,
                accuracy: 0.0,
                paper_pct: 0.0,
            },
            AccuracyRow {
                family: Static,
                mode: "-",
                availability: OnlyWorker,
                accuracy: 0.0,
                paper_pct: 0.0,
            },
            AccuracyRow {
                family: Dynamic,
                mode: "HA",
                availability: Both,
                accuracy: dyn_full,
                paper_pct: 98.8,
            },
            AccuracyRow {
                family: Dynamic,
                mode: "HT",
                availability: Both,
                accuracy: dyn_half,
                paper_pct: 97.6,
            },
            AccuracyRow {
                family: Dynamic,
                mode: "-",
                availability: OnlyMaster,
                accuracy: dyn_half,
                paper_pct: 97.6,
            },
            AccuracyRow {
                family: Dynamic,
                mode: "-",
                availability: OnlyWorker,
                accuracy: 0.0,
                paper_pct: 0.0,
            },
            AccuracyRow {
                family: Fluid,
                mode: "HA",
                availability: Both,
                accuracy: fl_comb,
                paper_pct: 99.2,
            },
            AccuracyRow {
                family: Fluid,
                mode: "HT",
                availability: Both,
                accuracy: (fl_lo + fl_hi) / 2.0,
                paper_pct: 98.85,
            },
            AccuracyRow {
                family: Fluid,
                mode: "-",
                availability: OnlyMaster,
                accuracy: fl_lo,
                paper_pct: 98.8,
            },
            AccuracyRow {
                family: Fluid,
                mode: "-",
                availability: OnlyWorker,
                accuracy: fl_hi,
                paper_pct: 98.9,
            },
        ]
    }
}

/// Namespace for one-off experiment helpers used by examples and benches.
#[derive(Debug)]
pub struct Experiment;

impl Experiment {
    /// Batched accuracy of any sub-network over a dataset (re-exported
    /// convenience).
    pub fn evaluate_subnet(net: &mut ConvNet, spec: &SubnetSpec, ds: &Dataset) -> f32 {
        eval_subnet(net, spec, ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_table_shape_matches_capability_matrix() {
        // Tiny budget: we check *structure* here (zeros exactly where the
        // paper has zeros, non-trivial accuracy elsewhere); the bench
        // harness runs the full-size version.
        let mut fig = Fig2Accuracy::train(Arch::tiny_28(), 300, 100, 1, 42);
        let rows = fig.table();
        assert_eq!(rows.len(), 11);
        for row in &rows {
            if row.paper_pct == 0.0 {
                assert_eq!(
                    row.accuracy, 0.0,
                    "{} {} must be dead",
                    row.family, row.availability
                );
            } else {
                assert!(
                    row.accuracy > 0.25,
                    "{} {} {} accuracy {} too low",
                    row.family,
                    row.mode,
                    row.availability,
                    row.accuracy
                );
            }
        }
    }

    #[test]
    fn fluid_survivors_beat_chance_after_training() {
        let mut fig = Fig2Accuracy::train(Arch::tiny_28(), 500, 100, 2, 7);
        assert!(fig.fluid_accuracy("lower50") > 0.25);
        assert!(fig.fluid_accuracy("upper50") > 0.25);
    }
}
