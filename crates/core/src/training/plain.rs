//! Plain SGD training of a single sub-network.

use super::{PhaseStats, TrainConfig, TrainStats};
use fluid_data::{DataLoader, Dataset};
use fluid_models::{ConvNet, StaticModel, SubnetSpec};
use fluid_nn::{accuracy, softmax_cross_entropy, Optimizer, Sgd};

/// Trains one sub-network for `cfg.epochs_per_phase` epochs with SGD,
/// returning the mean loss of each epoch.
///
/// This is the primitive all three training algorithms are built from;
/// they differ only in *which* sub-networks they train and in what order —
/// exactly how the paper presents them.
pub fn train_subnet_epochs(
    net: &mut ConvNet,
    spec: &SubnetSpec,
    train: &Dataset,
    cfg: &TrainConfig,
    opt: &mut Sgd,
) -> PhaseStats {
    let mut epoch_losses = Vec::with_capacity(cfg.epochs_per_phase);
    let mut loader = DataLoader::new(train, cfg.batch_size, true, cfg.seed ^ 0x5eed);
    for _epoch in 0..cfg.epochs_per_phase {
        loader.reset();
        let mut total = 0.0f32;
        let mut batches = 0usize;
        while let Some((x, labels)) = loader.next_batch() {
            net.zero_grad();
            let logits = net.forward_subnet(&x, spec, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            net.backward_subnet(&grad, spec);
            let mut params = net.param_set();
            opt.step(&mut params);
            total += loss;
            batches += 1;
        }
        epoch_losses.push(if batches > 0 {
            total / batches as f32
        } else {
            f32::NAN
        });
    }
    PhaseStats {
        subnet: spec.name.clone(),
        epoch_losses,
    }
}

/// Trains a [`StaticModel`] (the paper's Static baseline) with plain SGD.
pub fn train_plain(model: &mut StaticModel, train: &Dataset, cfg: &TrainConfig) -> TrainStats {
    let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    let spec = model.spec().clone();
    let phase = train_subnet_epochs(model.net_mut(), &spec, train, cfg, &mut opt);
    TrainStats {
        phases: vec![phase],
    }
}

/// Batched accuracy of a sub-network over a dataset.
pub fn evaluate_subnet(net: &mut ConvNet, spec: &SubnetSpec, ds: &Dataset) -> f32 {
    if ds.is_empty() {
        return 0.0;
    }
    let mut correct = 0.0f32;
    let mut seen = 0usize;
    let batch = 64usize;
    let mut i = 0;
    while i < ds.len() {
        let hi = (i + batch).min(ds.len());
        let idx: Vec<usize> = (i..hi).collect();
        let (x, labels) = ds.gather(&idx);
        let logits = net.forward_subnet(&x, spec, false);
        correct += accuracy(&logits, &labels) * labels.len() as f32;
        seen += labels.len();
        i = hi;
    }
    correct / seen as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluid_data::SynthDigits;
    use fluid_models::Arch;
    use fluid_tensor::Prng;

    #[test]
    fn plain_training_learns_tiny_task() {
        let (train, test) = SynthDigits::new(3).train_test(300, 100);
        let mut model = StaticModel::new(Arch::tiny_28(), &mut Prng::new(0));
        let mut cfg = TrainConfig::fast_test();
        cfg.epochs_per_phase = 3;
        let stats = train_plain(&mut model, &train, &cfg);
        let losses = &stats.phases[0].epoch_losses;
        assert!(
            losses.last().expect("loss") < &losses[0],
            "loss must drop: {losses:?}"
        );
        let spec = model.spec().clone();
        let acc = evaluate_subnet(model.net_mut(), &spec, &test);
        assert!(acc > 0.5, "accuracy {acc} too low for the synthetic task");
    }

    #[test]
    fn evaluate_on_empty_dataset_is_zero() {
        let mut model = StaticModel::new(Arch::tiny_28(), &mut Prng::new(0));
        let empty = SynthDigits::new(0).generate(0);
        let spec = model.spec().clone();
        assert_eq!(evaluate_subnet(model.net_mut(), &spec, &empty), 0.0);
    }
}
