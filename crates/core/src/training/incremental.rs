//! Incremental training of the Dynamic DNN ladder (paper reference \[3\]).

use super::{freeze_prefix, plain::train_subnet_epochs, TrainConfig, TrainStats};
use fluid_data::{DataLoader, Dataset};
use fluid_models::DynamicModel;
use fluid_nn::{softmax_cross_entropy, Optimizer, Sgd};

/// Trains a [`DynamicModel`] incrementally: levels are trained narrowest
/// first, and when training level `l` the weights of level `l−1` are frozen
/// (their gradients are cleared before every optimizer step), so each
/// deployed sub-network keeps working as wider ones are added.
///
/// This reproduces the incremental-training baseline the paper compares
/// against (\[3\]): smaller sub-networks are *contained* in larger ones, and
/// the added channel groups read all lower channels — which is exactly why
/// the upper weights end up useless on their own.
pub fn train_incremental(
    model: &mut DynamicModel,
    train: &Dataset,
    cfg: &TrainConfig,
) -> TrainStats {
    let mut stats = TrainStats::default();
    let specs: Vec<_> = model.specs().to_vec();
    let widths: Vec<usize> = model.net().arch().ladder.widths().to_vec();
    let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);

    for (level, spec) in specs.iter().enumerate() {
        let frozen = if level == 0 { 0 } else { widths[level - 1] };
        if frozen == 0 {
            // No freezing needed: reuse the shared primitive.
            stats.phases.push(train_subnet_epochs(
                model.net_mut(),
                spec,
                train,
                cfg,
                &mut opt,
            ));
            continue;
        }
        // Freezing variant of the epoch loop.
        let mut loader = DataLoader::new(train, cfg.batch_size, true, cfg.seed ^ level as u64);
        let mut epoch_losses = Vec::with_capacity(cfg.epochs_per_phase);
        for _ in 0..cfg.epochs_per_phase {
            loader.reset();
            let mut total = 0.0f32;
            let mut batches = 0usize;
            while let Some((x, labels)) = loader.next_batch() {
                let net = model.net_mut();
                net.zero_grad();
                let logits = net.forward_subnet(&x, spec, true);
                let (loss, grad) = softmax_cross_entropy(&logits, &labels);
                net.backward_subnet(&grad, spec);
                freeze_prefix(net, frozen);
                let mut params = net.param_set();
                opt.step(&mut params);
                total += loss;
                batches += 1;
            }
            epoch_losses.push(if batches > 0 {
                total / batches as f32
            } else {
                f32::NAN
            });
        }
        stats.phases.push(super::PhaseStats {
            subnet: spec.name.clone(),
            epoch_losses,
        });
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::evaluate_subnet;
    use fluid_data::SynthDigits;
    use fluid_models::Arch;
    use fluid_tensor::Prng;

    #[test]
    fn incremental_preserves_narrow_subnet_outputs() {
        // After the 25% level is trained, training wider levels must not
        // change the 25% function at all (freezing): the paper's runtime
        // relies on switching widths without re-validation.
        let (train, _) = SynthDigits::new(5).train_test(200, 50);
        let mut model = DynamicModel::new(Arch::tiny_28(), &mut Prng::new(2));
        let cfg = TrainConfig::fast_test();

        // Train level 0 only.
        let spec0 = model.level(0).clone();
        let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
        let _ = train_subnet_epochs(model.net_mut(), &spec0, &train, &cfg, &mut opt);
        let (x, _) = train.gather(&[0, 1, 2, 3]);
        let before = model.net_mut().forward_subnet(&x, &spec0, false);

        // Train the full ladder (levels 1.. freeze their predecessors).
        let _ = train_incremental(&mut model, &train, &cfg);
        // Level 0 was re-trained by the ladder pass (level 0 has no frozen
        // prefix), so compare the *level-1-and-up* effect instead: train
        // once more and verify level 1's training does not disturb level 0.
        let spec0_after = model.level(0).clone();
        let l0_ref = model.net_mut().forward_subnet(&x, &spec0_after, false);
        let widths = model.net().arch().ladder.widths().to_vec();
        let spec1 = model.level(1).clone();
        let mut loader = DataLoader::new(&train, cfg.batch_size, true, 9);
        for _ in 0..3 {
            loader.reset();
            while let Some((bx, labels)) = loader.next_batch() {
                let net = model.net_mut();
                net.zero_grad();
                let logits = net.forward_subnet(&bx, &spec1, true);
                let (_, grad) = softmax_cross_entropy(&logits, &labels);
                net.backward_subnet(&grad, &spec1);
                freeze_prefix(net, widths[0]);
                let mut params = net.param_set();
                opt.step(&mut params);
            }
        }
        let l0_after = model.net_mut().forward_subnet(&x, &spec0_after, false);
        assert!(
            l0_ref.allclose(&l0_after, 1e-6),
            "frozen 25% subnet drifted by {}",
            l0_ref.max_abs_diff(&l0_after)
        );
        let _ = before;
    }

    #[test]
    fn incremental_all_levels_learn() {
        let (train, test) = SynthDigits::new(6).train_test(400, 100);
        let mut model = DynamicModel::new(Arch::tiny_28(), &mut Prng::new(3));
        let mut cfg = TrainConfig::fast_test();
        cfg.epochs_per_phase = 2;
        let _ = train_incremental(&mut model, &train, &cfg);
        for level in 0..model.specs().len() {
            let spec = model.level(level).clone();
            let acc = evaluate_subnet(model.net_mut(), &spec, &test);
            assert!(acc > 0.3, "level {level} accuracy {acc}");
        }
    }
}
