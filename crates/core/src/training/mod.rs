//! Training algorithms: plain, incremental (\[3\]) and nested incremental
//! (Algorithm 1 of the paper).

mod incremental;
mod multi_block;
mod nested;
mod plain;

pub use incremental::train_incremental;
pub use multi_block::train_multi_block;
pub use nested::{train_nested, NestedSchedule};
pub use plain::{evaluate_subnet, train_plain, train_subnet_epochs};

use fluid_models::ConvNet;
use fluid_nn::ChannelRange;

/// Hyper-parameters shared by all training algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Mini-batch size (`drop_last` semantics).
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay applied through the gradient.
    pub weight_decay: f32,
    /// Epochs per training phase (per sub-network per iteration).
    pub epochs_per_phase: usize,
    /// Shuffle seed for the data loader.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            epochs_per_phase: 1,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// A fast configuration for unit tests.
    pub fn fast_test() -> Self {
        Self {
            batch_size: 16,
            lr: 0.08,
            momentum: 0.9,
            weight_decay: 0.0,
            epochs_per_phase: 1,
            seed: 1,
        }
    }
}

/// Per-phase training record.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// Which sub-network the phase trained.
    pub subnet: String,
    /// Mean loss of each epoch in the phase.
    pub epoch_losses: Vec<f32>,
}

/// Full training history.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainStats {
    /// Phases in execution order.
    pub phases: Vec<PhaseStats>,
}

impl TrainStats {
    /// Mean loss of the final epoch of the final phase, if any.
    pub fn final_loss(&self) -> Option<f32> {
        self.phases.last()?.epoch_losses.last().copied()
    }

    /// Appends another history.
    pub fn extend(&mut self, other: TrainStats) {
        self.phases.extend(other.phases);
    }
}

/// Zeroes the gradients lying inside a previously-trained prefix window so
/// the optimizer cannot disturb it (the freezing step of incremental
/// training \[3\]).
///
/// `frozen_width` is the channel prefix to protect; the FC columns covering
/// those channels and all biases up to the prefix are protected too.
pub(crate) fn freeze_prefix(net: &mut ConvNet, frozen_width: usize) {
    let arch = net.arch().clone();
    let fpc = arch.features_per_channel();
    for conv in net.convs_mut() {
        let kk = conv.kernel() * conv.kernel();
        let ci_max = conv.c_in_max();
        for co in 0..frozen_width.min(conv.c_out_max()) {
            // Freeze this output channel's rows for all frozen input cols.
            let in_hi = if ci_max == arch.image_channels {
                ci_max // first layer: image inputs always inside the prefix
            } else {
                frozen_width.min(ci_max)
            };
            let base = co * ci_max * kk;
            for x in &mut conv.wgrad_mut().data_mut()[base..base + in_hi * kk] {
                *x = 0.0;
            }
            conv.bgrad_mut().data_mut()[co] = 0.0;
        }
    }
    let cols = ChannelRange::prefix(frozen_width).to_feature_range(fpc);
    let fc = net.fc_mut();
    let in_max = fc.in_features_max();
    let out = fc.out_features();
    for r in 0..out {
        for x in &mut fc.wgrad_mut().data_mut()[r * in_max + cols.lo..r * in_max + cols.hi] {
            *x = 0.0;
        }
    }
    // The FC bias is shared by every prefix sub-network, so once any level
    // is frozen the bias must stop moving too — otherwise the frozen
    // level's logits drift.
    fc.bgrad_mut().fill(0.0);
}
