//! Generalised Algorithm 1 for N-block fluid models.

use super::{plain::train_subnet_epochs, TrainConfig, TrainStats};
use fluid_data::Dataset;
use fluid_models::MultiBlockFluid;
use fluid_nn::Sgd;

/// Trains an N-block [`MultiBlockFluid`] with the generalised nested
/// incremental schedule: each outer iteration first walks the combined
/// prefix ladder (`block0`, `combined2`, …, `combinedN`), then re-trains
/// each remaining block standalone — the direct extension of the paper's
/// Algorithm 1, which it states "is applicable to any number" of
/// sub-networks.
pub fn train_multi_block(
    model: &mut MultiBlockFluid,
    train: &Dataset,
    cfg: &TrainConfig,
    iterations: usize,
) -> TrainStats {
    let mut stats = TrainStats::default();
    let (base, nested) = model.training_ladder();
    for iter in 0..iterations {
        // Same annealing as `train_nested`: later iterations fine-tune.
        let lr = cfg.lr * 0.5f32.powi(iter as i32);
        let mut opt = Sgd::new(lr, cfg.momentum, cfg.weight_decay);
        for name in base.iter().chain(nested.iter()) {
            let spec = model
                .spec(name)
                .unwrap_or_else(|| panic!("ladder names unknown sub-network {name:?}"))
                .clone();
            stats.phases.push(train_subnet_epochs(
                model.net_mut(),
                &spec,
                train,
                cfg,
                &mut opt,
            ));
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::evaluate_subnet;
    use fluid_data::SynthDigits;
    use fluid_models::Arch;
    use fluid_tensor::Prng;

    #[test]
    fn two_block_model_learns_every_unit() {
        let (train, test) = SynthDigits::new(61).train_test(500, 150);
        let mut model = MultiBlockFluid::new(Arch::tiny_28(), 2, &mut Prng::new(0));
        let mut cfg = TrainConfig::fast_test();
        cfg.epochs_per_phase = 2;
        let stats = train_multi_block(&mut model, &train, &cfg, 2);
        assert_eq!(stats.phases.len(), 2 * 3);
        for name in ["block0", "block1", "combined2"] {
            let spec = model.spec(name).expect("spec").clone();
            let acc = evaluate_subnet(model.net_mut(), &spec, &test);
            assert!(acc > 0.3, "{name} accuracy {acc}");
        }
    }

    #[test]
    fn four_block_paper_arch_learns_every_unit() {
        // 4-channel blocks on the paper architecture: every standalone
        // block and the combined prefixes must classify above chance.
        let (train, test) = SynthDigits::new(62).train_test(600, 120);
        let mut model = MultiBlockFluid::new(Arch::paper(), 4, &mut Prng::new(1));
        // Narrow 4-channel blocks are sensitive to high rates; use the
        // default (paper-scale) hyper-parameters rather than the hot test
        // preset.
        let cfg = TrainConfig {
            epochs_per_phase: 1,
            seed: 62,
            ..TrainConfig::default()
        };
        let stats = train_multi_block(&mut model, &train, &cfg, 2);
        assert_eq!(stats.phases.len(), 2 * 7);
        for name in [
            "block0",
            "block1",
            "block2",
            "block3",
            "combined2",
            "combined4",
        ] {
            let spec = model.spec(name).expect("spec").clone();
            let acc = evaluate_subnet(model.net_mut(), &spec, &test);
            assert!(acc > 0.2, "{name} accuracy {acc}");
        }
    }

    #[test]
    fn two_block_matches_paper_structure() {
        // The 2-block generalisation is exactly the paper's lower/upper
        // split: same ranges as FluidModel's lower50/upper50.
        let model = MultiBlockFluid::new(Arch::paper(), 2, &mut Prng::new(1));
        let b0 = &model.spec("block0").expect("spec").branches[0];
        let b1 = &model.spec("block1").expect("spec").branches[0];
        assert_eq!((b0.channels[0].lo, b0.channels[0].hi), (0, 8));
        assert_eq!((b1.channels[0].lo, b1.channels[0].hi), (8, 16));
    }
}
