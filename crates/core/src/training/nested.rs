//! Nested incremental training — Algorithm 1 of the paper.

use super::{plain::train_subnet_epochs, TrainConfig, TrainStats};
use fluid_data::Dataset;
use fluid_models::FluidModel;
use fluid_nn::Sgd;

/// Which sub-networks each Algorithm 1 iteration visits, in order.
///
/// Line 2–5 of the paper's Algorithm 1 trains the base ladder
/// (25%, 50%, 75%, 100% ≙ `lower25`, `lower50`, `combined75`,
/// `combined100`); line 6–10 re-trains the nested upper ladder
/// (`upper25`, `upper50`) so those blocks also work standalone. Because all
/// sub-networks share one weight store, the paper's "copy weights to the
/// next model" steps are identities here — re-training *is* the copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestedSchedule {
    /// Number of outer iterations (`niters` in Algorithm 1).
    pub iterations: usize,
    /// The base ladder phase, by sub-network name.
    pub base_ladder: Vec<String>,
    /// The nested upper ladder phase, by sub-network name.
    pub upper_ladder: Vec<String>,
}

impl Default for NestedSchedule {
    fn default() -> Self {
        Self {
            iterations: 2,
            base_ladder: vec![
                "lower25".into(),
                "lower50".into(),
                "combined75".into(),
                "combined100".into(),
            ],
            upper_ladder: vec!["upper25".into(), "upper50".into()],
        }
    }
}

impl NestedSchedule {
    /// A one-iteration schedule for fast tests.
    pub fn fast_test() -> Self {
        Self {
            iterations: 1,
            ..Self::default()
        }
    }
}

/// Trains a [`FluidModel`] with **nested incremental training**
/// (Algorithm 1): each outer iteration first fine-tunes the base ladder,
/// then re-trains the nested upper sub-networks, iterating until the shared
/// weights serve both the standalone and the combined models.
///
/// # Panics
///
/// Panics if the schedule names a sub-network the model does not register.
pub fn train_nested(
    model: &mut FluidModel,
    train: &Dataset,
    cfg: &TrainConfig,
    schedule: &NestedSchedule,
) -> TrainStats {
    let mut stats = TrainStats::default();
    for iter in 0..schedule.iterations {
        // Later iterations are the paper's "fine-tune all the models"
        // passes: anneal the rate so the phases converge on shared weights
        // instead of oscillating, and start each iteration with fresh
        // momentum so one phase's velocity cannot drag another's weights.
        let lr = cfg.lr * 0.5f32.powi(iter as i32);
        let mut opt = Sgd::new(lr, cfg.momentum, cfg.weight_decay);
        // Line 2-5: base ladder (weights shared ⇒ copies are implicit).
        for name in &schedule.base_ladder {
            let spec = model
                .spec(name)
                .unwrap_or_else(|| panic!("schedule names unknown sub-network {name:?}"))
                .clone();
            stats.phases.push(train_subnet_epochs(
                model.net_mut(),
                &spec,
                train,
                cfg,
                &mut opt,
            ));
        }
        // Line 6-10: nested upper ladder, trained for standalone use.
        for name in &schedule.upper_ladder {
            let spec = model
                .spec(name)
                .unwrap_or_else(|| panic!("schedule names unknown sub-network {name:?}"))
                .clone();
            stats.phases.push(train_subnet_epochs(
                model.net_mut(),
                &spec,
                train,
                cfg,
                &mut opt,
            ));
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::evaluate_subnet;
    use fluid_data::SynthDigits;
    use fluid_models::Arch;
    use fluid_tensor::Prng;

    fn tiny_fluid() -> FluidModel {
        FluidModel::new(Arch::tiny_28(), &mut Prng::new(4))
    }

    #[test]
    fn schedule_visits_all_phases() {
        let (train, _) = SynthDigits::new(8).train_test(100, 10);
        let mut model = tiny_fluid();
        let cfg = TrainConfig::fast_test();
        let stats = train_nested(&mut model, &train, &cfg, &NestedSchedule::fast_test());
        let visited: Vec<&str> = stats.phases.iter().map(|p| p.subnet.as_str()).collect();
        assert_eq!(
            visited,
            vec![
                "lower25",
                "lower50",
                "combined75",
                "combined100",
                "upper25",
                "upper50"
            ]
        );
    }

    #[test]
    fn every_subnet_learns_after_nested_training() {
        // The paper's core training claim: after Algorithm 1, *all six*
        // sub-networks (standalone and combined) classify well above chance.
        let (train, test) = SynthDigits::new(9).train_test(500, 150);
        let mut model = tiny_fluid();
        let mut cfg = TrainConfig::fast_test();
        cfg.epochs_per_phase = 2;
        let schedule = NestedSchedule {
            iterations: 2,
            ..NestedSchedule::default()
        };
        let _ = train_nested(&mut model, &train, &cfg, &schedule);
        for name in [
            "lower25",
            "lower50",
            "upper25",
            "upper50",
            "combined75",
            "combined100",
        ] {
            let spec = model.spec(name).expect("spec").clone();
            let acc = evaluate_subnet(model.net_mut(), &spec, &test);
            assert!(acc > 0.4, "{name} accuracy {acc} barely above chance");
        }
    }

    #[test]
    fn combined_outperforms_or_matches_halves() {
        // Wider should help (or at least not catastrophically hurt): the
        // regularization argument of the paper's accuracy figure.
        let (train, test) = SynthDigits::new(10).train_test(500, 150);
        let mut model = tiny_fluid();
        let mut cfg = TrainConfig::fast_test();
        cfg.epochs_per_phase = 2;
        let _ = train_nested(&mut model, &train, &cfg, &NestedSchedule::default());
        let combined = {
            let spec = model.spec("combined100").expect("spec").clone();
            evaluate_subnet(model.net_mut(), &spec, &test)
        };
        let lower = {
            let spec = model.spec("lower25").expect("spec").clone();
            evaluate_subnet(model.net_mut(), &spec, &test)
        };
        assert!(
            combined + 0.05 >= lower,
            "combined100 {combined} much worse than lower25 {lower}"
        );
    }

    #[test]
    #[should_panic(expected = "unknown sub-network")]
    fn bad_schedule_panics() {
        let (train, _) = SynthDigits::new(11).train_test(50, 10);
        let mut model = tiny_fluid();
        let schedule = NestedSchedule {
            iterations: 1,
            base_ladder: vec!["nope".into()],
            upper_ladder: vec![],
        };
        let _ = train_nested(&mut model, &train, &TrainConfig::fast_test(), &schedule);
    }
}
