//! Reliability: what survives a device failure, per model family.

use fluid_perf::{DeviceAvailability, ModelFamily};

/// Whether a model family can keep inferring under the given availability.
///
/// This is the paper's Fig. 1(b,c) capability matrix, derived from the
/// connectivity classes:
///
/// * **Static** (dense): weights are split; neither half is a function.
/// * **Dynamic** (triangular): the Master's prefix is a function, the
///   Worker's upper groups are not.
/// * **Fluid** (block): both blocks are functions.
///
/// # Example
///
/// ```
/// use fluid_core::can_operate;
/// use fluid_perf::{DeviceAvailability, ModelFamily};
/// assert!(!can_operate(ModelFamily::Static, DeviceAvailability::OnlyMaster));
/// assert!(can_operate(ModelFamily::Fluid, DeviceAvailability::OnlyWorker));
/// ```
pub fn can_operate(family: ModelFamily, availability: DeviceAvailability) -> bool {
    match (family, availability) {
        (_, DeviceAvailability::Both) => true,
        (ModelFamily::Static, _) => false,
        (ModelFamily::Dynamic, DeviceAvailability::OnlyMaster) => true,
        (ModelFamily::Dynamic, DeviceAvailability::OnlyWorker) => false,
        (ModelFamily::Fluid, _) => true,
    }
}

/// The sub-network (by registry name) that keeps running on the surviving
/// device, or `None` when the system fails.
pub fn surviving_subnet(
    family: ModelFamily,
    availability: DeviceAvailability,
) -> Option<&'static str> {
    match (family, availability) {
        (ModelFamily::Static, DeviceAvailability::Both) => Some("full"),
        (ModelFamily::Dynamic, DeviceAvailability::Both) => Some("width16"),
        (ModelFamily::Fluid, DeviceAvailability::Both) => Some("combined100"),
        (ModelFamily::Dynamic, DeviceAvailability::OnlyMaster) => Some("width8"),
        (ModelFamily::Fluid, DeviceAvailability::OnlyMaster) => Some("lower50"),
        (ModelFamily::Fluid, DeviceAvailability::OnlyWorker) => Some("upper50"),
        _ => None,
    }
}

/// Tracks device liveness events and answers "what should run now".
#[derive(Debug, Clone)]
pub struct ReliabilityManager {
    family: ModelFamily,
    master_alive: bool,
    worker_alive: bool,
    reconfigurations: u64,
}

impl ReliabilityManager {
    /// Creates a manager with both devices alive.
    pub fn new(family: ModelFamily) -> Self {
        Self {
            family,
            master_alive: true,
            worker_alive: true,
            reconfigurations: 0,
        }
    }

    /// Records a master failure.
    pub fn master_failed(&mut self) {
        if self.master_alive {
            self.master_alive = false;
            self.reconfigurations += 1;
        }
    }

    /// Records a worker failure.
    pub fn worker_failed(&mut self) {
        if self.worker_alive {
            self.worker_alive = false;
            self.reconfigurations += 1;
        }
    }

    /// Records a device coming back (paper: losses are "recoverable
    /// whenever the system can re-deploy larger sub-networks").
    pub fn master_recovered(&mut self) {
        if !self.master_alive {
            self.master_alive = true;
            self.reconfigurations += 1;
        }
    }

    /// Records the worker coming back.
    pub fn worker_recovered(&mut self) {
        if !self.worker_alive {
            self.worker_alive = true;
            self.reconfigurations += 1;
        }
    }

    /// Current availability.
    pub fn availability(&self) -> Option<DeviceAvailability> {
        match (self.master_alive, self.worker_alive) {
            (true, true) => Some(DeviceAvailability::Both),
            (true, false) => Some(DeviceAvailability::OnlyMaster),
            (false, true) => Some(DeviceAvailability::OnlyWorker),
            (false, false) => None,
        }
    }

    /// Whether inference can continue right now.
    pub fn operational(&self) -> bool {
        self.availability()
            .map(|a| can_operate(self.family, a))
            .unwrap_or(false)
    }

    /// The sub-network to deploy now, if any.
    pub fn active_subnet(&self) -> Option<&'static str> {
        self.availability()
            .and_then(|a| surviving_subnet(self.family, a))
    }

    /// Number of reconfiguration events handled.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix_matches_paper_fig1() {
        use DeviceAvailability::*;
        use ModelFamily::*;
        let matrix = [
            (Static, Both, true),
            (Static, OnlyMaster, false),
            (Static, OnlyWorker, false),
            (Dynamic, Both, true),
            (Dynamic, OnlyMaster, true),
            (Dynamic, OnlyWorker, false),
            (Fluid, Both, true),
            (Fluid, OnlyMaster, true),
            (Fluid, OnlyWorker, true),
        ];
        for (family, avail, expected) in matrix {
            assert_eq!(can_operate(family, avail), expected, "{family} {avail}");
        }
    }

    #[test]
    fn fluid_failover_sequence() {
        let mut mgr = ReliabilityManager::new(ModelFamily::Fluid);
        assert_eq!(mgr.active_subnet(), Some("combined100"));
        mgr.worker_failed();
        assert_eq!(mgr.active_subnet(), Some("lower50"));
        assert!(mgr.operational());
        mgr.worker_recovered();
        assert_eq!(mgr.active_subnet(), Some("combined100"));
        mgr.master_failed();
        assert_eq!(mgr.active_subnet(), Some("upper50"));
        assert_eq!(mgr.reconfigurations(), 3);
    }

    #[test]
    fn dynamic_dies_with_master() {
        let mut mgr = ReliabilityManager::new(ModelFamily::Dynamic);
        mgr.master_failed();
        assert!(!mgr.operational());
        assert_eq!(mgr.active_subnet(), None);
    }

    #[test]
    fn static_dies_with_either() {
        let mut mgr = ReliabilityManager::new(ModelFamily::Static);
        mgr.worker_failed();
        assert!(!mgr.operational());
    }

    #[test]
    fn duplicate_events_do_not_double_count() {
        let mut mgr = ReliabilityManager::new(ModelFamily::Fluid);
        mgr.worker_failed();
        mgr.worker_failed();
        assert_eq!(mgr.reconfigurations(), 1);
    }

    #[test]
    fn both_dead_is_inoperable_even_for_fluid() {
        let mut mgr = ReliabilityManager::new(ModelFamily::Fluid);
        mgr.master_failed();
        mgr.worker_failed();
        assert!(!mgr.operational());
        assert_eq!(mgr.availability(), None);
    }
}
