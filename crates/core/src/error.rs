//! Workspace-level error type.

/// Errors surfaced by the high-level API.
#[derive(Debug)]
pub enum CoreError {
    /// A sub-network name was not found in the model's registry.
    UnknownSubnet(String),
    /// The distributed runtime failed (worker down, timeout, …).
    Runtime(String),
    /// A configuration was internally inconsistent.
    Config(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::UnknownSubnet(name) => write!(f, "unknown sub-network {name:?}"),
            CoreError::Runtime(why) => write!(f, "runtime failure: {why}"),
            CoreError::Config(why) => write!(f, "invalid configuration: {why}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<fluid_dist::DistError> for CoreError {
    fn from(e: fluid_dist::DistError) -> Self {
        CoreError::Runtime(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::UnknownSubnet("x".into())
            .to_string()
            .contains("x"));
        assert!(CoreError::Runtime("down".into())
            .to_string()
            .contains("down"));
        assert!(CoreError::Config("bad".into()).to_string().contains("bad"));
    }
}
