//! `fluidctl` entry point.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = fluid_cli::commands::run(&argv) {
        eprintln!("fluidctl: {e}");
        eprintln!("{}", fluid_cli::commands::USAGE);
        std::process::exit(2);
    }
}
