//! Minimal `--key value` argument parsing.

use std::collections::BTreeMap;

/// Parsed `--key value` flags (plus bare `--switch` flags stored as `"true"`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArgMap {
    values: BTreeMap<String, String>,
}

/// Error produced for malformed or ill-typed arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl std::fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "argument error: {}", self.0)
    }
}

impl std::error::Error for ParseArgsError {}

impl ArgMap {
    /// Parses a flag list. A token starting with `--` introduces a key; if
    /// the next token is absent or is another flag, the key is a boolean
    /// switch.
    ///
    /// # Errors
    ///
    /// Returns an error on a bare value with no preceding flag.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ParseArgsError> {
        let mut values = BTreeMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(tok) = iter.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| ParseArgsError(format!("unexpected value {tok:?}")))?;
            if key.is_empty() {
                return Err(ParseArgsError("empty flag name".into()));
            }
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next().expect("peeked"),
                _ => "true".to_owned(),
            };
            values.insert(key.to_owned(), value);
        }
        Ok(Self { values })
    }

    /// String value for `key`, or `default`.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.values.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Required string value.
    ///
    /// # Errors
    ///
    /// Returns an error when the flag is missing.
    pub fn required(&self, key: &str) -> Result<&str, ParseArgsError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ParseArgsError(format!("missing required flag --{key}")))
    }

    /// `usize` value for `key`, or `default`.
    ///
    /// # Errors
    ///
    /// Returns an error when the value does not parse.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, ParseArgsError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseArgsError(format!("--{key} expects an integer, got {v:?}"))),
        }
    }

    /// `u64` value for `key`, or `default`.
    ///
    /// # Errors
    ///
    /// Returns an error when the value does not parse.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, ParseArgsError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseArgsError(format!("--{key} expects an integer, got {v:?}"))),
        }
    }

    /// `f32` value for `key`, or `default`.
    ///
    /// # Errors
    ///
    /// Returns an error when the value does not parse.
    pub fn f32_or(&self, key: &str, default: f32) -> Result<f32, ParseArgsError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseArgsError(format!("--{key} expects a number, got {v:?}"))),
        }
    }

    /// Whether a boolean switch is present.
    pub fn flag(&self, key: &str) -> bool {
        self.values.get(key).map(String::as_str) == Some("true")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<ArgMap, ParseArgsError> {
        ArgMap::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn key_value_pairs() {
        let a = parse(&["--epochs", "3", "--out", "m.fldn"]).expect("parse");
        assert_eq!(a.usize_or("epochs", 0).expect("int"), 3);
        assert_eq!(a.str_or("out", ""), "m.fldn");
    }

    #[test]
    fn boolean_switches() {
        let a = parse(&["--quick", "--seed", "7"]).expect("parse");
        assert!(a.flag("quick"));
        assert_eq!(a.u64_or("seed", 0).expect("int"), 7);
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&[]).expect("parse");
        assert_eq!(a.usize_or("epochs", 5).expect("int"), 5);
        assert_eq!(a.str_or("model", "fluid"), "fluid");
        assert!(!a.flag("quick"));
    }

    #[test]
    fn missing_required_errors() {
        let a = parse(&[]).expect("parse");
        assert!(a.required("out").is_err());
    }

    #[test]
    fn bad_integer_errors() {
        let a = parse(&["--epochs", "three"]).expect("parse");
        assert!(a.usize_or("epochs", 0).is_err());
    }

    #[test]
    fn bare_value_rejected() {
        assert!(parse(&["oops"]).is_err());
    }

    #[test]
    fn trailing_switch() {
        let a = parse(&["--seed", "1", "--verbose"]).expect("parse");
        assert!(a.flag("verbose"));
    }
}
