//! The `fluidctl` sub-commands.
//!
//! | command | action |
//! |---|---|
//! | `train`   | train a model family and write a checkpoint |
//! | `eval`    | evaluate a checkpoint's sub-network on fresh test data |
//! | `worker`  | serve branches over TCP until shut down |
//! | `master`  | connect to a worker, deploy, and run HA/HT inference |
//! | `serve`   | batched multi-worker serving over TCP (see `docs/SERVING.md`) |
//! | `loadgen` | drive a serving instance (in-proc or TCP) and report metrics |
//! | `autoscale` | run the elasticity controller against a Poisson traffic ramp |
//! | `reload`  | zero-downtime model hot-swap under live load |
//! | `route`   | shard traffic across a local cluster through the router tier (`--routers 2+`: announced nodes behind gossip-replicated routers) |
//! | `drill`   | run the chaos cluster drill and report its verdict (`--faults`: the fault-injected membership drill) |
//! | `fig2`    | regenerate the paper's Fig. 2 (both panels) |
//! | `help`    | usage |

use crate::args::{ArgMap, ParseArgsError};
use fluid_core::training::{
    train_incremental, train_nested, train_plain, NestedSchedule, TrainConfig,
};
use fluid_core::{format_accuracy_table, format_throughput_table, Experiment, Fig2Accuracy};
use fluid_data::SynthDigits;
use fluid_dist::{
    extract_branch_weights, Master, MasterConfig, TcpTransport, ThroughputMeter, Worker,
};
use fluid_models::{
    calibrate, load_net_from_path, save_net_to_path, standard_specs, Arch, DynamicModel,
    FluidModel, Precision, QuantizedNet, StaticModel, SubnetSpec,
};
use fluid_nn::accuracy;
use fluid_perf::SystemModel;
use fluid_router::{
    route_tcp, run_drill, run_membership_drill, DrillConfig, DynamicCluster, DynamicClusterConfig,
    LocalCluster, MembershipDrillConfig, RouterConfig,
};
use fluid_serve::{
    loadgen, AutoscaleConfig, Autoscaler, EngineBackend, QuantBackend, ServeConfig, Server,
    TcpClient, TenancyConfig, TenantClass, TenantPolicy,
};
use fluid_tensor::{Prng, Tensor};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Error from a command: argument problems or runtime failures.
#[derive(Debug)]
pub enum CliError {
    /// Bad or missing arguments.
    Args(ParseArgsError),
    /// Anything that failed while running.
    Run(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Run(why) => write!(f, "{why}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ParseArgsError> for CliError {
    fn from(e: ParseArgsError) -> Self {
        CliError::Args(e)
    }
}

/// Usage text.
pub const USAGE: &str = "\
fluidctl — Fluid Dynamic DNNs from the command line

USAGE:
  fluidctl train  [--model fluid|dynamic|static] [--out PATH] [--train-n N]
                  [--epochs N] [--iters N] [--seed N] [--lr F]
  fluidctl eval   --model-file PATH [--subnet NAME] [--test-n N] [--seed N]
  fluidctl worker [--listen ADDR] (default 127.0.0.1:7700)
  fluidctl master --connect ADDR --model-file PATH [--mode ha|ht] [--images N]
  fluidctl serve  [--listen ADDR] [--model-file PATH] [--workers N]
                  [--precision f32|int8] [--max-batch N] [--max-wait-ms N]
                  [--queue-cap N] [--tenants SPEC] [--slo-ms F]
                  [--duration-s N] (0 = run until killed)
  fluidctl loadgen [--connect ADDR] [--requests N] [--clients N]
                  [--open-loop] [--lambda F] [--seed N] [--model-file PATH]
                  [--workers N] [--precision f32|int8] [--max-batch N]
                  [--max-wait-ms N] [--queue-cap N] [--tenants SPEC] [--slo-ms F]
                  (without --connect: in-proc server; with --tenants:
                   per-tenant open loop, one report row per tenant)
  fluidctl autoscale [--min-workers N] [--max-workers N] [--requests N]
                  [--lambda F] [--tick-ms N] [--up-queue-depth N]
                  [--up-p95-ms F] [--down-queue-depth N] [--idle-ticks N]
                  [--cooldown-ticks N] [--retire-timeout-ms N] [--seed N]
                  [--model-file PATH] [--precision f32|int8] [--max-batch N]
                  [--max-wait-ms N] [--queue-cap N]
  fluidctl reload [--model-file PATH] [--new-model-file PATH] [--workers N]
                  [--precision f32|int8] [--new-precision f32|int8]
                  [--requests N] [--clients N] [--seed N]
                  [--max-batch N] [--max-wait-ms N] [--queue-cap N]
                  (--new-precision defaults to --precision; setting them
                   apart runs the f32<->int8 hot-swap A/B under load)
  fluidctl route  [--nodes N] [--workers-per-node N] [--replication N]
                  [--routers N] [--listen ADDR] [--requests N] [--clients N]
                  [--seed N] [--model-file PATH] [--max-batch N]
                  [--max-wait-ms N] [--queue-cap N]
                  (boots an in-proc cluster behind a router; with
                   --routers 2+ the nodes announce themselves to
                   gossip-replicated routers and clients spread over the
                   whole router list)
  fluidctl drill  [--nodes N] [--workers-per-node N] [--replication N]
                  [--lambda F] [--requests N] [--concurrency N]
                  [--kill-cycles N] [--kill-pause-ms N] [--no-swap]
                  [--seed N] [--model-file PATH] [--max-batch N]
                  [--max-wait-ms N] [--queue-cap N] (chaos cluster drill)
                  [--faults] [--routers N] [--drop-p F] [--duplicate-p F]
                  [--no-kill] [--no-join] [--no-partition]
                  (--faults runs the membership drill instead: announced
                   nodes behind gossip-replicated routers under a seeded
                   fault plan — a router kill, a mid-run node join, and a
                   node partition window, each switchable off)
  fluidctl fig2   [--quick]
  fluidctl help

Every command also accepts --threads N to pin the compute-kernel worker
pool (default: the FLUID_THREADS environment variable, else all cores).
Outputs are bit-identical at any thread count; see docs/PERFORMANCE.md.

--precision int8 serves the post-training-quantized model: weights are
quantized per channel, activations calibrated on a held-out batch, and
the top-1 agreement against f32 is printed at boot (gate: >= 99%).
FLUID_FORCE_SCALAR=1 pins the scalar GEMM microkernels on any host.

--tenants SPEC is a comma-separated table of
ID:NAME:CLASS[:WEIGHT[:RATE[:BURST]]][@LAMBDA] entries (CLASS is
interactive|batch; RATE/BURST are the per-tenant token-bucket admission
quota in req/s and requests, default unmetered; @LAMBDA is that tenant's
loadgen arrival rate). Example:
  --tenants 1:web:interactive:2@200,2:etl:batch:1:50:10@400
See the multi-tenant scheduling section of docs/SERVING.md.
";

/// Dispatches a command line (without the binary name).
///
/// # Errors
///
/// Returns [`CliError`] on unknown commands, bad flags, or runtime failure.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let (cmd, rest) = argv
        .split_first()
        .map(|(c, r)| (c.as_str(), r))
        .unwrap_or(("help", &[]));
    let args = ArgMap::parse(rest.iter().cloned())?;
    // Every command accepts --threads N: pins the compute-kernel pool
    // (otherwise the FLUID_THREADS env / core count decides). Results are
    // bit-identical at any setting; only speed changes. An explicit 0 is
    // rejected, matching `ServeConfig::threads` validation.
    if !args.str_or("threads", "").is_empty() {
        match args.usize_or("threads", 0)? {
            0 => {
                return Err(CliError::Args(ParseArgsError(
                    "--threads must be at least 1".into(),
                )))
            }
            n => fluid_tensor::pool::set_threads(n),
        }
    }
    match cmd {
        "train" => cmd_train(&args),
        "eval" => cmd_eval(&args),
        "worker" => cmd_worker(&args),
        "master" => cmd_master(&args),
        "serve" => cmd_serve(&args),
        "loadgen" => cmd_loadgen(&args),
        "autoscale" => cmd_autoscale(&args),
        "reload" => cmd_reload(&args),
        "route" => cmd_route(&args),
        "drill" => cmd_drill(&args),
        "fig2" => cmd_fig2(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Run(format!(
            "unknown command {other:?}; try `fluidctl help`"
        ))),
    }
}

fn cmd_train(args: &ArgMap) -> Result<(), CliError> {
    let family = args.str_or("model", "fluid").to_owned();
    let out = args.str_or("out", "model.fldn").to_owned();
    let train_n = args.usize_or("train-n", 2000)?;
    let epochs = args.usize_or("epochs", 1)?;
    let iters = args.usize_or("iters", 2)?;
    let seed = args.u64_or("seed", 42)?;
    let lr = args.f32_or("lr", 0.05)?;

    let mut gen = SynthDigits::new(seed);
    let train = gen.generate(train_n);
    let cfg = TrainConfig {
        epochs_per_phase: epochs,
        seed,
        lr,
        ..TrainConfig::default()
    };
    println!("training {family} model on {train_n} SynthDigits images (seed {seed})...");
    let t0 = std::time::Instant::now();
    let net = match family.as_str() {
        "fluid" => {
            let mut model = FluidModel::new(Arch::paper(), &mut Prng::new(seed));
            let schedule = NestedSchedule {
                iterations: iters,
                ..NestedSchedule::default()
            };
            let stats = train_nested(&mut model, &train, &cfg, &schedule);
            println!("final loss {:.4}", stats.final_loss().unwrap_or(f32::NAN));
            model.net().clone()
        }
        "dynamic" => {
            let mut model = DynamicModel::new(Arch::paper(), &mut Prng::new(seed));
            let stats = train_incremental(&mut model, &train, &cfg);
            println!("final loss {:.4}", stats.final_loss().unwrap_or(f32::NAN));
            model.net().clone()
        }
        "static" => {
            let mut model = StaticModel::new(Arch::paper(), &mut Prng::new(seed));
            let mut cfg = cfg;
            cfg.epochs_per_phase = epochs * 6 * iters; // budget parity
            let stats = train_plain(&mut model, &train, &cfg);
            println!("final loss {:.4}", stats.final_loss().unwrap_or(f32::NAN));
            model.net().clone()
        }
        other => {
            return Err(CliError::Run(format!(
                "unknown --model {other:?} (fluid|dynamic|static)"
            )))
        }
    };
    save_net_to_path(&net, Path::new(&out)).map_err(|e| CliError::Run(e.to_string()))?;
    println!(
        "trained in {:.1}s, checkpoint written to {out}",
        t0.elapsed().as_secs_f32()
    );
    Ok(())
}

fn cmd_eval(args: &ArgMap) -> Result<(), CliError> {
    let path = args.required("model-file")?.to_owned();
    let subnet = args.str_or("subnet", "combined100").to_owned();
    let test_n = args.usize_or("test-n", 500)?;
    let seed = args.u64_or("seed", 999)?;

    let mut net = load_net_from_path(Path::new(&path)).map_err(|e| CliError::Run(e.to_string()))?;
    let arch = net.arch().clone();
    // Rebuild the fluid registry over the loaded weights to resolve names.
    let registry = FluidModel::new(arch, &mut Prng::new(0));
    let spec = registry
        .spec(&subnet)
        .ok_or_else(|| {
            CliError::Run(format!(
                "unknown sub-network {subnet:?}; known: lower25, lower50, upper25, upper50, combined75, combined100"
            ))
        })?
        .clone();
    let test = SynthDigits::new(seed).generate(test_n);
    let acc = Experiment::evaluate_subnet(&mut net, &spec, &test);
    println!(
        "{subnet} accuracy on {test_n} fresh images: {:.1}%",
        acc * 100.0
    );
    Ok(())
}

fn cmd_worker(args: &ArgMap) -> Result<(), CliError> {
    let listen = args.str_or("listen", "127.0.0.1:7700").to_owned();
    let listener = TcpListener::bind(&listen).map_err(|e| CliError::Run(e.to_string()))?;
    println!(
        "worker listening on {listen} ({} kernel threads, ctrl-c to stop)",
        fluid_tensor::pool::threads()
    );
    let (stream, peer) = listener
        .accept()
        .map_err(|e| CliError::Run(e.to_string()))?;
    println!("master connected from {peer}");
    let transport = TcpTransport::new(stream).map_err(|e| CliError::Run(e.to_string()))?;
    let (exit, engine) = Worker::new(transport, Arch::paper(), &listen).run();
    println!(
        "worker exited ({exit:?}) after {} inferences",
        engine.inferences()
    );
    Ok(())
}

fn cmd_master(args: &ArgMap) -> Result<(), CliError> {
    let addr = args.required("connect")?.to_owned();
    let path = args.required("model-file")?.to_owned();
    let mode = args.str_or("mode", "ha").to_owned();
    let images = args.usize_or("images", 100)?;

    let net = load_net_from_path(Path::new(&path)).map_err(|e| CliError::Run(e.to_string()))?;
    let arch = net.arch().clone();
    let registry = FluidModel::new(arch, &mut Prng::new(0));

    let stream = TcpStream::connect(&addr).map_err(|e| CliError::Run(e.to_string()))?;
    let transport = TcpTransport::new(stream).map_err(|e| CliError::Run(e.to_string()))?;
    let mut master = Master::new(transport, net, MasterConfig::default());
    let device = master
        .await_hello()
        .map_err(|e| CliError::Run(e.to_string()))?;
    println!("connected to worker {device:?} at {addr}");

    let lower = registry.spec("lower50").expect("registry").branches[0].clone();
    let upper = match mode.as_str() {
        "ha" => registry.spec("combined100").expect("registry").branches[1].clone(),
        "ht" => registry.spec("upper50").expect("registry").branches[0].clone(),
        other => return Err(CliError::Run(format!("unknown --mode {other:?} (ha|ht)"))),
    };
    let windows = {
        let net = master.engine_mut().net().clone();
        extract_branch_weights(&net, &upper)
    };
    master.deploy_local(lower);
    master
        .deploy_remote(upper, windows)
        .map_err(|e| CliError::Run(e.to_string()))?;

    let test = SynthDigits::new(7).generate(images.max(2));
    let mut meter = ThroughputMeter::new();
    let mut correct = 0.0f32;
    match mode.as_str() {
        "ha" => {
            for i in 0..images {
                let (x, labels) = test.gather(&[i % test.len()]);
                let logits = master
                    .infer_ha(&x)
                    .map_err(|e| CliError::Run(e.to_string()))?;
                correct += accuracy(&logits, &labels);
                meter.add(1);
            }
        }
        _ => {
            let mut i = 0;
            while i + 1 < images {
                let (xa, la) = test.gather(&[i % test.len()]);
                let (xb, lb) = test.gather(&[(i + 1) % test.len()]);
                let (a, b) = master
                    .infer_ht(&xa, &xb)
                    .map_err(|e| CliError::Run(e.to_string()))?;
                correct += accuracy(&a, &la) + accuracy(&b, &lb);
                meter.add(2);
                i += 2;
            }
        }
    }
    println!(
        "{} mode: {:.1} img/s, accuracy {:.1}% over {} images",
        mode.to_uppercase(),
        meter.rate(),
        correct / meter.items() as f32 * 100.0,
        meter.items()
    );
    master.shutdown_worker();
    Ok(())
}

/// Loads the serving net from `--model-file` (or builds fresh
/// paper-architecture weights — fine for load testing; answers are
/// untrained) along with its combined sub-network spec. Specs are pure
/// structure ([`standard_specs`]), so no throwaway weights are built.
fn serving_model(args: &ArgMap) -> Result<(fluid_models::ConvNet, SubnetSpec), CliError> {
    let net = match args.str_or("model-file", "") {
        "" => {
            println!("no --model-file: serving fresh (untrained) paper-architecture weights");
            FluidModel::new(Arch::paper(), &mut Prng::new(0))
                .net()
                .clone()
        }
        path => load_net_from_path(Path::new(path)).map_err(|e| CliError::Run(e.to_string()))?,
    };
    let spec = standard_specs(net.arch())
        .into_iter()
        .find(|s| s.name == "combined100")
        .expect("standard registry has combined100");
    Ok((net, spec))
}

/// Builds the scheduler config from the shared `--max-batch` /
/// `--max-wait-ms` / `--queue-cap` / `--tenants` / `--slo-ms` flags.
/// (`ServeConfig` is `#[non_exhaustive]`, hence mutation over a literal.)
fn serve_config(args: &ArgMap) -> Result<ServeConfig, CliError> {
    let mut cfg = ServeConfig::default();
    cfg.max_batch = args.usize_or("max-batch", 8)?;
    cfg.max_wait = Duration::from_millis(args.u64_or("max-wait-ms", 2)?);
    cfg.queue_cap = args.usize_or("queue-cap", 256)?;
    cfg.threads = match args.usize_or("threads", 0)? {
        0 => None,
        n => Some(n),
    };
    match args.str_or("tenants", "") {
        "" => {}
        spec => {
            let mut tenancy = TenancyConfig::new(parse_tenants(spec)?.0);
            tenancy.interactive_slo_ms = f64::from(args.f32_or("slo-ms", 50.0)?);
            cfg.tenancy = Some(tenancy);
        }
    }
    Ok(cfg)
}

/// Parses the `--tenants` table: comma-separated entries of
/// `ID:NAME:CLASS[:WEIGHT[:RATE[:BURST]]][@LAMBDA]`, where CLASS is
/// `interactive` or `batch`, RATE/BURST default to unmetered (`inf`
/// accepted), and the optional `@LAMBDA` suffix is the tenant's open-loop
/// arrival rate for `fluidctl loadgen` (ignored by `serve`). Returns the
/// policies and one `Option<f64>` lambda per entry, in order.
fn parse_tenants(spec: &str) -> Result<(Vec<TenantPolicy>, Vec<Option<f64>>), CliError> {
    let mut policies = Vec::new();
    let mut lambdas = Vec::new();
    for entry in spec.split(',') {
        let (policy_part, lambda) = match entry.split_once('@') {
            Some((p, l)) => {
                let lambda: f64 = l.parse().map_err(|_| {
                    CliError::Run(format!("bad tenant lambda {l:?} in entry {entry:?}"))
                })?;
                (p, Some(lambda))
            }
            None => (entry, None),
        };
        let fields: Vec<&str> = policy_part.split(':').collect();
        if !(3..=6).contains(&fields.len()) {
            return Err(CliError::Run(format!(
                "bad tenant entry {entry:?}: want ID:NAME:CLASS[:WEIGHT[:RATE[:BURST]]]"
            )));
        }
        let id: u64 = fields[0]
            .parse()
            .map_err(|_| CliError::Run(format!("bad tenant id {:?} in {entry:?}", fields[0])))?;
        let class = match fields[2] {
            "interactive" => TenantClass::Interactive,
            "batch" => TenantClass::Batch,
            other => {
                return Err(CliError::Run(format!(
                    "bad tenant class {other:?} (interactive|batch)"
                )))
            }
        };
        let mut policy = TenantPolicy::new(id, fields[1], class);
        if let Some(w) = fields.get(3) {
            policy.weight = w
                .parse()
                .map_err(|_| CliError::Run(format!("bad tenant weight {w:?} in {entry:?}")))?;
        }
        if let Some(r) = fields.get(4) {
            policy.rate = r
                .parse()
                .map_err(|_| CliError::Run(format!("bad tenant rate {r:?} in {entry:?}")))?;
        }
        if let Some(b) = fields.get(5) {
            policy.burst = b
                .parse()
                .map_err(|_| CliError::Run(format!("bad tenant burst {b:?} in {entry:?}")))?;
        }
        policies.push(policy);
        lambdas.push(lambda);
    }
    Ok((policies, lambdas))
}

/// Number of held-out synthetic digits used to calibrate the int8 path.
const CALIB_BATCH: usize = 64;

/// A serving engine at one precision: the factory every serving command
/// builds its backend fleet from (`--precision f32|int8`).
#[derive(Clone)]
enum ServingEngine {
    F32(Box<fluid_models::ConvNet>, SubnetSpec),
    Int8(Box<QuantizedNet>),
}

impl ServingEngine {
    /// Builds the engine, calibrating and freezing the net when `int8` is
    /// requested. Calibration uses a held-out synthetic-digit batch
    /// (disjoint seed from every loadgen input set) and prints the top-1
    /// agreement against the f32 oracle on that batch.
    fn build(
        net: &mut fluid_models::ConvNet,
        spec: &SubnetSpec,
        precision: Precision,
    ) -> Result<Self, CliError> {
        match precision {
            Precision::F32 => Ok(ServingEngine::F32(Box::new(net.clone()), spec.clone())),
            Precision::Int8 => {
                let (batch, _) = SynthDigits::new(0xCA11B)
                    .generate(CALIB_BATCH)
                    .gather(&(0..CALIB_BATCH).collect::<Vec<_>>());
                let calib = calibrate(net, spec, &batch);
                let qnet = QuantizedNet::from_net(net, spec, &calib);
                let want = net.forward_subnet(&batch, spec, false);
                let got = qnet.clone().forward(&batch);
                let agreement = fluid_models::top1_agreement(&want, &got);
                net.recycle(want);
                println!(
                    "int8 calibration: top-1 agreement {:.1}% vs f32 on {CALIB_BATCH} held-out digits",
                    agreement * 100.0
                );
                if agreement < 0.99 {
                    eprintln!(
                        "warning: int8 top-1 agreement {:.3} below the 0.99 acceptance gate — \
                         serve this model quantized only if that is acceptable",
                        agreement
                    );
                }
                Ok(ServingEngine::Int8(Box::new(qnet)))
            }
        }
    }

    /// One backend replica named `name`.
    fn backend(&self, name: &str) -> Box<dyn fluid_serve::Backend> {
        match self {
            ServingEngine::F32(net, spec) => {
                Box::new(EngineBackend::new(name, net.as_ref().clone(), spec.clone()))
            }
            ServingEngine::Int8(qnet) => Box::new(QuantBackend::new(name, qnet.as_ref().clone())),
        }
    }

    /// `count` replicas named `{prefix}{i}`.
    fn backends(&self, count: usize, prefix: &str) -> Vec<Box<dyn fluid_serve::Backend>> {
        (0..count.max(1))
            .map(|i| self.backend(&format!("{prefix}{i}")))
            .collect()
    }
}

/// Parses a `--precision`-style flag (empty = `default`).
fn parse_precision(args: &ArgMap, key: &str, default: Precision) -> Result<Precision, CliError> {
    match args.str_or(key, "") {
        "" => Ok(default),
        s => s.parse::<Precision>().map_err(CliError::Run),
    }
}

/// Boots an in-proc batching server: `workers` replicas of the net's
/// combined model at the requested `--precision`.
fn boot_server(args: &ArgMap) -> Result<Server, CliError> {
    let (mut net, spec) = serving_model(args)?;
    let workers = args.usize_or("workers", 2)?;
    let precision = parse_precision(args, "precision", Precision::F32)?;
    let engine = ServingEngine::build(&mut net, &spec, precision)?;
    let backends = engine.backends(workers, "engine");
    Server::start(serve_config(args)?, backends).map_err(|e| CliError::Run(e.to_string()))
}

/// A deterministic input set for the load-driving commands.
fn loadgen_inputs(seed: u64) -> Vec<Tensor> {
    let data = SynthDigits::new(seed).generate(64);
    (0..data.len()).map(|i| data.gather(&[i]).0).collect()
}

fn cmd_serve(args: &ArgMap) -> Result<(), CliError> {
    let listen = args.str_or("listen", "127.0.0.1:7800").to_owned();
    let duration_s = args.u64_or("duration-s", 0)?;
    let server = boot_server(args)?;
    let listener = TcpListener::bind(&listen).map_err(|e| CliError::Run(e.to_string()))?;
    let shutdown = Arc::new(AtomicBool::new(false));
    if duration_s > 0 {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs(duration_s));
            shutdown.store(true, Ordering::SeqCst);
        });
        println!(
            "serving on {listen} for {duration_s}s ({} kernel threads)...",
            fluid_tensor::pool::threads()
        );
    } else {
        println!(
            "serving on {listen} until killed ({} kernel threads, ctrl-c)...",
            fluid_tensor::pool::threads()
        );
    }
    fluid_serve::serve_tcp(listener, server.handle(), shutdown)
        .map_err(|e| CliError::Run(e.to_string()))?;
    println!("{}", server.shutdown());
    Ok(())
}

fn cmd_loadgen(args: &ArgMap) -> Result<(), CliError> {
    let requests = args.usize_or("requests", 200)?;
    let clients = args.usize_or("clients", 8)?.max(1);
    let seed = args.u64_or("seed", 42)?;
    let open_loop = args.flag("open-loop");
    let lambda = args.f32_or("lambda", 500.0)? as f64;
    // NaN must also be refused here, not left to panic in the loadgen's
    // assert — hence the is_finite check alongside the sign check.
    if open_loop && !(lambda.is_finite() && lambda > 0.0) {
        return Err(CliError::Run(format!(
            "--lambda must be a positive arrival rate, got {lambda}"
        )));
    }
    let inputs = loadgen_inputs(seed);

    match args.str_or("connect", "") {
        "" if !args.str_or("tenants", "").is_empty() => {
            // Multi-tenant open loop: one Poisson arrival thread per
            // tenant, requests split evenly unless an entry carries its
            // own `@LAMBDA` rate.
            let (policies, lambdas) = parse_tenants(args.str_or("tenants", ""))?;
            let server = boot_server(args)?;
            let share = requests / policies.len().max(1);
            let plans: Vec<loadgen::TenantLoad> = policies
                .iter()
                .zip(&lambdas)
                .map(|(p, l)| loadgen::TenantLoad {
                    tenant: p.id,
                    lambda: l.unwrap_or(lambda),
                    requests: share,
                })
                .collect();
            println!(
                "multi-tenant open loop: {} tenants × {share} requests...",
                plans.len()
            );
            let reports = loadgen::run_open_loop_tenants(&server.handle(), &plans, &inputs, seed);
            for (policy, report) in policies.iter().zip(&reports) {
                println!("tenant {:12} {report}", policy.name);
            }
            println!("{}", server.shutdown());
        }
        "" => {
            let server = boot_server(args)?;
            let report = if open_loop {
                println!("open loop: Poisson arrivals at λ = {lambda:.0} req/s...");
                loadgen::run_open_loop(&server.handle(), lambda, requests, &inputs, seed)
            } else {
                println!("closed loop: {clients} concurrent clients...");
                let handle = server.handle();
                loadgen::run_closed_loop(|_| Ok(handle.clone()), clients, requests, &inputs)
                    .map_err(|e| CliError::Run(e.to_string()))?
            };
            println!("{report}");
            println!("{}", server.shutdown());
        }
        addr => {
            if open_loop {
                return Err(CliError::Run(
                    "--open-loop is in-proc only (drop --connect)".into(),
                ));
            }
            println!("closed loop over TCP: {clients} connections to {addr}...");
            let report =
                loadgen::run_closed_loop(|_| TcpClient::connect(addr), clients, requests, &inputs)
                    .map_err(|e| CliError::Run(e.to_string()))?;
            println!("{report}");
        }
    }
    Ok(())
}

fn cmd_autoscale(args: &ArgMap) -> Result<(), CliError> {
    let (mut net, spec) = serving_model(args)?;
    let min_workers = args.usize_or("min-workers", 1)?.max(1);
    let max_workers = args.usize_or("max-workers", 4)?;
    let requests = args.usize_or("requests", 240)?.max(4);
    let lambda = args.f32_or("lambda", 400.0)? as f64;
    let seed = args.u64_or("seed", 42)?;
    if !(lambda.is_finite() && lambda > 0.0) {
        return Err(CliError::Run(format!(
            "--lambda must be a positive peak arrival rate, got {lambda}"
        )));
    }
    let mut scale_cfg = AutoscaleConfig::default();
    scale_cfg.min_workers = min_workers;
    scale_cfg.max_workers = max_workers;
    scale_cfg.tick = Duration::from_millis(args.u64_or("tick-ms", 10)?);
    scale_cfg.up_queue_depth = args.usize_or("up-queue-depth", 8)?;
    scale_cfg.up_p95_ms = f64::from(args.f32_or("up-p95-ms", 0.0)?);
    scale_cfg.down_queue_depth = args.usize_or("down-queue-depth", scale_cfg.down_queue_depth)?;
    scale_cfg.idle_ticks = args.usize_or("idle-ticks", 25)?;
    scale_cfg.cooldown_ticks = args.usize_or("cooldown-ticks", scale_cfg.cooldown_ticks)?;
    scale_cfg.retire_timeout = Duration::from_millis(args.u64_or("retire-timeout-ms", 10_000)?);

    let precision = parse_precision(args, "precision", Precision::F32)?;
    let engine = ServingEngine::build(&mut net, &spec, precision)?;
    let server = Server::start(serve_config(args)?, engine.backends(min_workers, "base"))
        .map_err(|e| CliError::Run(e.to_string()))?;
    let factory = {
        let engine = engine.clone();
        move |slot: usize| Ok(engine.backend(&format!("auto{slot}")))
    };
    let scaler = Autoscaler::spawn(server.elastic(), factory, scale_cfg)
        .map_err(|e| CliError::Run(e.to_string()))?;

    let handle = server.handle();
    let inputs = loadgen_inputs(seed);
    let calm = (lambda / 8.0).max(1.0);
    println!(
        "traffic ramp: λ {calm:.0} → {lambda:.0} → {calm:.0} req/s over {requests} requests, \
         pool {min_workers}..{max_workers} workers\n"
    );
    for (phase, (rate, share)) in [(calm, 4), (lambda, 2), (calm, 4)].iter().enumerate() {
        let n = requests / share;
        println!(
            "-- phase {}: λ = {rate:.0} req/s, {n} requests --",
            phase + 1
        );
        let report = loadgen::run_open_loop(&handle, *rate, n, &inputs, seed + phase as u64);
        println!("{report}");
        println!(
            "   workers accepting: {}, queue depth {}\n",
            server.alive_workers(),
            handle.queue_depth()
        );
    }

    let events = scaler.stop();
    println!("controller decisions ({}):", events.len());
    for e in &events {
        println!("  {e}");
    }
    println!("\n{}", server.shutdown());
    Ok(())
}

fn cmd_reload(args: &ArgMap) -> Result<(), CliError> {
    let (mut net, spec) = serving_model(args)?;
    let workers = args.usize_or("workers", 2)?.max(1);
    let requests = args.usize_or("requests", 200)?.max(2);
    let clients = args.usize_or("clients", 4)?.max(1);
    let seed = args.u64_or("seed", 42)?;
    let precision = parse_precision(args, "precision", Precision::F32)?;
    // The fleet swapped in may run at a different precision — the f32↔int8
    // A/B recipe (`--precision f32 --new-precision int8`, or the reverse).
    let new_precision = parse_precision(args, "new-precision", precision)?;

    let v1 = ServingEngine::build(&mut net, &spec, precision)?;
    let server = Server::start(serve_config(args)?, v1.backends(workers, "v1-"))
        .map_err(|e| CliError::Run(e.to_string()))?;
    let handle = server.handle();
    let inputs = loadgen_inputs(seed);

    println!("driving {clients} closed-loop clients while swapping models...");
    let load = {
        let handle = handle.clone();
        std::thread::spawn(move || {
            loadgen::run_closed_loop(|_| Ok(handle.clone()), clients, requests, &inputs)
        })
    };
    // Let traffic build before the cutover, so the swap is exercised
    // under load rather than on an idle server.
    std::thread::sleep(Duration::from_millis(50));

    match args.str_or("new-model-file", "") {
        "" => println!("no --new-model-file: re-deploying the same weights (bit-identical swap)"),
        path => {
            fluid_models::reload_net_from_path(&mut net, Path::new(path))
                .map_err(|e| CliError::Run(e.to_string()))?;
            println!("loaded replacement weights from {path}");
        }
    }
    // Built after the optional weight reload so an int8 v2 calibrates the
    // weights it will actually serve.
    let v2 = ServingEngine::build(&mut net, &spec, new_precision)?;
    let t0 = Instant::now();
    server
        .elastic()
        .hot_swap(v2.backends(workers, "v2-"), Duration::from_secs(30))
        .map_err(|e| CliError::Run(e.to_string()))?;
    println!(
        "hot swap: {workers} old {precision} slots drained and retired, \
         {workers} new {new_precision} slots live in {:.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    let report = load
        .join()
        .map_err(|_| CliError::Run("load thread panicked".into()))?
        .map_err(|e| CliError::Run(e.to_string()))?;
    println!("{report}");
    println!("\n{}", server.shutdown());
    if report.failed > 0 {
        return Err(CliError::Run(format!(
            "{} requests failed during the swap (expected zero)",
            report.failed
        )));
    }
    Ok(())
}

fn cmd_route(args: &ArgMap) -> Result<(), CliError> {
    let (net, spec) = serving_model(args)?;
    let nodes = args.usize_or("nodes", 3)?.max(1);
    let workers = args.usize_or("workers-per-node", 1)?.max(1);
    let replication = args.usize_or("replication", 2)?.max(1);
    let routers = args.usize_or("routers", 1)?.max(1);
    let requests = args.usize_or("requests", 120)?;
    let clients = args.usize_or("clients", 4)?.max(1);
    let seed = args.u64_or("seed", 42)?;
    let listen = args.str_or("listen", "127.0.0.1:0").to_owned();

    // `RouterConfig` is `#[non_exhaustive]`, hence mutation over a literal.
    let mut router_cfg = RouterConfig::default();
    router_cfg.replication = replication;

    if routers >= 2 {
        // The replicated tier: nodes announce themselves (Join +
        // heartbeats) instead of being statically wired, the routers share
        // membership and health over anti-entropy gossip, and the clients
        // spread over the whole router list.
        let mut cluster_cfg = DynamicClusterConfig::default();
        cluster_cfg.nodes = nodes;
        cluster_cfg.workers_per_node = workers;
        cluster_cfg.routers = routers;
        cluster_cfg.serve = serve_config(args)?;
        cluster_cfg.router = router_cfg;
        cluster_cfg.seed = seed;
        let cluster = DynamicCluster::boot(&net, &spec, cluster_cfg)
            .map_err(|e| CliError::Run(e.to_string()))?;
        if !cluster.wait_converged(Duration::from_secs(30)) {
            return Err(CliError::Run(
                "routers never converged on the announced membership".into(),
            ));
        }
        let addrs: Vec<String> = cluster.router_addrs().to_vec();
        println!(
            "{routers} gossip-replicated routers ({}): {nodes} announced nodes × {workers} \
             workers, replication {replication}; driving {clients} closed-loop clients \
             across the router list...",
            addrs.join(", ")
        );
        let inputs = loadgen_inputs(seed);
        let report = loadgen::run_closed_loop(
            |i| TcpClient::connect(&addrs[i % addrs.len()]),
            clients,
            requests,
            &inputs,
        )
        .map_err(|e| CliError::Run(e.to_string()))?;
        println!("{report}");
        for i in 0..cluster.routers_len() {
            println!("{}", cluster.router(i).router().metrics());
        }
        return Ok(());
    }

    let cluster = LocalCluster::boot(&net, &spec, nodes, workers, serve_config(args)?, router_cfg)
        .map_err(|e| CliError::Run(e.to_string()))?;
    let router = cluster.router().clone();

    let listener = TcpListener::bind(&listen).map_err(|e| CliError::Run(e.to_string()))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CliError::Run(e.to_string()))?
        .to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let front = {
        let (router, shutdown) = (router.clone(), Arc::clone(&shutdown));
        std::thread::spawn(move || route_tcp(listener, router, shutdown))
    };
    println!(
        "router on {addr}: {nodes} nodes × {workers} workers, replication {replication}; \
         driving {clients} closed-loop clients..."
    );

    let inputs = loadgen_inputs(seed);
    let report =
        loadgen::run_closed_loop(|_| TcpClient::connect(&addr), clients, requests, &inputs)
            .map_err(|e| CliError::Run(e.to_string()))?;
    println!("{report}");

    shutdown.store(true, Ordering::SeqCst);
    front
        .join()
        .map_err(|_| CliError::Run("router front-end panicked".into()))?
        .map_err(|e| CliError::Run(e.to_string()))?;
    println!("{}", router.metrics());
    Ok(())
}

fn cmd_membership_drill(args: &ArgMap) -> Result<(), CliError> {
    // `MembershipDrillConfig` is `#[non_exhaustive]`, hence mutation.
    let mut cfg = MembershipDrillConfig::default();
    cfg.nodes = args.usize_or("nodes", cfg.nodes)?;
    cfg.workers_per_node = args
        .usize_or("workers-per-node", cfg.workers_per_node)?
        .max(1);
    cfg.routers = args.usize_or("routers", cfg.routers)?;
    cfg.replication = args.usize_or("replication", cfg.replication)?;
    cfg.lambda = f64::from(args.f32_or("lambda", 120.0)?);
    cfg.requests = args.usize_or("requests", cfg.requests)?;
    cfg.concurrency = args.usize_or("concurrency", cfg.concurrency)?.max(1);
    cfg.kill_router = !args.flag("no-kill");
    cfg.join_node = !args.flag("no-join");
    if args.flag("no-partition") {
        cfg.partition = None;
    }
    cfg.drop_p = f64::from(args.f32_or("drop-p", 0.02)?);
    cfg.duplicate_p = f64::from(args.f32_or("duplicate-p", 0.02)?);
    cfg.seed = args.u64_or("seed", cfg.seed)?;
    cfg.serve = serve_config(args)?;
    // Turn `run_membership_drill`'s panicking preconditions into flag
    // errors: the CLI should refuse bad configs, not crash on them.
    if cfg.nodes < 2 {
        return Err(CliError::Run(
            "--nodes must be at least 2 (a one-node cluster is just `serve`)".into(),
        ));
    }
    if cfg.kill_router && cfg.routers < 2 {
        return Err(CliError::Run(
            "killing the only router is guaranteed unavailability; \
             raise --routers or pass --no-kill"
                .into(),
        ));
    }
    if cfg.partition.is_some() && cfg.replication < 2 {
        return Err(CliError::Run(
            "--replication 1 under a partition is guaranteed data loss; \
             raise --replication or pass --no-partition"
                .into(),
        ));
    }
    if !(cfg.lambda.is_finite() && cfg.lambda > 0.0) {
        return Err(CliError::Run(format!(
            "--lambda must be a positive arrival rate, got {}",
            cfg.lambda
        )));
    }
    if cfg.requests == 0 {
        return Err(CliError::Run("--requests must be at least 1".into()));
    }
    for (flag, p) in [("drop-p", cfg.drop_p), ("duplicate-p", cfg.duplicate_p)] {
        if !(0.0..=1.0).contains(&p) {
            return Err(CliError::Run(format!(
                "--{flag} must be a probability in [0, 1], got {p}"
            )));
        }
    }
    let (net, spec) = serving_model(args)?;

    println!(
        "membership drill: {} announced nodes × {} workers behind {} gossip-replicated \
         routers, replication {}, λ = {:.0} req/s, {} requests{}{}{}...",
        cfg.nodes,
        cfg.workers_per_node,
        cfg.routers,
        cfg.replication,
        cfg.lambda,
        cfg.requests,
        if cfg.kill_router {
            "; killing one router mid-run"
        } else {
            ""
        },
        if cfg.join_node {
            "; joining one node mid-run"
        } else {
            ""
        },
        if cfg.partition.is_some() {
            "; partitioning node-0"
        } else {
            ""
        }
    );
    let report =
        run_membership_drill(&net, &spec, cfg).map_err(|e| CliError::Run(e.to_string()))?;
    println!("{report}");
    if !report.passed() {
        return Err(CliError::Run(
            "membership drill FAILED: admitted traffic was dropped, refused downstream, \
             answered with non-oracle logits, or the routers never re-converged \
             (see report above)"
                .into(),
        ));
    }
    Ok(())
}

fn cmd_drill(args: &ArgMap) -> Result<(), CliError> {
    // `--faults` switches to the membership drill: announced nodes,
    // replicated routers, and a seeded fault plan instead of the static
    // kill/restart chaos cycle.
    if args.flag("faults") {
        return cmd_membership_drill(args);
    }
    // `DrillConfig` is `#[non_exhaustive]`, hence mutation over a literal.
    let mut cfg = DrillConfig::default();
    cfg.nodes = args.usize_or("nodes", cfg.nodes)?;
    cfg.workers_per_node = args
        .usize_or("workers-per-node", cfg.workers_per_node)?
        .max(1);
    cfg.replication = args.usize_or("replication", cfg.replication)?;
    cfg.lambda = f64::from(args.f32_or("lambda", 150.0)?);
    cfg.requests = args.usize_or("requests", cfg.requests)?;
    cfg.concurrency = args.usize_or("concurrency", cfg.concurrency)?.max(1);
    cfg.kill_cycles = args.usize_or("kill-cycles", cfg.kill_cycles)?;
    cfg.kill_pause = Duration::from_millis(args.u64_or("kill-pause-ms", 150)?);
    cfg.rolling_swap = !args.flag("no-swap");
    cfg.seed = args.u64_or("seed", cfg.seed)?;
    cfg.serve = serve_config(args)?;
    // Turn `run_drill`'s panicking preconditions into flag errors: the CLI
    // should refuse bad configs, not crash on them.
    if cfg.nodes < 2 {
        return Err(CliError::Run(
            "--nodes must be at least 2 (a one-node cluster is just `serve`)".into(),
        ));
    }
    if cfg.replication < 2 && cfg.kill_cycles > 0 {
        return Err(CliError::Run(
            "--replication 1 under kill cycles is guaranteed data loss; \
             raise --replication or pass --kill-cycles 0"
                .into(),
        ));
    }
    if !(cfg.lambda.is_finite() && cfg.lambda > 0.0) {
        return Err(CliError::Run(format!(
            "--lambda must be a positive arrival rate, got {}",
            cfg.lambda
        )));
    }
    if cfg.requests == 0 {
        return Err(CliError::Run("--requests must be at least 1".into()));
    }
    let (net, spec) = serving_model(args)?;

    println!(
        "chaos drill: {} nodes × {} workers, replication {}, λ = {:.0} req/s, \
         {} requests, {} kill cycles{}...",
        cfg.nodes,
        cfg.workers_per_node,
        cfg.replication,
        cfg.lambda,
        cfg.requests,
        cfg.kill_cycles,
        if cfg.rolling_swap {
            ", then a rolling swap"
        } else {
            ""
        }
    );
    let report = run_drill(&net, &spec, cfg).map_err(|e| CliError::Run(e.to_string()))?;
    println!("{report}");
    if !report.passed() {
        return Err(CliError::Run(
            "drill FAILED: admitted traffic was dropped, refused downstream, or \
             answered with non-oracle logits (see report above)"
                .into(),
        ));
    }
    Ok(())
}

fn cmd_fig2(args: &ArgMap) -> Result<(), CliError> {
    let system = SystemModel::paper_testbed();
    println!("{}", format_throughput_table(&system.fig2_table()));
    let (train_n, test_n) = if args.flag("quick") {
        (800, 300)
    } else {
        (3000, 1000)
    };
    let mut fig = Fig2Accuracy::train(Arch::paper(), train_n, test_n, 1, 2024);
    println!("{}", format_accuracy_table(&fig.table()));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_runs() {
        run(&argv(&["help"])).expect("help");
        run(&[]).expect("no args = help");
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn eval_requires_model_file() {
        let err = run(&argv(&["eval"])).expect_err("missing flag");
        assert!(err.to_string().contains("model-file"), "{err}");
    }

    #[test]
    fn master_requires_connect() {
        let err = run(&argv(&["master", "--model-file", "x.fldn"])).expect_err("missing flag");
        assert!(err.to_string().contains("connect"), "{err}");
    }

    #[test]
    fn train_rejects_unknown_family() {
        let err = run(&argv(&["train", "--model", "quantum", "--train-n", "10"]))
            .expect_err("bad family");
        assert!(err.to_string().contains("unknown --model"), "{err}");
    }

    #[test]
    fn loadgen_rejects_open_loop_over_tcp() {
        let err = run(&argv(&[
            "loadgen",
            "--connect",
            "127.0.0.1:1",
            "--open-loop",
        ]))
        .expect_err("open loop needs in-proc");
        assert!(err.to_string().contains("in-proc"), "{err}");
    }

    #[test]
    fn loadgen_closed_loop_inproc_serves_and_batches() {
        run(&argv(&[
            "loadgen",
            "--requests",
            "12",
            "--clients",
            "4",
            "--workers",
            "1",
            "--max-batch",
            "8",
            "--seed",
            "5",
        ]))
        .expect("in-proc loadgen");
    }

    #[test]
    fn tenants_spec_parses_policies_quotas_and_lambdas() {
        let (policies, lambdas) =
            parse_tenants("1:web:interactive:2@200,2:etl:batch:1:50:10@400,3:ops:batch")
                .expect("parse");
        assert_eq!(policies.len(), 3);
        assert_eq!(policies[0].id, 1);
        assert_eq!(policies[0].name, "web");
        assert_eq!(policies[0].class, TenantClass::Interactive);
        assert_eq!(policies[0].weight, 2);
        assert!(policies[0].rate.is_infinite(), "default is unmetered");
        assert_eq!(policies[1].rate, 50.0);
        assert_eq!(policies[1].burst, 10.0);
        assert_eq!(lambdas, vec![Some(200.0), Some(400.0), None]);
    }

    #[test]
    fn tenants_spec_rejects_malformed_entries() {
        for bad in [
            "1:web",                     // too few fields
            "x:web:interactive",         // bad id
            "1:web:premium",             // bad class
            "1:web:interactive:heavy",   // bad weight
            "1:web:interactive:1:fast",  // bad rate
            "1:web:interactive@quickly", // bad lambda
        ] {
            assert!(parse_tenants(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn loadgen_with_tenants_reports_each_tenant() {
        run(&argv(&[
            "loadgen",
            "--requests",
            "12",
            "--workers",
            "1",
            "--tenants",
            "1:web:interactive:2@300,2:etl:batch@300",
            "--seed",
            "5",
        ]))
        .expect("tenant loadgen");
    }

    #[test]
    fn serve_rejects_a_duplicate_tenant_table() {
        let err = run(&argv(&[
            "loadgen",
            "--requests",
            "1",
            "--tenants",
            "1:web:interactive,1:dup:batch",
        ]))
        .expect_err("duplicate tenant ids");
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn explicit_zero_threads_is_rejected() {
        let err = run(&argv(&["eval", "--threads", "0"])).expect_err("0 threads is invalid");
        assert!(err.to_string().contains("threads"), "{err}");
    }

    #[test]
    fn serve_rejects_bad_knobs() {
        let err = run(&argv(&["serve", "--max-batch", "zero"])).expect_err("bad integer");
        assert!(err.to_string().contains("max-batch"), "{err}");
    }

    #[test]
    fn loadgen_rejects_non_positive_lambda() {
        let err = run(&argv(&["loadgen", "--open-loop", "--lambda", "0"]))
            .expect_err("lambda must be positive");
        assert!(err.to_string().contains("lambda"), "{err}");
        let err = run(&argv(&["loadgen", "--open-loop", "--lambda", "-3"]))
            .expect_err("lambda must be positive");
        assert!(err.to_string().contains("lambda"), "{err}");
        let err = run(&argv(&["loadgen", "--open-loop", "--lambda", "NaN"]))
            .expect_err("NaN is not a rate");
        assert!(err.to_string().contains("lambda"), "{err}");
    }

    #[test]
    fn autoscale_rejects_non_positive_lambda() {
        let err = run(&argv(&["autoscale", "--lambda", "0"])).expect_err("lambda must be positive");
        assert!(err.to_string().contains("lambda"), "{err}");
    }

    #[test]
    fn autoscale_rejects_inverted_worker_bounds() {
        let err = run(&argv(&[
            "autoscale",
            "--min-workers",
            "3",
            "--max-workers",
            "1",
            "--requests",
            "4",
        ]))
        .expect_err("max below min");
        assert!(err.to_string().contains("min_workers"), "{err}");
    }

    #[test]
    fn autoscale_demo_runs_in_proc() {
        run(&argv(&[
            "autoscale",
            "--requests",
            "16",
            "--lambda",
            "200",
            "--min-workers",
            "1",
            "--max-workers",
            "2",
            "--tick-ms",
            "5",
            "--seed",
            "7",
        ]))
        .expect("autoscale demo");
    }

    #[test]
    fn reload_hot_swaps_under_load() {
        run(&argv(&[
            "reload",
            "--workers",
            "1",
            "--requests",
            "16",
            "--clients",
            "2",
            "--seed",
            "9",
        ]))
        .expect("reload demo");
    }

    #[test]
    fn loadgen_serves_int8_in_proc() {
        run(&argv(&[
            "loadgen",
            "--requests",
            "12",
            "--clients",
            "4",
            "--workers",
            "1",
            "--precision",
            "int8",
            "--seed",
            "5",
        ]))
        .expect("in-proc int8 loadgen");
    }

    #[test]
    fn serve_rejects_unknown_precision() {
        let err = run(&argv(&[
            "loadgen",
            "--requests",
            "4",
            "--precision",
            "fp16",
        ]))
        .expect_err("bad precision");
        assert!(err.to_string().contains("precision"), "{err}");
    }

    #[test]
    fn reload_swaps_f32_fleet_for_int8_under_load() {
        // The A/B recipe: boot f32, hot-swap an int8 fleet in under live
        // closed-loop traffic, zero failures expected.
        run(&argv(&[
            "reload",
            "--workers",
            "1",
            "--requests",
            "16",
            "--clients",
            "2",
            "--precision",
            "f32",
            "--new-precision",
            "int8",
            "--seed",
            "9",
        ]))
        .expect("f32 -> int8 hot swap");
    }

    #[test]
    fn reload_rejects_missing_new_model_file() {
        let err = run(&argv(&[
            "reload",
            "--new-model-file",
            "/nonexistent/path.fldn",
            "--requests",
            "4",
        ]))
        .expect_err("missing checkpoint");
        assert!(err.to_string().contains("checkpoint"), "{err}");
    }

    #[test]
    fn route_shards_closed_loop_traffic_across_a_cluster() {
        run(&argv(&[
            "route",
            "--nodes",
            "2",
            "--workers-per-node",
            "1",
            "--requests",
            "8",
            "--clients",
            "2",
            "--seed",
            "5",
        ]))
        .expect("route demo");
    }

    #[test]
    fn drill_quiet_run_passes() {
        run(&argv(&[
            "drill",
            "--nodes",
            "2",
            "--kill-cycles",
            "0",
            "--no-swap",
            "--lambda",
            "120",
            "--requests",
            "8",
            "--concurrency",
            "4",
            "--seed",
            "7",
        ]))
        .expect("quiet drill");
    }

    #[test]
    fn route_spreads_clients_across_replicated_routers() {
        run(&argv(&[
            "route",
            "--nodes",
            "2",
            "--routers",
            "2",
            "--workers-per-node",
            "1",
            "--requests",
            "8",
            "--clients",
            "2",
            "--seed",
            "5",
        ]))
        .expect("replicated-router route demo");
    }

    #[test]
    fn drill_faults_quiet_run_passes() {
        run(&argv(&[
            "drill",
            "--faults",
            "--nodes",
            "2",
            "--routers",
            "2",
            "--no-kill",
            "--no-join",
            "--no-partition",
            "--drop-p",
            "0",
            "--duplicate-p",
            "0",
            "--lambda",
            "120",
            "--requests",
            "8",
            "--concurrency",
            "4",
            "--seed",
            "7",
        ]))
        .expect("quiet membership drill");
    }

    #[test]
    fn drill_faults_refuses_to_kill_the_only_router() {
        let err = run(&argv(&["drill", "--faults", "--routers", "1"]))
            .expect_err("killing the only router");
        assert!(err.to_string().contains("routers"), "{err}");
    }

    #[test]
    fn drill_faults_refuses_a_partition_at_replication_one() {
        let err = run(&argv(&[
            "drill",
            "--faults",
            "--no-kill",
            "--replication",
            "1",
        ]))
        .expect_err("partition at replication 1");
        assert!(err.to_string().contains("replication"), "{err}");
    }

    #[test]
    fn drill_faults_rejects_out_of_range_probabilities() {
        let err =
            run(&argv(&["drill", "--faults", "--drop-p", "1.5"])).expect_err("probability above 1");
        assert!(err.to_string().contains("drop-p"), "{err}");
    }

    #[test]
    fn drill_rejects_single_node_clusters() {
        let err = run(&argv(&["drill", "--nodes", "1"])).expect_err("one node is not a cluster");
        assert!(err.to_string().contains("nodes"), "{err}");
    }

    #[test]
    fn drill_rejects_chaos_at_replication_one() {
        let err = run(&argv(&[
            "drill",
            "--replication",
            "1",
            "--kill-cycles",
            "1",
        ]))
        .expect_err("replication 1 under chaos");
        assert!(err.to_string().contains("replication"), "{err}");
    }

    #[test]
    fn drill_rejects_non_positive_lambda() {
        let err = run(&argv(&["drill", "--lambda", "0"])).expect_err("lambda must be positive");
        assert!(err.to_string().contains("lambda"), "{err}");
    }

    #[test]
    fn train_eval_roundtrip_via_files() {
        let dir = std::env::temp_dir().join("fluidctl_test");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let out = dir.join("tiny.fldn");
        let out_s = out.to_string_lossy().to_string();
        run(&argv(&[
            "train",
            "--model",
            "fluid",
            "--train-n",
            "200",
            "--epochs",
            "1",
            "--iters",
            "1",
            "--seed",
            "3",
            "--out",
            &out_s,
        ]))
        .expect("train");
        run(&argv(&[
            "eval",
            "--model-file",
            &out_s,
            "--subnet",
            "lower50",
            "--test-n",
            "50",
        ]))
        .expect("eval");
        let _ = std::fs::remove_file(&out);
    }
}
