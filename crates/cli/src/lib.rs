//! # fluid-cli
//!
//! The `fluidctl` command-line tool: train, evaluate, checkpoint and serve
//! Fluid DyDNNs, and regenerate the paper's figures, without writing any
//! Rust. See `fluidctl help` or the [`commands`] module docs.
//!
//! The argument parser is a deliberately small hand-rolled one (the
//! workspace's dependency budget has no CLI framework); [`args::ArgMap`]
//! covers `--key value` flags with defaults and typed accessors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
