//! `im2col`/`col2im` lowering for 2-D convolution.
//!
//! Convolution is computed as a matrix product between the unrolled input
//! patches and the flattened kernels; the backward pass reverses the
//! unrolling with [`col2im`]. This is the standard CPU strategy used by
//! Caffe and many embedded inference engines.

use crate::pool;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Static geometry of a conv2d: input plane, kernel, stride, padding.
///
/// # Example
///
/// ```
/// use fluid_tensor::Conv2dGeometry;
/// let g = Conv2dGeometry::new(28, 28, 3, 1, 1);
/// assert_eq!((g.out_h(), g.out_w()), (28, 28));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel extent.
    pub kernel: usize,
    /// Stride in both directions.
    pub stride: usize,
    /// Zero padding on each border.
    pub pad: usize,
}

impl Conv2dGeometry {
    /// Creates a geometry description.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0`, `stride == 0`, or the padded input is
    /// smaller than the kernel.
    pub fn new(in_h: usize, in_w: usize, kernel: usize, stride: usize, pad: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        assert!(
            in_h + 2 * pad >= kernel && in_w + 2 * pad >= kernel,
            "kernel {kernel} larger than padded input {}x{}",
            in_h + 2 * pad,
            in_w + 2 * pad
        );
        Self {
            in_h,
            in_w,
            kernel,
            stride,
            pad,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Number of output positions per image.
    pub fn out_positions(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

/// Unrolls an `[N, C, H, W]` input into a `[C·K·K, N·OH·OW]` patch matrix.
///
/// Column `(n, oh, ow)` holds the receptive field of output position
/// `(oh, ow)` in image `n`; out-of-bounds (padding) elements are zero.
///
/// # Panics
///
/// Panics if `input` is not rank 4 or its plane size disagrees with `geo`.
pub fn im2col(input: &Tensor, geo: &Conv2dGeometry) -> Tensor {
    let (rows, cols) = im2col_shape(input, geo);
    let mut out = vec![0.0f32; rows * cols];
    im2col_into(input, geo, &mut out, cols);
    Tensor::from_vec(out, &[rows, cols])
}

/// [`im2col`] with the patch matrix drawn from `ws`.
///
/// # Panics
///
/// Panics if `input` is not rank 4 or its plane size disagrees with `geo`.
pub fn im2col_ws(input: &Tensor, geo: &Conv2dGeometry, ws: &mut Workspace) -> Tensor {
    let (rows, cols) = im2col_shape(input, geo);
    let mut out = ws.take_zeroed(rows * cols);
    im2col_into(input, geo, &mut out, cols);
    Tensor::from_vec(out, &[rows, cols])
}

fn im2col_shape(input: &Tensor, geo: &Conv2dGeometry) -> (usize, usize) {
    let d = input.dims();
    assert_eq!(d.len(), 4, "im2col input rank {}", d.len());
    assert_eq!(
        (d[2], d[3]),
        (geo.in_h, geo.in_w),
        "im2col plane {}x{} disagrees with geometry {}x{}",
        d[2],
        d[3],
        geo.in_h,
        geo.in_w
    );
    let k = geo.kernel;
    (d[1] * k * k, d[0] * geo.out_positions())
}

/// Fills the `[C·K·K, cols]` patch matrix, one tap row per unit of
/// parallelism (rows are fully independent).
fn im2col_into(input: &Tensor, geo: &Conv2dGeometry, out: &mut [f32], cols: usize) {
    if out.is_empty() {
        return;
    }
    let d = input.dims();
    let (n, c) = (d[0], d[1]);
    let (oh, ow) = (geo.out_h(), geo.out_w());
    let k = geo.kernel;
    let src = input.data();
    let plane = geo.in_h * geo.in_w;

    pool::parallel_rows_mut(out, cols, 1, |rows, block| {
        for (bi, row) in rows.enumerate() {
            let row_out = &mut block[bi * cols..(bi + 1) * cols];
            let kx = row % k;
            let ky = (row / k) % k;
            let ci = row / (k * k);
            for ni in 0..n {
                let img_base = (ni * c + ci) * plane;
                for oy in 0..oh {
                    let iy = (oy * geo.stride + ky) as isize - geo.pad as isize;
                    if iy < 0 || iy >= geo.in_h as isize {
                        continue; // stays zero (padding)
                    }
                    let col_base = (ni * oh + oy) * ow;
                    let src_row = img_base + iy as usize * geo.in_w;
                    for ox in 0..ow {
                        let ix = (ox * geo.stride + kx) as isize - geo.pad as isize;
                        if ix < 0 || ix >= geo.in_w as isize {
                            continue;
                        }
                        row_out[col_base + ox] = src[src_row + ix as usize];
                    }
                }
            }
        }
    });
}

/// Folds a `[C·K·K, N·OH·OW]` patch-gradient matrix back into an
/// `[N, C, H, W]` input gradient, accumulating overlapping contributions.
///
/// This is the exact adjoint of [`im2col`].
///
/// # Panics
///
/// Panics if `cols` is not rank 2 or its shape disagrees with `geo`,
/// `channels` and `batch`.
pub fn col2im(cols: &Tensor, geo: &Conv2dGeometry, channels: usize, batch: usize) -> Tensor {
    let mut out = Tensor::zeros(&[batch, channels, geo.in_h, geo.in_w]);
    col2im_into(cols, geo, channels, batch, out.data_mut());
    out
}

/// [`col2im`] with the image-gradient buffer drawn from `ws`.
///
/// # Panics
///
/// Panics if `cols` is not rank 2 or its shape disagrees with `geo`,
/// `channels` and `batch`.
pub fn col2im_ws(
    cols: &Tensor,
    geo: &Conv2dGeometry,
    channels: usize,
    batch: usize,
    ws: &mut Workspace,
) -> Tensor {
    let mut out = ws.tensor_zeroed(&[batch, channels, geo.in_h, geo.in_w]);
    col2im_into(cols, geo, channels, batch, out.data_mut());
    out
}

/// Accumulates the fold, one image per unit of parallelism (each image's
/// output region is disjoint; within an image the accumulation order over
/// kernel taps matches the serial reference, so the scatter-add stays
/// bit-identical at any thread count).
fn col2im_into(
    cols: &Tensor,
    geo: &Conv2dGeometry,
    channels: usize,
    batch: usize,
    dst: &mut [f32],
) {
    let d = cols.dims();
    assert_eq!(d.len(), 2, "col2im input rank {}", d.len());
    let k = geo.kernel;
    let (oh, ow) = (geo.out_h(), geo.out_w());
    assert_eq!(d[0], channels * k * k, "col2im row count mismatch");
    assert_eq!(d[1], batch * oh * ow, "col2im column count mismatch");
    if dst.is_empty() {
        return;
    }

    let src = cols.data();
    let plane = geo.in_h * geo.in_w;
    let ncols = d[1];

    pool::parallel_rows_mut(dst, channels * plane, 1, |images, block| {
        for (bi, ni) in images.enumerate() {
            let img = &mut block[bi * channels * plane..(bi + 1) * channels * plane];
            for ci in 0..channels {
                for ky in 0..k {
                    for kx in 0..k {
                        let row = (ci * k + ky) * k + kx;
                        let row_base = row * ncols;
                        for oy in 0..oh {
                            let iy = (oy * geo.stride + ky) as isize - geo.pad as isize;
                            if iy < 0 || iy >= geo.in_h as isize {
                                continue;
                            }
                            let dst_row = ci * plane + iy as usize * geo.in_w;
                            let col_base = row_base + (ni * oh + oy) * ow;
                            for ox in 0..ow {
                                let ix = (ox * geo.stride + kx) as isize - geo.pad as isize;
                                if ix < 0 || ix >= geo.in_w as isize {
                                    continue;
                                }
                                img[dst_row + ix as usize] += src[col_base + ox];
                            }
                        }
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (non-lowered) convolution used as the reference implementation.
    pub fn conv2d_naive(input: &Tensor, weight: &Tensor, geo: &Conv2dGeometry) -> Tensor {
        let (n, c_in) = (input.dim(0), input.dim(1));
        let c_out = weight.dim(0);
        assert_eq!(weight.dim(1), c_in);
        let k = geo.kernel;
        let (oh, ow) = (geo.out_h(), geo.out_w());
        let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
        for ni in 0..n {
            for co in 0..c_out {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ci in 0..c_in {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = (oy * geo.stride + ky) as isize - geo.pad as isize;
                                    let ix = (ox * geo.stride + kx) as isize - geo.pad as isize;
                                    if iy < 0
                                        || ix < 0
                                        || iy >= geo.in_h as isize
                                        || ix >= geo.in_w as isize
                                    {
                                        continue;
                                    }
                                    acc += input.at4(ni, ci, iy as usize, ix as usize)
                                        * weight.at4(co, ci, ky, kx);
                                }
                            }
                        }
                        out.set4(ni, co, oy, ox, acc);
                    }
                }
            }
        }
        out
    }

    /// Conv via im2col + matmul, reshaped to [N, C_out, OH, OW].
    fn conv2d_lowered(input: &Tensor, weight: &Tensor, geo: &Conv2dGeometry) -> Tensor {
        let n = input.dim(0);
        let c_out = weight.dim(0);
        let cols = im2col(input, geo);
        let wmat = weight.reshape(&[c_out, weight.numel() / c_out]);
        let prod = wmat.matmul(&cols); // [C_out, N*OH*OW]
        let (oh, ow) = (geo.out_h(), geo.out_w());
        // Reorder [C_out, N, OH*OW] -> [N, C_out, OH*OW].
        let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
        let plane = oh * ow;
        for co in 0..c_out {
            for ni in 0..n {
                for p in 0..plane {
                    out.data_mut()[(ni * c_out + co) * plane + p] =
                        prod.data()[co * (n * plane) + ni * plane + p];
                }
            }
        }
        out
    }

    #[test]
    fn geometry_same_padding() {
        let g = Conv2dGeometry::new(28, 28, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (28, 28));
    }

    #[test]
    fn geometry_stride_two() {
        let g = Conv2dGeometry::new(8, 8, 3, 2, 0);
        assert_eq!((g.out_h(), g.out_w()), (3, 3));
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn kernel_too_big_panics() {
        let _ = Conv2dGeometry::new(2, 2, 5, 1, 0);
    }

    #[test]
    fn im2col_matches_naive_conv() {
        let geo = Conv2dGeometry::new(6, 5, 3, 1, 1);
        let input = Tensor::from_fn(&[2, 3, 6, 5], |i| (i as f32 * 0.17).sin());
        let weight = Tensor::from_fn(&[4, 3, 3, 3], |i| (i as f32 * 0.29).cos());
        let a = conv2d_lowered(&input, &weight, &geo);
        let b = conv2d_naive(&input, &weight, &geo);
        assert!(a.allclose(&b, 1e-4), "max diff {}", a.max_abs_diff(&b));
    }

    #[test]
    fn im2col_matches_naive_conv_strided_unpadded() {
        let geo = Conv2dGeometry::new(7, 7, 3, 2, 0);
        let input = Tensor::from_fn(&[1, 2, 7, 7], |i| (i as f32 * 0.31).sin());
        let weight = Tensor::from_fn(&[3, 2, 3, 3], |i| (i as f32 * 0.11).cos());
        let a = conv2d_lowered(&input, &weight, &geo);
        let b = conv2d_naive(&input, &weight, &geo);
        assert!(a.allclose(&b, 1e-4));
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y: the defining
        // property of an adjoint pair, which is exactly what backprop needs.
        let geo = Conv2dGeometry::new(5, 4, 3, 1, 1);
        let x = Tensor::from_fn(&[2, 3, 5, 4], |i| (i as f32 * 0.7).sin());
        let cols_shape_rows = 3 * 3 * 3;
        let cols_shape_cols = 2 * geo.out_h() * geo.out_w();
        let y = Tensor::from_fn(&[cols_shape_rows, cols_shape_cols], |i| {
            (i as f32 * 0.13).cos()
        });
        let lhs: f32 = im2col(&x, &geo)
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(col2im(&y, &geo, 3, 2).data())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0));
    }

    #[test]
    fn im2col_zero_padding_regions_are_zero() {
        let geo = Conv2dGeometry::new(3, 3, 3, 1, 1);
        let input = Tensor::ones(&[1, 1, 3, 3]);
        let cols = im2col(&input, &geo);
        // Top-left output position, top-left kernel tap hits padding.
        assert_eq!(cols.at2(0, 0), 0.0);
        // Center output position, center tap hits the image.
        assert_eq!(cols.at2(4, 4), 1.0);
    }
}
