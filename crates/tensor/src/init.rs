//! Weight initialisers.
//!
//! All initialisers draw from the deterministic [`Prng`], so an experiment
//! seed fully determines every weight in the workspace.

use crate::rng::Prng;
use crate::tensor::Tensor;

/// Kaiming (He) normal initialisation: `N(0, sqrt(2 / fan_in))`.
///
/// Appropriate for layers followed by ReLU, which is every hidden layer of
/// the paper's model.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
///
/// # Example
///
/// ```
/// use fluid_tensor::{kaiming_normal, Prng};
/// let mut rng = Prng::new(0);
/// let w = kaiming_normal(&[8, 4, 3, 3], 4 * 3 * 3, &mut rng);
/// assert_eq!(w.dims(), &[8, 4, 3, 3]);
/// ```
pub fn kaiming_normal(dims: &[usize], fan_in: usize, rng: &mut Prng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::from_fn(dims, |_| rng.normal_with(0.0, std))
}

/// Kaiming (He) uniform initialisation: `U(-b, b)` with
/// `b = sqrt(6 / fan_in)`.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_uniform(dims: &[usize], fan_in: usize, rng: &mut Prng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = (6.0 / fan_in as f32).sqrt();
    Tensor::from_fn(dims, |_| rng.uniform(-bound, bound))
}

/// Xavier (Glorot) uniform initialisation: `U(-b, b)` with
/// `b = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut Prng) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan sum must be positive");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::from_fn(dims, |_| rng.uniform(-bound, bound))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_normal_std_close() {
        let mut rng = Prng::new(1);
        let fan_in = 36;
        let w = kaiming_normal(&[64, 36], fan_in, &mut rng);
        let mean = w.mean();
        let var = w
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / w.numel() as f32;
        let expected = 2.0 / fan_in as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!(
            (var - expected).abs() < 0.3 * expected,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn kaiming_uniform_within_bound() {
        let mut rng = Prng::new(2);
        let b = (6.0f32 / 9.0).sqrt();
        let w = kaiming_uniform(&[4, 9], 9, &mut rng);
        assert!(w.data().iter().all(|x| x.abs() <= b));
    }

    #[test]
    fn xavier_uniform_within_bound() {
        let mut rng = Prng::new(3);
        let b = (6.0f32 / 20.0).sqrt();
        let w = xavier_uniform(&[10, 10], 10, 10, &mut rng);
        assert!(w.data().iter().all(|x| x.abs() <= b));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = kaiming_normal(&[5, 5], 5, &mut Prng::new(42));
        let b = kaiming_normal(&[5, 5], 5, &mut Prng::new(42));
        assert_eq!(a, b);
    }
}
