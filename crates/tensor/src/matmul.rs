//! Matrix multiplication kernels, including the transposed variants used by
//! backpropagation.
//!
//! All three kernels are **blocked and row-parallel**: output rows are
//! partitioned across the [`pool`](crate::pool) workers, and within a task
//! the right-hand side is walked in column tiles so the hot panel stays in
//! cache. Each output element's accumulation order is fixed by the kernel
//! alone (never by tile or thread boundaries), so results are bit-identical
//! at any thread count. The kernels are dense and branch-free — a zero in
//! the input costs the same as any other value (see the zero-row test).

use crate::pool;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Columns per right-hand-side tile: the `out`/`rhs` row panels walked by
/// one inner loop stay within a few KB of L1. Matrices at most
/// [`COL_TILE_SKIP`] columns wide run as a single pass — tiling only pays
/// once the rhs panel outgrows L2.
const COL_TILE: usize = 512;

/// Column count up to which tiling is skipped entirely.
const COL_TILE_SKIP: usize = 1024;

/// Tile width for an `n`-column output.
fn col_tile(n: usize) -> usize {
    if n <= COL_TILE_SKIP {
        n.max(1)
    } else {
        COL_TILE
    }
}

/// Minimum output rows per pool task; below this, fan-out overhead beats
/// the win.
const ROW_GRAIN: usize = 2;

/// Output columns computed per pass over the shared lhs row in
/// [`Tensor::matmul_bt`]. Each column keeps its own strictly-serial
/// accumulation chain (bit-identical to the naive dot product); the win is
/// instruction-level parallelism across the four independent chains and a
/// single pass over the lhs row.
const BT_COLS: usize = 4;

/// `out[m × n] += lhs[m × k] · rhs[k × n]` for one block of output rows.
fn matmul_block(lhs: &[f32], rhs: &[f32], out: &mut [f32], k: usize, n: usize) {
    let m = out.len() / n;
    let mut jb = 0;
    while jb < n {
        let je = (jb + col_tile(n)).min(n);
        for i in 0..m {
            let a_row = &lhs[i * k..(i + 1) * k];
            let out_row = &mut out[i * n + jb..i * n + je];
            for (p, &av) in a_row.iter().enumerate() {
                let rhs_row = &rhs[p * n + jb..p * n + je];
                for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                    *o += av * r;
                }
            }
        }
        jb = je;
    }
}

/// `out[rows × n] += lhsᵀ rows of [k × m] · rhs[k × n]` for absolute output
/// rows `row_lo..row_lo + rows`.
fn matmul_at_block(
    lhs: &[f32],
    rhs: &[f32],
    out: &mut [f32],
    row_lo: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    let rows = out.len() / n;
    let mut jb = 0;
    while jb < n {
        let je = (jb + col_tile(n)).min(n);
        for bi in 0..rows {
            let i = row_lo + bi;
            let out_row = &mut out[bi * n + jb..bi * n + je];
            for p in 0..k {
                let av = lhs[p * m + i];
                let rhs_row = &rhs[p * n + jb..p * n + je];
                for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                    *o += av * r;
                }
            }
        }
        jb = je;
    }
}

/// One block of `matmul_bt` output rows: each `out[i][j]` is a dot product
/// of lhs row `i` and rhs row `j`, accumulated in strict index order
/// (bit-identical to the naive serial kernel). Four columns share each
/// pass over the lhs row for cache reuse and independent FP chains.
fn matmul_bt_block(lhs: &[f32], rhs: &[f32], out: &mut [f32], k: usize, n: usize) {
    let m = out.len() / n;
    for i in 0..m {
        let a_row = &lhs[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + BT_COLS <= n {
            let b0 = &rhs[j * k..(j + 1) * k];
            let b1 = &rhs[(j + 1) * k..(j + 2) * k];
            let b2 = &rhs[(j + 2) * k..(j + 3) * k];
            let b3 = &rhs[(j + 3) * k..(j + 4) * k];
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (p, &av) in a_row.iter().enumerate() {
                a0 += av * b0[p];
                a1 += av * b1[p];
                a2 += av * b2[p];
                a3 += av * b3[p];
            }
            out_row[j] = a0;
            out_row[j + 1] = a1;
            out_row[j + 2] = a2;
            out_row[j + 3] = a3;
            j += BT_COLS;
        }
        while j < n {
            let b_row = &rhs[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            out_row[j] = acc;
            j += 1;
        }
    }
}

impl Tensor {
    /// Matrix product `self · other` for `[M, K] × [K, N] → [M, N]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k, n) = mm_dims(self, other);
        let mut out = vec![0.0f32; m * n];
        matmul_into(self.data(), other.data(), &mut out, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// [`matmul`](Tensor::matmul) with the output buffer drawn from `ws`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    pub fn matmul_ws(&self, other: &Tensor, ws: &mut Workspace) -> Tensor {
        let (m, k, n) = mm_dims(self, other);
        let mut out = ws.take_zeroed(m * n);
        matmul_into(self.data(), other.data(), &mut out, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// `selfᵀ · other` for `[K, M] × [K, N] → [M, N]` without materialising
    /// the transpose.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the shared dimension differs.
    pub fn matmul_at(&self, other: &Tensor) -> Tensor {
        let (k, m, n) = mm_at_dims(self, other);
        let mut out = vec![0.0f32; m * n];
        matmul_at_into(self.data(), other.data(), &mut out, k, m, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// [`matmul_at`](Tensor::matmul_at) with the output buffer drawn from
    /// `ws`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the shared dimension differs.
    pub fn matmul_at_ws(&self, other: &Tensor, ws: &mut Workspace) -> Tensor {
        let (k, m, n) = mm_at_dims(self, other);
        let mut out = ws.take_zeroed(m * n);
        matmul_at_into(self.data(), other.data(), &mut out, k, m, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// `self · otherᵀ` for `[M, K] × [N, K] → [M, N]` without materialising
    /// the transpose.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the shared dimension differs.
    pub fn matmul_bt(&self, other: &Tensor) -> Tensor {
        let (m, k, n) = mm_bt_dims(self, other);
        let mut out = vec![0.0f32; m * n];
        matmul_bt_into(self.data(), other.data(), &mut out, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// [`matmul_bt`](Tensor::matmul_bt) with the output buffer drawn from
    /// `ws`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the shared dimension differs.
    pub fn matmul_bt_ws(&self, other: &Tensor, ws: &mut Workspace) -> Tensor {
        let (m, k, n) = mm_bt_dims(self, other);
        let mut out = ws.take_zeroed(m * n);
        matmul_bt_into(self.data(), other.data(), &mut out, k, n);
        Tensor::from_vec(out, &[m, n])
    }
}

fn mm_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    let (a, b) = (a.dims(), b.dims());
    assert_eq!(a.len(), 2, "matmul lhs rank {}", a.len());
    assert_eq!(b.len(), 2, "matmul rhs rank {}", b.len());
    assert_eq!(a[1], b[0], "matmul inner dims {} vs {}", a[1], b[0]);
    (a[0], a[1], b[1])
}

fn mm_at_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    let (a, b) = (a.dims(), b.dims());
    assert_eq!(a.len(), 2, "matmul_at lhs rank {}", a.len());
    assert_eq!(b.len(), 2, "matmul_at rhs rank {}", b.len());
    assert_eq!(a[0], b[0], "matmul_at shared dims {} vs {}", a[0], b[0]);
    (a[0], a[1], b[1])
}

fn mm_bt_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    let (a, b) = (a.dims(), b.dims());
    assert_eq!(a.len(), 2, "matmul_bt lhs rank {}", a.len());
    assert_eq!(b.len(), 2, "matmul_bt rhs rank {}", b.len());
    assert_eq!(a[1], b[1], "matmul_bt shared dims {} vs {}", a[1], b[1]);
    (a[0], a[1], b[0])
}

fn matmul_into(lhs: &[f32], rhs: &[f32], out: &mut [f32], k: usize, n: usize) {
    if out.is_empty() || k == 0 {
        return;
    }
    pool::parallel_rows_mut(out, n, ROW_GRAIN, |rows, block| {
        matmul_block(&lhs[rows.start * k..rows.end * k], rhs, block, k, n);
    });
}

fn matmul_at_into(lhs: &[f32], rhs: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    if out.is_empty() || k == 0 {
        return;
    }
    pool::parallel_rows_mut(out, n, ROW_GRAIN, |rows, block| {
        matmul_at_block(lhs, rhs, block, rows.start, k, m, n);
    });
}

fn matmul_bt_into(lhs: &[f32], rhs: &[f32], out: &mut [f32], k: usize, n: usize) {
    if out.is_empty() {
        return;
    }
    if k == 0 {
        return; // an empty reduction leaves the zero-initialised output
    }
    pool::parallel_rows_mut(out, n, ROW_GRAIN, |rows, block| {
        matmul_bt_block(&lhs[rows.start * k..rows.end * k], rhs, block, k, n);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.dim(0), a.dim(1), b.dim(1));
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at2(i, p) * b.at2(p, j);
                }
                out.set2(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_fn(&[3, 3], |i| i as f32);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(3).matmul(&a), a);
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Tensor::from_fn(&[4, 5], |i| (i as f32 * 0.7).sin());
        let b = Tensor::from_fn(&[5, 3], |i| (i as f32 * 1.3).cos());
        assert!(a.matmul(&b).allclose(&naive_matmul(&a, &b), 1e-5));
    }

    #[test]
    fn matmul_wide_exceeds_column_tile() {
        // Wider than COL_TILE so the j-tiling path is actually exercised.
        let a = Tensor::from_fn(&[3, 7], |i| (i as f32 * 0.3).sin());
        let b = Tensor::from_fn(&[7, COL_TILE + 37], |i| (i as f32 * 0.11).cos());
        assert!(a.matmul(&b).allclose(&naive_matmul(&a, &b), 1e-4));
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let a = Tensor::from_fn(&[6, 4], |i| (i as f32).sqrt());
        let b = Tensor::from_fn(&[6, 3], |i| i as f32 * 0.1);
        assert!(a.matmul_at(&b).allclose(&a.transpose().matmul(&b), 1e-5));
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let a = Tensor::from_fn(&[3, 4], |i| (i as f32).sqrt());
        let b = Tensor::from_fn(&[5, 4], |i| i as f32 * 0.1 - 1.0);
        assert!(a.matmul_bt(&b).allclose(&a.matmul(&b.transpose()), 1e-5));
    }

    #[test]
    fn matmul_bt_is_bit_identical_to_naive_dot() {
        // The column-blocked kernel must keep each output's accumulation in
        // strict index order: exact equality with the naive dot product,
        // including a column count that is not a multiple of the block.
        let k = 197;
        let n = BT_COLS * 5 + 3;
        let a = Tensor::from_fn(&[3, k], |i| (i as f32 * 0.013).sin());
        let b = Tensor::from_fn(&[n, k], |i| (i as f32 * 0.029).cos());
        let got = a.matmul_bt(&b);
        for i in 0..3 {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.at2(i, p) * b.at2(j, p);
                }
                assert_eq!(got.at2(i, j), acc, "({i},{j}) drifted from serial order");
            }
        }
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_dim_mismatch_panics() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn matmul_with_zero_rows() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[0, 2]);
    }

    #[test]
    fn matmul_zero_valued_row_yields_zero_output_row() {
        // The kernels are dense (no zero-skip fast path); an all-zero input
        // row must still produce an exactly-zero output row.
        let mut a = Tensor::from_fn(&[3, 4], |i| (i as f32 * 0.7).sin() - 0.4);
        for x in a.data_mut()[4..8].iter_mut() {
            *x = 0.0;
        }
        let b = Tensor::from_fn(&[4, 5], |i| (i as f32 * 1.1).cos());
        let c = a.matmul(&b);
        assert!(c.allclose(&naive_matmul(&a, &b), 1e-5));
        for j in 0..5 {
            assert_eq!(c.at2(1, j), 0.0, "zero row must stay exactly zero");
        }
        // Same property through the transposed kernels.
        let bt = a.matmul_bt(&Tensor::from_fn(&[2, 4], |i| i as f32 - 3.0));
        for j in 0..2 {
            assert_eq!(bt.at2(1, j), 0.0);
        }
    }

    #[test]
    fn matmul_with_zero_inner_dim_is_zero() {
        let a = Tensor::zeros(&[2, 0]);
        let b = Tensor::zeros(&[0, 3]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 3]);
        assert!(c.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn workspace_variants_match_allocating_kernels() {
        let mut ws = Workspace::new();
        let a = Tensor::from_fn(&[5, 7], |i| (i as f32 * 0.31).sin());
        let b = Tensor::from_fn(&[7, 6], |i| (i as f32 * 0.17).cos());
        let c = Tensor::from_fn(&[5, 6], |i| (i as f32 * 0.23).sin());
        let d = Tensor::from_fn(&[4, 7], |i| (i as f32 * 0.41).cos());
        assert_eq!(a.matmul_ws(&b, &mut ws), a.matmul(&b));
        assert_eq!(a.matmul_at_ws(&c, &mut ws), a.matmul_at(&c));
        assert_eq!(a.matmul_bt_ws(&d, &mut ws), a.matmul_bt(&d));
        // Run twice so the second pass reuses (dirty) recycled buffers.
        let r = a.matmul_ws(&b, &mut ws);
        ws.recycle(r);
        assert_eq!(a.matmul_ws(&b, &mut ws), a.matmul(&b));
    }
}
