//! Matrix multiplication kernels, including the transposed variants used by
//! backpropagation.
//!
//! All kernels are cache-friendly ikj loops over contiguous rows; fast enough
//! for the paper's ≤16-channel model while staying dependency-free.

use crate::tensor::Tensor;

impl Tensor {
    /// Matrix product `self · other` for `[M, K] × [K, N] → [M, N]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (a, b) = (self.dims(), other.dims());
        assert_eq!(a.len(), 2, "matmul lhs rank {}", a.len());
        assert_eq!(b.len(), 2, "matmul rhs rank {}", b.len());
        assert_eq!(a[1], b[0], "matmul inner dims {} vs {}", a[1], b[0]);
        let (m, k, n) = (a[0], a[1], b[1]);
        let mut out = vec![0.0f32; m * n];
        let lhs = self.data();
        let rhs = other.data();
        for i in 0..m {
            let out_row = &mut out[i * n..(i + 1) * n];
            for p in 0..k {
                let av = lhs[i * k + p];
                if av == 0.0 {
                    continue;
                }
                let rhs_row = &rhs[p * n..(p + 1) * n];
                for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                    *o += av * r;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `selfᵀ · other` for `[K, M] × [K, N] → [M, N]` without materialising
    /// the transpose.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the shared dimension differs.
    pub fn matmul_at(&self, other: &Tensor) -> Tensor {
        let (a, b) = (self.dims(), other.dims());
        assert_eq!(a.len(), 2, "matmul_at lhs rank {}", a.len());
        assert_eq!(b.len(), 2, "matmul_at rhs rank {}", b.len());
        assert_eq!(a[0], b[0], "matmul_at shared dims {} vs {}", a[0], b[0]);
        let (k, m, n) = (a[0], a[1], b[1]);
        let mut out = vec![0.0f32; m * n];
        let lhs = self.data();
        let rhs = other.data();
        for p in 0..k {
            let lhs_row = &lhs[p * m..(p + 1) * m];
            let rhs_row = &rhs[p * n..(p + 1) * n];
            for i in 0..m {
                let av = lhs_row[i];
                if av == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                    *o += av * r;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self · otherᵀ` for `[M, K] × [N, K] → [M, N]` without materialising
    /// the transpose.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the shared dimension differs.
    pub fn matmul_bt(&self, other: &Tensor) -> Tensor {
        let (a, b) = (self.dims(), other.dims());
        assert_eq!(a.len(), 2, "matmul_bt lhs rank {}", a.len());
        assert_eq!(b.len(), 2, "matmul_bt rhs rank {}", b.len());
        assert_eq!(a[1], b[1], "matmul_bt shared dims {} vs {}", a[1], b[1]);
        let (m, k, n) = (a[0], a[1], b[0]);
        let mut out = vec![0.0f32; m * n];
        let lhs = self.data();
        let rhs = other.data();
        for i in 0..m {
            let lhs_row = &lhs[i * k..(i + 1) * k];
            for j in 0..n {
                let rhs_row = &rhs[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (l, r) in lhs_row.iter().zip(rhs_row) {
                    acc += l * r;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.dim(0), a.dim(1), b.dim(1));
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at2(i, p) * b.at2(p, j);
                }
                out.set2(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_fn(&[3, 3], |i| i as f32);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(3).matmul(&a), a);
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Tensor::from_fn(&[4, 5], |i| (i as f32 * 0.7).sin());
        let b = Tensor::from_fn(&[5, 3], |i| (i as f32 * 1.3).cos());
        assert!(a.matmul(&b).allclose(&naive_matmul(&a, &b), 1e-5));
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let a = Tensor::from_fn(&[6, 4], |i| (i as f32).sqrt());
        let b = Tensor::from_fn(&[6, 3], |i| i as f32 * 0.1);
        assert!(a.matmul_at(&b).allclose(&a.transpose().matmul(&b), 1e-5));
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let a = Tensor::from_fn(&[3, 4], |i| (i as f32).sqrt());
        let b = Tensor::from_fn(&[5, 4], |i| i as f32 * 0.1 - 1.0);
        assert!(a.matmul_bt(&b).allclose(&a.matmul(&b.transpose()), 1e-5));
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_dim_mismatch_panics() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn matmul_with_zero_rows() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[0, 2]);
    }
}
