//! Matrix multiplication kernels, including the transposed variants used by
//! backpropagation.
//!
//! All three kernels are thin layout adapters over the packed-panel
//! [`gemm`](crate::gemm) engine: operands are packed into cache-resident
//! panels and driven through a register-blocked microkernel. Each output
//! element's accumulation order is fixed by the engine's `KC` depth
//! blocking alone (never by tile, panel, or thread boundaries), so results
//! are bit-identical at any thread count *and* per output row regardless
//! of how many rows are computed together (the serving layer's batching
//! invariant). The kernels are dense and branch-free — a zero in the input
//! costs the same as any other value (see the zero-row test).

use crate::gemm::{gemm, AccessA, AccessB};
use crate::tensor::Tensor;
use crate::workspace::Workspace;

impl Tensor {
    /// Matrix product `self · other` for `[M, K] × [K, N] → [M, N]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.matmul_ws(other, &mut Workspace::new())
    }

    /// [`matmul`](Tensor::matmul) with the output buffer and packing
    /// scratch drawn from `ws`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    pub fn matmul_ws(&self, other: &Tensor, ws: &mut Workspace) -> Tensor {
        let (m, k, n) = mm_dims(self, other);
        let mut out = ws.take_zeroed(m * n);
        gemm(
            m,
            n,
            k,
            AccessA::RowMajor(self.data()),
            AccessB::RowMajor(other.data()),
            &mut out,
            ws,
        );
        Tensor::from_vec(out, &[m, n])
    }

    /// `selfᵀ · other` for `[K, M] × [K, N] → [M, N]` without materialising
    /// the transpose.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the shared dimension differs.
    pub fn matmul_at(&self, other: &Tensor) -> Tensor {
        self.matmul_at_ws(other, &mut Workspace::new())
    }

    /// [`matmul_at`](Tensor::matmul_at) with the output buffer and packing
    /// scratch drawn from `ws`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the shared dimension differs.
    pub fn matmul_at_ws(&self, other: &Tensor, ws: &mut Workspace) -> Tensor {
        let (k, m, n) = mm_at_dims(self, other);
        let mut out = ws.take_zeroed(m * n);
        gemm(
            m,
            n,
            k,
            AccessA::Transposed(self.data()),
            AccessB::RowMajor(other.data()),
            &mut out,
            ws,
        );
        Tensor::from_vec(out, &[m, n])
    }

    /// `self · otherᵀ` for `[M, K] × [N, K] → [M, N]` without materialising
    /// the transpose.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the shared dimension differs.
    pub fn matmul_bt(&self, other: &Tensor) -> Tensor {
        self.matmul_bt_ws(other, &mut Workspace::new())
    }

    /// [`matmul_bt`](Tensor::matmul_bt) with the output buffer and packing
    /// scratch drawn from `ws`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the shared dimension differs.
    pub fn matmul_bt_ws(&self, other: &Tensor, ws: &mut Workspace) -> Tensor {
        let (m, k, n) = mm_bt_dims(self, other);
        let mut out = ws.take_zeroed(m * n);
        gemm(
            m,
            n,
            k,
            AccessA::RowMajor(self.data()),
            AccessB::Transposed(other.data()),
            &mut out,
            ws,
        );
        Tensor::from_vec(out, &[m, n])
    }
}

fn mm_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    let (a, b) = (a.dims(), b.dims());
    assert_eq!(a.len(), 2, "matmul lhs rank {}", a.len());
    assert_eq!(b.len(), 2, "matmul rhs rank {}", b.len());
    assert_eq!(a[1], b[0], "matmul inner dims {} vs {}", a[1], b[0]);
    (a[0], a[1], b[1])
}

fn mm_at_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    let (a, b) = (a.dims(), b.dims());
    assert_eq!(a.len(), 2, "matmul_at lhs rank {}", a.len());
    assert_eq!(b.len(), 2, "matmul_at rhs rank {}", b.len());
    assert_eq!(a[0], b[0], "matmul_at shared dims {} vs {}", a[0], b[0]);
    (a[0], a[1], b[1])
}

fn mm_bt_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    let (a, b) = (a.dims(), b.dims());
    assert_eq!(a.len(), 2, "matmul_bt lhs rank {}", a.len());
    assert_eq!(b.len(), 2, "matmul_bt rhs rank {}", b.len());
    assert_eq!(a[1], b[1], "matmul_bt shared dims {} vs {}", a[1], b[1]);
    (a[0], a[1], b[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::KC;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.dim(0), a.dim(1), b.dim(1));
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at2(i, p) * b.at2(p, j);
                }
                out.set2(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_fn(&[3, 3], |i| i as f32);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(3).matmul(&a), a);
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Tensor::from_fn(&[4, 5], |i| (i as f32 * 0.7).sin());
        let b = Tensor::from_fn(&[5, 3], |i| (i as f32 * 1.3).cos());
        assert!(a.matmul(&b).allclose(&naive_matmul(&a, &b), 1e-5));
    }

    #[test]
    fn matmul_deep_k_crosses_depth_blocks() {
        // k > KC so the depth-blocked accumulation path is exercised.
        let a = Tensor::from_fn(&[3, KC + 37], |i| (i as f32 * 0.3).sin());
        let b = Tensor::from_fn(&[KC + 37, 5], |i| (i as f32 * 0.11).cos());
        assert!(a.matmul(&b).allclose(&naive_matmul(&a, &b), 1e-4));
    }

    #[test]
    fn matmul_bt_matches_fixed_accumulation_chain() {
        // The engine's contract: every output accumulates KC-blocked
        // partial sums, each in ascending k order — exactly this serial
        // reference, bit for bit, for any m/n/thread count.
        let (m, k, n) = (3, KC + 197, 11);
        let a = Tensor::from_fn(&[m, k], |i| (i as f32 * 0.013).sin());
        let b = Tensor::from_fn(&[n, k], |i| (i as f32 * 0.029).cos());
        let got = a.matmul_bt(&b);
        for i in 0..m {
            for j in 0..n {
                let mut c = 0.0f32;
                let mut pc = 0;
                while pc < k {
                    let kc = KC.min(k - pc);
                    let mut s = 0.0f32;
                    for p in pc..pc + kc {
                        s += a.at2(i, p) * b.at2(j, p);
                    }
                    c += s;
                    pc += kc;
                }
                assert_eq!(got.at2(i, j), c, "({i},{j}) drifted from the chain");
            }
        }
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let a = Tensor::from_fn(&[6, 4], |i| (i as f32).sqrt());
        let b = Tensor::from_fn(&[6, 3], |i| i as f32 * 0.1);
        assert!(a.matmul_at(&b).allclose(&a.transpose().matmul(&b), 1e-5));
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let a = Tensor::from_fn(&[3, 4], |i| (i as f32).sqrt());
        let b = Tensor::from_fn(&[5, 4], |i| i as f32 * 0.1 - 1.0);
        assert!(a.matmul_bt(&b).allclose(&a.matmul(&b.transpose()), 1e-5));
    }

    #[test]
    fn batched_rows_equal_single_row_products() {
        // The serving batching invariant at the kernel level: row i of a
        // batched product is bit-identical to the 1-row product of the
        // same input row.
        let (m, k, n) = (7, 133, 10);
        let a = Tensor::from_fn(&[m, k], |i| (i as f32 * 0.17).sin());
        let b = Tensor::from_fn(&[k, n], |i| (i as f32 * 0.23).cos());
        let batched = a.matmul(&b);
        for i in 0..m {
            let row = Tensor::from_vec(a.row(i).to_vec(), &[1, k]);
            let alone = row.matmul(&b);
            assert_eq!(alone.data(), batched.row(i), "row {i} drifted");
        }
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_dim_mismatch_panics() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn matmul_with_zero_rows() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[0, 2]);
    }

    #[test]
    fn matmul_zero_valued_row_yields_zero_output_row() {
        // The kernels are dense (no zero-skip fast path); an all-zero input
        // row must still produce an exactly-zero output row.
        let mut a = Tensor::from_fn(&[3, 4], |i| (i as f32 * 0.7).sin() - 0.4);
        for x in a.data_mut()[4..8].iter_mut() {
            *x = 0.0;
        }
        let b = Tensor::from_fn(&[4, 5], |i| (i as f32 * 1.1).cos());
        let c = a.matmul(&b);
        assert!(c.allclose(&naive_matmul(&a, &b), 1e-5));
        for j in 0..5 {
            assert_eq!(c.at2(1, j), 0.0, "zero row must stay exactly zero");
        }
        // Same property through the transposed kernels.
        let bt = a.matmul_bt(&Tensor::from_fn(&[2, 4], |i| i as f32 - 3.0));
        for j in 0..2 {
            assert_eq!(bt.at2(1, j), 0.0);
        }
    }

    #[test]
    fn matmul_with_zero_inner_dim_is_zero() {
        let a = Tensor::zeros(&[2, 0]);
        let b = Tensor::zeros(&[0, 3]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 3]);
        assert!(c.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn workspace_variants_match_allocating_kernels() {
        let mut ws = Workspace::new();
        let a = Tensor::from_fn(&[5, 7], |i| (i as f32 * 0.31).sin());
        let b = Tensor::from_fn(&[7, 6], |i| (i as f32 * 0.17).cos());
        let c = Tensor::from_fn(&[5, 6], |i| (i as f32 * 0.23).sin());
        let d = Tensor::from_fn(&[4, 7], |i| (i as f32 * 0.41).cos());
        assert_eq!(a.matmul_ws(&b, &mut ws), a.matmul(&b));
        assert_eq!(a.matmul_at_ws(&c, &mut ws), a.matmul_at(&c));
        assert_eq!(a.matmul_bt_ws(&d, &mut ws), a.matmul_bt(&d));
        // Run twice so the second pass reuses (dirty) recycled buffers.
        let r = a.matmul_ws(&b, &mut ws);
        ws.recycle(r);
        assert_eq!(a.matmul_ws(&b, &mut ws), a.matmul(&b));
    }
}
