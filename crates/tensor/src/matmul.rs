//! Dense matrix multiplication on tensors and views.
//!
//! There is exactly **one** matrix-product kernel in this workspace: the
//! packed-panel [`gemm`](crate::gemm) engine, reached through
//! [`Tensor::matmul`] / [`TensorView::matmul`](crate::TensorView::matmul).
//! Transposed products are expressed as products of transposed *views* —
//! `a.view().t().matmul(&b.view())` replaces the old `matmul_at`, and
//! `a.view().matmul(&b.view().t())` replaces `matmul_bt` — because the
//! engine packs operands through arbitrary row/column strides, a
//! transposed layout is not a special case.
//!
//! Each output element's accumulation order is fixed by the engine's `KC`
//! depth blocking alone (never by tile, panel, stride, or thread
//! boundaries), so results are bit-identical at any thread count, for any
//! operand layout, *and* per output row regardless of how many rows are
//! computed together (the serving layer's batching invariant). The kernel
//! is dense and branch-free — a zero in the input costs the same as any
//! other value (see the zero-row test).

use crate::tensor::Tensor;
use crate::workspace::Workspace;

impl Tensor {
    /// Matrix product `self · other` for `[M, K] × [K, N] → [M, N]`.
    ///
    /// For transposed operands, transpose a *view* instead of the data:
    /// `a.view().t().matmul(&b.view())` computes `aᵀ·b` with no copy.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.view().matmul(&other.view())
    }

    /// [`matmul`](Tensor::matmul) with the output buffer and packing
    /// scratch drawn from `ws`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    pub fn matmul_ws(&self, other: &Tensor, ws: &mut Workspace) -> Tensor {
        self.view().matmul_ws(&other.view(), ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::KC;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.dim(0), a.dim(1), b.dim(1));
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at2(i, p) * b.at2(p, j);
                }
                out.set2(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_fn(&[3, 3], |i| i as f32);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(3).matmul(&a), a);
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Tensor::from_fn(&[4, 5], |i| (i as f32 * 0.7).sin());
        let b = Tensor::from_fn(&[5, 3], |i| (i as f32 * 1.3).cos());
        assert!(a.matmul(&b).allclose(&naive_matmul(&a, &b), 1e-5));
    }

    #[test]
    fn matmul_deep_k_crosses_depth_blocks() {
        // k > KC so the depth-blocked accumulation path is exercised.
        let a = Tensor::from_fn(&[3, KC + 37], |i| (i as f32 * 0.3).sin());
        let b = Tensor::from_fn(&[KC + 37, 5], |i| (i as f32 * 0.11).cos());
        assert!(a.matmul(&b).allclose(&naive_matmul(&a, &b), 1e-4));
    }

    #[test]
    fn view_t_matmul_matches_fixed_accumulation_chain() {
        // The bit-identity pin for the deleted `matmul_bt` kernel: the
        // engine's contract says every output accumulates KC-blocked
        // partial sums, each in ascending k order — exactly this serial
        // reference, bit for bit, for any m/n/thread count. The old
        // kernel satisfied it; the transposed-view product must satisfy
        // the *same* chain, so the two are bit-identical by transitivity.
        let (m, k, n) = (3, KC + 197, 11);
        let a = Tensor::from_fn(&[m, k], |i| (i as f32 * 0.013).sin());
        let b = Tensor::from_fn(&[n, k], |i| (i as f32 * 0.029).cos());
        let got = a.view().matmul(&b.view().t());
        for i in 0..m {
            for j in 0..n {
                let mut c = 0.0f32;
                let mut pc = 0;
                while pc < k {
                    let kc = KC.min(k - pc);
                    let mut s = 0.0f32;
                    for p in pc..pc + kc {
                        s += a.at2(i, p) * b.at2(j, p);
                    }
                    c += s;
                    pc += kc;
                }
                assert_eq!(got.at2(i, j), c, "({i},{j}) drifted from the chain");
            }
        }
    }

    #[test]
    fn view_at_matmul_matches_fixed_accumulation_chain() {
        // Same pin for the deleted `matmul_at`: aᵀ·b through a transposed
        // left view reproduces the serial KC chain exactly.
        let (k, m, n) = (KC + 53, 5, 9);
        let a = Tensor::from_fn(&[k, m], |i| (i as f32 * 0.017).sin());
        let b = Tensor::from_fn(&[k, n], |i| (i as f32 * 0.031).cos());
        let got = a.view().t().matmul(&b.view());
        for i in 0..m {
            for j in 0..n {
                let mut c = 0.0f32;
                let mut pc = 0;
                while pc < k {
                    let kc = KC.min(k - pc);
                    let mut s = 0.0f32;
                    for p in pc..pc + kc {
                        s += a.at2(p, i) * b.at2(p, j);
                    }
                    c += s;
                    pc += kc;
                }
                assert_eq!(got.at2(i, j), c, "({i},{j}) drifted from the chain");
            }
        }
    }

    #[test]
    fn view_at_matmul_bit_equals_explicit_transpose() {
        // Stronger than the old allclose: packing from a transposed view
        // reads the same logical elements in the same order as packing a
        // materialised transpose, so the products are bit-identical.
        let a = Tensor::from_fn(&[6, 4], |i| (i as f32).sqrt());
        let b = Tensor::from_fn(&[6, 3], |i| i as f32 * 0.1);
        assert_eq!(a.view().t().matmul(&b.view()), a.transpose().matmul(&b));
    }

    #[test]
    fn view_bt_matmul_bit_equals_explicit_transpose() {
        let a = Tensor::from_fn(&[3, 4], |i| (i as f32).sqrt());
        let b = Tensor::from_fn(&[5, 4], |i| i as f32 * 0.1 - 1.0);
        assert_eq!(a.view().matmul(&b.view().t()), a.matmul(&b.transpose()));
    }

    #[test]
    fn batched_rows_equal_single_row_products() {
        // The serving batching invariant at the kernel level: row i of a
        // batched product is bit-identical to the 1-row product of the
        // same input row — including when the row is a zero-copy slice.
        let (m, k, n) = (7, 133, 10);
        let a = Tensor::from_fn(&[m, k], |i| (i as f32 * 0.17).sin());
        let b = Tensor::from_fn(&[k, n], |i| (i as f32 * 0.23).cos());
        let batched = a.matmul(&b);
        for i in 0..m {
            let row = a.view().slice(0, i, i + 1).unwrap();
            let alone = row.matmul(&b.view());
            assert_eq!(alone.data(), batched.row(i), "row {i} drifted");
        }
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_dim_mismatch_panics() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn matmul_with_zero_rows() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[0, 2]);
    }

    #[test]
    fn matmul_zero_valued_row_yields_zero_output_row() {
        // The kernel is dense (no zero-skip fast path); an all-zero input
        // row must still produce an exactly-zero output row.
        let mut a = Tensor::from_fn(&[3, 4], |i| (i as f32 * 0.7).sin() - 0.4);
        for x in a.data_mut()[4..8].iter_mut() {
            *x = 0.0;
        }
        let b = Tensor::from_fn(&[4, 5], |i| (i as f32 * 1.1).cos());
        let c = a.matmul(&b);
        assert!(c.allclose(&naive_matmul(&a, &b), 1e-5));
        for j in 0..5 {
            assert_eq!(c.at2(1, j), 0.0, "zero row must stay exactly zero");
        }
        // Same property through a transposed-view product.
        let w = Tensor::from_fn(&[2, 4], |i| i as f32 - 3.0);
        let bt = a.view().matmul(&w.view().t());
        for j in 0..2 {
            assert_eq!(bt.at2(1, j), 0.0);
        }
    }

    #[test]
    fn matmul_with_zero_inner_dim_is_zero() {
        let a = Tensor::zeros(&[2, 0]);
        let b = Tensor::zeros(&[0, 3]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 3]);
        assert!(c.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn workspace_variants_match_allocating_kernels() {
        let mut ws = Workspace::new();
        let a = Tensor::from_fn(&[5, 7], |i| (i as f32 * 0.31).sin());
        let b = Tensor::from_fn(&[7, 6], |i| (i as f32 * 0.17).cos());
        let c = Tensor::from_fn(&[5, 6], |i| (i as f32 * 0.23).sin());
        let d = Tensor::from_fn(&[4, 7], |i| (i as f32 * 0.41).cos());
        assert_eq!(a.matmul_ws(&b, &mut ws), a.matmul(&b));
        assert_eq!(
            a.view().t().matmul_ws(&c.view(), &mut ws),
            a.view().t().matmul(&c.view())
        );
        assert_eq!(
            a.view().matmul_ws(&d.view().t(), &mut ws),
            a.view().matmul(&d.view().t())
        );
        // Run twice so the second pass reuses (dirty) recycled buffers.
        let r = a.matmul_ws(&b, &mut ws);
        ws.recycle(r);
        assert_eq!(a.matmul_ws(&b, &mut ws), a.matmul(&b));
    }
}
