//! # fluid-tensor
//!
//! Dense, row-major `f32` tensors and the numerical kernels needed by the
//! Fluid Dynamic DNN reproduction: one strided matrix-multiplication
//! engine (transposed operands are zero-copy [`TensorView`]s, not
//! separate kernels), `im2col`/`col2im` for convolutions, elementwise and
//! broadcast maps, reductions, and weight initialisers.
//!
//! The crate deliberately mirrors the small subset of a full tensor library
//! that the paper's 3-conv + 1-FC model needs, with exact, deterministic
//! semantics so higher layers can be property-tested.
//!
//! ## Example
//!
//! ```
//! use fluid_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```
//!
//! Shape errors panic with a descriptive message (as in `ndarray`); all
//! panicking functions document this in a *Panics* section. View-layout
//! errors (slicing out of range, broadcasting mismatched extents,
//! aliasing mutable layouts) are the exception: they return typed
//! [`ViewError`] values, because higher layers want to refuse bad shapes,
//! not crash — see `docs/TENSOR.md`.
//!
//! ## Views and broadcasting
//!
//! [`Tensor::view`] / [`Tensor::view_mut`] open zero-copy strided windows
//! ([`TensorView`] / [`TensorViewMut`]): [`TensorView::transpose`] swaps
//! strides, [`TensorView::slice`]/[`TensorView::narrow`] bump the base
//! offset, [`TensorView::broadcast_to`] repeats data with stride 0, and
//! the GEMM engine packs any of them directly — `a.view().t().matmul(&b)`
//! is the transposed product, with no copy and no special kernel.
//!
//! ## The compute-kernel layer
//!
//! Every kernel here fans out over the [`pool`] worker threads
//! (`FLUID_THREADS`, default: all cores) using row-partitioned chunks, so
//! results are **bit-identical at any thread count**. Scratch-heavy
//! kernels have `_ws` twins that draw their intermediates from a
//! [`Workspace`] arena instead of the allocator — see
//! `docs/PERFORMANCE.md` for the design and tuning guide.
//!
//! Unsafe code is denied crate-wide; the two exceptions are the
//! documented lifetime-erasure at the heart of [`pool`]'s scoped
//! execution and the `std::arch` microkernels in [`simd`], every block
//! of which carries a `// SAFETY:` comment (enforced by
//! `deny(clippy::undocumented_unsafe_blocks)`).

#![deny(unsafe_code)]
#![deny(clippy::undocumented_unsafe_blocks)]
#![deny(missing_docs)]

mod gemm;
mod im2col;
mod init;
mod matmul;
mod ops;
pub mod pool;
pub mod quant;
mod reduce;
mod rng;
mod shape;
// The SIMD microkernels are the crate's one deliberate unsafe island
// beyond `pool`'s scoped execution; see `simd.rs` for the safety story.
#[allow(unsafe_code)]
pub mod simd;
mod tensor;
mod view;
mod workspace;

pub use gemm::{conv_gemm_dw_ws, conv_gemm_fwd_ws, PatchMatrix, KC, MR, NC, NR};
pub use im2col::{col2im, col2im_ws, im2col, im2col_ws, Conv2dGeometry};
pub use init::{kaiming_normal, kaiming_uniform, xavier_uniform};
pub use rng::Prng;
pub use shape::{numel, Shape, MAX_RANK};
pub use tensor::Tensor;
pub use view::{TensorView, TensorViewMut, ViewError};
pub use workspace::Workspace;
