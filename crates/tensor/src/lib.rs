//! # fluid-tensor
//!
//! Dense, row-major `f32` tensors and the numerical kernels needed by the
//! Fluid Dynamic DNN reproduction: matrix multiplication (plus transposed
//! variants for backpropagation), `im2col`/`col2im` for convolutions,
//! elementwise maps, reductions, and weight initialisers.
//!
//! The crate deliberately mirrors the small subset of a full tensor library
//! that the paper's 3-conv + 1-FC model needs, with exact, deterministic
//! semantics so higher layers can be property-tested.
//!
//! ## Example
//!
//! ```
//! use fluid_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```
//!
//! Shape errors panic with a descriptive message (as in `ndarray`); all
//! panicking functions document this in a *Panics* section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod im2col;
mod init;
mod matmul;
mod ops;
mod reduce;
mod rng;
mod shape;
mod tensor;

pub use im2col::{col2im, im2col, Conv2dGeometry};
pub use init::{kaiming_normal, kaiming_uniform, xavier_uniform};
pub use rng::Prng;
pub use shape::{numel, Shape};
pub use tensor::Tensor;
