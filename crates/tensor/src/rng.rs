//! A small deterministic pseudo-random number generator.
//!
//! The reproduction needs *bit-for-bit reproducible* experiments across
//! platforms, so instead of threading `rand`'s generics everywhere we use a
//! single, explicit splitmix64-based PRNG. (`rand` is still used at API
//! boundaries that want trait-based generators.)

/// Deterministic splitmix64 PRNG used for weight init, data synthesis and
/// shuffling.
///
/// Not cryptographically secure; statistically fine for ML workloads.
///
/// # Example
///
/// ```
/// use fluid_tensor::Prng;
/// let mut a = Prng::new(42);
/// let mut b = Prng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Prng {
    state: u64,
    /// Cached second Box-Muller output.
    spare_normal: Option<f64>,
}

impl Prng {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform range is inverted: {lo} > {hi}");
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Modulo bias is negligible for n << 2^64.
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal sample via Box-Muller.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0).
        let mut u1 = self.next_f64();
        while u1 <= f64::EPSILON {
            u1 = self.next_f64();
        }
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation, as `f32`.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal() as f32
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Derives an independent generator for a labelled sub-stream.
    ///
    /// Useful to give each worker / layer / epoch its own stream without
    /// coupling their consumption order.
    pub fn fork(&mut self, label: u64) -> Prng {
        let s = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Prng::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Prng::new(7);
        let mut b = Prng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Prng::new(3);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn below_in_range() {
        let mut rng = Prng::new(4);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn normal_mean_and_var_roughly_standard() {
        let mut rng = Prng::new(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Prng::new(6);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent_of_consumption() {
        let mut root1 = Prng::new(9);
        let mut fork_a = root1.fork(1);
        let seq_a: Vec<u64> = (0..5).map(|_| fork_a.next_u64()).collect();

        let mut root2 = Prng::new(9);
        let mut fork_b = root2.fork(1);
        let seq_b: Vec<u64> = (0..5).map(|_| fork_b.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Prng::new(10);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
