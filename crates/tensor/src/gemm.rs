//! The packed-panel GEMM engine behind every matrix product in this crate.
//!
//! This is a BLIS-style design (see `docs/PERFORMANCE.md`): operands are
//! first *packed* into cache-resident panels drawn from a [`Workspace`],
//! then a blocked loop nest drives an unrolled [`MR`]×`nr` microkernel
//! chosen **once per process** by [`crate::simd`]'s runtime CPU-feature
//! dispatch (AVX2 4×16 on modern x86, NEON on aarch64, the scalar 4×8
//! fallback everywhere else or under `FLUID_FORCE_SCALAR=1`). One engine
//! serves every operand layout: both sides are packed through arbitrary
//! row/column strides ([`AccessA`]/[`AccessB::Strided`]), so dense
//! matrices, transposed or sliced [`crate::TensorView`]s, stride-0
//! broadcast rows, and the implicit-`im2col` patch matrix used by
//! convolution all inherit the same performance and the same determinism
//! argument. (The old `matmul_at`/`matmul_bt` entry points are gone —
//! a transposed view *is* the strided layout they special-cased.)
//!
//! ## Loop structure
//!
//! ```text
//! for jc in steps of NC:                 // column slice (B stays in L2)
//!   for pc in steps of KC:               // depth slice (fixes FP order)
//!     pack B[pc.., jc..] into nr-column strips   (parallel over strips)
//!     pack A[.., pc..]   into MR-row panels      (parallel over panels)
//!     for each MR-row panel:             // parallel over panels
//!       for each nr-column strip:
//!         acc[MR][nr] = 0
//!         for kk in 0..kc: acc += a_panel[kk] ⊗ b_strip[kk]   // microkernel
//!         C[panel rows, strip cols] += acc
//! ```
//!
//! `nr` is the dispatched kernel's tile width ([`NR`] = 8 for the scalar
//! fallback, 16 for the AVX2 4×16 kernel); it decides how strips are cut,
//! never how any element is computed.
//!
//! ## Determinism
//!
//! Each output element's floating-point accumulation chain is
//!
//! ```text
//! c = ((0 + s₀) + s₁) + …   where   s_b = Σ_{kk in KC-block b, ascending} a·b
//! ```
//!
//! — fully determined by `k` and the [`KC`] constant alone. Parallelism
//! only ever splits the *output* (row panels, column strips); no thread
//! boundary, panel size, tile width, or edge case changes any element's
//! chain. Every dispatched SIMD variant reproduces the scalar kernel's
//! mul-then-add rounding sequence exactly (no FMA — see [`crate::simd`]).
//! Results are therefore bit-identical at any thread count *and under any
//! dispatch decision*, and a row of a batched product is bit-identical to
//! the same row computed alone (the serving layer's batching invariant).

use crate::im2col::Conv2dGeometry;
use crate::pool;
use crate::simd::{self, KernelF32};
use crate::workspace::Workspace;

/// Microkernel rows: output rows accumulated together in registers
/// (shared by every dispatched variant).
pub const MR: usize = 4;

/// The scalar microkernel's tile width; the packed strip width follows the
/// *dispatched* kernel (8 or 16) at run time, so treat this constant as
/// the minimum, not the layout law.
pub const NR: usize = 8;

/// Depth blocking: the k-extent of one packed A-panel/B-strip pair. This
/// constant *fixes the accumulation chain* (see the module docs) — change
/// it and every GEMM result changes in the last bits.
pub const KC: usize = 256;

/// Column blocking: one packed B slice is at most `NC` columns wide
/// (`NC × KC × 4` bytes ≈ 1 MiB) so it survives in cache across row panels.
pub const NC: usize = 1024;

/// How the engine reads the left operand `A[i, p]` (`m × k` logically):
/// a base slice plus arbitrary row/column strides, so row-major storage
/// (`rs = k, cs = 1`), a transposed view (`rs = 1, cs = m`), a sliced
/// window, or a stride-0 broadcast row all pack through one gather.
#[derive(Clone, Copy)]
pub(crate) struct AccessA<'a> {
    data: &'a [f32],
    /// Elements between `A[i, p]` and `A[i+1, p]`.
    rs: usize,
    /// Elements between `A[i, p]` and `A[i, p+1]`.
    cs: usize,
}

impl<'a> AccessA<'a> {
    /// An arbitrary strided layout — the seam every [`crate::TensorView`]
    /// reaches GEMM through.
    pub(crate) fn strided(data: &'a [f32], rs: usize, cs: usize) -> Self {
        Self { data, rs, cs }
    }

    /// Dense row-major `[m, k]` storage (`a[i*k + p]`).
    pub(crate) fn row_major(data: &'a [f32], k: usize) -> Self {
        Self { data, rs: k, cs: 1 }
    }
}

/// How the engine reads the right operand `B[p, j]` (`k × n` logically).
#[derive(Clone, Copy)]
pub(crate) enum AccessB<'a> {
    /// A base slice plus arbitrary row/column strides: row-major storage
    /// is `rs = n, cs = 1` (packed with a contiguous-copy fast path), a
    /// transposed view is `rs = 1, cs = k`, and sliced or broadcast
    /// layouts fall out of the same two numbers.
    Strided {
        /// Base storage; element `B[p, j]` lives at `data[p*rs + j*cs]`.
        data: &'a [f32],
        /// Elements between `B[p, j]` and `B[p+1, j]`.
        rs: usize,
        /// Elements between `B[p, j]` and `B[p, j+1]`.
        cs: usize,
    },
    /// The implicit `im2col` patch matrix `[c·k·k, n·oh·ow]` — elements
    /// are gathered straight from the image during packing.
    Patches(&'a PatchMatrix<'a>),
    /// The transpose of the patch matrix (`[n·oh·ow, c·k·k]`), used by the
    /// convolution weight-gradient GEMM.
    PatchesT(&'a PatchMatrix<'a>),
}

impl<'a> AccessB<'a> {
    /// An arbitrary strided layout.
    pub(crate) fn strided(data: &'a [f32], rs: usize, cs: usize) -> Self {
        AccessB::Strided { data, rs, cs }
    }

    /// Dense row-major `[k, n]` storage (`b[p*n + j]`).
    pub(crate) fn row_major(data: &'a [f32], n: usize) -> Self {
        AccessB::Strided { data, rs: n, cs: 1 }
    }
}

/// `out[m × n] += A · B`, with `out` pre-zeroed by the caller.
///
/// Packing scratch is drawn from (and recycled into) `ws`; in steady state
/// the call performs no heap allocation.
pub(crate) fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: AccessA<'_>,
    b: AccessB<'_>,
    out: &mut [f32],
    ws: &mut Workspace,
) {
    gemm_with(simd::active_f32(), m, n, k, a, b, out, ws);
}

/// [`gemm`] pinned to one microkernel variant — the dispatch seam. The
/// public entry uses the host's selected kernel; tests drive every variant
/// through here to pin cross-variant bit-identity.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_with(
    kern: &KernelF32,
    m: usize,
    n: usize,
    k: usize,
    a: AccessA<'_>,
    b: AccessB<'_>,
    out: &mut [f32],
    ws: &mut Workspace,
) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return; // an empty reduction leaves the zero-initialised output
    }
    let nr = kern.nr;
    let panels = m.div_ceil(MR);
    let kc_max = KC.min(k);
    let nc_max = NC.min(n.div_ceil(nr) * nr);
    let mut a_pack = ws.take_dirty(panels * MR * kc_max);
    let mut b_pack = ws.take_dirty(nc_max * kc_max);

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let strips = nc.div_ceil(nr);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            let b_slice = &mut b_pack[..strips * kc * nr];
            pool::parallel_rows_mut(b_slice, kc * nr, 2, |srange, block| {
                for (bi, s) in srange.enumerate() {
                    pack_b_strip(
                        b,
                        n,
                        jc + s * nr,
                        pc,
                        kc,
                        nr,
                        &mut block[bi * kc * nr..][..kc * nr],
                    );
                }
            });
            let a_slice = &mut a_pack[..panels * kc * MR];
            pool::parallel_rows_mut(a_slice, kc * MR, 2, |prange, block| {
                for (bi, p) in prange.enumerate() {
                    pack_a_panel(a, m, p * MR, pc, kc, &mut block[bi * kc * MR..][..kc * MR]);
                }
            });

            // Parallel over full MR-row panels of C; the ragged tail panel
            // (if any) runs on the calling thread afterwards. Both paths
            // use identical packed data, so the split is invisible to the
            // accumulation chains.
            let full_rows = (m / MR) * MR;
            let (head, tail) = out.split_at_mut(full_rows * n);
            let a_slice = &a_pack[..panels * kc * MR];
            let b_slice = &b_pack[..strips * kc * nr];
            if !head.is_empty() {
                pool::parallel_rows_mut(head, MR * n, 1, |prange, block| {
                    for (bi, p) in prange.enumerate() {
                        compute_panel(
                            kern,
                            &a_slice[p * kc * MR..][..kc * MR],
                            b_slice,
                            &mut block[bi * MR * n..][..MR * n],
                            MR,
                            n,
                            nc,
                            jc,
                            kc,
                        );
                    }
                });
            }
            if !tail.is_empty() {
                let p = full_rows / MR;
                compute_panel(
                    kern,
                    &a_slice[p * kc * MR..][..kc * MR],
                    b_slice,
                    tail,
                    m - full_rows,
                    n,
                    nc,
                    jc,
                    kc,
                );
            }
            pc += kc;
        }
        jc += nc;
    }
    ws.recycle_vec(a_pack);
    ws.recycle_vec(b_pack);
}

/// One packed A panel (`kc` steps × `MR` rows, k-major) against every
/// B strip of the current column slice, accumulating into `rows` rows of
/// the output block starting at column `jc`. The accumulator tile comes
/// from the dispatched microkernel.
#[allow(clippy::too_many_arguments)]
fn compute_panel(
    kern: &KernelF32,
    a_panel: &[f32],
    b_slice: &[f32],
    c_rows: &mut [f32],
    rows: usize,
    n: usize,
    nc: usize,
    jc: usize,
    kc: usize,
) {
    let nr = kern.nr;
    let strips = nc.div_ceil(nr);
    let mut acc = [0.0f32; simd::ACC_F32];
    for s in 0..strips {
        let b_strip = &b_slice[s * kc * nr..][..kc * nr];
        (kern.run)(a_panel, b_strip, &mut acc);
        let j0 = jc + s * nr;
        let cols = nr.min(n - j0).min(nc - s * nr);
        for r in 0..rows {
            let c_row = &mut c_rows[r * n + j0..r * n + j0 + cols];
            for (c, a) in c_row.iter_mut().zip(&acc[r * nr..r * nr + cols]) {
                *c += a;
            }
        }
    }
}

/// Packs `MR` rows of A starting at row `i0`, depth `pc..pc+kc`, k-major
/// (`MR` consecutive values per k step). Rows past `m` pack as zero, so
/// edge panels run the full microkernel and discard the dead lanes.
///
/// One gather covers every layout: logical element `A[i, p]` lives at
/// `data[i*rs + p*cs]`, so row-major, transposed, sliced, and stride-0
/// broadcast views differ only in the two stride constants.
fn pack_a_panel(a: AccessA<'_>, m: usize, i0: usize, pc: usize, kc: usize, dst: &mut [f32]) {
    let AccessA { data, rs, cs } = a;
    if i0 + MR <= m {
        for kk in 0..kc {
            let kbase = (pc + kk) * cs;
            for r in 0..MR {
                dst[kk * MR + r] = data[(i0 + r) * rs + kbase];
            }
        }
    } else {
        let live = MR.min(m - i0);
        for kk in 0..kc {
            let kbase = (pc + kk) * cs;
            let d = &mut dst[kk * MR..kk * MR + MR];
            for (r, slot) in d.iter_mut().enumerate() {
                *slot = if r < live {
                    data[(i0 + r) * rs + kbase]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs one `nr`-column strip of B starting at column `j0`, depth
/// `pc..pc+kc`, k-major (`nr` consecutive values per k step). Columns past
/// `n` pack as zero.
pub(crate) fn pack_b_strip(
    b: AccessB<'_>,
    n: usize,
    j0: usize,
    pc: usize,
    kc: usize,
    nr: usize,
    dst: &mut [f32],
) {
    match b {
        AccessB::Strided { data, rs, cs } => {
            if cs == 1 && j0 + nr <= n {
                // Unit column stride and a full strip: each k step is one
                // contiguous copy — the dense row-major hot path.
                for kk in 0..kc {
                    let base = (pc + kk) * rs + j0;
                    dst[kk * nr..kk * nr + nr].copy_from_slice(&data[base..base + nr]);
                }
            } else {
                for kk in 0..kc {
                    let kbase = (pc + kk) * rs;
                    for (c, slot) in dst[kk * nr..kk * nr + nr].iter_mut().enumerate() {
                        let j = j0 + c;
                        *slot = if j < n { data[kbase + j * cs] } else { 0.0 };
                    }
                }
            }
        }
        AccessB::Patches(p) => p.pack_strip(j0, pc, kc, nr, dst),
        AccessB::PatchesT(p) => p.pack_strip_t(j0, pc, kc, nr, dst),
    }
}

/// The `im2col` patch matrix of an `[N, C, H, W]` image batch, *never
/// materialised*: the GEMM engine gathers `KC × NR` blocks of it straight
/// from the image while packing (implicit GEMM). Logical shape is
/// `[C·K·K, N·OH·OW]` — identical, element for element, to
/// [`im2col`](crate::im2col::im2col).
pub struct PatchMatrix<'a> {
    src: &'a [f32],
    batch: usize,
    channels: usize,
    geo: Conv2dGeometry,
    oh: usize,
    ow: usize,
}

impl<'a> PatchMatrix<'a> {
    /// Describes the patch matrix of `input` (`[N, C, H, W]` data) under
    /// `geo`. `input` is borrowed; nothing is computed until the engine
    /// packs from it.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` disagrees with `batch · channels` planes of
    /// `geo`'s input extent.
    pub fn new(input: &'a [f32], batch: usize, channels: usize, geo: Conv2dGeometry) -> Self {
        assert_eq!(
            input.len(),
            batch * channels * geo.in_h * geo.in_w,
            "input of {} elements is not [{batch}, {channels}, {}, {}]",
            input.len(),
            geo.in_h,
            geo.in_w
        );
        Self {
            src: input,
            batch,
            channels,
            geo,
            oh: geo.out_h(),
            ow: geo.out_w(),
        }
    }

    /// Patch-matrix row count: `C·K·K`.
    pub fn rows(&self) -> usize {
        self.channels * self.geo.kernel * self.geo.kernel
    }

    /// Patch-matrix column count: `N·OH·OW`.
    pub fn cols(&self) -> usize {
        self.batch * self.oh * self.ow
    }

    /// The patch element at (patch row, output position) — zero where the
    /// receptive field hangs over the padding.
    #[inline]
    fn at(&self, row_ci: usize, ky: usize, kx: usize, ni: usize, oy: usize, ox: usize) -> f32 {
        let geo = &self.geo;
        let iy = (oy * geo.stride + ky) as isize - geo.pad as isize;
        let ix = (ox * geo.stride + kx) as isize - geo.pad as isize;
        if iy < 0 || ix < 0 || iy >= geo.in_h as isize || ix >= geo.in_w as isize {
            return 0.0;
        }
        self.src[((ni * self.channels + row_ci) * geo.in_h + iy as usize) * geo.in_w + ix as usize]
    }

    /// Splits a patch-matrix row index into `(channel, ky, kx)`.
    #[inline]
    fn split_row(&self, row: usize) -> (usize, usize, usize) {
        let k = self.geo.kernel;
        (row / (k * k), (row / k) % k, row % k)
    }

    /// Splits an output-position column index into `(image, oy, ox)`.
    #[inline]
    fn split_col(&self, col: usize) -> (usize, usize, usize) {
        let ox = col % self.ow;
        let rest = col / self.ow;
        (rest / self.oh, rest % self.oh, ox)
    }

    /// Packs the strip `B[pc.., j0..j0+nr]` of the patch matrix.
    ///
    /// The strip's `nr` consecutive output positions decompose into runs
    /// sharing `(image, output row)`; at stride 1 each run's receptive
    /// taps are *contiguous* in the source image, so the hot path is a
    /// short `copy_from_slice` per run instead of a per-element gather —
    /// the same structure the materialised `im2col` fill exploits.
    pub(crate) fn pack_strip(&self, j0: usize, pc: usize, kc: usize, nr: usize, dst: &mut [f32]) {
        debug_assert!(nr <= crate::simd::NR_MAX);
        dst[..kc * nr].fill(0.0); // padding taps and dead columns stay zero
        let np = self.cols();
        let live = nr.min(np.saturating_sub(j0));
        if live == 0 {
            return;
        }
        let geo = &self.geo;
        if geo.stride != 1 {
            // Strided convolutions gather element-wise (no contiguity).
            for kk in 0..kc {
                let (ci, ky, kx) = self.split_row(pc + kk);
                let d = &mut dst[kk * nr..kk * nr + live];
                for (c, slot) in d.iter_mut().enumerate() {
                    let (ni, oy, ox) = self.split_col(j0 + c);
                    *slot = self.at(ci, ky, kx, ni, oy, ox);
                }
            }
            return;
        }
        // Runs of columns sharing (ni, oy), computed once per strip.
        // (c0, len, ni, oy, ox0)
        let mut runs = [(0usize, 0usize, 0usize, 0usize, 0usize); crate::simd::NR_MAX];
        let mut n_runs = 0;
        let mut c = 0;
        while c < live {
            let (ni, oy, ox) = self.split_col(j0 + c);
            let len = (self.ow - ox).min(live - c);
            runs[n_runs] = (c, len, ni, oy, ox);
            n_runs += 1;
            c += len;
        }
        let runs = &runs[..n_runs];
        let (in_h, in_w) = (geo.in_h as isize, geo.in_w as isize);
        let plane = geo.in_h * geo.in_w;
        for kk in 0..kc {
            let (ci, ky, kx) = self.split_row(pc + kk);
            let drow = &mut dst[kk * nr..kk * nr + nr];
            for &(c0, len, ni, oy, ox0) in runs {
                let iy = (oy + ky) as isize - geo.pad as isize;
                if iy < 0 || iy >= in_h {
                    continue;
                }
                // ix for run offset t is ox0 + t + kx - pad: clip to the
                // image width, then one contiguous copy.
                let ix0 = (ox0 + kx) as isize - geo.pad as isize;
                let lo = (-ix0).max(0) as usize;
                let hi = (in_w - ix0).clamp(0, len as isize) as usize;
                if lo >= hi {
                    continue;
                }
                let src_row = ((ni * self.channels + ci) * plane + iy as usize * geo.in_w) as isize;
                // `lo` cancels any negative ix0, so the start is in range.
                let start = (src_row + ix0 + lo as isize) as usize;
                drow[c0 + lo..c0 + hi].copy_from_slice(&self.src[start..start + (hi - lo)]);
            }
        }
    }

    /// Packs the strip `Bᵀ[pc.., j0..j0+nr]`, i.e. k runs over output
    /// positions and columns over patch rows (the dW GEMM layout).
    ///
    /// The k range's consecutive output positions decompose into runs
    /// sharing `(image, output row)` — computed once and shared by every
    /// column of the strip; at stride 1 each run reads a contiguous span
    /// of the source image (writes are `nr`-strided into the L1-resident
    /// strip, which is cheap; the contiguous side belongs to the big
    /// operand).
    pub(crate) fn pack_strip_t(&self, j0: usize, pc: usize, kc: usize, nr: usize, dst: &mut [f32]) {
        debug_assert!(nr <= crate::simd::NR_MAX);
        dst[..kc * nr].fill(0.0);
        let ckk = self.rows();
        let live = nr.min(ckk.saturating_sub(j0));
        if live == 0 {
            return;
        }
        let geo = &self.geo;
        if geo.stride != 1 {
            for kk in 0..kc {
                let (ni, oy, ox) = self.split_col(pc + kk);
                let d = &mut dst[kk * nr..kk * nr + live];
                for (c, slot) in d.iter_mut().enumerate() {
                    let (ci, ky, kx) = self.split_row(j0 + c);
                    *slot = self.at(ci, ky, kx, ni, oy, ox);
                }
            }
            return;
        }
        // Tap descriptors for the strip's columns, decomposed once.
        let mut taps = [(0usize, 0usize, 0usize); crate::simd::NR_MAX];
        for (c, slot) in taps.iter_mut().enumerate().take(live) {
            *slot = self.split_row(j0 + c);
        }
        let (in_h, in_w) = (geo.in_h as isize, geo.in_w as isize);
        let plane = geo.in_h * geo.in_w;
        // Walk position runs over kk sharing (ni, oy); each (run, column)
        // pair reads one contiguous source span.
        let mut kk = 0;
        while kk < kc {
            let (ni, oy, ox0) = self.split_col(pc + kk);
            let len = (self.ow - ox0).min(kc - kk);
            for (c, &(ci, ky, kx)) in taps.iter().enumerate().take(live) {
                let iy = (oy + ky) as isize - geo.pad as isize;
                if iy < 0 || iy >= in_h {
                    continue;
                }
                let ix0 = (ox0 + kx) as isize - geo.pad as isize;
                let lo = (-ix0).max(0) as usize;
                let hi = (in_w - ix0).clamp(0, len as isize) as usize;
                if lo >= hi {
                    continue;
                }
                let src_row = ((ni * self.channels + ci) * plane + iy as usize * geo.in_w) as isize;
                // `lo` cancels any negative ix0, so the start is in range.
                let start = (src_row + ix0 + lo as isize) as usize;
                let src = &self.src[start..start + (hi - lo)];
                for (t, &v) in src.iter().enumerate() {
                    dst[(kk + lo + t) * nr + c] = v;
                }
            }
            kk += len;
        }
    }
}

/// Convolution forward as implicit GEMM:
/// `wmat[c_out, C·K·K] · patches[C·K·K, N·OH·OW] → [c_out, N·OH·OW]`,
/// with the patch matrix gathered from the image during packing instead of
/// being materialised. Output and scratch are drawn from `ws`.
///
/// # Panics
///
/// Panics if `wmat` is not rank 2 or its column count differs from
/// `patches.rows()`.
pub fn conv_gemm_fwd_ws(
    wmat: &crate::tensor::Tensor,
    patches: &PatchMatrix<'_>,
    ws: &mut Workspace,
) -> crate::tensor::Tensor {
    let d = wmat.dims();
    assert_eq!(d.len(), 2, "conv_gemm_fwd weight rank {}", d.len());
    let (m, k, n) = (d[0], d[1], patches.cols());
    assert_eq!(k, patches.rows(), "weight columns {k} != patch rows");
    let mut out = ws.take_zeroed(m * n);
    gemm(
        m,
        n,
        k,
        AccessA::row_major(wmat.data(), k),
        AccessB::Patches(patches),
        &mut out,
        ws,
    );
    crate::tensor::Tensor::from_vec(out, &[m, n])
}

/// Convolution weight gradient as implicit GEMM:
/// `g[c_out, N·OH·OW] · patchesᵀ → [c_out, C·K·K]`, gathering the patch
/// matrix from the image during packing. Output and scratch are drawn
/// from `ws`.
///
/// # Panics
///
/// Panics if `g_mat` is not rank 2 or its column count differs from
/// `patches.cols()`.
pub fn conv_gemm_dw_ws(
    g_mat: &crate::tensor::Tensor,
    patches: &PatchMatrix<'_>,
    ws: &mut Workspace,
) -> crate::tensor::Tensor {
    let d = g_mat.dims();
    assert_eq!(d.len(), 2, "conv_gemm_dw gradient rank {}", d.len());
    let (m, k, n) = (d[0], d[1], patches.rows());
    assert_eq!(k, patches.cols(), "gradient columns {k} != patch cols");
    let mut out = ws.take_zeroed(m * n);
    gemm(
        m,
        n,
        k,
        AccessA::row_major(g_mat.data(), k),
        AccessB::PatchesT(patches),
        &mut out,
        ws,
    );
    crate::tensor::Tensor::from_vec(out, &[m, n])
}

impl std::fmt::Debug for PatchMatrix<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PatchMatrix")
            .field("rows", &self.rows())
            .field("cols", &self.cols())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::im2col::im2col;
    use crate::rng::Prng;
    use crate::tensor::Tensor;

    fn randv(seed: u64, len: usize) -> Vec<f32> {
        let mut rng = Prng::new(seed);
        (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    /// A serial reference that reproduces the engine's exact accumulation
    /// chain: KC-blocked partial sums, each accumulated in ascending k.
    fn blocked_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut c = 0.0f32;
                let mut pc = 0;
                while pc < k {
                    let kc = KC.min(k - pc);
                    let mut s = 0.0f32;
                    for kk in pc..pc + kc {
                        s += a[i * k + kk] * b[kk * n + j];
                    }
                    c += s;
                    pc += kc;
                }
                out[i * n + j] = c;
            }
        }
        out
    }

    #[test]
    fn engine_matches_blocked_reference_exactly() {
        // Ragged in every direction: m % MR, n % NR, k % KC all nonzero,
        // and k spans multiple KC blocks.
        let (m, k, n) = (7, 2 * KC + 37, 19);
        let a = randv(1, m * k);
        let b = randv(2, k * n);
        let mut out = vec![0.0f32; m * n];
        let mut ws = Workspace::new();
        gemm(
            m,
            n,
            k,
            AccessA::row_major(&a, k),
            AccessB::row_major(&b, n),
            &mut out,
            &mut ws,
        );
        assert_eq!(out, blocked_reference(&a, &b, m, k, n));
    }

    #[test]
    fn all_layouts_agree() {
        let (m, k, n) = (5, 43, 13);
        let a = randv(3, m * k);
        let b = randv(4, k * n);
        // Materialise transposes.
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut bt = vec![0.0f32; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut ws = Workspace::new();
        let run = |aa: AccessA<'_>, bb: AccessB<'_>, ws: &mut Workspace| {
            let mut out = vec![0.0f32; m * n];
            gemm(m, n, k, aa, bb, &mut out, ws);
            out
        };
        let want = run(
            AccessA::row_major(&a, k),
            AccessB::row_major(&b, n),
            &mut ws,
        );
        // A stored [k, m], read transposed: rs = 1, cs = m.
        assert_eq!(
            run(
                AccessA::strided(&at, 1, m),
                AccessB::row_major(&b, n),
                &mut ws
            ),
            want
        );
        // B stored [n, k], read transposed: rs = 1, cs = k.
        assert_eq!(
            run(
                AccessA::row_major(&a, k),
                AccessB::strided(&bt, 1, k),
                &mut ws
            ),
            want
        );
    }

    #[test]
    fn patch_matrix_matches_materialised_im2col() {
        let geo = Conv2dGeometry::new(9, 7, 3, 2, 1);
        let (batch, channels) = (3, 4);
        let x = Tensor::from_vec(randv(5, batch * channels * 9 * 7), &[batch, channels, 9, 7]);
        let cols = im2col(&x, &geo);
        let patches = PatchMatrix::new(x.data(), batch, channels, geo);
        assert_eq!((patches.rows(), patches.cols()), (cols.dim(0), cols.dim(1)));
        // Pack every strip of both orientations and compare element-wise.
        let (ckk, np) = (patches.rows(), patches.cols());
        let mut dst = vec![0.0f32; KC.min(ckk) * NR];
        let kc = KC.min(ckk);
        let mut j0 = 0;
        while j0 < np {
            patches.pack_strip(j0, 0, kc, NR, &mut dst);
            for kk in 0..kc {
                for c in 0..NR {
                    let want = if j0 + c < np {
                        cols.at2(kk, j0 + c)
                    } else {
                        0.0
                    };
                    assert_eq!(dst[kk * NR + c], want, "strip at ({kk}, {})", j0 + c);
                }
            }
            j0 += NR;
        }
        let kc_t = KC.min(np);
        let mut dst_t = vec![0.0f32; kc_t * NR];
        let mut j0 = 0;
        while j0 < ckk {
            patches.pack_strip_t(j0, 0, kc_t, NR, &mut dst_t);
            for kk in 0..kc_t {
                for c in 0..NR {
                    let want = if j0 + c < ckk {
                        cols.at2(j0 + c, kk)
                    } else {
                        0.0
                    };
                    assert_eq!(dst_t[kk * NR + c], want, "t-strip at ({kk}, {})", j0 + c);
                }
            }
            j0 += NR;
        }
    }

    #[test]
    fn every_dispatched_variant_is_bit_identical_at_engine_level() {
        // The variant-level tests in `simd` pin single tiles; this pins
        // the whole engine (packing, blocking, ragged edges) across every
        // kernel the host can run, against the scalar KC-blocked
        // reference. Exact equality — the FLUID_FORCE_SCALAR=1 CI leg
        // plus this test is the cross-variant bit-identity proof.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 8, 8),
            (7, 2 * KC + 37, 19),
            (16, 300, 33),
            (5, 60, 17),
        ] {
            let a = randv(m as u64 * 31 + n as u64, m * k);
            let b = randv(k as u64 * 17 + 3, k * n);
            let want = blocked_reference(&a, &b, m, k, n);
            let mut ws = Workspace::new();
            for kern in crate::simd::host_variants_f32() {
                let mut out = vec![0.0f32; m * n];
                gemm_with(
                    kern,
                    m,
                    n,
                    k,
                    AccessA::row_major(&a, k),
                    AccessB::row_major(&b, n),
                    &mut out,
                    &mut ws,
                );
                assert_eq!(out, want, "kernel {} at {m}x{k}x{n}", kern.name);
            }
        }
    }

    #[test]
    fn steady_state_gemm_reuses_scratch() {
        let (m, k, n) = (16, 300, 24);
        let a = randv(6, m * k);
        let b = randv(7, k * n);
        let mut ws = Workspace::new();
        let mut out = vec![0.0f32; m * n];
        gemm(
            m,
            n,
            k,
            AccessA::row_major(&a, k),
            AccessB::row_major(&b, n),
            &mut out,
            &mut ws,
        );
        let held = ws.buffers_held();
        assert_eq!(held, 2, "pack buffers must be recycled");
        out.fill(0.0);
        gemm(
            m,
            n,
            k,
            AccessA::row_major(&a, k),
            AccessB::row_major(&b, n),
            &mut out,
            &mut ws,
        );
        assert_eq!(ws.buffers_held(), held, "second run must reuse, not grow");
    }
}
