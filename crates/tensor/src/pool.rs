//! A persistent, dependency-free worker pool for data-parallel kernels.
//!
//! Every compute kernel in this crate bottoms out in one of two primitives:
//!
//! * [`parallel_rows`] — read-only fan-out over a contiguous index range,
//! * [`parallel_rows_mut`] — fan-out that hands each worker a *disjoint*
//!   contiguous block of whole output rows.
//!
//! Work is **row-partitioned**: a given output row is always computed by
//! exactly one task, running exactly the same per-row code the serial path
//! runs. Chunk boundaries therefore never change any floating-point
//! accumulation order, which is what makes every kernel in this crate
//! **bit-identical at any thread count** (see `docs/PERFORMANCE.md`).
//!
//! The pool is std-only (no rayon): a fixed set of detached worker threads
//! blocks on a shared queue; a parallel region enqueues one closure per
//! chunk, runs the first chunk on the calling thread, and blocks until the
//! rest have finished. Threads are spawned lazily on first use and live for
//! the rest of the process.
//!
//! ## Configuration
//!
//! The thread count comes from, in priority order:
//!
//! 1. [`set_threads`] (runtime override, e.g. `fluidctl --threads 4`),
//! 2. the `FLUID_THREADS` environment variable, read once at first use,
//! 3. [`std::thread::available_parallelism`].
//!
//! `threads() == 1` makes every primitive run inline on the caller with no
//! queue traffic at all — the serial reference path *is* the parallel path
//! at one thread.
//!
//! ## Example
//!
//! ```
//! use fluid_tensor::pool;
//!
//! let input = vec![1.0f32; 1024];
//! let mut out = vec![0.0f32; 1024];
//! pool::parallel_rows_mut(&mut out, 1, 64, |rows, block| {
//!     for (o, i) in block.iter_mut().zip(&input[rows]) {
//!         *o = i * 2.0;
//!     }
//! });
//! assert!(out.iter().all(|&x| x == 2.0));
//! ```

use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

thread_local! {
    /// Set while a pool worker (or a nested region's caller) is executing a
    /// task. A parallel region entered from such a thread runs inline —
    /// queueing its tasks could deadlock: every worker might be blocked in
    /// a `WaitGuard` on inner regions whose tasks nobody is left to drain.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// The environment variable consulted (once, at first use) for the default
/// worker count.
pub const THREADS_ENV: &str = "FLUID_THREADS";

static THREADS: OnceLock<AtomicUsize> = OnceLock::new();

fn threads_cell() -> &'static AtomicUsize {
    THREADS.get_or_init(|| AtomicUsize::new(default_threads()))
}

fn default_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => v.trim().parse().ok().filter(|&n| n >= 1).unwrap_or(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// The number of threads parallel regions currently fan out to (including
/// the calling thread).
pub fn threads() -> usize {
    threads_cell().load(Ordering::Relaxed)
}

/// Overrides the thread count at runtime (clamped to at least 1).
///
/// Takes effect for every subsequent parallel region in the process; the
/// persistent workers themselves are grown on demand and never shrink.
pub fn set_threads(n: usize) {
    threads_cell().store(n.max(1), Ordering::Relaxed);
}

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    tasks: Mutex<VecDeque<Task>>,
    available: Condvar,
}

struct Pool {
    queue: Arc<Queue>,
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Arc::new(Queue {
            tasks: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

/// Grows the worker set to at least `wanted` threads.
fn ensure_workers(wanted: usize) {
    let pool = pool();
    let mut spawned = pool.spawned.lock().expect("pool spawn lock");
    while *spawned < wanted {
        let queue = Arc::clone(&pool.queue);
        std::thread::Builder::new()
            .name(format!("fluid-pool-{spawned}"))
            .spawn(move || loop {
                let task = {
                    let mut tasks = queue.tasks.lock().expect("pool queue lock");
                    loop {
                        match tasks.pop_front() {
                            Some(t) => break t,
                            None => tasks = queue.available.wait(tasks).expect("pool queue wait"),
                        }
                    }
                };
                task();
            })
            .expect("failed to spawn fluid-tensor pool worker");
        *spawned += 1;
    }
}

/// Completion tracking for one parallel region.
struct ScopeSync {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl ScopeSync {
    fn new(n: usize) -> Self {
        Self {
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn finish_one(&self) {
        let mut remaining = self.remaining.lock().expect("scope lock");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("scope lock");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("scope wait");
        }
    }
}

/// Runs every task to completion before returning: the first on the calling
/// thread, the rest on pool workers. This blocking is what makes the
/// lifetime erasure below sound — no task can outlive the borrows it
/// captures, because `run_scope` does not return (even by unwinding) until
/// every task has finished.
fn run_scope(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let mut iter = tasks.into_iter();
    let Some(first) = iter.next() else { return };
    let rest: Vec<_> = iter.collect();
    if rest.is_empty() {
        first();
        return;
    }
    if IN_POOL_TASK.with(Cell::get) {
        // Nested region: run everything inline (identical chunking, so
        // still bit-identical) instead of risking a queue deadlock.
        first();
        for task in rest {
            task();
        }
        return;
    }

    ensure_workers(rest.len());
    let sync = Arc::new(ScopeSync::new(rest.len()));
    {
        let queue = &pool().queue;
        let mut queued = queue.tasks.lock().expect("pool queue lock");
        for task in rest {
            // SAFETY: `Box<dyn FnOnce() + Send + '_>` and the `'static`
            // form have identical layout; only the lifetime is erased. The
            // `WaitGuard` below blocks (on every exit path, including
            // unwinding) until workers have run all erased tasks, so every
            // borrow the tasks capture strictly outlives their execution.
            #[allow(unsafe_code)]
            let task: Task = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(task)
            };
            let sync = Arc::clone(&sync);
            queued.push_back(Box::new(move || {
                IN_POOL_TASK.with(|f| f.set(true));
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    sync.panicked.store(true, Ordering::SeqCst);
                }
                IN_POOL_TASK.with(|f| f.set(false));
                sync.finish_one();
            }));
        }
        queue.available.notify_all();
    }

    struct WaitGuard<'a>(&'a ScopeSync);
    impl Drop for WaitGuard<'_> {
        fn drop(&mut self) {
            self.0.wait();
        }
    }
    let guard = WaitGuard(&sync);
    let caller_result = catch_unwind(AssertUnwindSafe(first));
    drop(guard); // blocks until every queued task has completed
    if let Err(payload) = caller_result {
        resume_unwind(payload);
    }
    if sync.panicked.load(Ordering::SeqCst) {
        panic!("fluid-tensor pool task panicked");
    }
}

/// Splits `0..rows` into at most `threads()` contiguous chunks of at least
/// `grain` rows and runs `f` on each chunk, blocking until all complete.
///
/// With one thread, tiny inputs, or `rows == 0` this degenerates to a plain
/// inline call — the serial path and the parallel path are the same code.
pub fn parallel_rows(rows: usize, grain: usize, f: impl Fn(Range<usize>) + Sync) {
    if rows == 0 {
        return;
    }
    let chunks = chunk_count(rows, grain);
    if chunks <= 1 {
        f(0..rows);
        return;
    }
    let per_chunk = rows.div_ceil(chunks);
    let f = &f;
    // `chunks * per_chunk` can overshoot `rows` (e.g. 5 rows in 4 chunks of
    // 2), so stop as soon as the range is exhausted instead of emitting
    // inverted tail ranges.
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..chunks)
        .map_while(|c| {
            let lo = c * per_chunk;
            if lo >= rows {
                return None;
            }
            let hi = (lo + per_chunk).min(rows);
            Some(Box::new(move || f(lo..hi)) as Box<dyn FnOnce() + Send + '_>)
        })
        .collect();
    run_scope(tasks);
}

/// Splits `data` (interpreted as rows of `row_len` elements) into at most
/// `threads()` disjoint blocks of whole rows and runs `f(row_range, block)`
/// on each, blocking until all complete.
///
/// Each output row is written by exactly one task, so results cannot depend
/// on the thread count.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `row_len`.
pub fn parallel_rows_mut<T: Send>(
    data: &mut [T],
    row_len: usize,
    grain: usize,
    f: impl Fn(Range<usize>, &mut [T]) + Sync,
) {
    if data.is_empty() {
        return;
    }
    assert!(
        row_len > 0 && data.len().is_multiple_of(row_len),
        "buffer of {} elements is not whole rows of {row_len}",
        data.len()
    );
    let rows = data.len() / row_len;
    let chunks = chunk_count(rows, grain);
    if chunks <= 1 {
        f(0..rows, data);
        return;
    }
    let per_chunk = rows.div_ceil(chunks);
    let f = &f;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(chunks);
    let mut start_row = 0usize;
    for block in data.chunks_mut(per_chunk * row_len) {
        let rows_here = block.len() / row_len;
        let lo = start_row;
        tasks.push(Box::new(move || f(lo..lo + rows_here, block)));
        start_row += rows_here;
    }
    run_scope(tasks);
}

/// How many chunks to cut `rows` into: bounded by the thread knob and by
/// the `grain` floor so tiny inputs stay serial.
fn chunk_count(rows: usize, grain: usize) -> usize {
    let grain = grain.max(1);
    threads().min(rows.div_ceil(grain)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this module mutate the global thread knob; serialize them.
    fn knob_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn rows_mut_covers_every_row_once() {
        let _guard = knob_lock();
        for t in [1, 2, 3, 8] {
            set_threads(t);
            let mut data = vec![0u32; 7 * 3];
            parallel_rows_mut(&mut data, 3, 1, |rows, block| {
                for (r, row) in rows.clone().zip(block.chunks_mut(3)) {
                    for x in row {
                        *x += r as u32 + 1;
                    }
                }
            });
            for (r, row) in data.chunks(3).enumerate() {
                assert!(row.iter().all(|&x| x == r as u32 + 1), "threads {t}");
            }
        }
        set_threads(1);
    }

    #[test]
    fn read_fanout_visits_full_range() {
        let _guard = knob_lock();
        set_threads(4);
        let hits = Mutex::new(vec![0usize; 100]);
        parallel_rows(100, 1, |range| {
            let mut hits = hits.lock().expect("hits");
            for i in range {
                hits[i] += 1;
            }
        });
        set_threads(1);
        assert!(hits.into_inner().expect("hits").iter().all(|&h| h == 1));
    }

    #[test]
    fn grain_keeps_small_inputs_serial() {
        // 10 rows at grain 64 must produce a single chunk regardless of the
        // thread knob.
        assert_eq!(chunk_count(10, 64), 1);
        assert_eq!(chunk_count(1, 1), 1);
    }

    #[test]
    fn indivisible_row_counts_never_produce_inverted_ranges() {
        // 5 rows across 4 threads: ceil(5/4)=2 rows per chunk, so only 3
        // chunks exist — the old code emitted a dangling 6..5 range.
        let _guard = knob_lock();
        set_threads(4);
        let data: Vec<u32> = (0..5).collect();
        let seen = Mutex::new(vec![0usize; 5]);
        parallel_rows(5, 1, |range| {
            assert!(range.start <= range.end, "inverted range {range:?}");
            // Slicing with the range (the natural use) must be in bounds.
            for &v in &data[range.clone()] {
                seen.lock().expect("seen")[v as usize] += 1;
            }
        });
        set_threads(1);
        assert!(seen.into_inner().expect("seen").iter().all(|&c| c == 1));
    }

    #[test]
    fn nested_parallel_regions_run_inline_instead_of_deadlocking() {
        let _guard = knob_lock();
        set_threads(4);
        let outer_rows = Mutex::new(0usize);
        let outer_calls = Mutex::new(0usize);
        let inner_rows = Mutex::new(0usize);
        parallel_rows(8, 1, |outer| {
            *outer_rows.lock().expect("outer") += outer.len();
            *outer_calls.lock().expect("calls") += 1;
            // A nested region from inside a pool task must complete (it
            // runs inline on this worker) rather than deadlock the queue.
            parallel_rows(8, 1, |inner| {
                *inner_rows.lock().expect("inner") += inner.len();
            });
        });
        set_threads(1);
        assert_eq!(*outer_rows.lock().expect("outer"), 8);
        let calls = *outer_calls.lock().expect("calls");
        assert_eq!(*inner_rows.lock().expect("inner"), calls * 8);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let _guard = knob_lock();
        set_threads(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_rows(64, 1, |range| {
                if range.contains(&63) {
                    panic!("boom in worker");
                }
            });
        }));
        set_threads(1);
        assert!(result.is_err(), "panic in a pool task must not be lost");
    }

    #[test]
    fn set_threads_clamps_to_one() {
        let _guard = knob_lock();
        set_threads(0);
        assert_eq!(threads(), 1);
    }
}
