//! A persistent, dependency-free worker pool for data-parallel kernels.
//!
//! Every compute kernel in this crate bottoms out in one of two primitives:
//!
//! * [`parallel_rows`] — read-only fan-out over a contiguous index range,
//! * [`parallel_rows_mut`] — fan-out that hands each worker a *disjoint*
//!   contiguous block of whole output rows.
//!
//! Work is **row-partitioned**: a given output row is always computed by
//! exactly one task, running exactly the same per-row code the serial path
//! runs. Chunk boundaries therefore never change any floating-point
//! accumulation order, which is what makes every kernel in this crate
//! **bit-identical at any thread count** (see `docs/PERFORMANCE.md`).
//!
//! The pool is std-only (no rayon): a fixed set of detached worker threads
//! blocks on a shared queue; a parallel region enqueues one closure per
//! chunk, runs the first chunk on the calling thread, then *helps drain
//! the queue* until its region completes. Threads are spawned lazily on
//! first use and live for the rest of the process.
//!
//! ## Configuration
//!
//! The thread count comes from, in priority order:
//!
//! 1. [`set_threads`] (runtime override, e.g. `fluidctl --threads 4`),
//! 2. the `FLUID_THREADS` environment variable, read once at first use,
//! 3. [`std::thread::available_parallelism`].
//!
//! The knob controls how work is **chunked**; the number of OS threads
//! actually running those chunks is separately clamped to the visible core
//! count. An explicit request beyond the cores is honored for chunking
//! (and logged once) — results never depend on the knob — but the pool
//! will not oversubscribe the host: with one visible core every chunk runs
//! inline on the caller, with zero queue traffic and zero allocation, at
//! any knob setting.
//!
//! `threads() == 1` likewise makes every primitive run inline — the serial
//! reference path *is* the parallel path at one thread.
//!
//! ## Example
//!
//! ```
//! use fluid_tensor::pool;
//!
//! let input = vec![1.0f32; 1024];
//! let mut out = vec![0.0f32; 1024];
//! pool::parallel_rows_mut(&mut out, 1, 64, |rows, block| {
//!     for (o, i) in block.iter_mut().zip(&input[rows]) {
//!         *o = i * 2.0;
//!     }
//! });
//! assert!(out.iter().all(|&x| x == 2.0));
//! ```

use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

thread_local! {
    /// Set while a pool worker (or a caller helping the queue) is executing
    /// a task. A parallel region entered from such a thread runs inline —
    /// queueing its tasks could deadlock: every worker might be blocked in
    /// a `WaitGuard` on inner regions whose tasks nobody is left to drain.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// The environment variable consulted (once, at first use) for the default
/// worker count.
pub const THREADS_ENV: &str = "FLUID_THREADS";

static THREADS: OnceLock<AtomicUsize> = OnceLock::new();

fn threads_cell() -> &'static AtomicUsize {
    THREADS.get_or_init(|| AtomicUsize::new(default_threads()))
}

fn default_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => {
            let n = v.trim().parse().ok().filter(|&n| n >= 1).unwrap_or(1);
            warn_if_oversubscribed(n, THREADS_ENV);
            n
        }
        Err(_) => available_parallelism(),
    }
}

/// The number of chunks parallel regions currently fan out to (including
/// the calling thread).
pub fn threads() -> usize {
    threads_cell().load(Ordering::Relaxed)
}

/// Overrides the thread count at runtime (clamped to at least 1).
///
/// Takes effect for every subsequent parallel region in the process. The
/// knob sets the *chunking*; the OS threads executing those chunks are
/// capped at [`std::thread::available_parallelism`], so a request beyond
/// the visible cores is honored for determinism-preserving chunk layout
/// (with a logged warning) but cannot oversubscribe the host.
pub fn set_threads(n: usize) {
    let n = n.max(1);
    warn_if_oversubscribed(n, "set_threads");
    threads_cell().store(n, Ordering::Relaxed);
}

/// Logs (once per distinct value) when an explicit thread request exceeds
/// the visible core count. The request is still honored — chunking is part
/// of the reproducibility contract — but the extra chunks share the real
/// cores, so the caller should expect no speedup past the cap.
fn warn_if_oversubscribed(requested: usize, source: &str) {
    static LAST_WARNED: AtomicUsize = AtomicUsize::new(0);
    let avail = available_parallelism();
    if requested > avail && LAST_WARNED.swap(requested, Ordering::Relaxed) != requested {
        eprintln!(
            "fluid-tensor pool: {source} asked for {requested} threads on a host with {avail} \
             visible core(s); honoring the chunking but capping OS threads at the core count \
             (see docs/PERFORMANCE.md)"
        );
    }
}

/// `0` means "use the system value"; tests override to exercise the queued
/// fan-out path on single-core hosts.
static AVAILABLE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Visible core count (cached system value, or the test override).
fn available_parallelism() -> usize {
    let o = AVAILABLE_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    static SYSTEM: OnceLock<usize> = OnceLock::new();
    *SYSTEM.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Pretends the host has `n` visible cores (`0` restores the system
/// value). Test-only: lets single-core CI exercise the real queued
/// fan-out path.
#[doc(hidden)]
pub fn override_available_parallelism_for_tests(n: usize) {
    AVAILABLE_OVERRIDE.store(n, Ordering::Relaxed);
}

/// OS worker threads a region may use beyond the calling thread.
fn max_extra_workers() -> usize {
    available_parallelism().saturating_sub(1)
}

/// Whether a region entered on this thread may queue tasks to workers. A
/// region inside a pool task runs inline (deadlock avoidance); a region on
/// a host with no spare cores runs inline too (no oversubscription, no
/// queue traffic, no task boxing).
fn can_fan_out() -> bool {
    !IN_POOL_TASK.with(Cell::get) && max_extra_workers() > 0
}

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    tasks: Mutex<VecDeque<Task>>,
    available: Condvar,
}

impl Queue {
    fn pop(&self) -> Option<Task> {
        self.tasks.lock().expect("pool queue lock").pop_front()
    }
}

struct Pool {
    queue: Arc<Queue>,
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Arc::new(Queue {
            tasks: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

/// Grows the worker set to at least `wanted` threads.
fn ensure_workers(wanted: usize) {
    let pool = pool();
    let mut spawned = pool.spawned.lock().expect("pool spawn lock");
    while *spawned < wanted {
        let queue = Arc::clone(&pool.queue);
        std::thread::Builder::new()
            .name(format!("fluid-pool-{spawned}"))
            .spawn(move || loop {
                let task = {
                    let mut tasks = queue.tasks.lock().expect("pool queue lock");
                    loop {
                        match tasks.pop_front() {
                            Some(t) => break t,
                            None => tasks = queue.available.wait(tasks).expect("pool queue wait"),
                        }
                    }
                };
                task();
            })
            .expect("failed to spawn fluid-tensor pool worker");
        *spawned += 1;
    }
}

/// Completion tracking for one parallel region.
struct ScopeSync {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl ScopeSync {
    fn new(n: usize) -> Self {
        Self {
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn finish_one(&self) {
        let mut remaining = self.remaining.lock().expect("scope lock");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().expect("scope lock") == 0
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("scope lock");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("scope wait");
        }
    }
}

/// Runs every task to completion before returning: the first on the calling
/// thread, the rest on pool workers (the caller helps drain the queue while
/// it waits). This blocking is what makes the lifetime erasure below sound —
/// no task can outlive the borrows it captures, because `run_scope` does
/// not return (even by unwinding) until every task has finished.
///
/// Only called when [`can_fan_out`] holds; inline execution paths never
/// reach the queue.
fn run_scope(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let mut iter = tasks.into_iter();
    let Some(first) = iter.next() else { return };
    let rest: Vec<_> = iter.collect();
    if rest.is_empty() {
        first();
        return;
    }

    ensure_workers(rest.len().min(max_extra_workers()));
    let sync = Arc::new(ScopeSync::new(rest.len()));
    {
        let queue = &pool().queue;
        let mut queued = queue.tasks.lock().expect("pool queue lock");
        for task in rest {
            // SAFETY: `Box<dyn FnOnce() + Send + '_>` and the `'static`
            // form have identical layout; only the lifetime is erased. The
            // `WaitGuard` below blocks (on every exit path, including
            // unwinding) until workers have run all erased tasks, so every
            // borrow the tasks capture strictly outlives their execution.
            #[allow(unsafe_code)]
            let task: Task = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(task)
            };
            let sync = Arc::clone(&sync);
            queued.push_back(Box::new(move || {
                IN_POOL_TASK.with(|f| f.set(true));
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    sync.panicked.store(true, Ordering::SeqCst);
                }
                IN_POOL_TASK.with(|f| f.set(false));
                sync.finish_one();
            }));
        }
        queue.available.notify_all();
    }

    struct WaitGuard<'a>(&'a ScopeSync);
    impl Drop for WaitGuard<'_> {
        fn drop(&mut self) {
            self.0.wait();
        }
    }
    let guard = WaitGuard(&sync);
    let caller_result = catch_unwind(AssertUnwindSafe(first));
    // Help: drain queued tasks (ours or a concurrent region's — each task
    // carries its own bookkeeping) instead of idling until workers finish.
    // With fewer workers than chunks this is what guarantees progress.
    while !sync.is_done() {
        match pool().queue.pop() {
            Some(task) => task(),
            None => break, // our stragglers are running on workers; wait
        }
    }
    drop(guard); // blocks until every queued task has completed
    if let Err(payload) = caller_result {
        resume_unwind(payload);
    }
    if sync.panicked.load(Ordering::SeqCst) {
        panic!("fluid-tensor pool task panicked");
    }
}

/// Splits `0..rows` into at most `threads()` contiguous chunks of at least
/// `grain` rows and runs `f` on each chunk, blocking until all complete.
///
/// With one thread, tiny inputs, `rows == 0`, or no spare cores this
/// degenerates to plain inline calls (no queue, no allocation) — chunk
/// boundaries stay identical, so results never depend on the execution
/// mode.
pub fn parallel_rows(rows: usize, grain: usize, f: impl Fn(Range<usize>) + Sync) {
    if rows == 0 {
        return;
    }
    let chunks = chunk_count(rows, grain);
    if chunks <= 1 {
        f(0..rows);
        return;
    }
    let per_chunk = rows.div_ceil(chunks);
    // `chunks * per_chunk` can overshoot `rows` (e.g. 5 rows in 4 chunks of
    // 2), so stop as soon as the range is exhausted instead of emitting
    // inverted tail ranges.
    let ranges = (0..chunks).map_while(|c| {
        let lo = c * per_chunk;
        (lo < rows).then(|| lo..(lo + per_chunk).min(rows))
    });
    if !can_fan_out() {
        for range in ranges {
            f(range);
        }
        return;
    }
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
        .map(|range| Box::new(move || f(range)) as Box<dyn FnOnce() + Send + '_>)
        .collect();
    run_scope(tasks);
}

/// Splits `data` (interpreted as rows of `row_len` elements) into at most
/// `threads()` disjoint blocks of whole rows and runs `f(row_range, block)`
/// on each, blocking until all complete.
///
/// Each output row is written by exactly one task, so results cannot depend
/// on the thread count.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `row_len`.
pub fn parallel_rows_mut<T: Send>(
    data: &mut [T],
    row_len: usize,
    grain: usize,
    f: impl Fn(Range<usize>, &mut [T]) + Sync,
) {
    if data.is_empty() {
        return;
    }
    assert!(
        row_len > 0 && data.len().is_multiple_of(row_len),
        "buffer of {} elements is not whole rows of {row_len}",
        data.len()
    );
    let rows = data.len() / row_len;
    let chunks = chunk_count(rows, grain);
    if chunks <= 1 {
        f(0..rows, data);
        return;
    }
    let per_chunk = rows.div_ceil(chunks);
    if !can_fan_out() {
        let mut start_row = 0usize;
        for block in data.chunks_mut(per_chunk * row_len) {
            let rows_here = block.len() / row_len;
            f(start_row..start_row + rows_here, block);
            start_row += rows_here;
        }
        return;
    }
    let f = &f;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(chunks);
    let mut start_row = 0usize;
    for block in data.chunks_mut(per_chunk * row_len) {
        let rows_here = block.len() / row_len;
        let lo = start_row;
        tasks.push(Box::new(move || f(lo..lo + rows_here, block)));
        start_row += rows_here;
    }
    run_scope(tasks);
}

/// How many chunks to cut `rows` into: bounded by the thread knob and by
/// the `grain` floor so tiny inputs stay serial.
fn chunk_count(rows: usize, grain: usize) -> usize {
    let grain = grain.max(1);
    threads().min(rows.div_ceil(grain)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this module mutate the global thread knob and the
    /// visible-core override; serialize them and always restore.
    fn knob_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Restores knobs on drop so a failing test cannot poison the rest.
    struct KnobGuard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);
    impl Drop for KnobGuard {
        fn drop(&mut self) {
            set_threads(1);
            override_available_parallelism_for_tests(0);
        }
    }

    fn fanout(threads: usize) -> KnobGuard {
        let guard = KnobGuard(knob_lock());
        override_available_parallelism_for_tests(threads.max(2));
        set_threads(threads);
        guard
    }

    #[test]
    fn rows_mut_covers_every_row_once() {
        for t in [1, 2, 3, 8] {
            let _guard = fanout(t);
            let mut data = vec![0u32; 7 * 3];
            parallel_rows_mut(&mut data, 3, 1, |rows, block| {
                for (r, row) in rows.clone().zip(block.chunks_mut(3)) {
                    for x in row {
                        *x += r as u32 + 1;
                    }
                }
            });
            for (r, row) in data.chunks(3).enumerate() {
                assert!(row.iter().all(|&x| x == r as u32 + 1), "threads {t}");
            }
        }
    }

    #[test]
    fn read_fanout_visits_full_range() {
        let _guard = fanout(4);
        let hits = Mutex::new(vec![0usize; 100]);
        parallel_rows(100, 1, |range| {
            let mut hits = hits.lock().expect("hits");
            for i in range {
                hits[i] += 1;
            }
        });
        drop(_guard);
        assert!(hits.into_inner().expect("hits").iter().all(|&h| h == 1));
    }

    #[test]
    fn single_core_host_runs_chunks_inline() {
        // With one visible core, a multi-thread knob must still produce
        // the same chunk boundaries — executed inline on the caller.
        let _guard = KnobGuard(knob_lock());
        override_available_parallelism_for_tests(1);
        set_threads(4);
        let caller = std::thread::current().id();
        let seen = Mutex::new(Vec::new());
        parallel_rows(8, 1, |range| {
            assert_eq!(std::thread::current().id(), caller, "must run inline");
            seen.lock().expect("seen").push(range);
        });
        let mut chunks = seen.into_inner().expect("seen");
        chunks.sort_by_key(|r| r.start);
        assert_eq!(chunks, vec![0..2, 2..4, 4..6, 6..8], "chunking preserved");
    }

    #[test]
    fn grain_keeps_small_inputs_serial() {
        // 10 rows at grain 64 must produce a single chunk regardless of the
        // thread knob.
        assert_eq!(chunk_count(10, 64), 1);
        assert_eq!(chunk_count(1, 1), 1);
    }

    #[test]
    fn indivisible_row_counts_never_produce_inverted_ranges() {
        // 5 rows across 4 threads: ceil(5/4)=2 rows per chunk, so only 3
        // chunks exist — the old code emitted a dangling 6..5 range.
        let _guard = fanout(4);
        let data: Vec<u32> = (0..5).collect();
        let seen = Mutex::new(vec![0usize; 5]);
        parallel_rows(5, 1, |range| {
            assert!(range.start <= range.end, "inverted range {range:?}");
            // Slicing with the range (the natural use) must be in bounds.
            for &v in &data[range.clone()] {
                seen.lock().expect("seen")[v as usize] += 1;
            }
        });
        drop(_guard);
        assert!(seen.into_inner().expect("seen").iter().all(|&c| c == 1));
    }

    #[test]
    fn nested_parallel_regions_run_inline_instead_of_deadlocking() {
        let _guard = fanout(4);
        let outer_rows = Mutex::new(0usize);
        let outer_calls = Mutex::new(0usize);
        let inner_rows = Mutex::new(0usize);
        parallel_rows(8, 1, |outer| {
            *outer_rows.lock().expect("outer") += outer.len();
            *outer_calls.lock().expect("calls") += 1;
            // A nested region from inside a pool task must complete (it
            // runs inline on this worker) rather than deadlock the queue.
            parallel_rows(8, 1, |inner| {
                *inner_rows.lock().expect("inner") += inner.len();
            });
        });
        drop(_guard);
        assert_eq!(*outer_rows.lock().expect("outer"), 8);
        let calls = *outer_calls.lock().expect("calls");
        assert_eq!(*inner_rows.lock().expect("inner"), calls * 8);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let _guard = fanout(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_rows(64, 1, |range| {
                if range.contains(&63) {
                    panic!("boom in worker");
                }
            });
        }));
        drop(_guard);
        assert!(result.is_err(), "panic in a pool task must not be lost");
    }

    #[test]
    fn caller_helps_when_chunks_exceed_workers() {
        // 8 chunks on a "2-core" host: one worker plus the helping caller
        // must finish all chunks (no deadlock, full coverage).
        let _guard = fanout(8);
        override_available_parallelism_for_tests(2);
        let hits = Mutex::new(vec![0usize; 64]);
        parallel_rows(64, 1, |range| {
            let mut hits = hits.lock().expect("hits");
            for i in range {
                hits[i] += 1;
            }
        });
        drop(_guard);
        assert!(hits.into_inner().expect("hits").iter().all(|&h| h == 1));
    }

    #[test]
    fn set_threads_clamps_to_one() {
        let _guard = KnobGuard(knob_lock());
        set_threads(0);
        assert_eq!(threads(), 1);
    }
}
