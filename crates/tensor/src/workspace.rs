//! A reusable scratch arena for kernel intermediates.
//!
//! Steady-state training and inference repeatedly materialise the same
//! short-lived buffers — the `im2col` patch matrix, weight windows, GEMM
//! outputs, pooling argmax tables. A [`Workspace`] keeps those allocations
//! alive between steps: a kernel takes a buffer, uses it, and gives it
//! back, so after the first step the hot path stops touching the system
//! allocator entirely.
//!
//! Buffers from [`Workspace::take_zeroed`], [`Workspace::take_indices`]
//! and [`Workspace::tensor_zeroed`] are zero-filled, so a
//! workspace-backed kernel is bit-identical to its allocating twin.
//! [`Workspace::take_dirty`] is the explicit opt-out for scratch the
//! caller fully overwrites (e.g. GEMM packing panels) — its contents are
//! unspecified.
//!
//! ## Example
//!
//! ```
//! use fluid_tensor::{Tensor, Workspace};
//!
//! let mut ws = Workspace::new();
//! let t = ws.tensor_zeroed(&[4, 4]);
//! assert!(t.data().iter().all(|&x| x == 0.0));
//! ws.recycle(t); // the 16-element buffer is now reusable
//! assert_eq!(ws.buffers_held(), 1);
//! let again = ws.tensor_zeroed(&[2, 8]); // same buffer, new shape
//! assert_eq!(ws.buffers_held(), 0);
//! assert_eq!(again.numel(), 16);
//! ```

use crate::shape::numel;
use crate::tensor::Tensor;

/// Upper bound on pooled buffers per kind; beyond this, recycled buffers
/// are simply dropped. Generous enough for the deepest forward/backward in
/// the workspace's model families.
const MAX_POOLED: usize = 64;

/// A free-list arena of `f32`, `usize`, `i8` and `i32` scratch buffers
/// (the integer kinds serve the quantized inference path).
///
/// Cloning a workspace yields an **empty** one (scratch is per-executor
/// state, not data), which is what lets owners like model executors keep
/// deriving `Clone`.
#[derive(Default)]
pub struct Workspace {
    free_f32: Vec<Vec<f32>>,
    free_idx: Vec<Vec<usize>>,
    free_i8: Vec<Vec<i8>>,
    free_i32: Vec<Vec<i32>>,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zero-filled `f32` buffer of exactly `len` elements,
    /// preferring the smallest pooled buffer whose capacity suffices.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        match best_fit(&self.free_f32, len) {
            Some(i) => {
                let mut v = self.free_f32.swap_remove(i);
                v.clear();
                v.resize(len, 0.0);
                v
            }
            None => vec![0.0; len],
        }
    }

    /// Takes an `f32` buffer of exactly `len` elements with **unspecified
    /// contents** (recycled buffers keep their old values). For scratch the
    /// caller fully overwrites before reading — skipping the zero-fill of
    /// [`take_zeroed`](Workspace::take_zeroed) matters for large packing
    /// buffers on hot paths.
    pub fn take_dirty(&mut self, len: usize) -> Vec<f32> {
        match best_fit(&self.free_f32, len) {
            Some(i) => {
                let mut v = self.free_f32.swap_remove(i);
                if v.len() >= len {
                    v.truncate(len); // O(1): keep old contents, no fill
                } else {
                    v.resize(len, 0.0); // fills only the grown region
                }
                v
            }
            None => vec![0.0; len],
        }
    }

    /// Takes a zero-filled `usize` buffer of exactly `len` elements.
    pub fn take_indices(&mut self, len: usize) -> Vec<usize> {
        match best_fit(&self.free_idx, len) {
            Some(i) => {
                let mut v = self.free_idx.swap_remove(i);
                v.clear();
                v.resize(len, 0);
                v
            }
            None => vec![0; len],
        }
    }

    /// Takes an `i8` buffer of exactly `len` elements with **unspecified
    /// contents** (the quantized path's packing scratch — always fully
    /// overwritten before reading).
    pub fn take_dirty_i8(&mut self, len: usize) -> Vec<i8> {
        match best_fit(&self.free_i8, len) {
            Some(i) => {
                let mut v = self.free_i8.swap_remove(i);
                if v.len() >= len {
                    v.truncate(len);
                } else {
                    v.resize(len, 0);
                }
                v
            }
            None => vec![0; len],
        }
    }

    /// Takes an `i32` buffer of exactly `len` elements with **unspecified
    /// contents** (the quantized path's cross-block accumulator, which
    /// stores — not adds — on the first depth block).
    pub fn take_dirty_i32(&mut self, len: usize) -> Vec<i32> {
        match best_fit(&self.free_i32, len) {
            Some(i) => {
                let mut v = self.free_i32.swap_remove(i);
                if v.len() >= len {
                    v.truncate(len);
                } else {
                    v.resize(len, 0);
                }
                v
            }
            None => vec![0; len],
        }
    }

    /// Takes a zero-filled `i32` buffer of exactly `len` elements (the
    /// quantized path's cross-block accumulator).
    pub fn take_zeroed_i32(&mut self, len: usize) -> Vec<i32> {
        match best_fit(&self.free_i32, len) {
            Some(i) => {
                let mut v = self.free_i32.swap_remove(i);
                v.clear();
                v.resize(len, 0);
                v
            }
            None => vec![0; len],
        }
    }

    /// Takes a zero tensor with the given dims, backed by a pooled buffer.
    pub fn tensor_zeroed(&mut self, dims: &[usize]) -> Tensor {
        Tensor::from_vec(self.take_zeroed(numel(dims)), dims)
    }

    /// Copies `t` into a pooled buffer (no intermediate zero-fill).
    pub fn tensor_copy(&mut self, t: &Tensor) -> Tensor {
        let mut v = match best_fit(&self.free_f32, t.numel()) {
            Some(i) => self.free_f32.swap_remove(i),
            None => Vec::with_capacity(t.numel()),
        };
        v.clear();
        v.extend_from_slice(t.data());
        Tensor::from_vec(v, t.dims())
    }

    /// Returns a tensor's buffer to the arena.
    pub fn recycle(&mut self, t: Tensor) {
        self.recycle_vec(t.into_vec());
    }

    /// Returns a raw `f32` buffer to the arena.
    pub fn recycle_vec(&mut self, v: Vec<f32>) {
        if v.capacity() > 0 && self.free_f32.len() < MAX_POOLED {
            self.free_f32.push(v);
        }
    }

    /// Returns a `usize` buffer to the arena.
    pub fn recycle_indices(&mut self, v: Vec<usize>) {
        if v.capacity() > 0 && self.free_idx.len() < MAX_POOLED {
            self.free_idx.push(v);
        }
    }

    /// Returns an `i8` buffer to the arena.
    pub fn recycle_i8(&mut self, v: Vec<i8>) {
        if v.capacity() > 0 && self.free_i8.len() < MAX_POOLED {
            self.free_i8.push(v);
        }
    }

    /// Returns an `i32` buffer to the arena.
    pub fn recycle_i32(&mut self, v: Vec<i32>) {
        if v.capacity() > 0 && self.free_i32.len() < MAX_POOLED {
            self.free_i32.push(v);
        }
    }

    /// Number of buffers currently pooled (all kinds).
    pub fn buffers_held(&self) -> usize {
        self.free_f32.len() + self.free_idx.len() + self.free_i8.len() + self.free_i32.len()
    }

    /// Total bytes currently pooled.
    pub fn bytes_held(&self) -> usize {
        let f: usize = self.free_f32.iter().map(|v| v.capacity() * 4).sum();
        let i: usize = self
            .free_idx
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<usize>())
            .sum();
        let q: usize = self.free_i8.iter().map(|v| v.capacity()).sum();
        let a: usize = self.free_i32.iter().map(|v| v.capacity() * 4).sum();
        f + i + q + a
    }

    /// Drops every pooled buffer.
    pub fn clear(&mut self) {
        self.free_f32.clear();
        self.free_idx.clear();
        self.free_i8.clear();
        self.free_i32.clear();
    }
}

/// Index of the smallest pooled buffer with `capacity() >= len`, if any.
///
/// A request nothing fits is served by a fresh allocation instead of
/// growing a pooled buffer — growing would slowly inflate every pooled
/// buffer toward the largest request size and delay the steady state.
fn best_fit<T>(pool: &[Vec<T>], len: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for (i, v) in pool.iter().enumerate() {
        let cap = v.capacity();
        if cap >= len && best.is_none_or(|(_, b)| cap < b) {
            best = Some((i, cap));
        }
    }
    best.map(|(i, _)| i)
}

impl Clone for Workspace {
    /// Clones as an **empty** workspace: scratch buffers are per-executor.
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Workspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Workspace {{ buffers: {}, bytes: {} }}",
            self.buffers_held(),
            self.bytes_held()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_after_dirty_recycle() {
        let mut ws = Workspace::new();
        let mut t = ws.tensor_zeroed(&[8]);
        t.data_mut().iter_mut().for_each(|x| *x = 7.0);
        ws.recycle(t);
        let t2 = ws.tensor_zeroed(&[8]);
        assert!(t2.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut ws = Workspace::new();
        ws.recycle_vec(Vec::with_capacity(100));
        ws.recycle_vec(Vec::with_capacity(10));
        let v = ws.take_zeroed(8);
        assert!(v.capacity() >= 8 && v.capacity() < 100, "took the 10-cap");
        assert_eq!(ws.buffers_held(), 1);
    }

    #[test]
    fn oversized_request_allocates_fresh() {
        let mut ws = Workspace::new();
        ws.recycle_vec(Vec::with_capacity(4));
        let v = ws.take_zeroed(1000);
        assert_eq!(v.len(), 1000);
        assert_eq!(
            ws.buffers_held(),
            1,
            "the too-small pooled buffer must stay pooled"
        );
    }

    #[test]
    fn clone_is_empty() {
        let mut ws = Workspace::new();
        ws.recycle_vec(vec![0.0; 32]);
        assert_eq!(ws.clone().buffers_held(), 0);
    }

    #[test]
    fn pool_is_bounded() {
        let mut ws = Workspace::new();
        for _ in 0..(MAX_POOLED + 10) {
            ws.recycle_vec(vec![0.0; 4]);
        }
        assert_eq!(ws.buffers_held(), MAX_POOLED);
    }

    #[test]
    fn indices_roundtrip() {
        let mut ws = Workspace::new();
        let mut v = ws.take_indices(5);
        v[0] = 99;
        ws.recycle_indices(v);
        let v2 = ws.take_indices(3);
        assert_eq!(v2, vec![0, 0, 0]);
    }
}
