//! Zero-copy strided tensor views and broadcast-aware elementwise ops.
//!
//! A [`TensorView`] is a borrowed window onto `f32` storage described by a
//! dims+strides [`Shape`](crate::Shape): transposing swaps two strides,
//! slicing narrows an extent and bumps the base offset, and broadcasting
//! sets a stride to zero — none of which moves a byte. Views are `Copy`
//! and heap-free, so building one on a hot path costs nothing (the
//! zero-steady-state-allocation contract extends to every view op with a
//! `_ws` twin).
//!
//! [`TensorViewMut`] is the writable twin. Its constructors *reject*
//! layouts in which two index tuples could address the same element
//! (zero strides, or strides that interleave) with
//! [`ViewError::Overlapping`] — a mutable view must be an injective map
//! or writes through it would race with themselves.
//!
//! ## Broadcasting rules
//!
//! Two shapes broadcast together NumPy-style, right-aligned: each pair of
//! trailing-aligned extents must be equal, or one of them `1` (that side
//! is repeated by giving the dimension stride 0). The rules are applied
//! by [`TensorView::broadcast_to`] and by the binary ops
//! ([`TensorView::add`], [`sub`](TensorView::sub),
//! [`mul`](TensorView::mul)); mismatches come back as typed
//! [`ViewError::BroadcastMismatch`] values, never panics, so callers can
//! surface shape bugs as recoverable errors.
//!
//! Elementwise results are computed with each output element's value
//! depending only on its own operand elements, partitioned over output
//! rows exactly like [`ops`](crate::Tensor::add) — bit-identical at any
//! thread count. See `docs/TENSOR.md` for the full contract.

use crate::gemm::{gemm, AccessA, AccessB};
use crate::pool;
use crate::shape::{numel, Shape};
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Minimum output elements per pool task for broadcast maps; mirrors the
/// elementwise grain in `ops.rs`.
const ELEM_GRAIN: usize = 4096;

/// A typed layout error from a view operation.
///
/// Every fallible view transform returns one of these instead of
/// panicking, so shape mistakes in higher layers surface as values a
/// server can log and refuse rather than a crash it must contain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    /// The named axis does not exist on this view.
    AxisOutOfRange {
        /// The requested axis.
        axis: usize,
        /// The view's rank.
        rank: usize,
    },
    /// A slice range fell outside the axis extent (or `lo > hi`).
    RangeOutOfBounds {
        /// The sliced axis.
        axis: usize,
        /// Range start (inclusive).
        lo: usize,
        /// Range end (exclusive).
        hi: usize,
        /// The axis extent.
        extent: usize,
    },
    /// The two shapes do not broadcast together (see the module docs for
    /// the rules).
    ///
    /// The shapes are boxed to keep the error variant — and therefore
    /// every `Result` on the view hot paths — small; the allocation only
    /// happens on the (cold) error path.
    BroadcastMismatch {
        /// Left/source shape.
        from: Box<Shape>,
        /// Right/target shape.
        to: Box<Shape>,
    },
    /// A mutable view's layout could alias itself: some element would be
    /// reachable from two distinct index tuples.
    Overlapping {
        /// The rejected layout (boxed — see
        /// [`BroadcastMismatch`](ViewError::BroadcastMismatch)).
        shape: Box<Shape>,
    },
    /// The layout reaches past the end of the provided buffer.
    OutOfBuffer {
        /// Elements the layout addresses.
        required: usize,
        /// Elements the buffer holds.
        len: usize,
    },
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            ViewError::RangeOutOfBounds {
                axis,
                lo,
                hi,
                extent,
            } => write!(f, "range {lo}..{hi} out of 0..{extent} on axis {axis}"),
            ViewError::BroadcastMismatch { from, to } => {
                write!(f, "shape {from} does not broadcast with {to}")
            }
            ViewError::Overlapping { shape } => write!(
                f,
                "layout {shape} with strides {:?} can alias itself and cannot be mutable",
                shape.strides()
            ),
            ViewError::OutOfBuffer { required, len } => {
                write!(f, "layout needs {required} elements, buffer has {len}")
            }
        }
    }
}

impl std::error::Error for ViewError {}

/// A zero-copy, read-only strided view over `f32` storage.
///
/// Created by [`Tensor::view`], [`TensorView::with_strides`], or by
/// transforming another view. `Copy` and heap-free: a view is a slice
/// reference plus an inline [`Shape`].
#[derive(Debug, Clone, Copy)]
pub struct TensorView<'a> {
    /// Storage, already offset so logical index `(0, …, 0)` is `data[0]`.
    data: &'a [f32],
    shape: Shape,
}

impl<'a> TensorView<'a> {
    pub(crate) fn from_parts(data: &'a [f32], shape: Shape) -> Self {
        debug_assert!(shape.required_len() <= data.len());
        Self { data, shape }
    }

    /// Wraps a buffer with an explicit dims+strides layout.
    ///
    /// Aliasing layouts (repeated or zero strides) are fine for a
    /// read-only view; the only requirement is that every in-bounds index
    /// stays inside `data`.
    ///
    /// # Errors
    ///
    /// [`ViewError::OutOfBuffer`] if the layout addresses past the end of
    /// `data`.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() != strides.len()` or the rank exceeds
    /// [`MAX_RANK`](crate::MAX_RANK).
    pub fn with_strides(
        data: &'a [f32],
        dims: &[usize],
        strides: &[usize],
    ) -> Result<Self, ViewError> {
        let shape = Shape::with_strides(dims, strides);
        let required = shape.required_len();
        if required > data.len() {
            return Err(ViewError::OutOfBuffer {
                required,
                len: data.len(),
            });
        }
        Ok(Self { data, shape })
    }

    /// The view's shape (dims + strides).
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Per-dimension strides, in elements.
    pub fn strides(&self) -> &[usize] {
        self.shape.strides()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements (counting broadcast repeats).
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// `true` when the elements sit consecutively in row-major order.
    pub fn is_contiguous(&self) -> bool {
        self.shape.is_contiguous()
    }

    /// The element at a full multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != rank()` or any coordinate is out of range.
    pub fn at(&self, idx: &[usize]) -> f32 {
        assert_eq!(
            idx.len(),
            self.rank(),
            "index of rank {} into rank-{} view",
            idx.len(),
            self.rank()
        );
        let mut off = 0usize;
        for (axis, (&i, (&d, &s))) in idx
            .iter()
            .zip(self.dims().iter().zip(self.strides()))
            .enumerate()
        {
            assert!(i < d, "index {i} out of extent {d} on axis {axis}");
            off += i * s;
        }
        self.data[off]
    }

    /// The backing slice when (and only when) the view is contiguous —
    /// the escape hatch row/example accessors are built on.
    pub fn contiguous_data(&self) -> Option<&'a [f32]> {
        if !self.is_contiguous() {
            return None;
        }
        let n = self.numel();
        self.data.get(..n)
    }

    /// Swaps the last two dimensions — a zero-copy transpose.
    ///
    /// # Example
    ///
    /// ```
    /// use fluid_tensor::Tensor;
    /// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
    /// let tt = t.view().transpose(); // still borrowing t's storage
    /// assert_eq!(tt.dims(), &[3, 2]);
    /// assert_eq!(tt.at(&[2, 0]), t.at2(0, 2));
    /// assert_eq!(tt.at(&[0, 1]), t.at2(1, 0));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the view has rank < 2.
    pub fn transpose(self) -> TensorView<'a> {
        let r = self.rank();
        assert!(r >= 2, "transpose on rank-{r} view");
        TensorView {
            data: self.data,
            shape: self.shape.swapped(r - 2, r - 1),
        }
    }

    /// Shorthand for [`transpose`](TensorView::transpose).
    ///
    /// # Panics
    ///
    /// Panics if the view has rank < 2.
    pub fn t(self) -> TensorView<'a> {
        self.transpose()
    }

    /// Restricts `axis` to the range `[lo, hi)` — zero-copy; the result
    /// borrows the same storage at a bumped base offset. Zero-size ranges
    /// (`lo == hi`) are valid and yield an empty view.
    ///
    /// # Example
    ///
    /// ```
    /// use fluid_tensor::Tensor;
    /// let t = Tensor::from_fn(&[4, 3], |i| i as f32);
    /// let mid = t.view().slice(0, 1, 3).unwrap(); // rows 1 and 2
    /// assert_eq!(mid.dims(), &[2, 3]);
    /// assert_eq!(mid.at(&[0, 0]), 3.0);
    /// assert!(t.view().slice(0, 2, 9).is_err()); // typed, not a panic
    /// ```
    ///
    /// # Errors
    ///
    /// [`ViewError::AxisOutOfRange`] or [`ViewError::RangeOutOfBounds`].
    pub fn slice(self, axis: usize, lo: usize, hi: usize) -> Result<TensorView<'a>, ViewError> {
        let shape = slice_shape(&self.shape, axis, lo, hi)?;
        Ok(TensorView {
            data: advance(self.data, lo * self.shape.strides()[axis], &shape),
            shape,
        })
    }

    /// Restricts `axis` to `len` extents starting at `start` —
    /// `slice(axis, start, start + len)`.
    ///
    /// # Errors
    ///
    /// [`ViewError::AxisOutOfRange`] or [`ViewError::RangeOutOfBounds`].
    pub fn narrow(
        self,
        axis: usize,
        start: usize,
        len: usize,
    ) -> Result<TensorView<'a>, ViewError> {
        self.slice(axis, start, start + len)
    }

    /// Broadcasts the view to `dims`, NumPy-style (see the module docs):
    /// right-aligned, each extent must match or be 1; repeated dimensions
    /// get stride 0, so no data is copied.
    ///
    /// # Example
    ///
    /// ```
    /// use fluid_tensor::Tensor;
    /// let bias = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
    /// let b = bias.view().broadcast_to(&[4, 3]).unwrap();
    /// assert_eq!(b.dims(), &[4, 3]);
    /// assert_eq!(b.strides(), &[0, 1]); // rows repeat for free
    /// assert_eq!(b.at(&[3, 1]), 2.0);
    /// ```
    ///
    /// # Errors
    ///
    /// [`ViewError::BroadcastMismatch`] if any extent pair disagrees.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len()` exceeds [`MAX_RANK`](crate::MAX_RANK).
    pub fn broadcast_to(self, dims: &[usize]) -> Result<TensorView<'a>, ViewError> {
        let shape = broadcast_shape(&self.shape, dims)?;
        Ok(TensorView {
            data: self.data,
            shape,
        })
    }

    /// Copies the view into a fresh contiguous [`Tensor`].
    pub fn to_tensor(&self) -> Tensor {
        self.to_tensor_ws(&mut Workspace::new())
    }

    /// [`to_tensor`](TensorView::to_tensor) with the output drawn from
    /// `ws` — the zero-steady-state-allocation materialiser.
    pub fn to_tensor_ws(&self, ws: &mut Workspace) -> Tensor {
        let mut out = ws.tensor_zeroed(self.dims());
        gather_unary(self, out.data_mut(), |x| x);
        out
    }

    /// Broadcast-aware elementwise sum: `self + other`.
    ///
    /// # Example
    ///
    /// ```
    /// use fluid_tensor::Tensor;
    /// let x = Tensor::from_fn(&[2, 3], |i| i as f32);
    /// let bias = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
    /// let y = x.view().add(&bias.view()).unwrap();
    /// assert_eq!(y.data(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
    /// ```
    ///
    /// # Errors
    ///
    /// [`ViewError::BroadcastMismatch`] if the shapes do not broadcast.
    pub fn add(&self, other: &TensorView<'_>) -> Result<Tensor, ViewError> {
        self.zip_broadcast(other, |a, b| a + b)
    }

    /// [`add`](TensorView::add) with the output drawn from `ws`.
    ///
    /// # Errors
    ///
    /// [`ViewError::BroadcastMismatch`] if the shapes do not broadcast.
    pub fn add_ws(&self, other: &TensorView<'_>, ws: &mut Workspace) -> Result<Tensor, ViewError> {
        self.zip_broadcast_ws(other, ws, |a, b| a + b)
    }

    /// Broadcast-aware elementwise difference: `self - other`.
    ///
    /// # Errors
    ///
    /// [`ViewError::BroadcastMismatch`] if the shapes do not broadcast.
    pub fn sub(&self, other: &TensorView<'_>) -> Result<Tensor, ViewError> {
        self.zip_broadcast(other, |a, b| a - b)
    }

    /// Broadcast-aware elementwise (Hadamard) product: `self * other`.
    ///
    /// # Example
    ///
    /// ```
    /// use fluid_tensor::Tensor;
    /// let x = Tensor::ones(&[2, 2]);
    /// let col = Tensor::from_vec(vec![3.0, 5.0], &[2, 1]);
    /// let y = x.view().mul(&col.view()).unwrap();
    /// assert_eq!(y.data(), &[3.0, 3.0, 5.0, 5.0]);
    /// ```
    ///
    /// # Errors
    ///
    /// [`ViewError::BroadcastMismatch`] if the shapes do not broadcast.
    pub fn mul(&self, other: &TensorView<'_>) -> Result<Tensor, ViewError> {
        self.zip_broadcast(other, |a, b| a * b)
    }

    /// [`mul`](TensorView::mul) with the output drawn from `ws`.
    ///
    /// # Errors
    ///
    /// [`ViewError::BroadcastMismatch`] if the shapes do not broadcast.
    pub fn mul_ws(&self, other: &TensorView<'_>, ws: &mut Workspace) -> Result<Tensor, ViewError> {
        self.zip_broadcast_ws(other, ws, |a, b| a * b)
    }

    /// Combines two views elementwise under two-sided broadcasting.
    ///
    /// # Errors
    ///
    /// [`ViewError::BroadcastMismatch`] if the shapes do not broadcast.
    pub fn zip_broadcast(
        &self,
        other: &TensorView<'_>,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Result<Tensor, ViewError> {
        self.zip_broadcast_ws(other, &mut Workspace::new(), f)
    }

    /// [`zip_broadcast`](TensorView::zip_broadcast) with the output drawn
    /// from `ws`.
    ///
    /// # Errors
    ///
    /// [`ViewError::BroadcastMismatch`] if the shapes do not broadcast.
    pub fn zip_broadcast_ws(
        &self,
        other: &TensorView<'_>,
        ws: &mut Workspace,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Result<Tensor, ViewError> {
        let dims = broadcast_dims(self.dims(), other.dims()).ok_or_else(|| {
            ViewError::BroadcastMismatch {
                from: Box::new(*self.shape()),
                to: Box::new(*other.shape()),
            }
        })?;
        let a = self.broadcast_to(dims.dims())?;
        let b = other.broadcast_to(dims.dims())?;
        let mut out = ws.tensor_zeroed(dims.dims());
        gather_binary(&a, &b, out.data_mut(), f);
        Ok(out)
    }

    /// Matrix product of two rank-2 views, in any layout: `[M, K] × [K,
    /// N] → [M, N]`. Transposed or sliced operands cost nothing extra —
    /// the GEMM engine packs straight from the view's strides, and the
    /// result is **bit-identical** to multiplying materialised copies
    /// (packing reads the same logical elements in the same order, and
    /// the accumulation chain is fixed by `K` and
    /// [`KC`](crate::KC) alone).
    ///
    /// # Example
    ///
    /// ```
    /// use fluid_tensor::Tensor;
    /// let a = Tensor::from_fn(&[3, 4], |i| i as f32 * 0.5);
    /// let b = Tensor::from_fn(&[5, 4], |i| i as f32 - 7.0);
    /// // a · bᵀ without materialising the transpose:
    /// let c = a.view().matmul(&b.view().t());
    /// assert_eq!(c, a.matmul(&b.transpose()));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if either view is not rank 2 or the inner dimensions differ.
    pub fn matmul(&self, other: &TensorView<'_>) -> Tensor {
        self.matmul_ws(other, &mut Workspace::new())
    }

    /// [`matmul`](TensorView::matmul) with the output buffer and packing
    /// scratch drawn from `ws`.
    ///
    /// # Panics
    ///
    /// Panics if either view is not rank 2 or the inner dimensions differ.
    pub fn matmul_ws(&self, other: &TensorView<'_>, ws: &mut Workspace) -> Tensor {
        let (a, b) = (self.dims(), other.dims());
        assert_eq!(a.len(), 2, "matmul lhs rank {}", a.len());
        assert_eq!(b.len(), 2, "matmul rhs rank {}", b.len());
        assert_eq!(a[1], b[0], "matmul inner dims {} vs {}", a[1], b[0]);
        let (m, k, n) = (a[0], a[1], b[1]);
        let (asr, bsr) = (self.strides(), other.strides());
        let mut out = ws.take_zeroed(m * n);
        gemm(
            m,
            n,
            k,
            AccessA::strided(self.data, asr[0], asr[1]),
            AccessB::strided(other.data, bsr[0], bsr[1]),
            &mut out,
            ws,
        );
        Tensor::from_vec(out, &[m, n])
    }
}

/// A zero-copy, writable strided view over `f32` storage.
///
/// Unlike [`TensorView`], constructors enforce that the layout is an
/// *injective* map from index tuples to elements — a layout that could
/// alias itself (zero strides, interleaving strides) is rejected with
/// [`ViewError::Overlapping`], because writing through it would make the
/// result depend on traversal order.
#[derive(Debug)]
pub struct TensorViewMut<'a> {
    data: &'a mut [f32],
    shape: Shape,
}

impl<'a> TensorViewMut<'a> {
    pub(crate) fn from_parts(data: &'a mut [f32], shape: Shape) -> Self {
        debug_assert!(check_no_overlap(&shape).is_ok());
        debug_assert!(shape.required_len() <= data.len());
        Self { data, shape }
    }

    /// Wraps a mutable buffer with an explicit dims+strides layout.
    ///
    /// # Errors
    ///
    /// [`ViewError::Overlapping`] if two index tuples could address the
    /// same element (e.g. any zero stride with extent > 1), or
    /// [`ViewError::OutOfBuffer`] if the layout addresses past `data`.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() != strides.len()` or the rank exceeds
    /// [`MAX_RANK`](crate::MAX_RANK).
    pub fn with_strides(
        data: &'a mut [f32],
        dims: &[usize],
        strides: &[usize],
    ) -> Result<Self, ViewError> {
        let shape = Shape::with_strides(dims, strides);
        check_no_overlap(&shape)?;
        let required = shape.required_len();
        if required > data.len() {
            return Err(ViewError::OutOfBuffer {
                required,
                len: data.len(),
            });
        }
        Ok(Self { data, shape })
    }

    /// The view's shape (dims + strides).
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Per-dimension strides, in elements.
    pub fn strides(&self) -> &[usize] {
        self.shape.strides()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// A read-only view of the same window.
    pub fn as_view(&self) -> TensorView<'_> {
        TensorView {
            data: self.data,
            shape: self.shape,
        }
    }

    /// Swaps the last two dimensions in place — a zero-copy transpose.
    /// (A permutation of an injective layout is injective, so no re-check
    /// is needed.)
    ///
    /// # Panics
    ///
    /// Panics if the view has rank < 2.
    pub fn transpose(self) -> TensorViewMut<'a> {
        let r = self.shape.rank();
        assert!(r >= 2, "transpose on rank-{r} view");
        TensorViewMut {
            data: self.data,
            shape: self.shape.swapped(r - 2, r - 1),
        }
    }

    /// Restricts `axis` to `[lo, hi)`, reborrowing the same storage
    /// mutably. Zero-size ranges are valid.
    ///
    /// # Errors
    ///
    /// [`ViewError::AxisOutOfRange`] or [`ViewError::RangeOutOfBounds`].
    pub fn slice(self, axis: usize, lo: usize, hi: usize) -> Result<TensorViewMut<'a>, ViewError> {
        let shape = slice_shape(&self.shape, axis, lo, hi)?;
        let skip = lo * self.shape.strides()[axis];
        let data = if shape.numel() == 0 {
            &mut self.data[0..0]
        } else {
            &mut self.data[skip..]
        };
        Ok(TensorViewMut { data, shape })
    }

    /// Sets the element at a full multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != rank` or any coordinate is out of range.
    pub fn set(&mut self, idx: &[usize], v: f32) {
        assert_eq!(
            idx.len(),
            self.shape.rank(),
            "index of rank {} into rank-{} view",
            idx.len(),
            self.shape.rank()
        );
        let mut off = 0usize;
        for (axis, (&i, (&d, &s))) in idx
            .iter()
            .zip(self.dims().iter().zip(self.strides()))
            .enumerate()
        {
            assert!(i < d, "index {i} out of extent {d} on axis {axis}");
            off += i * s;
        }
        self.data[off] = v;
    }

    /// Broadcast-aware in-place accumulate: `self += other`, with `other`
    /// broadcast to this view's dims. This is the zero-copy residual-add:
    /// the destination is written once per element in layout order, so
    /// results are bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// [`ViewError::BroadcastMismatch`] if `other` does not broadcast to
    /// this view's dims.
    pub fn add_assign_broadcast(&mut self, other: &TensorView<'_>) -> Result<(), ViewError> {
        let rhs = other.broadcast_to(self.shape.dims())?;
        if self.shape.is_contiguous() {
            // Hot path: contiguous destination updates in parallel rows.
            let data: &mut [f32] = self.data;
            gather_binary_into(&rhs, &mut data[..self.shape.numel()], |dst, b| *dst += b);
        } else {
            // Strided destinations walk serially; injectivity (checked at
            // construction) makes the order irrelevant to the result.
            let dims = self.shape;
            for flat in 0..dims.numel() {
                let mut rem = flat;
                let mut off = 0usize;
                let mut idx = [0usize; crate::shape::MAX_RANK];
                for axis in (0..dims.rank()).rev() {
                    let d = dims.dims()[axis];
                    idx[axis] = rem % d;
                    off += idx[axis] * dims.strides()[axis];
                    rem /= d;
                }
                self.data[off] += rhs.at(&idx[..dims.rank()]);
            }
        }
        Ok(())
    }
}

impl Tensor {
    /// A zero-copy read-only view of the whole tensor (contiguous,
    /// row-major). The starting point for [`transpose`]d, [`slice`]d, and
    /// [`broadcast_to`]-ed windows.
    ///
    /// [`transpose`]: TensorView::transpose
    /// [`slice`]: TensorView::slice
    /// [`broadcast_to`]: TensorView::broadcast_to
    pub fn view(&self) -> TensorView<'_> {
        TensorView::from_parts(self.data(), *self.shape())
    }

    /// A zero-copy mutable view of the whole tensor. Always valid: a
    /// dense tensor's layout is injective by construction.
    pub fn view_mut(&mut self) -> TensorViewMut<'_> {
        let shape = *self.shape();
        TensorViewMut::from_parts(self.data_mut(), shape)
    }

    /// Broadcast-aware in-place accumulate on a dense tensor:
    /// `self += other` with `other` broadcast to this tensor's dims — the
    /// residual-add / bias-add primitive used by the `_ws` layers.
    ///
    /// # Errors
    ///
    /// [`ViewError::BroadcastMismatch`] if `other` does not broadcast to
    /// this tensor's dims.
    pub fn add_assign_broadcast(&mut self, other: &TensorView<'_>) -> Result<(), ViewError> {
        self.view_mut().add_assign_broadcast(other)
    }
}

/// The slice layout algebra shared by the const and mut views.
fn slice_shape(shape: &Shape, axis: usize, lo: usize, hi: usize) -> Result<Shape, ViewError> {
    let rank = shape.rank();
    if axis >= rank {
        return Err(ViewError::AxisOutOfRange { axis, rank });
    }
    let extent = shape.dims()[axis];
    if lo > hi || hi > extent {
        return Err(ViewError::RangeOutOfBounds {
            axis,
            lo,
            hi,
            extent,
        });
    }
    let mut dims = [0usize; crate::shape::MAX_RANK];
    dims[..rank].copy_from_slice(shape.dims());
    dims[axis] = hi - lo;
    Ok(Shape::with_strides(&dims[..rank], shape.strides()))
}

/// Advances a read-only base pointer by `skip` elements, clamping for
/// empty layouts (whose base may legally sit at the end of the buffer).
fn advance<'a>(data: &'a [f32], skip: usize, shape: &Shape) -> &'a [f32] {
    if shape.numel() == 0 {
        return &data[0..0];
    }
    &data[skip..]
}

/// Broadcasts `shape` to `dims` (one-sided): right-aligned, each extent
/// must equal the target or be 1 (stride drops to 0).
fn broadcast_shape(shape: &Shape, dims: &[usize]) -> Result<Shape, ViewError> {
    let mismatch = || ViewError::BroadcastMismatch {
        from: Box::new(*shape),
        to: Box::new(Shape::new(dims)),
    };
    if dims.len() < shape.rank() {
        return Err(mismatch());
    }
    let lead = dims.len() - shape.rank();
    let mut strides = [0usize; crate::shape::MAX_RANK];
    for (i, &d) in dims.iter().enumerate() {
        if i < lead {
            continue; // fresh leading dim: pure repeat, stride 0
        }
        let (sd, ss) = (shape.dims()[i - lead], shape.strides()[i - lead]);
        if sd == d {
            strides[i] = ss;
        } else if sd == 1 {
            strides[i] = 0;
        } else {
            return Err(mismatch());
        }
    }
    Ok(Shape::with_strides(dims, &strides[..dims.len()]))
}

/// The two-sided broadcast of two dims lists, or `None` on mismatch.
fn broadcast_dims(a: &[usize], b: &[usize]) -> Option<Shape> {
    let rank = a.len().max(b.len());
    let mut dims = [0usize; crate::shape::MAX_RANK];
    for i in 0..rank {
        let da = if i >= rank - a.len() {
            a[i - (rank - a.len())]
        } else {
            1
        };
        let db = if i >= rank - b.len() {
            b[i - (rank - b.len())]
        } else {
            1
        };
        dims[i] = if da == db || db == 1 {
            da
        } else if da == 1 {
            db
        } else {
            return None;
        };
    }
    Some(Shape::new(&dims[..rank]))
}

/// Rejects layouts in which two distinct index tuples can share a flat
/// offset. Sufficient (and for this workspace's layouts, exact) check:
/// order the used axes by stride; each stride must clear the whole span
/// of the axes below it — the mixed-radix property of any injective
/// packed layout. Zero strides on extents > 1 fail immediately.
fn check_no_overlap(shape: &Shape) -> Result<(), ViewError> {
    if shape.numel() == 0 {
        return Ok(()); // empty views address nothing
    }
    let overlap = || ViewError::Overlapping {
        shape: Box::new(*shape),
    };
    // Collect axes with extent > 1 (extent-1 axes address one point).
    let mut axes: [(usize, usize); crate::shape::MAX_RANK] = [(0, 0); crate::shape::MAX_RANK];
    let mut n = 0;
    for (&d, &s) in shape.dims().iter().zip(shape.strides()) {
        if d > 1 {
            if s == 0 {
                return Err(overlap());
            }
            axes[n] = (s, d);
            n += 1;
        }
    }
    let axes = &mut axes[..n];
    axes.sort_unstable();
    let mut span = 1usize; // elements addressable by the axes below
    for &(s, d) in axes.iter() {
        if s < span {
            return Err(overlap());
        }
        span += s * (d - 1);
    }
    Ok(())
}

/// Fills contiguous `out` (row-major over `src.dims()`) with `f(src)`.
fn gather_unary(src: &TensorView<'_>, out: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    let dims = src.dims();
    let rank = dims.len();
    let inner = if rank == 0 { 1 } else { dims[rank - 1] };
    let inner_stride = if rank == 0 {
        0
    } else {
        src.strides()[rank - 1]
    };
    if inner == 0 {
        return;
    }
    let data = src.data;
    let outer_dims = &dims[..rank.saturating_sub(1)];
    let outer_strides = &src.strides()[..rank.saturating_sub(1)];
    pool::parallel_rows_mut(
        out,
        inner,
        ELEM_GRAIN.div_ceil(inner).max(1),
        |orange, block| {
            for (bi, o) in orange.enumerate() {
                let base = outer_offset(o, outer_dims, outer_strides);
                let row = &mut block[bi * inner..(bi + 1) * inner];
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot = f(data[base + j * inner_stride]);
                }
            }
        },
    );
}

/// Fills contiguous `out` with `f(a, b)`; `a` and `b` must already carry
/// `out`'s dims (post-broadcast).
fn gather_binary(
    a: &TensorView<'_>,
    b: &TensorView<'_>,
    out: &mut [f32],
    f: impl Fn(f32, f32) -> f32 + Sync,
) {
    debug_assert_eq!(a.dims(), b.dims());
    let dims = a.dims();
    let rank = dims.len();
    let inner = if rank == 0 { 1 } else { dims[rank - 1] };
    if inner == 0 {
        return;
    }
    let (ais, bis) = if rank == 0 {
        (0, 0)
    } else {
        (a.strides()[rank - 1], b.strides()[rank - 1])
    };
    let (adata, bdata) = (a.data, b.data);
    let outer_dims = &dims[..rank.saturating_sub(1)];
    let (aos, bos) = (
        &a.strides()[..rank.saturating_sub(1)],
        &b.strides()[..rank.saturating_sub(1)],
    );
    pool::parallel_rows_mut(
        out,
        inner,
        ELEM_GRAIN.div_ceil(inner).max(1),
        |orange, block| {
            for (bi, o) in orange.enumerate() {
                let abase = outer_offset(o, outer_dims, aos);
                let bbase = outer_offset(o, outer_dims, bos);
                let row = &mut block[bi * inner..(bi + 1) * inner];
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot = f(adata[abase + j * ais], bdata[bbase + j * bis]);
                }
            }
        },
    );
}

/// In-place twin of [`gather_binary`]: `f(&mut dst, b)` over a contiguous
/// destination carrying `b`'s dims.
fn gather_binary_into(b: &TensorView<'_>, dst: &mut [f32], f: impl Fn(&mut f32, f32) + Sync) {
    let dims = b.dims();
    let rank = dims.len();
    let inner = if rank == 0 { 1 } else { dims[rank - 1] };
    if inner == 0 {
        return;
    }
    let bis = if rank == 0 { 0 } else { b.strides()[rank - 1] };
    let bdata = b.data;
    let outer_dims = &dims[..rank.saturating_sub(1)];
    let bos = &b.strides()[..rank.saturating_sub(1)];
    pool::parallel_rows_mut(
        dst,
        inner,
        ELEM_GRAIN.div_ceil(inner).max(1),
        |orange, block| {
            for (bi, o) in orange.enumerate() {
                let bbase = outer_offset(o, outer_dims, bos);
                let row = &mut block[bi * inner..(bi + 1) * inner];
                for (j, slot) in row.iter_mut().enumerate() {
                    f(slot, bdata[bbase + j * bis]);
                }
            }
        },
    );
}

/// Flat outer index → strided base offset (row-major decomposition over
/// the outer dims).
#[inline]
fn outer_offset(mut o: usize, dims: &[usize], strides: &[usize]) -> usize {
    let mut off = 0usize;
    for axis in (0..dims.len()).rev() {
        let d = dims[axis];
        off += (o % d) * strides[axis];
        o /= d;
    }
    off
}

/// Keep `numel` (re-exported for view construction) linked in.
#[allow(dead_code)]
fn _numel_used(dims: &[usize]) -> usize {
    numel(dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(dims: &[usize]) -> Tensor {
        Tensor::from_fn(dims, |i| i as f32)
    }

    #[test]
    fn view_of_tensor_is_contiguous_and_aliases() {
        let t = seq(&[2, 3]);
        let v = t.view();
        assert!(v.is_contiguous());
        assert_eq!(v.contiguous_data().unwrap().as_ptr(), t.data().as_ptr());
        assert_eq!(v.at(&[1, 2]), 5.0);
    }

    #[test]
    fn transpose_swaps_without_copy() {
        let t = seq(&[2, 3]);
        let v = t.view().transpose();
        assert_eq!(v.dims(), &[3, 2]);
        assert_eq!(v.strides(), &[1, 3]);
        assert!(!v.is_contiguous());
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(v.at(&[i, j]), t.at2(j, i));
            }
        }
        // Involution restores the original layout.
        assert!(v.transpose().is_contiguous());
    }

    #[test]
    fn slice_and_narrow_window_rows_and_cols() {
        let t = seq(&[4, 5]);
        let rows = t.view().slice(0, 1, 3).unwrap();
        assert_eq!(rows.dims(), &[2, 5]);
        assert_eq!(rows.at(&[0, 0]), 5.0);
        assert!(rows.is_contiguous());
        let cols = t.view().narrow(1, 2, 2).unwrap();
        assert_eq!(cols.dims(), &[4, 2]);
        assert_eq!(cols.at(&[1, 0]), 7.0);
        assert!(!cols.is_contiguous());
        // Compose: middle block.
        let mid = t.view().slice(0, 1, 3).unwrap().slice(1, 1, 4).unwrap();
        assert_eq!(mid.dims(), &[2, 3]);
        assert_eq!(mid.at(&[1, 2]), t.at2(2, 3));
    }

    #[test]
    fn zero_size_slices_are_valid_views() {
        let t = seq(&[3, 4]);
        // Empty at the start, middle, and end of the axis.
        for lo in 0..=3 {
            let v = t.view().slice(0, lo, lo).unwrap();
            assert_eq!(v.dims(), &[0, 4]);
            assert_eq!(v.numel(), 0);
            assert_eq!(v.to_tensor().dims(), &[0, 4]);
        }
        // And an empty matmul through the engine.
        let e = t.view().slice(0, 3, 3).unwrap();
        let w = seq(&[4, 2]);
        let c = e.matmul(&w.view());
        assert_eq!(c.dims(), &[0, 2]);
    }

    #[test]
    fn slice_errors_are_typed_not_panics() {
        let t = seq(&[3, 4]);
        assert_eq!(
            t.view().slice(5, 0, 1).map(|_| ()).unwrap_err(),
            ViewError::AxisOutOfRange { axis: 5, rank: 2 }
        );
        match t.view().slice(1, 2, 9) {
            Err(ViewError::RangeOutOfBounds {
                axis,
                lo,
                hi,
                extent,
            }) => {
                assert_eq!((axis, lo, hi, extent), (1, 2, 9, 4));
            }
            other => panic!("expected RangeOutOfBounds, got {other:?}"),
        }
        // lo > hi is a range error too.
        assert!(t.view().slice(0, 2, 1).is_err());
        let err = t.view().slice(1, 2, 9).unwrap_err();
        assert!(err.to_string().contains("2..9"), "{err}");
    }

    #[test]
    fn broadcast_mismatch_is_typed() {
        let a = seq(&[2, 3]);
        let b = seq(&[4]);
        let err = a.view().add(&b.view()).unwrap_err();
        assert!(
            matches!(err, ViewError::BroadcastMismatch { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("broadcast"), "{err}");
        // Higher-rank target with a clashing extent.
        assert!(seq(&[3]).view().broadcast_to(&[2, 4]).is_err());
        // And one that works: trailing extents align.
        assert!(seq(&[3]).view().broadcast_to(&[2, 3]).is_ok());
    }

    #[test]
    fn broadcast_add_matches_add_row_bias() {
        let x = seq(&[5, 7]);
        let bias = Tensor::from_fn(&[7], |i| (i as f32 * 0.3).sin());
        let via_views = x.view().add(&bias.view()).unwrap();
        assert_eq!(via_views, x.add_row_bias(&bias));
    }

    #[test]
    fn broadcast_two_sided_column_times_row() {
        let col = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let row = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3]);
        let outer = col.view().mul(&row.view()).unwrap();
        assert_eq!(outer.dims(), &[2, 3]);
        assert_eq!(outer.data(), &[10.0, 20.0, 30.0, 20.0, 40.0, 60.0]);
    }

    #[test]
    fn add_assign_broadcast_is_the_residual_add() {
        let mut x = seq(&[3, 4]);
        let want = x.view().add(&x.view().slice(0, 0, 1).unwrap()).unwrap();
        let first_row = x.slice_rows(0, 1);
        x.add_assign_broadcast(&first_row.view()).unwrap();
        assert_eq!(x, want);
    }

    #[test]
    fn viewmut_rejects_overlapping_layouts() {
        let mut buf = vec![0.0f32; 12];
        // Zero stride on a repeated dim: the classic aliasing layout.
        let err = TensorViewMut::with_strides(&mut buf, &[3, 4], &[0, 1]).unwrap_err();
        assert!(matches!(err, ViewError::Overlapping { .. }), "{err:?}");
        // Interleaving strides: rows of 4 with row stride 2 re-visit
        // elements 2 and 3.
        let err = TensorViewMut::with_strides(&mut buf, &[3, 4], &[2, 1]).unwrap_err();
        assert!(matches!(err, ViewError::Overlapping { .. }), "{err:?}");
        // The same layouts are fine read-only.
        assert!(TensorView::with_strides(&buf, &[3, 4], &[0, 1]).is_ok());
        // A legitimate strided (transposed) mutable layout passes.
        assert!(TensorViewMut::with_strides(&mut buf, &[4, 3], &[1, 4]).is_ok());
        // Extent-1 dims may carry any stride (they address one point).
        assert!(TensorViewMut::with_strides(&mut buf, &[1, 4], &[0, 1]).is_ok());
    }

    #[test]
    fn views_reject_out_of_buffer_layouts() {
        let buf = vec![0.0f32; 5];
        let err = TensorView::with_strides(&buf, &[2, 3], &[3, 1]).unwrap_err();
        assert_eq!(
            err,
            ViewError::OutOfBuffer {
                required: 6,
                len: 5
            }
        );
        // Empty layouts need no storage at all.
        assert!(TensorView::with_strides(&[], &[0, 3], &[3, 1]).is_ok());
    }

    #[test]
    fn viewmut_writes_through_transposed_window() {
        let mut t = Tensor::zeros(&[2, 3]);
        let mut v = t.view_mut().transpose(); // [3, 2]
        v.set(&[2, 1], 7.0);
        assert_eq!(t.at2(1, 2), 7.0);
    }

    #[test]
    fn viewmut_slice_add_assign_updates_window_only() {
        let mut t = Tensor::zeros(&[4, 3]);
        let ones = Tensor::ones(&[3]);
        t.view_mut()
            .slice(0, 1, 3)
            .unwrap()
            .add_assign_broadcast(&ones.view())
            .unwrap();
        assert_eq!(t.rows(0, 1), &[0.0, 0.0, 0.0]);
        assert_eq!(t.rows(1, 3), &[1.0; 6]);
        assert_eq!(t.rows(3, 4), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn to_tensor_materialises_any_layout() {
        let t = seq(&[3, 4]);
        let tt = t.view().transpose().to_tensor();
        assert_eq!(tt, t.transpose());
        let sliced = t.view().narrow(1, 1, 2).unwrap().to_tensor();
        assert_eq!(sliced, t.slice_cols(1, 3));
        let b = t
            .view()
            .slice(0, 0, 1)
            .unwrap()
            .broadcast_to(&[2, 4])
            .unwrap()
            .to_tensor();
        assert_eq!(b.rows(0, 1), b.rows(1, 2));
    }

    #[test]
    fn strided_matmul_bit_equals_materialised() {
        // Operand windows cut out of larger buffers, then multiplied
        // zero-copy — must be bit-identical to materialised copies.
        let big_a = Tensor::from_fn(&[9, 11], |i| (i as f32 * 0.17).sin());
        let big_b = Tensor::from_fn(&[12, 7], |i| (i as f32 * 0.29).cos());
        let a = big_a.view().slice(0, 2, 7).unwrap().slice(1, 3, 9).unwrap();
        let b = big_b.view().slice(0, 1, 7).unwrap().slice(1, 2, 6).unwrap();
        let got = a.matmul(&b);
        let want = a.to_tensor().matmul(&b.to_tensor());
        assert_eq!(got, want);
    }

    #[test]
    fn broadcast_stride0_lhs_matmul_repeats_rows() {
        // A stride-0 left operand: every output row identical, computed
        // through the same packing path as any strided operand.
        let row = Tensor::from_fn(&[1, 6], |i| i as f32 - 2.5);
        let b = Tensor::from_fn(&[6, 3], |i| (i as f32 * 0.11).cos());
        let a = row.view().broadcast_to(&[4, 6]).unwrap();
        let got = a.matmul(&b.view());
        let single = row.matmul(&b);
        for r in 0..4 {
            assert_eq!(got.rows(r, r + 1), single.data(), "row {r}");
        }
    }
}
