//! Elementwise operations and in-place arithmetic on [`Tensor`].
//!
//! Large tensors are processed in parallel chunks via the
//! [`pool`](crate::pool); every element is computed independently, so
//! results are bit-identical at any thread count.

use crate::pool;
use crate::tensor::Tensor;

/// Minimum elements per pool task for elementwise maps; below this the
/// fan-out overhead dominates and the op runs inline.
const ELEM_GRAIN: usize = 4096;

impl Tensor {
    /// Elementwise sum with another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|x| x * k)
    }

    /// Applies `f` to every element, returning a new tensor.
    ///
    /// `f` must be [`Sync`] because large tensors are mapped in parallel
    /// chunks (pure closures always are).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let src = self.data();
        let mut out = vec![0.0f32; src.len()];
        pool::parallel_rows_mut(&mut out, 1, ELEM_GRAIN, |range, block| {
            for (o, &x) in block.iter_mut().zip(&src[range]) {
                *o = f(x);
            }
        });
        Tensor::from_vec(out, self.dims())
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(self.dims(), other.dims(), "elementwise shape mismatch");
        let (lhs, rhs) = (self.data(), other.data());
        let mut out = vec![0.0f32; lhs.len()];
        pool::parallel_rows_mut(&mut out, 1, ELEM_GRAIN, |range, block| {
            for ((o, &a), &b) in block.iter_mut().zip(&lhs[range.clone()]).zip(&rhs[range]) {
                *o = f(a, b);
            }
        });
        Tensor::from_vec(out, self.dims())
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.dims(), other.dims(), "add_assign shape mismatch");
        let rhs = other.data();
        pool::parallel_rows_mut(self.data_mut(), 1, ELEM_GRAIN, |range, block| {
            for (a, &b) in block.iter_mut().zip(&rhs[range]) {
                *a += b;
            }
        });
    }

    /// In-place `self += k * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, k: f32, other: &Tensor) {
        assert_eq!(self.dims(), other.dims(), "axpy shape mismatch");
        let rhs = other.data();
        pool::parallel_rows_mut(self.data_mut(), 1, ELEM_GRAIN, |range, block| {
            for (a, &b) in block.iter_mut().zip(&rhs[range]) {
                *a += k * b;
            }
        });
    }

    /// In-place scalar multiplication.
    pub fn scale_in_place(&mut self, k: f32) {
        pool::parallel_rows_mut(self.data_mut(), 1, ELEM_GRAIN, |_, block| {
            block.iter_mut().for_each(|x| *x *= k);
        });
    }

    /// Rectified linear unit, elementwise `max(x, 0)`.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Adds a bias vector to each row of an `[N, F]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `bias.numel() != F`.
    pub fn add_row_bias(&self, bias: &Tensor) -> Tensor {
        let d = self.dims();
        assert_eq!(d.len(), 2, "add_row_bias on rank-{} tensor", d.len());
        assert_eq!(
            bias.numel(),
            d[1],
            "bias length {} != {}",
            bias.numel(),
            d[1]
        );
        let mut out = self.clone();
        let f = d[1];
        let b = bias.data();
        pool::parallel_rows_mut(out.data_mut(), f, 64, |_, block| {
            for row in block.chunks_mut(f) {
                for (x, &bv) in row.iter_mut().zip(b) {
                    *x += bv;
                }
            }
        });
        out
    }

    /// Adds a per-channel bias to an `[N, C, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or `bias.numel() != C`.
    pub fn add_channel_bias(&self, bias: &Tensor) -> Tensor {
        let d = self.dims();
        assert_eq!(d.len(), 4, "add_channel_bias on rank-{} tensor", d.len());
        assert_eq!(
            bias.numel(),
            d[1],
            "bias length {} != {}",
            bias.numel(),
            d[1]
        );
        let mut out = self.clone();
        let plane = d[2] * d[3];
        let channels = d[1];
        let b = bias.data();
        pool::parallel_rows_mut(out.data_mut(), plane, 8, |planes, block| {
            for (bi, p) in planes.enumerate() {
                let bv = b[p % channels];
                for x in &mut block[bi * plane..(bi + 1) * plane] {
                    *x += bv;
                }
            }
        });
        out
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data().iter().map(|x| x * x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()])
    }

    #[test]
    fn add_sub_mul() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    #[should_panic(expected = "elementwise shape mismatch")]
    fn add_shape_mismatch_panics() {
        let _ = t(&[1.0]).add(&t(&[1.0, 2.0]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        a.axpy(2.0, &t(&[3.0, 4.0]));
        assert_eq!(a.data(), &[7.0, 9.0]);
    }

    #[test]
    fn relu_clamps_negative() {
        let a = t(&[-1.0, 0.0, 2.0]);
        assert_eq!(a.relu().data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn row_bias_broadcasts() {
        let x = Tensor::from_fn(&[2, 3], |i| i as f32);
        let b = t(&[10.0, 20.0, 30.0]);
        let y = x.add_row_bias(&b);
        assert_eq!(y.data(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
    }

    #[test]
    fn channel_bias_broadcasts() {
        let x = Tensor::zeros(&[1, 2, 2, 2]);
        let b = t(&[1.0, 2.0]);
        let y = x.add_channel_bias(&b);
        assert_eq!(y.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn sq_norm_matches_manual() {
        let a = t(&[3.0, 4.0]);
        assert_eq!(a.sq_norm(), 25.0);
    }

    #[test]
    fn scale_in_place() {
        let mut a = t(&[1.0, -2.0]);
        a.scale_in_place(-3.0);
        assert_eq!(a.data(), &[-3.0, 6.0]);
    }
}
