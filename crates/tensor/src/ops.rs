//! Elementwise operations and in-place arithmetic on [`Tensor`].

use crate::tensor::Tensor;

impl Tensor {
    /// Elementwise sum with another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|x| x * k)
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(self.data().iter().map(|&x| f(x)).collect(), self.dims())
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.dims(), other.dims(), "elementwise shape mismatch");
        Tensor::from_vec(
            self.data()
                .iter()
                .zip(other.data())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            self.dims(),
        )
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.dims(), other.dims(), "add_assign shape mismatch");
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += b;
        }
    }

    /// In-place `self += k * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, k: f32, other: &Tensor) {
        assert_eq!(self.dims(), other.dims(), "axpy shape mismatch");
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += k * b;
        }
    }

    /// In-place scalar multiplication.
    pub fn scale_in_place(&mut self, k: f32) {
        self.data_mut().iter_mut().for_each(|x| *x *= k);
    }

    /// Rectified linear unit, elementwise `max(x, 0)`.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Adds a bias vector to each row of an `[N, F]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `bias.numel() != F`.
    pub fn add_row_bias(&self, bias: &Tensor) -> Tensor {
        let d = self.dims();
        assert_eq!(d.len(), 2, "add_row_bias on rank-{} tensor", d.len());
        assert_eq!(
            bias.numel(),
            d[1],
            "bias length {} != {}",
            bias.numel(),
            d[1]
        );
        let mut out = self.clone();
        let f = d[1];
        for r in 0..d[0] {
            for c in 0..f {
                out.data_mut()[r * f + c] += bias.data()[c];
            }
        }
        out
    }

    /// Adds a per-channel bias to an `[N, C, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or `bias.numel() != C`.
    pub fn add_channel_bias(&self, bias: &Tensor) -> Tensor {
        let d = self.dims();
        assert_eq!(d.len(), 4, "add_channel_bias on rank-{} tensor", d.len());
        assert_eq!(
            bias.numel(),
            d[1],
            "bias length {} != {}",
            bias.numel(),
            d[1]
        );
        let mut out = self.clone();
        let plane = d[2] * d[3];
        for n in 0..d[0] {
            for c in 0..d[1] {
                let b = bias.data()[c];
                let base = (n * d[1] + c) * plane;
                for x in &mut out.data_mut()[base..base + plane] {
                    *x += b;
                }
            }
        }
        out
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data().iter().map(|x| x * x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()])
    }

    #[test]
    fn add_sub_mul() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    #[should_panic(expected = "elementwise shape mismatch")]
    fn add_shape_mismatch_panics() {
        let _ = t(&[1.0]).add(&t(&[1.0, 2.0]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        a.axpy(2.0, &t(&[3.0, 4.0]));
        assert_eq!(a.data(), &[7.0, 9.0]);
    }

    #[test]
    fn relu_clamps_negative() {
        let a = t(&[-1.0, 0.0, 2.0]);
        assert_eq!(a.relu().data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn row_bias_broadcasts() {
        let x = Tensor::from_fn(&[2, 3], |i| i as f32);
        let b = t(&[10.0, 20.0, 30.0]);
        let y = x.add_row_bias(&b);
        assert_eq!(y.data(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
    }

    #[test]
    fn channel_bias_broadcasts() {
        let x = Tensor::zeros(&[1, 2, 2, 2]);
        let b = t(&[1.0, 2.0]);
        let y = x.add_channel_bias(&b);
        assert_eq!(y.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn sq_norm_matches_manual() {
        let a = t(&[3.0, 4.0]);
        assert_eq!(a.sq_norm(), 25.0);
    }

    #[test]
    fn scale_in_place() {
        let mut a = t(&[1.0, -2.0]);
        a.scale_in_place(-3.0);
        assert_eq!(a.data(), &[-3.0, 6.0]);
    }
}
