//! Runtime-dispatched SIMD microkernels for the packed-panel GEMM engine.
//!
//! The generic 4×8 microkernel in the GEMM engine autovectorizes
//! well, but leaves width on the table: an AVX2 host has sixteen 256-bit
//! registers, enough for a 4×16 f32 accumulator tile, and `vpmaddubsw`-era
//! integer units that run an int8 dot product at twice the f32 rate. This
//! module holds the explicit `std::arch` variants and the one-time runtime
//! dispatch that picks between them:
//!
//! * **f32 kernels** — scalar 4×8 (the always-correct fallback, identical
//!   to the pre-dispatch autovectorized kernel), AVX2 4×8, AVX2 4×16
//!   (default on AVX2 hosts), and NEON 4×8 on `aarch64`.
//! * **int8 kernels** — scalar 4×16 and AVX2 4×16 (`_mm256_madd_epi16`
//!   over sign-extended k-pairs), both accumulating in `i32` (exact) —
//!   plus the quantize-strip kernels that pack f32 activations into the
//!   k-paired i8 layout on the fly.
//!
//! Selection happens **once per process** via
//! [`is_x86_feature_detected!`]; `FLUID_FORCE_SCALAR=1` in the
//! environment pins the scalar kernels on any host (the CI scalar leg and
//! the escape hatch if a dispatch bug is ever suspected in production).
//!
//! ## Bit-identity across variants
//!
//! Every f32 variant computes each output element with the *same*
//! rounding sequence as the scalar kernel: one IEEE multiply and one IEEE
//! add per k step, ascending k. The AVX2/NEON kernels therefore use
//! separate `mul`/`add` instructions — **never FMA**, which fuses the pair
//! and changes the rounding — so a dispatched result is bit-identical to
//! the scalar result, not merely close. A wider tile (4×16) only changes
//! *which* output elements are computed together, never any element's
//! chain. The int8 kernels accumulate in `i32`, which is exact, so their
//! agreement is unconditional. The proptests at the bottom of this file
//! pin both claims for every variant the host can run.
//!
//! Unsafe code is confined to this module (and the documented
//! lifetime-erasure in [`pool`](crate::pool)); every `unsafe` block
//! carries a `// SAFETY:` comment, enforced crate-wide by
//! `#![deny(clippy::undocumented_unsafe_blocks)]`.

use std::sync::OnceLock;

/// Microkernel rows (all variants): output rows per accumulator tile.
pub const MR: usize = 4;

/// The widest f32 tile any variant uses (AVX2 4×16).
pub const NR_MAX: usize = 16;

/// f32 accumulator scratch length: one maximal `MR × NR_MAX` tile.
pub const ACC_F32: usize = MR * NR_MAX;

/// int8 tile width (all int8 variants are 4×16: two `madd` lanes of 8
/// columns each, amortizing the A-pair broadcast and B sign-extension).
pub const NR_I8: usize = 16;

/// i32 accumulator scratch length for the int8 tile.
pub const ACC_I8: usize = MR * NR_I8;

/// One f32 microkernel variant: computes a full `MR × nr` tile
/// `acc[r*nr + c] = Σ_k a_panel[k*MR + r] · b_strip[k*nr + c]` from zero
/// (overwriting the first `MR * nr` slots of `acc`).
pub struct KernelF32 {
    /// Dispatch name, e.g. `"avx2_4x16"` (surfaced by [`active_name`]).
    pub name: &'static str,
    /// Tile width: values per k step in the packed B strip.
    pub nr: usize,
    /// The kernel entry point. `a_panel.len() == kc * MR`,
    /// `b_strip.len() == kc * nr`.
    pub run: fn(&[f32], &[f32], &mut [f32; ACC_F32]),
}

/// One int8 microkernel variant: computes a full `MR × NR_I8` i32 tile
/// from k-paired packed panels (see [`crate::quant`] for the layout:
/// `a_panel[kk2*2*MR + r*2 + t]`, `b_strip[kk2*2*NR_I8 + c*2 + t]`).
pub struct KernelI8 {
    /// Dispatch name, e.g. `"avx2_i8_4x16"`.
    pub name: &'static str,
    /// The kernel entry point. Both panels hold `kc2` k-pairs.
    pub run: fn(&[i8], &[i8], &mut [i32; ACC_I8]),
}

/// One quantize-strip variant: converts a gathered `kc × NR_I8` f32 strip
/// (k-major, as `pack_b_strip` writes it) into the k-paired i8 layout the
/// int8 kernels consume. This pass runs over the *whole* activation
/// operand every call, so it is on the quantized path's critical path and
/// worth vectorizing. All variants produce identical bytes for finite
/// inputs (quantizing a NaN is unspecified).
pub struct KernelQuant {
    /// Dispatch name, e.g. `"avx2_quant16"`.
    pub name: &'static str,
    /// `run(src, kc, inv_scale, dst)`: `src.len() >= kc * NR_I8`,
    /// `dst.len() >= kc.div_ceil(2) * 2 * NR_I8`.
    pub run: fn(&[f32], usize, f32, &mut [i8]),
}

// ---------------------------------------------------------------------------
// scalar kernels (the always-correct fallback; autovectorizes on stable)
// ---------------------------------------------------------------------------

/// The pre-dispatch 4×8 kernel, verbatim: separate mul and add per k step,
/// ascending k — the rounding sequence every other variant must reproduce.
fn scalar_f32_4x8(a_panel: &[f32], b_strip: &[f32], acc: &mut [f32; ACC_F32]) {
    let mut tile = [[0.0f32; 8]; MR];
    for (ak, bk) in a_panel.chunks_exact(MR).zip(b_strip.chunks_exact(8)) {
        for (row, &av) in tile.iter_mut().zip(ak) {
            for (slot, &bv) in row.iter_mut().zip(bk) {
                *slot += av * bv;
            }
        }
    }
    for (r, row) in tile.iter().enumerate() {
        acc[r * 8..r * 8 + 8].copy_from_slice(row);
    }
}

/// Scalar int8 kernel over k-paired panels; `i32` accumulation is exact,
/// so every int8 variant agrees with this one bit-for-bit.
fn scalar_i8_4x16(a_panel: &[i8], b_strip: &[i8], acc: &mut [i32; ACC_I8]) {
    let mut tile = [[0i32; NR_I8]; MR];
    for (ak, bk) in a_panel
        .chunks_exact(2 * MR)
        .zip(b_strip.chunks_exact(2 * NR_I8))
    {
        for (r, row) in tile.iter_mut().enumerate() {
            let a0 = i32::from(ak[r * 2]);
            let a1 = i32::from(ak[r * 2 + 1]);
            for (c, slot) in row.iter_mut().enumerate() {
                *slot += a0 * i32::from(bk[c * 2]) + a1 * i32::from(bk[c * 2 + 1]);
            }
        }
    }
    for (r, row) in tile.iter().enumerate() {
        acc[r * NR_I8..(r + 1) * NR_I8].copy_from_slice(row);
    }
}

pub(crate) static SCALAR_F32: KernelF32 = KernelF32 {
    name: "scalar_4x8",
    nr: 8,
    run: scalar_f32_4x8,
};

pub(crate) static SCALAR_I8: KernelI8 = KernelI8 {
    name: "scalar_i8_4x16",
    run: scalar_i8_4x16,
};

/// Scalar quantize-strip: the reference byte layout every SIMD variant
/// must reproduce (an odd trailing k packs a zero partner).
fn scalar_quant_strip(src: &[f32], kc: usize, inv_scale: f32, dst: &mut [i8]) {
    for kk2 in 0..kc.div_ceil(2) {
        for c in 0..NR_I8 {
            for t in 0..2 {
                let kk = kk2 * 2 + t;
                dst[kk2 * 2 * NR_I8 + c * 2 + t] = if kk < kc {
                    crate::quant::quantize(src[kk * NR_I8 + c], inv_scale)
                } else {
                    0
                };
            }
        }
    }
}

pub(crate) static SCALAR_QUANT: KernelQuant = KernelQuant {
    name: "scalar_quant16",
    run: scalar_quant_strip,
};

// ---------------------------------------------------------------------------
// AVX2 kernels (x86_64, selected when `is_x86_feature_detected!("avx2")`)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{ACC_F32, ACC_I8, MR, NR_I8};
    use core::arch::x86_64::{
        __m128i, _mm256_add_epi32, _mm256_add_ps, _mm256_broadcastd_epi32, _mm256_castsi256_si128,
        _mm256_cvtepi8_epi16, _mm256_cvtps_epi32, _mm256_extracti128_si256, _mm256_loadu_ps,
        _mm256_madd_epi16, _mm256_max_ps, _mm256_min_ps, _mm256_mul_ps, _mm256_set1_ps,
        _mm256_setzero_ps, _mm256_setzero_si256, _mm256_storeu_ps, _mm256_storeu_si256,
        _mm_cvtepi8_epi16, _mm_loadl_epi64, _mm_loadu_si128, _mm_packs_epi16, _mm_packs_epi32,
        _mm_shuffle_epi32, _mm_storeu_si128, _mm_unpacklo_epi8,
    };

    /// AVX2 4×8: one `__m256` accumulator per row. Mul then add — not
    /// FMA — so the per-lane rounding sequence matches the scalar kernel.
    ///
    /// # Safety
    ///
    /// Caller must have verified the `avx2` CPU feature.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn f32_4x8(a_panel: &[f32], b_strip: &[f32], acc: &mut [f32; ACC_F32]) {
        let mut c0 = _mm256_setzero_ps();
        let mut c1 = _mm256_setzero_ps();
        let mut c2 = _mm256_setzero_ps();
        let mut c3 = _mm256_setzero_ps();
        for (ak, bk) in a_panel.chunks_exact(MR).zip(b_strip.chunks_exact(8)) {
            // SAFETY: `bk` is exactly 8 contiguous f32s (chunks_exact(8)).
            let bv = unsafe { _mm256_loadu_ps(bk.as_ptr()) };
            c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_set1_ps(ak[0]), bv));
            c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_set1_ps(ak[1]), bv));
            c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_set1_ps(ak[2]), bv));
            c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_set1_ps(ak[3]), bv));
        }
        // SAFETY: `acc` holds ACC_F32 = 64 f32s; the four stores cover
        // rows at offsets 0, 8, 16, 24 (tile width 8), all in bounds.
        unsafe {
            _mm256_storeu_ps(acc.as_mut_ptr(), c0);
            _mm256_storeu_ps(acc.as_mut_ptr().add(8), c1);
            _mm256_storeu_ps(acc.as_mut_ptr().add(16), c2);
            _mm256_storeu_ps(acc.as_mut_ptr().add(24), c3);
        }
    }

    /// AVX2 4×16: two `__m256` accumulators per row (8 of 16 registers),
    /// halving loop overhead and doubling the work per A-broadcast.
    /// Mul then add, never FMA (see the module docs).
    ///
    /// # Safety
    ///
    /// Caller must have verified the `avx2` CPU feature.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn f32_4x16(a_panel: &[f32], b_strip: &[f32], acc: &mut [f32; ACC_F32]) {
        let mut c0 = _mm256_setzero_ps();
        let mut c1 = _mm256_setzero_ps();
        let mut c2 = _mm256_setzero_ps();
        let mut c3 = _mm256_setzero_ps();
        let mut d0 = _mm256_setzero_ps();
        let mut d1 = _mm256_setzero_ps();
        let mut d2 = _mm256_setzero_ps();
        let mut d3 = _mm256_setzero_ps();
        for (ak, bk) in a_panel.chunks_exact(MR).zip(b_strip.chunks_exact(16)) {
            // SAFETY: `bk` is exactly 16 contiguous f32s (chunks_exact(16));
            // the two loads read lanes 0..8 and 8..16.
            let (blo, bhi) = unsafe {
                (
                    _mm256_loadu_ps(bk.as_ptr()),
                    _mm256_loadu_ps(bk.as_ptr().add(8)),
                )
            };
            let a0 = _mm256_set1_ps(ak[0]);
            let a1 = _mm256_set1_ps(ak[1]);
            let a2 = _mm256_set1_ps(ak[2]);
            let a3 = _mm256_set1_ps(ak[3]);
            c0 = _mm256_add_ps(c0, _mm256_mul_ps(a0, blo));
            d0 = _mm256_add_ps(d0, _mm256_mul_ps(a0, bhi));
            c1 = _mm256_add_ps(c1, _mm256_mul_ps(a1, blo));
            d1 = _mm256_add_ps(d1, _mm256_mul_ps(a1, bhi));
            c2 = _mm256_add_ps(c2, _mm256_mul_ps(a2, blo));
            d2 = _mm256_add_ps(d2, _mm256_mul_ps(a2, bhi));
            c3 = _mm256_add_ps(c3, _mm256_mul_ps(a3, blo));
            d3 = _mm256_add_ps(d3, _mm256_mul_ps(a3, bhi));
        }
        // SAFETY: `acc` holds ACC_F32 = 64 f32s; rows are 16 wide, so the
        // eight stores cover offsets 0..64 exactly.
        unsafe {
            _mm256_storeu_ps(acc.as_mut_ptr(), c0);
            _mm256_storeu_ps(acc.as_mut_ptr().add(8), d0);
            _mm256_storeu_ps(acc.as_mut_ptr().add(16), c1);
            _mm256_storeu_ps(acc.as_mut_ptr().add(24), d1);
            _mm256_storeu_ps(acc.as_mut_ptr().add(32), c2);
            _mm256_storeu_ps(acc.as_mut_ptr().add(40), d2);
            _mm256_storeu_ps(acc.as_mut_ptr().add(48), c3);
            _mm256_storeu_ps(acc.as_mut_ptr().add(56), d3);
        }
    }

    /// AVX2 int8 4×16 over k-paired panels: sign-extend 2×16 packed
    /// `i8`s to `i16`, then `_mm256_madd_epi16` computes, per output
    /// column, the exact `i32` sum `a0·b0 + a1·b1` of one k-pair — two
    /// 8-column `madd` lanes per row amortize the A broadcast. `i32`
    /// accumulation is exact, so this agrees with the scalar kernel
    /// unconditionally.
    ///
    /// # Safety
    ///
    /// Caller must have verified the `avx2` CPU feature.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn i8_4x16(a_panel: &[i8], b_strip: &[i8], acc: &mut [i32; ACC_I8]) {
        let mut c0 = _mm256_setzero_si256();
        let mut c1 = _mm256_setzero_si256();
        let mut c2 = _mm256_setzero_si256();
        let mut c3 = _mm256_setzero_si256();
        let mut d0 = _mm256_setzero_si256();
        let mut d1 = _mm256_setzero_si256();
        let mut d2 = _mm256_setzero_si256();
        let mut d3 = _mm256_setzero_si256();
        for (ak, bk) in a_panel
            .chunks_exact(2 * MR)
            .zip(b_strip.chunks_exact(2 * NR_I8))
        {
            // SAFETY: `bk` is exactly 32 contiguous i8s (chunks_exact(32)),
            // two unaligned 128-bit loads; `ak` is exactly 8 contiguous
            // i8s (chunks_exact(8)), a 64-bit load.
            let (blo16, bhi16, av8) = unsafe {
                (
                    _mm_loadu_si128(bk.as_ptr().cast::<__m128i>()),
                    _mm_loadu_si128(bk.as_ptr().add(16).cast::<__m128i>()),
                    _mm_loadl_epi64(ak.as_ptr().cast::<__m128i>()),
                )
            };
            // 16 × i16 each: (b[c][0], b[c][1]) for columns 0..8 / 8..16.
            let blo = _mm256_cvtepi8_epi16(blo16);
            let bhi = _mm256_cvtepi8_epi16(bhi16);
            // Sign-extend all four A k-pairs at once: lane r of `av16`
            // holds (a[r][0], a[r][1]) as two adjacent i16s, so one 32-bit
            // broadcast per row feeds `madd` without scalar re-packing.
            let av16 = _mm_cvtepi8_epi16(av8);
            let p0 = _mm256_broadcastd_epi32(av16);
            let p1 = _mm256_broadcastd_epi32(_mm_shuffle_epi32(av16, 0b01_01_01_01));
            let p2 = _mm256_broadcastd_epi32(_mm_shuffle_epi32(av16, 0b10_10_10_10));
            let p3 = _mm256_broadcastd_epi32(_mm_shuffle_epi32(av16, 0b11_11_11_11));
            c0 = _mm256_add_epi32(c0, _mm256_madd_epi16(p0, blo));
            d0 = _mm256_add_epi32(d0, _mm256_madd_epi16(p0, bhi));
            c1 = _mm256_add_epi32(c1, _mm256_madd_epi16(p1, blo));
            d1 = _mm256_add_epi32(d1, _mm256_madd_epi16(p1, bhi));
            c2 = _mm256_add_epi32(c2, _mm256_madd_epi16(p2, blo));
            d2 = _mm256_add_epi32(d2, _mm256_madd_epi16(p2, bhi));
            c3 = _mm256_add_epi32(c3, _mm256_madd_epi16(p3, blo));
            d3 = _mm256_add_epi32(d3, _mm256_madd_epi16(p3, bhi));
        }
        // SAFETY: `acc` holds ACC_I8 = 64 i32s; rows are 16 wide, so the
        // eight 8-lane stores cover offsets 0..64 exactly.
        unsafe {
            _mm256_storeu_si256(acc.as_mut_ptr().cast(), c0);
            _mm256_storeu_si256(acc.as_mut_ptr().add(8).cast(), d0);
            _mm256_storeu_si256(acc.as_mut_ptr().add(16).cast(), c1);
            _mm256_storeu_si256(acc.as_mut_ptr().add(24).cast(), d1);
            _mm256_storeu_si256(acc.as_mut_ptr().add(32).cast(), c2);
            _mm256_storeu_si256(acc.as_mut_ptr().add(40).cast(), d2);
            _mm256_storeu_si256(acc.as_mut_ptr().add(48).cast(), c3);
            _mm256_storeu_si256(acc.as_mut_ptr().add(56).cast(), d3);
        }
    }

    /// AVX2 quantize-strip: two k-rows (8 f32 each) per iteration —
    /// scale, clamp to ±127, `cvtps` (round-to-nearest-even, matching the
    /// scalar `quantize`), narrow through saturating packs (lossless for
    /// in-range values), and a byte interleave that lands the pair layout
    /// `(k0, k1)` per column directly.
    ///
    /// # Safety
    ///
    /// Caller must have verified the `avx2` CPU feature.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn quant_strip(src: &[f32], kc: usize, inv_scale: f32, dst: &mut [i8]) {
        assert!(src.len() >= kc * NR_I8, "short f32 strip");
        assert!(dst.len() >= kc.div_ceil(2) * 2 * NR_I8, "short i8 strip");
        let vinv = _mm256_set1_ps(inv_scale);
        let vlo = _mm256_set1_ps(-127.0);
        let vhi = _mm256_set1_ps(127.0);
        for kk2 in 0..kc / 2 {
            // Two 8-column halves per 16-wide strip row pair.
            for half in 0..NR_I8 / 8 {
                // SAFETY: kk2 < kc/2, so rows 2·kk2 and 2·kk2+1 are < kc;
                // each 8-f32 load starts at column `half*8 ≤ NR_I8 - 8`
                // inside its row, staying inside `src` (length asserted).
                let (r0, r1) = unsafe {
                    (
                        _mm256_loadu_ps(src.as_ptr().add(kk2 * 2 * NR_I8 + half * 8)),
                        _mm256_loadu_ps(src.as_ptr().add((kk2 * 2 + 1) * NR_I8 + half * 8)),
                    )
                };
                // Clamp before the convert: for finite values this
                // commutes with rounding (±127 are exactly representable),
                // and it keeps the saturating packs below lossless.
                let q0 = _mm256_cvtps_epi32(_mm256_max_ps(
                    vlo,
                    _mm256_min_ps(vhi, _mm256_mul_ps(r0, vinv)),
                ));
                let q1 = _mm256_cvtps_epi32(_mm256_max_ps(
                    vlo,
                    _mm256_min_ps(vhi, _mm256_mul_ps(r1, vinv)),
                ));
                let a16 =
                    _mm_packs_epi32(_mm256_castsi256_si128(q0), _mm256_extracti128_si256(q0, 1));
                let b16 =
                    _mm_packs_epi32(_mm256_castsi256_si128(q1), _mm256_extracti128_si256(q1, 1));
                let inter = _mm_unpacklo_epi8(_mm_packs_epi16(a16, a16), _mm_packs_epi16(b16, b16));
                // SAFETY: the store writes the 16 interleaved bytes of
                // columns half*8..half*8+8 at k-pair kk2 — bytes
                // kk2*2*NR_I8 + half*16 .. +16, inside `dst` (asserted).
                unsafe {
                    _mm_storeu_si128(
                        dst.as_mut_ptr().add(kk2 * 2 * NR_I8 + half * 16).cast(),
                        inter,
                    )
                };
            }
        }
        if kc % 2 == 1 {
            let kk = kc - 1;
            for c in 0..NR_I8 {
                dst[(kc / 2) * 2 * NR_I8 + c * 2] =
                    crate::quant::quantize(src[kk * NR_I8 + c], inv_scale);
                dst[(kc / 2) * 2 * NR_I8 + c * 2 + 1] = 0;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_f32_4x8(a: &[f32], b: &[f32], acc: &mut [f32; ACC_F32]) {
    // SAFETY: this entry is only ever installed by `select_f32` /
    // `host_variants_f32` after `is_x86_feature_detected!("avx2")`.
    unsafe { x86::f32_4x8(a, b, acc) }
}

#[cfg(target_arch = "x86_64")]
fn avx2_f32_4x16(a: &[f32], b: &[f32], acc: &mut [f32; ACC_F32]) {
    // SAFETY: this entry is only ever installed by `select_f32` /
    // `host_variants_f32` after `is_x86_feature_detected!("avx2")`.
    unsafe { x86::f32_4x16(a, b, acc) }
}

#[cfg(target_arch = "x86_64")]
fn avx2_i8_4x16(a: &[i8], b: &[i8], acc: &mut [i32; ACC_I8]) {
    // SAFETY: this entry is only ever installed by `select_i8` /
    // `host_variants_i8` after `is_x86_feature_detected!("avx2")`.
    unsafe { x86::i8_4x16(a, b, acc) }
}

#[cfg(target_arch = "x86_64")]
pub(crate) static AVX2_F32_4X8: KernelF32 = KernelF32 {
    name: "avx2_4x8",
    nr: 8,
    run: avx2_f32_4x8,
};

#[cfg(target_arch = "x86_64")]
pub(crate) static AVX2_F32_4X16: KernelF32 = KernelF32 {
    name: "avx2_4x16",
    nr: 16,
    run: avx2_f32_4x16,
};

#[cfg(target_arch = "x86_64")]
fn avx2_quant_strip(src: &[f32], kc: usize, inv_scale: f32, dst: &mut [i8]) {
    // SAFETY: this entry is only ever installed by `select_quant` /
    // `host_variants_quant` after `is_x86_feature_detected!("avx2")`.
    unsafe { x86::quant_strip(src, kc, inv_scale, dst) }
}

#[cfg(target_arch = "x86_64")]
pub(crate) static AVX2_I8_4X16: KernelI8 = KernelI8 {
    name: "avx2_i8_4x16",
    run: avx2_i8_4x16,
};

#[cfg(target_arch = "x86_64")]
pub(crate) static AVX2_QUANT: KernelQuant = KernelQuant {
    name: "avx2_quant16",
    run: avx2_quant_strip,
};

// ---------------------------------------------------------------------------
// NEON kernel (aarch64; the feature is part of the baseline ABI)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::{ACC_F32, MR};
    use core::arch::aarch64::{vaddq_f32, vdupq_n_f32, vld1q_f32, vmulq_f32, vst1q_f32};

    /// NEON 4×8: two 4-lane accumulators per row. `vmulq`/`vaddq`, not
    /// `vfmaq`, to keep the scalar kernel's rounding sequence.
    ///
    /// # Safety
    ///
    /// Caller must have verified the `neon` CPU feature (baseline on
    /// aarch64, but the contract is stated for symmetry with AVX2).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn f32_4x8(a_panel: &[f32], b_strip: &[f32], acc: &mut [f32; ACC_F32]) {
        let mut tile = [vdupq_n_f32(0.0); 8]; // rows × (lo, hi)
        for (ak, bk) in a_panel.chunks_exact(MR).zip(b_strip.chunks_exact(8)) {
            // SAFETY: `bk` is exactly 8 contiguous f32s (chunks_exact(8)).
            let (blo, bhi) = unsafe { (vld1q_f32(bk.as_ptr()), vld1q_f32(bk.as_ptr().add(4))) };
            for r in 0..MR {
                let av = vdupq_n_f32(ak[r]);
                tile[r * 2] = vaddq_f32(tile[r * 2], vmulq_f32(av, blo));
                tile[r * 2 + 1] = vaddq_f32(tile[r * 2 + 1], vmulq_f32(av, bhi));
            }
        }
        for r in 0..MR {
            // SAFETY: `acc` holds ACC_F32 = 64 f32s; rows are 8 wide, so
            // offsets r*8 and r*8+4 stay within the first 32 slots.
            unsafe {
                vst1q_f32(acc.as_mut_ptr().add(r * 8), tile[r * 2]);
                vst1q_f32(acc.as_mut_ptr().add(r * 8 + 4), tile[r * 2 + 1]);
            }
        }
    }
}

#[cfg(target_arch = "aarch64")]
fn neon_f32_4x8(a: &[f32], b: &[f32], acc: &mut [f32; ACC_F32]) {
    // SAFETY: NEON is part of the aarch64 baseline ABI, so the feature is
    // always present when this cfg compiles.
    unsafe { arm::f32_4x8(a, b, acc) }
}

#[cfg(target_arch = "aarch64")]
pub(crate) static NEON_F32_4X8: KernelF32 = KernelF32 {
    name: "neon_4x8",
    nr: 8,
    run: neon_f32_4x8,
};

// ---------------------------------------------------------------------------
// dispatch
// ---------------------------------------------------------------------------

/// True when `FLUID_FORCE_SCALAR=1` pins the scalar kernels.
pub fn forced_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| std::env::var("FLUID_FORCE_SCALAR").as_deref() == Ok("1"))
}

fn select_f32() -> &'static KernelF32 {
    if forced_scalar() {
        return &SCALAR_F32;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return &AVX2_F32_4X16;
    }
    #[cfg(target_arch = "aarch64")]
    return &NEON_F32_4X8;
    #[allow(unreachable_code)]
    &SCALAR_F32
}

fn select_i8() -> &'static KernelI8 {
    if forced_scalar() {
        return &SCALAR_I8;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return &AVX2_I8_4X16;
    }
    #[allow(unreachable_code)]
    &SCALAR_I8
}

/// The f32 kernel every GEMM in this process dispatches to, selected once.
pub(crate) fn active_f32() -> &'static KernelF32 {
    static ACTIVE: OnceLock<&'static KernelF32> = OnceLock::new();
    ACTIVE.get_or_init(select_f32)
}

/// The int8 kernel the quantized path dispatches to, selected once.
pub(crate) fn active_i8() -> &'static KernelI8 {
    static ACTIVE: OnceLock<&'static KernelI8> = OnceLock::new();
    ACTIVE.get_or_init(select_i8)
}

fn select_quant() -> &'static KernelQuant {
    if forced_scalar() {
        return &SCALAR_QUANT;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return &AVX2_QUANT;
    }
    #[allow(unreachable_code)]
    &SCALAR_QUANT
}

/// The quantize-strip kernel the activation pack dispatches to.
pub(crate) fn active_quant() -> &'static KernelQuant {
    static ACTIVE: OnceLock<&'static KernelQuant> = OnceLock::new();
    ACTIVE.get_or_init(select_quant)
}

/// The dispatch decision, e.g. `"avx2_4x16+avx2_i8_4x16"` — for logs,
/// bench metadata, and `fluidctl` banners.
pub fn active_name() -> String {
    format!("{}+{}", active_f32().name, active_i8().name)
}

/// Every f32 variant this host can execute (always includes scalar).
/// Used by the bit-identity proptests and the bench's variant sweep.
pub fn host_variants_f32() -> Vec<&'static KernelF32> {
    #[allow(unused_mut)]
    let mut v = vec![&SCALAR_F32];
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        v.push(&AVX2_F32_4X8);
        v.push(&AVX2_F32_4X16);
    }
    #[cfg(target_arch = "aarch64")]
    v.push(&NEON_F32_4X8);
    v
}

/// Every int8 variant this host can execute (always includes scalar).
pub fn host_variants_i8() -> Vec<&'static KernelI8> {
    #[allow(unused_mut)]
    let mut v = vec![&SCALAR_I8];
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        v.push(&AVX2_I8_4X16);
    }
    v
}

/// Every quantize-strip variant this host can execute.
pub fn host_variants_quant() -> Vec<&'static KernelQuant> {
    #[allow(unused_mut)]
    let mut v = vec![&SCALAR_QUANT];
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        v.push(&AVX2_QUANT);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn rand_panels(seed: u64, kc: usize, nr: usize) -> (Vec<f32>, Vec<f32>) {
        let mut rng = Prng::new(seed);
        let a = (0..kc * MR).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b = (0..kc * nr).map(|_| rng.uniform(-1.0, 1.0)).collect();
        (a, b)
    }

    /// Scalar reference for an MR × nr tile at any width, mirroring the
    /// scalar kernel's exact operation order.
    fn reference_tile(a: &[f32], b: &[f32], kc: usize, nr: usize) -> Vec<f32> {
        let mut acc = vec![0.0f32; MR * nr];
        for kk in 0..kc {
            for r in 0..MR {
                let av = a[kk * MR + r];
                for c in 0..nr {
                    acc[r * nr + c] += av * b[kk * nr + c];
                }
            }
        }
        acc
    }

    #[test]
    fn every_f32_variant_is_bit_identical_to_scalar() {
        for kern in host_variants_f32() {
            for kc in [0, 1, 2, 3, 7, 64, 255, 256] {
                let (a, b) = rand_panels(kc as u64 + 1, kc, kern.nr);
                let mut acc = [f32::NAN; ACC_F32];
                (kern.run)(&a, &b, &mut acc);
                let want = reference_tile(&a, &b, kc, kern.nr);
                assert_eq!(
                    &acc[..MR * kern.nr],
                    &want[..],
                    "kernel {} diverged at kc={kc}",
                    kern.name
                );
            }
        }
    }

    #[test]
    fn every_i8_variant_matches_exact_integer_reference() {
        let mut rng = Prng::new(99);
        for kern in host_variants_i8() {
            for kc2 in [0usize, 1, 2, 5, 64, 128] {
                let a: Vec<i8> = (0..kc2 * 2 * MR)
                    .map(|_| rng.uniform(-127.0, 127.0) as i8)
                    .collect();
                let b: Vec<i8> = (0..kc2 * 2 * NR_I8)
                    .map(|_| rng.uniform(-127.0, 127.0) as i8)
                    .collect();
                let mut acc = [i32::MAX; ACC_I8];
                (kern.run)(&a, &b, &mut acc);
                let mut want = [0i32; ACC_I8];
                for kk2 in 0..kc2 {
                    for r in 0..MR {
                        for c in 0..NR_I8 {
                            for t in 0..2 {
                                want[r * NR_I8 + c] += i32::from(a[kk2 * 2 * MR + r * 2 + t])
                                    * i32::from(b[kk2 * 2 * NR_I8 + c * 2 + t]);
                            }
                        }
                    }
                }
                assert_eq!(acc, want, "kernel {} diverged at kc2={kc2}", kern.name);
            }
        }
    }

    #[test]
    fn every_quant_variant_produces_identical_bytes() {
        // Values spanning well past the clamp range so saturation paths
        // are exercised; odd and even kc so the zero-partner tail is too.
        let mut rng = Prng::new(7);
        for kern in host_variants_quant() {
            for kc in [0usize, 1, 2, 3, 7, 64, 255, 256] {
                let src: Vec<f32> = (0..kc * NR_I8)
                    .map(|_| rng.uniform(-300.0, 300.0))
                    .collect();
                let kc2 = kc.div_ceil(2);
                let mut got = vec![i8::MIN; kc2 * 2 * NR_I8];
                (kern.run)(&src, kc, 1.0, &mut got);
                let mut want = vec![i8::MIN; kc2 * 2 * NR_I8];
                (SCALAR_QUANT.run)(&src, kc, 1.0, &mut want);
                assert_eq!(got, want, "kernel {} diverged at kc={kc}", kern.name);
            }
        }
        // Ties land on even neighbours (the cvtps rounding the scalar
        // path must match): 0.5 → 0, 1.5 → 2, -2.5 → -2.
        let edge = [0.5f32, 1.5, -2.5, 126.5, 127.5, -127.5, 3.0, -3.0];
        let want_edge = [0i8, 2, -2, 126, 127, -127, 3, -3];
        let src: Vec<f32> = (0..NR_I8).map(|c| edge[c % edge.len()]).collect();
        for kern in host_variants_quant() {
            let mut got = vec![0i8; 2 * NR_I8];
            (kern.run)(&src, 1, 1.0, &mut got);
            let vals: Vec<i8> = (0..NR_I8).map(|c| got[c * 2]).collect();
            let want: Vec<i8> = (0..NR_I8).map(|c| want_edge[c % edge.len()]).collect();
            assert_eq!(vals, want, "{}", kern.name);
        }
    }

    #[test]
    fn dispatch_is_stable_and_named() {
        assert!(std::ptr::eq(active_f32(), active_f32()));
        let name = active_name();
        assert!(name.contains("4x"), "odd dispatch name {name}");
        // The active kernels must be host variants.
        assert!(host_variants_f32()
            .iter()
            .any(|k| std::ptr::eq(*k, active_f32())));
        assert!(host_variants_i8()
            .iter()
            .any(|k| std::ptr::eq(*k, active_i8())));
    }

    #[test]
    fn forced_scalar_env_selects_scalar() {
        // `forced_scalar` caches the env var once; the selection logic is
        // tested directly against both states via `select_*`'s contract:
        // when the flag is cached as set, both selectors return scalar.
        if forced_scalar() {
            assert!(std::ptr::eq(active_f32(), &SCALAR_F32));
            assert!(std::ptr::eq(active_i8(), &SCALAR_I8));
        } else {
            // Dispatched mode: scalar must still be among host variants so
            // the forced path is always executable.
            assert!(host_variants_f32()
                .iter()
                .any(|k| std::ptr::eq(*k, &SCALAR_F32)));
        }
    }
}
