//! Shape utilities for row-major tensors.

/// Maximum tensor rank. Everything in this workspace is at most
/// `[N, C, H, W]`; the inline bound is what lets [`Shape`] live entirely
/// on the stack, so creating a tensor around an existing buffer performs
/// **zero heap allocation** — the hot-path contract of the serving and
/// training layers.
pub const MAX_RANK: usize = 4;

/// A tensor shape: the extent of each dimension, outermost first.
///
/// Row-major (C order): the last dimension is contiguous in memory.
/// Stored inline (no heap) up to [`MAX_RANK`] dimensions.
///
/// # Example
///
/// ```
/// use fluid_tensor::Shape;
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    // Invariant: `dims[rank..]` is zero, so the derived `PartialEq`/`Hash`
    // see a canonical form.
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() > MAX_RANK`.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "rank {} exceeds MAX_RANK {MAX_RANK}",
            dims.len()
        );
        let mut inline = [0usize; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        Self {
            dims: inline,
            rank: dims.len(),
        }
    }

    /// The dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank];
        for i in (0..self.rank.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        assert!(
            i < self.rank,
            "dimension {i} out of range for rank {}",
            self.rank
        );
        self.dims[i]
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Total element count of a dims slice.
///
/// # Example
///
/// ```
/// assert_eq!(fluid_tensor::numel(&[2, 3]), 6);
/// ```
pub fn numel(dims: &[usize]) -> usize {
    dims.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn one_dim() {
        let s = Shape::new(&[7]);
        assert_eq!(s.numel(), 7);
        assert_eq!(s.strides(), vec![1]);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }

    #[test]
    fn from_vec() {
        let s: Shape = vec![4, 5].into();
        assert_eq!(s.dims(), &[4, 5]);
    }

    #[test]
    fn zero_extent_dim_gives_zero_numel() {
        let s = Shape::new(&[3, 0, 2]);
        assert_eq!(s.numel(), 0);
    }

    #[test]
    fn equality_ignores_trailing_storage() {
        // Different construction paths must canonicalise identically.
        assert_eq!(Shape::new(&[2, 3]), Shape::from(vec![2, 3]));
        assert_ne!(Shape::new(&[2, 3]), Shape::new(&[2, 3, 1]));
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_RANK")]
    fn rank_overflow_panics() {
        let _ = Shape::new(&[1, 2, 3, 4, 5]);
    }
}
