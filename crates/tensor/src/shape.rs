//! Shape utilities for row-major tensors: dimension extents plus strides.

/// Maximum tensor rank. Everything in this workspace is at most
/// `[N, C, H, W]`; the inline bound is what lets [`Shape`] live entirely
/// on the stack, so creating a tensor (or a [`TensorView`]) around an
/// existing buffer performs **zero heap allocation** — the hot-path
/// contract of the serving and training layers.
///
/// [`TensorView`]: crate::TensorView
pub const MAX_RANK: usize = 4;

/// A tensor shape: the extent of each dimension (outermost first) plus
/// the element stride of each dimension.
///
/// Both arrays are stored inline (no heap) up to [`MAX_RANK`] dimensions.
/// A shape built by [`Shape::new`] is row-major (C order): the last
/// dimension is contiguous in memory. [`Shape::with_strides`] describes
/// any other layout — a transposed view swaps two strides, a broadcast
/// view sets a stride to zero — without moving data.
///
/// **Equality and hashing consider only the dimension extents**, never
/// the strides: a `[3, 4]` tensor and the transposed view of a `[4, 3]`
/// tensor have *equal shapes*, because shape identity is the logical
/// extent of the data, and strides are merely where it lives.
///
/// # Example
///
/// ```
/// use fluid_tensor::Shape;
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), &[12, 4, 1]);
/// assert!(s.is_contiguous());
///
/// let t = Shape::with_strides(&[4, 3], &[1, 4]); // a transposed layout
/// assert_eq!(t, Shape::new(&[4, 3]));            // equality ignores strides
/// assert!(!t.is_contiguous());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Shape {
    // Invariant: `dims[rank..]` and `strides[rank..]` are zero, so every
    // construction path produces one canonical form.
    dims: [usize; MAX_RANK],
    strides: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Creates a contiguous row-major shape from a slice of dimension
    /// extents.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() > MAX_RANK`.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "rank {} exceeds MAX_RANK {MAX_RANK}",
            dims.len()
        );
        let mut inline = [0usize; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        let mut strides = [0usize; MAX_RANK];
        if !dims.is_empty() {
            strides[dims.len() - 1] = 1;
            for i in (0..dims.len() - 1).rev() {
                strides[i] = strides[i + 1] * inline[i + 1];
            }
        }
        Self {
            dims: inline,
            strides,
            rank: dims.len(),
        }
    }

    /// Creates a shape with explicit per-dimension strides (in elements).
    ///
    /// This is the layout-describing constructor behind every zero-copy
    /// view: nothing is validated against a buffer here — bounds are the
    /// view constructors' job.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() != strides.len()` or the rank exceeds
    /// [`MAX_RANK`].
    pub fn with_strides(dims: &[usize], strides: &[usize]) -> Self {
        assert_eq!(
            dims.len(),
            strides.len(),
            "{} dims with {} strides",
            dims.len(),
            strides.len()
        );
        assert!(
            dims.len() <= MAX_RANK,
            "rank {} exceeds MAX_RANK {MAX_RANK}",
            dims.len()
        );
        let mut d = [0usize; MAX_RANK];
        let mut s = [0usize; MAX_RANK];
        d[..dims.len()].copy_from_slice(dims);
        s[..strides.len()].copy_from_slice(strides);
        Self {
            dims: d,
            strides: s,
            rank: dims.len(),
        }
    }

    /// The dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// The per-dimension strides, in elements.
    pub fn strides(&self) -> &[usize] {
        &self.strides[..self.rank]
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }

    /// `true` when the strides are exactly the row-major strides of the
    /// dims — i.e. the elements sit consecutively in C order.
    pub fn is_contiguous(&self) -> bool {
        let mut expect = 1usize;
        for i in (0..self.rank).rev() {
            if self.strides[i] != expect {
                return false;
            }
            expect *= self.dims[i];
        }
        true
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        assert!(
            i < self.rank,
            "dimension {i} out of range for rank {}",
            self.rank
        );
        self.dims[i]
    }

    /// Returns the shape with dimensions (and their strides) `a` and `b`
    /// swapped — the layout algebra of a zero-copy transpose.
    ///
    /// # Panics
    ///
    /// Panics if either axis is out of range.
    pub(crate) fn swapped(&self, a: usize, b: usize) -> Self {
        assert!(
            a < self.rank && b < self.rank,
            "swap axes ({a}, {b}) out of range for rank {}",
            self.rank
        );
        let mut out = *self;
        out.dims.swap(a, b);
        out.strides.swap(a, b);
        out
    }

    /// The largest flat offset reachable by any in-bounds index, plus one
    /// — the buffer length this layout requires. Zero when any extent is
    /// zero (the view is empty and touches nothing).
    pub(crate) fn required_len(&self) -> usize {
        if self.numel() == 0 {
            return 0;
        }
        let mut last = 0usize;
        for i in 0..self.rank {
            last += (self.dims[i] - 1) * self.strides[i];
        }
        last + 1
    }
}

// Equality/hashing over dims + rank only (see the type docs): two layouts
// of the same logical extents are the same shape. The canonical-zero
// invariant on `dims[rank..]` keeps this cheap.
impl PartialEq for Shape {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank && self.dims == other.dims
    }
}

impl Eq for Shape {}

impl std::hash::Hash for Shape {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.rank.hash(state);
        self.dims.hash(state);
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Total element count of a dims slice.
///
/// # Example
///
/// ```
/// assert_eq!(fluid_tensor::numel(&[2, 3]), 6);
/// ```
pub fn numel(dims: &[usize]) -> usize {
    dims.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), &[12, 4, 1]);
        assert!(s.is_contiguous());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert!(s.strides().is_empty());
        assert!(s.is_contiguous());
    }

    #[test]
    fn one_dim() {
        let s = Shape::new(&[7]);
        assert_eq!(s.numel(), 7);
        assert_eq!(s.strides(), &[1]);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }

    #[test]
    fn from_vec() {
        let s: Shape = vec![4, 5].into();
        assert_eq!(s.dims(), &[4, 5]);
    }

    #[test]
    fn zero_extent_dim_gives_zero_numel() {
        let s = Shape::new(&[3, 0, 2]);
        assert_eq!(s.numel(), 0);
        assert_eq!(s.required_len(), 0);
    }

    #[test]
    fn equality_ignores_trailing_storage() {
        // Different construction paths must canonicalise identically.
        assert_eq!(Shape::new(&[2, 3]), Shape::from(vec![2, 3]));
        assert_ne!(Shape::new(&[2, 3]), Shape::new(&[2, 3, 1]));
    }

    #[test]
    fn equality_ignores_strides() {
        // Shape identity is the logical extents; a transposed layout of
        // the same extents is the same shape.
        let contiguous = Shape::new(&[4, 3]);
        let transposed = Shape::with_strides(&[4, 3], &[1, 4]);
        assert_eq!(contiguous, transposed);
        assert!(!transposed.is_contiguous());
        // Hash must agree with Eq.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |s: &Shape| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&contiguous), h(&transposed));
    }

    #[test]
    fn swapped_exchanges_dims_and_strides() {
        let s = Shape::new(&[2, 3, 4]).swapped(1, 2);
        assert_eq!(s.dims(), &[2, 4, 3]);
        assert_eq!(s.strides(), &[12, 1, 4]);
        assert!(!s.is_contiguous());
    }

    #[test]
    fn required_len_covers_strided_layouts() {
        assert_eq!(Shape::new(&[2, 3]).required_len(), 6);
        // Transposed [3, 2] over the same 6-element buffer.
        assert_eq!(Shape::with_strides(&[3, 2], &[1, 3]).required_len(), 6);
        // Broadcast stride-0 row repeated 5 times still needs 3 elements.
        assert_eq!(Shape::with_strides(&[5, 3], &[0, 1]).required_len(), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_RANK")]
    fn rank_overflow_panics() {
        let _ = Shape::new(&[1, 2, 3, 4, 5]);
    }
}
