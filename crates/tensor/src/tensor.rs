//! The dense, row-major `f32` tensor.

use crate::shape::{numel, Shape};

/// A dense, row-major (C-order), heap-allocated `f32` tensor.
///
/// This is the single numeric container used throughout the workspace:
/// images are `[N, C, H, W]`, FC activations `[N, F]`, conv weights
/// `[C_out, C_in, K, K]`.
///
/// # Example
///
/// ```
/// use fluid_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.numel(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given dims.
    pub fn zeros(dims: &[usize]) -> Self {
        Self {
            shape: Shape::new(dims),
            data: vec![0.0; numel(dims)],
        }
    }

    /// Creates a tensor of ones with the given dims.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        Self {
            shape: Shape::new(dims),
            data: vec![value; numel(dims)],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(dims),
            "buffer of {} elements cannot form shape {:?}",
            data.len(),
            dims
        );
        Self {
            shape: Shape::new(dims),
            data,
        }
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n = numel(dims);
        let data = (0..n).map(&mut f).collect();
        Self {
            shape: Shape::new(dims),
            data,
        }
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.shape.dim(i)
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a reshaped copy sharing no storage.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        assert_eq!(
            self.numel(),
            numel(dims),
            "cannot reshape {} elements into {:?}",
            self.numel(),
            dims
        );
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// Reinterprets the shape in place (no data movement).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) {
        assert_eq!(
            self.numel(),
            numel(dims),
            "cannot reshape {} elements into {:?}",
            self.numel(),
            dims
        );
        self.shape = Shape::new(dims);
    }

    /// Element at a 2-D index `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the index is out of bounds.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        assert_eq!(
            self.shape.rank(),
            2,
            "at2 on rank-{} tensor",
            self.shape.rank()
        );
        let (rows, cols) = (self.dim(0), self.dim(1));
        assert!(r < rows && c < cols, "index ({r},{c}) out of {rows}x{cols}");
        self.data[r * cols + c]
    }

    /// Sets the element at a 2-D index `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the index is out of bounds.
    pub fn set2(&mut self, r: usize, c: usize, v: f32) {
        assert_eq!(
            self.shape.rank(),
            2,
            "set2 on rank-{} tensor",
            self.shape.rank()
        );
        let (rows, cols) = (self.dim(0), self.dim(1));
        assert!(r < rows && c < cols, "index ({r},{c}) out of {rows}x{cols}");
        self.data[r * cols + c] = v;
    }

    /// Element at a 4-D index `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or the index is out of bounds.
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        let d = self.dims();
        assert_eq!(d.len(), 4, "at4 on rank-{} tensor", d.len());
        assert!(
            n < d[0] && c < d[1] && h < d[2] && w < d[3],
            "index ({n},{c},{h},{w}) out of {:?}",
            d
        );
        self.data[((n * d[1] + c) * d[2] + h) * d[3] + w]
    }

    /// Sets the element at a 4-D index `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or the index is out of bounds.
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let d = self.dims().to_vec();
        assert_eq!(d.len(), 4, "set4 on rank-{} tensor", d.len());
        assert!(
            n < d[0] && c < d[1] && h < d[2] && w < d[3],
            "index ({n},{c},{h},{w}) out of {:?}",
            d
        );
        self.data[((n * d[1] + c) * d[2] + h) * d[3] + w] = v;
    }

    /// Extracts channels `[lo, hi)` of an `[N, C, H, W]` tensor.
    ///
    /// Used for fluid block slicing: branch inputs are channel ranges of the
    /// previous layer's output.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or the range is invalid.
    pub fn slice_channels(&self, lo: usize, hi: usize) -> Tensor {
        let d = self.dims();
        assert_eq!(d.len(), 4, "slice_channels on rank-{} tensor", d.len());
        assert!(
            lo <= hi && hi <= d[1],
            "channel range {lo}..{hi} out of 0..{}",
            d[1]
        );
        let (n, _c, h, w) = (d[0], d[1], d[2], d[3]);
        let cw = hi - lo;
        let mut out = Tensor::zeros(&[n, cw, h, w]);
        let plane = h * w;
        for i in 0..n {
            let src_base = (i * d[1] + lo) * plane;
            let dst_base = i * cw * plane;
            out.data[dst_base..dst_base + cw * plane]
                .copy_from_slice(&self.data[src_base..src_base + cw * plane]);
        }
        out
    }

    /// Extracts columns `[lo, hi)` of an `[N, F]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the range is invalid.
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Tensor {
        let d = self.dims();
        assert_eq!(d.len(), 2, "slice_cols on rank-{} tensor", d.len());
        assert!(
            lo <= hi && hi <= d[1],
            "column range {lo}..{hi} out of 0..{}",
            d[1]
        );
        let (n, f) = (d[0], d[1]);
        let w = hi - lo;
        let mut out = Tensor::zeros(&[n, w]);
        for i in 0..n {
            out.data[i * w..(i + 1) * w].copy_from_slice(&self.data[i * f + lo..i * f + hi]);
        }
        out
    }

    /// Borrowed view of row `r` of an `[N, F]` tensor — no copy.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        self.rows(r, r + 1)
    }

    /// Borrowed view of rows `[lo, hi)` of an `[N, F]` tensor — no copy.
    ///
    /// Sugar for a first-axis [`TensorView::slice`] flattened back to the
    /// contiguous storage it windows (a leading-axis slice of a dense
    /// tensor is always contiguous); hot paths that want a `&[f32]`
    /// (mini-batch gathering, wire serialisation) keep this shorthand,
    /// the general machinery lives on [`Tensor::view`].
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the range is invalid.
    ///
    /// [`TensorView::slice`]: crate::TensorView::slice
    pub fn rows(&self, lo: usize, hi: usize) -> &[f32] {
        let d = self.dims();
        assert_eq!(d.len(), 2, "rows on rank-{} tensor", d.len());
        let v = self
            .view()
            .slice(0, lo, hi)
            .unwrap_or_else(|_| panic!("row range {lo}..{hi} out of 0..{}", d[0]));
        v.contiguous_data()
            .expect("leading-axis slice of a dense tensor is contiguous")
    }

    /// Borrowed view of example `i` along the first axis of any tensor of
    /// rank ≥ 1 (e.g. one `[C, H, W]` image of an `[N, C, H, W]` batch) —
    /// no copy. Like [`rows`](Tensor::rows), this is first-axis
    /// [`TensorView::slice`] sugar returning the contiguous storage.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank 0 or `i` is out of range.
    ///
    /// [`TensorView::slice`]: crate::TensorView::slice
    pub fn example(&self, i: usize) -> &[f32] {
        let d = self.dims();
        assert!(!d.is_empty(), "example on rank-0 tensor");
        let v = self
            .view()
            .slice(0, i, i + 1)
            .unwrap_or_else(|_| panic!("example {i} out of {}", d[0]));
        v.contiguous_data()
            .expect("leading-axis slice of a dense tensor is contiguous")
    }

    /// Extracts rows `[lo, hi)` of an `[N, F]` tensor as a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the range is invalid.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Tensor {
        let data = self.rows(lo, hi).to_vec();
        Tensor::from_vec(data, &[hi - lo, self.dim(1)])
    }

    /// Concatenates `[N, C, H, W]` tensors along the channel axis.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or shapes disagree outside the channel axis.
    pub fn cat_channels(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "cat_channels of zero tensors");
        let d0 = parts[0].dims();
        assert_eq!(d0.len(), 4, "cat_channels on rank-{} tensor", d0.len());
        let (n, h, w) = (d0[0], d0[2], d0[3]);
        let mut c_total = 0;
        for p in parts {
            let d = p.dims();
            assert_eq!(d.len(), 4, "cat_channels part of rank {}", d.len());
            assert_eq!((d[0], d[2], d[3]), (n, h, w), "cat_channels shape mismatch");
            c_total += d[1];
        }
        let mut out = Tensor::zeros(&[n, c_total, h, w]);
        let plane = h * w;
        for i in 0..n {
            let mut c_off = 0;
            for p in parts {
                let pc = p.dim(1);
                let src = &p.data[i * pc * plane..(i + 1) * pc * plane];
                let dst_base = (i * c_total + c_off) * plane;
                out.data[dst_base..dst_base + pc * plane].copy_from_slice(src);
                c_off += pc;
            }
        }
        out
    }

    /// Returns a transposed copy of a rank-2 tensor.
    ///
    /// Materialised via the zero-copy view: the copy here is the point of
    /// the method. When a transposed *operand* is all that's needed,
    /// `t.view().transpose()` skips the copy entirely.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Tensor {
        let d = self.dims();
        assert_eq!(d.len(), 2, "transpose on rank-{} tensor", d.len());
        self.view().transpose().to_tensor()
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// `true` when every element is within `tol` of `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.max_abs_diff(other) <= tol
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor (`[0]`).
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        let show = self.data.len().min(8);
        for (i, v) in self.data[..show].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > show {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 2]);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full(&[3], 2.5);
        assert!(f.data().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn eye_diagonal() {
        let e = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(e.at2(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot form shape")]
    fn from_vec_wrong_len_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::from_fn(&[2, 6], |i| i as f32);
        let r = t.reshape(&[3, 4]);
        assert_eq!(r.dims(), &[3, 4]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_bad_count_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.reshape(&[5]);
    }

    #[test]
    fn at4_layout_is_nchw() {
        let t = Tensor::from_fn(&[2, 3, 4, 5], |i| i as f32);
        assert_eq!(t.at4(0, 0, 0, 0), 0.0);
        assert_eq!(t.at4(0, 0, 0, 1), 1.0);
        assert_eq!(t.at4(0, 0, 1, 0), 5.0);
        assert_eq!(t.at4(0, 1, 0, 0), 20.0);
        assert_eq!(t.at4(1, 0, 0, 0), 60.0);
    }

    #[test]
    fn slice_channels_matches_at4() {
        let t = Tensor::from_fn(&[2, 4, 3, 3], |i| i as f32);
        let s = t.slice_channels(1, 3);
        assert_eq!(s.dims(), &[2, 2, 3, 3]);
        for n in 0..2 {
            for c in 0..2 {
                for h in 0..3 {
                    for w in 0..3 {
                        assert_eq!(s.at4(n, c, h, w), t.at4(n, c + 1, h, w));
                    }
                }
            }
        }
    }

    #[test]
    fn cat_channels_inverts_slice() {
        let t = Tensor::from_fn(&[2, 4, 3, 3], |i| (i as f32).sin());
        let lo = t.slice_channels(0, 2);
        let hi = t.slice_channels(2, 4);
        let back = Tensor::cat_channels(&[&lo, &hi]);
        assert_eq!(back, t);
    }

    #[test]
    fn slice_cols_matches_at2() {
        let t = Tensor::from_fn(&[3, 5], |i| i as f32);
        let s = t.slice_cols(1, 4);
        assert_eq!(s.dims(), &[3, 3]);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(s.at2(r, c), t.at2(r, c + 1));
            }
        }
    }

    #[test]
    fn slice_rows_basic() {
        let t = Tensor::from_fn(&[4, 2], |i| i as f32);
        let s = t.slice_rows(1, 3);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.data(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn row_views_borrow_without_copying() {
        let t = Tensor::from_fn(&[4, 2], |i| i as f32);
        assert_eq!(t.row(1), &[2.0, 3.0]);
        assert_eq!(t.rows(1, 3), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.rows(2, 2), &[] as &[f32]);
        // The view aliases the tensor's own storage.
        assert_eq!(t.rows(0, 4).as_ptr(), t.data().as_ptr());
    }

    #[test]
    fn example_views_first_axis() {
        let t = Tensor::from_fn(&[3, 2, 2, 2], |i| i as f32);
        assert_eq!(
            t.example(1),
            &[8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0]
        );
        assert_eq!(t.example(0).len(), 8);
    }

    #[test]
    #[should_panic(expected = "row range")]
    fn rows_out_of_range_panics() {
        let _ = Tensor::zeros(&[2, 2]).rows(1, 3);
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor::from_fn(&[3, 4], |i| i as f32 * 0.5);
        assert_eq!(t.transpose().transpose(), t);
        assert_eq!(t.transpose().at2(2, 1), t.at2(1, 2));
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::full(&[3], 1.0);
        let mut b = a.clone();
        b.data_mut()[1] = 1.0005;
        assert!(a.allclose(&b, 1e-3));
        assert!(!a.allclose(&b, 1e-4));
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(&[100]);
        let s = t.to_string();
        assert!(s.contains('…'));
    }
}
