//! Per-channel symmetric int8 quantization and the packed int8 GEMM.
//!
//! The quantized inference path runs the same BLIS-style loop nest as the
//! f32 engine, but with `i8` operand panels, `i32` accumulation, and an
//! f32 dequantizing epilogue:
//!
//! * **Weights** (the left operand) are quantized **once**, per output
//!   channel (row), with symmetric scales `s_i = max|row_i| / 127`, and
//!   pre-packed into k-paired panels by [`QuantizedMatrix::from_rows`].
//! * **Activations** (the right operand) are quantized **during packing**
//!   with a single per-tensor scale calibrated offline (see
//!   `fluid_models::calibrate`), reusing the f32 engine's gather paths —
//!   including the implicit-`im2col` [`PatchMatrix`] — so convolution
//!   stays matrix-free in int8 too.
//! * The microkernel ([`crate::simd`], runtime-dispatched like the f32
//!   one) accumulates in `i32`, which is **exact**: no rounding happens
//!   between the quantize and the dequantize, so results are bit-identical
//!   at any thread count, any blocking, and under any dispatch decision —
//!   a strictly stronger determinism claim than the f32 engine's.
//! * The epilogue writes `out[i, j] = acc[i, j] · s_a[i] · s_b` (and the
//!   caller folds in bias afterwards, in f32).
//!
//! ## Packed layout (k-pairs)
//!
//! AVX2's `_mm256_madd_epi16` multiplies adjacent `i16` lanes and adds
//! the pair — two k steps per instruction. Panels are therefore packed in
//! k-pairs: the A panel holds `MR` rows × 2 adjacent k values per step
//! (`a[kk2*2*MR + r*2 + t]`), the B strip [`simd::NR_I8`] columns × 2
//! (`b[kk2*2*NR_I8 + c*2 + t]`); an odd trailing k packs a zero partner,
//! which is exact in integer arithmetic.
//!
//! ## Overflow
//!
//! `|q| ≤ 127`, so one product is ≤ 16129 and an `i32` accumulator is
//! safe for any `k ≤ 2³¹/127² ≈ 133 000` — asserted, and far beyond this
//! workspace's layer sizes.

use crate::gemm::{pack_b_strip, AccessB, PatchMatrix, KC, MR, NC};
use crate::pool;
use crate::simd;
use crate::workspace::Workspace;

/// int8 strip width (fixed across int8 kernel variants).
const NR8: usize = simd::NR_I8;

/// Largest reduction depth the `i32` accumulator provably cannot
/// overflow at (`2³¹ / 127²`, rounded down generously).
pub const MAX_QUANT_K: usize = 130_000;

/// The symmetric per-channel scale for values with the given max
/// magnitude: `max / 127`, with an exact all-zero fallback of 1.0 (every
/// quantized value is then 0 and dequantizes to exactly 0.0).
pub fn symmetric_scale(max_abs: f32) -> f32 {
    if max_abs > 0.0 && max_abs.is_finite() {
        max_abs / 127.0
    } else {
        1.0
    }
}

/// Largest magnitude in `xs` (0.0 for an empty slice; NaNs ignored).
pub fn max_abs(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &x| {
        let a = x.abs();
        if a > m {
            a
        } else {
            m
        }
    })
}

/// Quantizes one value: round-to-nearest (ties to even — the rounding
/// `cvtps` performs, so the SIMD quantize pass is bit-identical) of
/// `x / scale` (passed as `inv_scale = 1/scale`), clamped to the
/// symmetric range `[-127, 127]` (−128 is never produced, keeping
/// negation exact). Quantizing a non-finite value is unspecified.
#[inline]
pub fn quantize(x: f32, inv_scale: f32) -> i8 {
    (x * inv_scale).round_ties_even().clamp(-127.0, 127.0) as i8
}

/// A per-row symmetrically quantized matrix, pre-packed for the int8
/// engine: the persistent (weights) side of every quantized product.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    /// k-paired panels, KC-block-major then panel-major (see module docs).
    data: Vec<i8>,
    /// Per-row dequantization scales (`len == m`).
    scales: Vec<f32>,
    m: usize,
    k: usize,
}

impl QuantizedMatrix {
    /// Quantizes a row-major `[m, k]` f32 matrix per row and packs it.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != m * k` or `k > MAX_QUANT_K`.
    pub fn from_rows(a: &[f32], m: usize, k: usize) -> Self {
        assert_eq!(
            a.len(),
            m * k,
            "matrix of {} elements is not [{m}, {k}]",
            a.len()
        );
        assert!(k <= MAX_QUANT_K, "k={k} could overflow the i32 accumulator");
        let scales: Vec<f32> = (0..m)
            .map(|i| symmetric_scale(max_abs(&a[i * k..(i + 1) * k])))
            .collect();
        let panels = m.div_ceil(MR);
        let mut data = Vec::with_capacity(panels * MR * k.div_ceil(2) * 2);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            let kc2 = kc.div_ceil(2);
            for p in 0..panels {
                for kk2 in 0..kc2 {
                    for r in 0..MR {
                        for t in 0..2 {
                            let i = p * MR + r;
                            let kidx = pc + kk2 * 2 + t;
                            data.push(if i < m && kidx < pc + kc {
                                quantize(a[i * k + kidx], 1.0 / scales[i])
                            } else {
                                0
                            });
                        }
                    }
                }
            }
            pc += kc;
        }
        Self { data, scales, m, k }
    }

    /// Output rows.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Reduction depth.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Per-row dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Dequantizes element `(i, p)` — test/inspection path, not the hot
    /// one (it walks the packed layout).
    pub fn dequantize_at(&self, i: usize, p: usize) -> f32 {
        assert!(i < self.m && p < self.k);
        let panels = self.m.div_ceil(MR);
        let mut off = 0;
        let mut pc = 0;
        while pc < self.k {
            let kc = KC.min(self.k - pc);
            let kc2 = kc.div_ceil(2);
            if p < pc + kc {
                let rel = p - pc;
                let idx =
                    off + (i / MR) * kc2 * MR * 2 + (rel / 2) * MR * 2 + (i % MR) * 2 + (rel % 2);
                return f32::from(self.data[idx]) * self.scales[i];
            }
            off += panels * kc2 * MR * 2;
            pc += kc;
        }
        unreachable!()
    }
}

/// How the int8 engine reads the f32 activation operand `B[p, j]`
/// (`k × n` logically) before quantize-on-pack.
#[derive(Clone, Copy)]
pub enum QuantSrcB<'a> {
    /// Stored row-major `[k, n]`.
    RowMajor(&'a [f32]),
    /// Stored `[n, k]`, read transposed (the FC layout: rows are
    /// examples, so the product comes out `[out, n]`).
    Cols(&'a [f32]),
    /// An arbitrary strided layout — a [`crate::TensorView`]'s storage
    /// plus its two rank-2 strides, so transposed/sliced activation
    /// windows quantize without materialising.
    Strided {
        /// Base storage; element `B[p, j]` lives at `data[p*rs + j*cs]`.
        data: &'a [f32],
        /// Elements between `B[p, j]` and `B[p+1, j]`.
        rs: usize,
        /// Elements between `B[p, j]` and `B[p, j+1]`.
        cs: usize,
    },
    /// The implicit `im2col` patch matrix (quantized convolution).
    Patches(&'a PatchMatrix<'a>),
}

impl<'a> QuantSrcB<'a> {
    /// Lowers to the shared engine access: every layout is a strided
    /// gather except the patch matrix. `n`/`k` are the logical operand
    /// extents (`B` is `k × n`).
    fn access(self, n: usize, k: usize) -> AccessB<'a> {
        match self {
            QuantSrcB::RowMajor(d) => AccessB::row_major(d, n),
            QuantSrcB::Cols(d) => AccessB::strided(d, 1, k),
            QuantSrcB::Strided { data, rs, cs } => AccessB::strided(data, rs, cs),
            QuantSrcB::Patches(p) => AccessB::Patches(p),
        }
    }
}

/// `out[m × n] = dequant(QA · quant(B))`: the int8 packed-panel GEMM.
///
/// `b_scale` is the activation tensor's calibrated symmetric scale; the
/// right operand is quantized with `1/b_scale` while packing. `out` is
/// fully overwritten. Scratch is drawn from (and recycled into) `ws`, so
/// a steady-state call performs no heap allocation.
///
/// # Panics
///
/// Panics if `out.len() != m * n` or the operand shapes disagree.
pub fn qgemm_ws(
    qa: &QuantizedMatrix,
    b: QuantSrcB<'_>,
    b_scale: f32,
    n: usize,
    out: &mut [f32],
    ws: &mut Workspace,
) {
    let (m, k) = (qa.m, qa.k);
    assert_eq!(
        out.len(),
        m * n,
        "output of {} elements is not [{m}, {n}]",
        out.len()
    );
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let kern = simd::active_i8();
    let kc_max = KC.min(k);
    let nc_cap = NC.min(n.div_ceil(NR8) * NR8);
    let inv_b = 1.0 / b_scale;
    let access = b.access(n, k);

    let qkern = simd::active_quant();
    // Dirty is fine: the first depth block *stores* its tiles, so every
    // accumulator element is written before it is ever read.
    let mut acc32 = ws.take_dirty_i32(m * n);
    let mut b_pack = ws.take_dirty_i8(nc_cap * kc_max.div_ceil(2) * 2);

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let strips = nc.div_ceil(NR8);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            let kc2 = kc.div_ceil(2);
            // Gather-and-quantize, fused per strip: each task gathers one
            // f32 strip through the shared engine paths (row-major,
            // transposed, implicit im2col) into a stack buffer — still
            // L1-hot when the dispatched quantize kernel packs it into the
            // k-paired i8 layout. One parallel pass, no f32 scratch heap.
            let q_slice = &mut b_pack[..strips * kc2 * 2 * NR8];
            pool::parallel_rows_mut(q_slice, kc2 * 2 * NR8, 2, |srange, block| {
                let mut f = [0.0f32; KC * NR8];
                for (bi, s) in srange.enumerate() {
                    pack_b_strip(access, n, jc + s * NR8, pc, kc, NR8, &mut f[..kc * NR8]);
                    (qkern.run)(
                        &f[..kc * NR8],
                        kc,
                        inv_b,
                        &mut block[bi * kc2 * 2 * NR8..][..kc2 * 2 * NR8],
                    );
                }
            });

            // Accumulate tiles into the i32 output; exact, so the
            // parallel split over panels is invisible to the results.
            let a_block = qa.block_panels(pc);
            let full_rows = (m / MR) * MR;
            let (head, tail) = acc32.split_at_mut(full_rows * n);
            let q_slice = &b_pack[..strips * kc2 * 2 * NR8];
            let first = pc == 0;
            if !head.is_empty() {
                pool::parallel_rows_mut(head, MR * n, 1, |prange, block| {
                    for (bi, p) in prange.enumerate() {
                        compute_panel_i8(
                            kern,
                            &a_block[p * kc2 * 2 * MR..][..kc2 * 2 * MR],
                            q_slice,
                            &mut block[bi * MR * n..][..MR * n],
                            MR,
                            n,
                            nc,
                            jc,
                            kc2,
                            first,
                        );
                    }
                });
            }
            if !tail.is_empty() {
                let p = full_rows / MR;
                compute_panel_i8(
                    kern,
                    &a_block[p * kc2 * 2 * MR..][..kc2 * 2 * MR],
                    q_slice,
                    tail,
                    m - full_rows,
                    n,
                    nc,
                    jc,
                    kc2,
                    first,
                );
            }
            pc += kc;
        }
        jc += nc;
    }

    // Dequantizing epilogue: one multiply per element, row scales from
    // the weights, one tensor scale from the activations.
    let acc = &acc32[..];
    let scales = &qa.scales[..];
    pool::parallel_rows_mut(out, n, 8, |rows, block| {
        for (bi, i) in rows.enumerate() {
            let s = scales[i] * b_scale;
            let src = &acc[i * n..(i + 1) * n];
            for (o, &v) in block[bi * n..(bi + 1) * n].iter_mut().zip(src) {
                *o = v as f32 * s;
            }
        }
    });

    ws.recycle_i32(acc32);
    ws.recycle_i8(b_pack);
}

impl QuantizedMatrix {
    /// The packed panels of the KC block starting at depth `pc`.
    fn block_panels(&self, pc: usize) -> &[i8] {
        let panels = self.m.div_ceil(MR);
        let mut off = 0;
        let mut start = 0;
        while start < pc {
            let kc = KC.min(self.k - start);
            off += panels * kc.div_ceil(2) * MR * 2;
            start += kc;
        }
        let kc = KC.min(self.k - pc);
        &self.data[off..off + panels * kc.div_ceil(2) * MR * 2]
    }
}

/// One packed i8 A panel against every strip of the current column slice.
/// The first depth block **stores** its exact i32 tiles (letting the
/// accumulator start dirty); later blocks add. Exact either way, so the
/// parallel split over panels is invisible to the results.
#[allow(clippy::too_many_arguments)]
fn compute_panel_i8(
    kern: &simd::KernelI8,
    a_panel: &[i8],
    b_slice: &[i8],
    acc_rows: &mut [i32],
    rows: usize,
    n: usize,
    nc: usize,
    jc: usize,
    kc2: usize,
    first: bool,
) {
    let strips = nc.div_ceil(NR8);
    let mut tile = [0i32; simd::ACC_I8];
    for s in 0..strips {
        let b_strip = &b_slice[s * kc2 * 2 * NR8..][..kc2 * 2 * NR8];
        (kern.run)(a_panel, b_strip, &mut tile);
        let j0 = jc + s * NR8;
        let cols = NR8.min(n - j0).min(nc - s * NR8);
        for r in 0..rows {
            let row = &mut acc_rows[r * n + j0..r * n + j0 + cols];
            let t = &tile[r * NR8..r * NR8 + cols];
            if first {
                row.copy_from_slice(t);
            } else {
                for (o, &v) in row.iter_mut().zip(t) {
                    *o += v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Prng;

    fn randv(seed: u64, len: usize, lo: f32, hi: f32) -> Vec<f32> {
        let mut rng = Prng::new(seed);
        (0..len).map(|_| rng.uniform(lo, hi)).collect()
    }

    /// Plain integer reference: quantize both operands the same way, then
    /// an exact i32 triple loop and the dequant epilogue.
    fn reference(
        a: &[f32],
        b_logical: impl Fn(usize, usize) -> f32,
        m: usize,
        k: usize,
        n: usize,
        b_scale: f32,
    ) -> Vec<f32> {
        let scales: Vec<f32> = (0..m)
            .map(|i| symmetric_scale(max_abs(&a[i * k..(i + 1) * k])))
            .collect();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for p in 0..k {
                    let qa = i32::from(quantize(a[i * k + p], 1.0 / scales[i]));
                    let qb = i32::from(quantize(b_logical(p, j), 1.0 / b_scale));
                    acc += qa * qb;
                }
                out[i * n + j] = acc as f32 * (scales[i] * b_scale);
            }
        }
        out
    }

    #[test]
    fn round_trip_error_is_within_half_scale_per_channel() {
        // The satellite bound: |x - dequant(quant(x))| ≤ scale/2 for every
        // element, per channel (scales are per-row).
        let (m, k) = (9, 173);
        let a = randv(11, m * k, -3.0, 3.0);
        let qm = QuantizedMatrix::from_rows(&a, m, k);
        for i in 0..m {
            let s = qm.scales()[i];
            for p in 0..k {
                let err = (a[i * k + p] - qm.dequantize_at(i, p)).abs();
                assert!(
                    err <= s / 2.0 + 1e-7,
                    "row {i} depth {p}: err {err} > {}",
                    s / 2.0
                );
            }
        }
    }

    #[test]
    fn zero_row_gets_exact_zero_round_trip() {
        let mut a = randv(3, 4 * 10, -1.0, 1.0);
        for v in &mut a[10..20] {
            *v = 0.0;
        }
        let qm = QuantizedMatrix::from_rows(&a, 4, 10);
        for p in 0..10 {
            assert_eq!(qm.dequantize_at(1, p), 0.0);
        }
    }

    #[test]
    fn qgemm_matches_integer_reference_on_ragged_shapes() {
        // Ragged in every direction, k spanning multiple KC blocks and
        // exercising the odd-k zero partner.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 8, 8),
            (7, 2 * KC + 37, 19),
            (10, 144, 50),
            (5, 61, 17),
        ] {
            let a = randv(m as u64 + 100, m * k, -2.0, 2.0);
            let b = randv(n as u64 + 200, k * n, -1.5, 1.5);
            let b_scale = symmetric_scale(max_abs(&b));
            let qa = QuantizedMatrix::from_rows(&a, m, k);
            let mut ws = Workspace::new();
            let mut out = vec![f32::NAN; m * n];
            qgemm_ws(&qa, QuantSrcB::RowMajor(&b), b_scale, n, &mut out, &mut ws);
            let want = reference(&a, |p, j| b[p * n + j], m, k, n, b_scale);
            assert_eq!(out, want, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn cols_layout_matches_row_major() {
        let (m, k, n) = (10, 45, 13);
        let a = randv(7, m * k, -1.0, 1.0);
        let b = randv(8, k * n, -1.0, 1.0); // logical [k, n]
        let mut bt = vec![0.0f32; n * k]; // stored [n, k]
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let b_scale = symmetric_scale(max_abs(&b));
        let qa = QuantizedMatrix::from_rows(&a, m, k);
        let mut ws = Workspace::new();
        let mut want = vec![0.0f32; m * n];
        qgemm_ws(&qa, QuantSrcB::RowMajor(&b), b_scale, n, &mut want, &mut ws);
        let mut got = vec![0.0f32; m * n];
        qgemm_ws(&qa, QuantSrcB::Cols(&bt), b_scale, n, &mut got, &mut ws);
        assert_eq!(got, want);
    }

    #[test]
    fn strided_view_layout_matches_row_major() {
        // A transposed TensorView of the activations feeds the same
        // quantize-on-pack path as the named layouts — bit-identically.
        let (m, k, n) = (6, 52, 11);
        let a = randv(21, m * k, -1.0, 1.0);
        let b = randv(22, k * n, -1.0, 1.0); // logical [k, n]
        let bt = crate::tensor::Tensor::from_fn(&[n, k], |i| b[(i % k) * n + i / k]);
        let view = bt.view().transpose(); // logical [k, n] again
        let b_scale = symmetric_scale(max_abs(&b));
        let qa = QuantizedMatrix::from_rows(&a, m, k);
        let mut ws = Workspace::new();
        let mut want = vec![0.0f32; m * n];
        qgemm_ws(&qa, QuantSrcB::RowMajor(&b), b_scale, n, &mut want, &mut ws);
        let mut got = vec![0.0f32; m * n];
        let src = QuantSrcB::Strided {
            data: bt.data(),
            rs: view.strides()[0],
            cs: view.strides()[1],
        };
        qgemm_ws(&qa, src, b_scale, n, &mut got, &mut ws);
        assert_eq!(got, want);
    }

    #[test]
    fn steady_state_qgemm_reuses_scratch() {
        let (m, k, n) = (16, 300, 24);
        let a = randv(6, m * k, -1.0, 1.0);
        let b = randv(7, k * n, -1.0, 1.0);
        let qa = QuantizedMatrix::from_rows(&a, m, k);
        let mut ws = Workspace::new();
        let mut out = vec![0.0f32; m * n];
        qgemm_ws(&qa, QuantSrcB::RowMajor(&b), 0.01, n, &mut out, &mut ws);
        let held = ws.buffers_held();
        assert_eq!(held, 2, "i32 acc + i8 pack must recycle");
        let first = out.clone();
        out.fill(f32::NAN);
        qgemm_ws(&qa, QuantSrcB::RowMajor(&b), 0.01, n, &mut out, &mut ws);
        assert_eq!(ws.buffers_held(), held, "second run must reuse, not grow");
        assert_eq!(out, first, "reuse changed the result");
    }
}
