//! Reductions, softmax and argmax.
//!
//! Structured reductions are partitioned over their *output* elements
//! (columns, channels, rows), so each output's accumulation order matches
//! the serial reference exactly and results are bit-identical at any
//! thread count. Whole-tensor scalar reductions ([`Tensor::sum`] and
//! friends) stay serial — splitting them would reorder the float sum.

use crate::pool;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn mean(&self) -> f32 {
        assert!(self.numel() > 0, "mean of empty tensor");
        self.sum() / self.numel() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max(&self) -> f32 {
        assert!(self.numel() > 0, "max of empty tensor");
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Column-wise sum of an `[N, F]` tensor → `[F]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_rows(&self) -> Tensor {
        self.sum_rows_ws(&mut Workspace::new())
    }

    /// [`sum_rows`](Tensor::sum_rows) with the output drawn from `ws`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_rows_ws(&self, ws: &mut Workspace) -> Tensor {
        let d = self.dims();
        assert_eq!(d.len(), 2, "sum_rows on rank-{} tensor", d.len());
        let (n, f) = (d[0], d[1]);
        let mut out = ws.tensor_zeroed(&[f]);
        let src = self.data();
        // Partitioned over output columns; each column still accumulates
        // its rows in ascending order, exactly like the serial loop.
        pool::parallel_rows_mut(out.data_mut(), 1, 64, |cols, block| {
            for r in 0..n {
                let row = &src[r * f..(r + 1) * f];
                for (o, c) in block.iter_mut().zip(cols.clone()) {
                    *o += row[c];
                }
            }
        });
        out
    }

    /// Per-channel sum of an `[N, C, H, W]` tensor → `[C]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4.
    pub fn sum_per_channel(&self) -> Tensor {
        self.sum_per_channel_ws(&mut Workspace::new())
    }

    /// [`sum_per_channel`](Tensor::sum_per_channel) with the output drawn
    /// from `ws`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4.
    pub fn sum_per_channel_ws(&self, ws: &mut Workspace) -> Tensor {
        let d = self.dims();
        assert_eq!(d.len(), 4, "sum_per_channel on rank-{} tensor", d.len());
        let plane = d[2] * d[3];
        let (batch, channels) = (d[0], d[1]);
        let mut out = ws.tensor_zeroed(&[channels]);
        let src = self.data();
        // Partitioned over output channels; per channel the image order (and
        // the within-plane order) matches the serial reference.
        pool::parallel_rows_mut(out.data_mut(), 1, 4, |chans, block| {
            for n in 0..batch {
                for (o, c) in block.iter_mut().zip(chans.clone()) {
                    let base = (n * channels + c) * plane;
                    *o += src[base..base + plane].iter().sum::<f32>();
                }
            }
        });
        out
    }

    /// Row-wise numerically-stable softmax of an `[N, F]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero columns.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        out.softmax_rows_in_place();
        out
    }

    /// Row-wise numerically-stable softmax, computed in place (the
    /// zero-allocation sibling of [`softmax_rows`](Tensor::softmax_rows)).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero columns.
    pub fn softmax_rows_in_place(&mut self) {
        let d = self.dims();
        assert_eq!(d.len(), 2, "softmax_rows on rank-{} tensor", d.len());
        assert!(d[1] > 0, "softmax over zero classes");
        let f = d[1];
        pool::parallel_rows_mut(self.data_mut(), f, 16, |_, block| {
            for row in block.chunks_mut(f) {
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut z = 0.0;
                for x in row.iter_mut() {
                    *x = (*x - m).exp();
                    z += *x;
                }
                for x in row.iter_mut() {
                    *x /= z;
                }
            }
        });
    }

    /// Row-wise argmax of an `[N, F]` tensor (first max wins on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let d = self.dims();
        assert_eq!(d.len(), 2, "argmax_rows on rank-{} tensor", d.len());
        assert!(d[1] > 0, "argmax over zero classes");
        let (n, f) = (d[0], d[1]);
        let src = self.data();
        let mut out = vec![0usize; n];
        pool::parallel_rows_mut(&mut out, 1, 64, |rows, block| {
            for (o, r) in block.iter_mut().zip(rows) {
                let row = &src[r * f..(r + 1) * f];
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                *o = best;
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_mean_max() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -4.0], &[4]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
    }

    #[test]
    fn sum_rows_columnwise() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.sum_rows().data(), &[4.0, 6.0]);
    }

    #[test]
    fn sum_per_channel_basic() {
        let t = Tensor::from_fn(&[2, 2, 1, 2], |i| i as f32);
        // channel 0: images (0,1) and (4,5) -> 10; channel 1: (2,3)+(6,7) -> 18
        assert_eq!(t.sum_per_channel().data(), &[10.0, 18.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| s.at2(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Huge logits must not overflow (numerical stability).
        assert!((s.at2(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_order_preserved() {
        let t = Tensor::from_vec(vec![0.1, 2.0, -1.0], &[1, 3]);
        let s = t.softmax_rows();
        assert!(s.at2(0, 1) > s.at2(0, 0));
        assert!(s.at2(0, 0) > s.at2(0, 2));
    }

    #[test]
    fn argmax_rows_first_tie_wins() {
        let t = Tensor::from_vec(vec![5.0, 5.0, 1.0, 0.0, 2.0, 2.0], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "mean of empty tensor")]
    fn mean_empty_panics() {
        let _ = Tensor::zeros(&[0]).mean();
    }
}
