//! Property-based tests for the tensor kernels.

use fluid_tensor::{col2im, im2col, Conv2dGeometry, Prng, Tensor};
use proptest::prelude::*;

fn arb_tensor(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, &[r, c]))
    })
}

proptest! {
    #[test]
    fn matmul_identity_right(a in arb_tensor(8)) {
        let id = Tensor::eye(a.dim(1));
        prop_assert!(a.matmul(&id).allclose(&a, 1e-5));
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in arb_tensor(6),
        seed in 0u64..1000,
    ) {
        let mut rng = Prng::new(seed);
        let k = a.dim(1);
        let b = Tensor::from_fn(&[k, 4], |_| rng.uniform(-5.0, 5.0));
        let c = Tensor::from_fn(&[k, 4], |_| rng.uniform(-5.0, 5.0));
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.allclose(&rhs, 1e-2), "diff {}", lhs.max_abs_diff(&rhs));
    }

    #[test]
    fn transposed_lhs_view_matmul_consistent(a in arb_tensor(6), seed in 0u64..1000) {
        // A zero-copy transposed view must multiply bit-identically to the
        // materialised transpose: packing reads the same logical elements
        // in the same order either way.
        let mut rng = Prng::new(seed);
        let b = Tensor::from_fn(&[a.dim(0), 3], |_| rng.uniform(-5.0, 5.0));
        let lhs = a.view().t().matmul(&b.view());
        let rhs = a.transpose().matmul(&b);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn transposed_rhs_view_matmul_consistent(a in arb_tensor(6), seed in 0u64..1000) {
        let mut rng = Prng::new(seed);
        let b = Tensor::from_fn(&[3, a.dim(1)], |_| rng.uniform(-5.0, 5.0));
        let lhs = a.view().matmul(&b.view().t());
        let rhs = a.matmul(&b.transpose());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn broadcast_add_matches_explicit_tiling(
        n in 1usize..8, f in 1usize..16, seed in 0u64..1000,
    ) {
        let mut rng = Prng::new(seed);
        let x = Tensor::from_fn(&[n, f], |_| rng.uniform(-5.0, 5.0));
        let bias = Tensor::from_fn(&[f], |_| rng.uniform(-5.0, 5.0));
        let tiled = Tensor::from_fn(&[n, f], |i| bias.data()[i % f]);
        let lhs = x.view().add(&bias.view()).unwrap();
        let rhs = x.add(&tiled);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn transpose_involution(a in arb_tensor(10)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_are_distributions(a in arb_tensor(8)) {
        let s = a.softmax_rows();
        for r in 0..s.dim(0) {
            let sum: f32 = (0..s.dim(1)).map(|c| s.at2(r, c)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            for c in 0..s.dim(1) {
                prop_assert!(s.at2(r, c) >= 0.0);
            }
        }
    }

    #[test]
    fn softmax_shift_invariant(a in arb_tensor(6), shift in -50.0f32..50.0) {
        let shifted = a.map(|x| x + shift);
        prop_assert!(a.softmax_rows().allclose(&shifted.softmax_rows(), 1e-4));
    }

    #[test]
    fn slice_cat_roundtrip(
        n in 1usize..3, c in 2usize..6, hw in 1usize..5, split in 1usize..5, seed in 0u64..100,
    ) {
        let split = split.min(c - 1);
        let mut rng = Prng::new(seed);
        let t = Tensor::from_fn(&[n, c, hw, hw], |_| rng.uniform(-1.0, 1.0));
        let lo = t.slice_channels(0, split);
        let hi = t.slice_channels(split, c);
        prop_assert_eq!(Tensor::cat_channels(&[&lo, &hi]), t);
    }

    #[test]
    fn im2col_col2im_adjoint(
        h in 3usize..7, w in 3usize..7, c in 1usize..3, pad in 0usize..2, seed in 0u64..100,
    ) {
        let geo = Conv2dGeometry::new(h, w, 3, 1, pad);
        let mut rng = Prng::new(seed);
        let x = Tensor::from_fn(&[1, c, h, w], |_| rng.uniform(-1.0, 1.0));
        let rows = c * 9;
        let cols_n = geo.out_positions();
        let y = Tensor::from_fn(&[rows, cols_n], |_| rng.uniform(-1.0, 1.0));
        let lhs: f32 = im2col(&x, &geo).data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(col2im(&y, &geo, c, 1).data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0));
    }

    #[test]
    fn argmax_picks_maximum(a in arb_tensor(8)) {
        let idx = a.argmax_rows();
        for (r, &i) in idx.iter().enumerate() {
            for c in 0..a.dim(1) {
                prop_assert!(a.at2(r, i) >= a.at2(r, c));
            }
        }
    }

    #[test]
    fn prng_uniform_bounds(seed in 0u64..10_000, lo in -100.0f32..0.0, width in 0.1f32..100.0) {
        let mut rng = Prng::new(seed);
        let x = rng.uniform(lo, lo + width);
        prop_assert!(x >= lo && x < lo + width);
    }
}
