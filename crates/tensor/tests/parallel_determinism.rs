//! Property tests: every parallel kernel is **bit-identical** to the serial
//! reference (`FLUID_THREADS=1`) at thread counts 1, 2 and 8.
//!
//! This is the compute-kernel layer's central guarantee (see
//! `docs/PERFORMANCE.md`): the packed-GEMM engine fixes every output
//! element's accumulation chain by the `KC` depth blocking alone, and all
//! other kernels are row-partitioned, so chunk boundaries never change any
//! floating-point accumulation order. The tests run each kernel under
//! every thread count and require *exact* equality of the output buffers —
//! no tolerance. The visible-core override forces the real queued fan-out
//! path even on single-core CI hosts, so cross-thread execution (not just
//! chunk layout) is what's exercised.

use fluid_tensor::quant::{qgemm_ws, QuantSrcB, QuantizedMatrix};
use fluid_tensor::{
    col2im, conv_gemm_dw_ws, conv_gemm_fwd_ws, im2col, pool, Conv2dGeometry, PatchMatrix, Prng,
    Tensor, Workspace, KC, MR, NR,
};
use proptest::prelude::*;
use std::sync::Mutex;

/// The pool's thread knob is process-global; tests that sweep it must not
/// interleave.
static KNOB: Mutex<()> = Mutex::new(());

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs `f` under each thread count (with enough pretend cores that the
/// queued fan-out path really runs) and asserts the outputs match the
/// single-thread result exactly.
fn assert_thread_invariant(f: impl Fn() -> Tensor) -> Result<(), TestCaseError> {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    pool::override_available_parallelism_for_tests(8);
    let mut reference: Option<Tensor> = None;
    for &t in &THREAD_COUNTS {
        pool::set_threads(t);
        let got = f();
        match &reference {
            None => reference = Some(got),
            Some(want) => {
                if got != *want {
                    pool::set_threads(1);
                    pool::override_available_parallelism_for_tests(0);
                    return Err(TestCaseError::fail(format!(
                        "kernel output at {t} threads differs from serial reference \
                         (max abs diff {})",
                        got.max_abs_diff(want)
                    )));
                }
            }
        }
    }
    pool::set_threads(1);
    pool::override_available_parallelism_for_tests(0);
    Ok(())
}

fn random_tensor(seed: u64, dims: &[usize]) -> Tensor {
    let mut rng = Prng::new(seed);
    Tensor::from_fn(dims, |_| rng.uniform(-1.0, 1.0))
}

/// Shapes deliberately misaligned with the GEMM engine's panel constants:
/// degenerate rows/columns (`1×N`, `M×1`), extents straddling `MR`/`NR`
/// panel edges, depths below, at, and just past the `KC` block — every
/// case where edge-panel handling could diverge from the interior path.
fn ragged_gemm_shapes() -> Vec<(usize, usize, usize)> {
    vec![
        // (m, k, n)
        (1, 17, 260),             // single output row
        (13, 9, 1),               // single output column
        (MR + 1, 3, NR + 1),      // one ragged edge panel each way
        (MR - 1, KC, NR - 1),     // sub-panel output, k exactly one block
        (2 * MR, KC - 1, 2 * NR), // k just under the block
        (7, KC + 1, 19),          // k just over the block (two-block chains)
        (16, 2 * KC + 5, 12),     // three-block chains, aligned m
        (5, 2, 3),                // k smaller than any panel constant
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn matmul_is_thread_count_invariant(seed in 0u64..1000, m in 1usize..24, k in 1usize..48, n in 1usize..600) {
        let a = random_tensor(seed, &[m, k]);
        let b = random_tensor(seed ^ 1, &[k, n]);
        assert_thread_invariant(|| a.matmul(&b))?;
    }

    #[test]
    fn transposed_lhs_view_matmul_is_thread_count_invariant(seed in 0u64..1000, k in 1usize..32, m in 1usize..24, n in 1usize..200) {
        let a = random_tensor(seed, &[k, m]);
        let b = random_tensor(seed ^ 2, &[k, n]);
        assert_thread_invariant(|| a.view().t().matmul(&b.view()))?;
    }

    #[test]
    fn transposed_rhs_view_matmul_is_thread_count_invariant(seed in 0u64..1000, m in 1usize..16, k in 1usize..300, n in 1usize..24) {
        let a = random_tensor(seed, &[m, k]);
        let b = random_tensor(seed ^ 3, &[n, k]);
        assert_thread_invariant(|| a.view().matmul(&b.view().t()))?;
    }

    #[test]
    fn ragged_gemm_shapes_are_thread_count_invariant(seed in 0u64..1000) {
        // All three layouts (dense, Aᵀ view, Bᵀ view) over every
        // deliberately-misaligned shape.
        for (i, (m, k, n)) in ragged_gemm_shapes().into_iter().enumerate() {
            let s = seed.wrapping_add(i as u64 * 101);
            let a = random_tensor(s, &[m, k]);
            let b = random_tensor(s ^ 1, &[k, n]);
            assert_thread_invariant(|| a.matmul(&b))?;
            let a_t = random_tensor(s ^ 2, &[k, m]);
            assert_thread_invariant(|| a_t.view().t().matmul(&b.view()))?;
            let b_t = random_tensor(s ^ 3, &[n, k]);
            assert_thread_invariant(|| a.view().matmul(&b_t.view().t()))?;
        }
    }

    #[test]
    fn strided_window_view_matmul_is_thread_count_invariant(
        seed in 0u64..1000,
        m in 1usize..16,
        k in 1usize..48,
        n in 1usize..120,
        pad in 1usize..7,
    ) {
        // Non-contiguous operands: interior column windows of wider
        // buffers, so every packed row is read at a row stride larger than
        // the logical width. The engine must still fix each element's
        // accumulation chain by (k, KC) alone.
        let a_wide = random_tensor(seed, &[m, k + 2 * pad]);
        let b_wide = random_tensor(seed ^ 11, &[k, n + pad]);
        let a = a_wide.view().narrow(1, pad, k).unwrap();
        let b = b_wide.view().narrow(1, 0, n).unwrap();
        assert_thread_invariant(|| a.matmul(&b))?;
        // The same windows through the transposed path.
        assert_thread_invariant(|| b.t().matmul(&a.t()))?;
    }

    #[test]
    fn broadcast_elementwise_is_thread_count_invariant(
        seed in 0u64..1000,
        n in 1usize..40,
        f in 1usize..2000,
    ) {
        // Stride-0 broadcast reads through the parallel gather path: a
        // [f] bias over [n, f] rows and a [n, 1] column over the same.
        let x = random_tensor(seed, &[n, f]);
        let bias = random_tensor(seed ^ 12, &[f]);
        let col = random_tensor(seed ^ 13, &[n, 1]);
        assert_thread_invariant(|| x.view().add(&bias.view()).unwrap())?;
        assert_thread_invariant(|| x.view().mul(&col.view().broadcast_to(&[n, f]).unwrap()).unwrap())?;
        assert_thread_invariant(|| {
            let mut acc = x.clone();
            acc.add_assign_broadcast(&bias.view()).unwrap();
            acc
        })?;
    }

    #[test]
    fn int8_qgemm_is_thread_count_invariant(seed in 0u64..1000) {
        // The quantized path accumulates in exact i32 arithmetic, so its
        // guarantee is even stronger than the f32 engine's: any thread
        // count, any blocking. Pin it over the same misaligned shapes.
        for (i, (m, k, n)) in ragged_gemm_shapes().into_iter().enumerate() {
            let s = seed.wrapping_add(i as u64 * 211);
            let a = random_tensor(s, &[m, k]);
            let b = random_tensor(s ^ 9, &[k, n]);
            let qa = QuantizedMatrix::from_rows(a.data(), m, k);
            assert_thread_invariant(|| {
                let mut out = vec![0.0f32; m * n];
                qgemm_ws(
                    &qa,
                    QuantSrcB::RowMajor(b.data()),
                    1.0 / 127.0,
                    n,
                    &mut out,
                    &mut Workspace::new(),
                );
                Tensor::from_vec(out, &[m, n])
            })?;
        }
    }

    #[test]
    fn implicit_conv_gemm_is_thread_count_invariant(
        seed in 0u64..1000,
        batch in 1usize..4,
        c_in in 1usize..5,
        c_out in 1usize..6,
        side in 4usize..10,
        pad in 0usize..2,
    ) {
        // The implicit-GEMM convolution paths (forward and dW), straight
        // through PatchMatrix packing — ragged in every dimension for most
        // draws (c_out vs MR, positions vs NR, C·K·K vs KC).
        let geo = Conv2dGeometry::new(side, side, 3, 1, pad);
        let x = random_tensor(seed, &[batch, c_in, side, side]);
        let ckk = c_in * 9;
        let np = batch * geo.out_positions();
        let wmat = random_tensor(seed ^ 7, &[c_out, ckk]);
        assert_thread_invariant(|| {
            let patches = PatchMatrix::new(x.data(), batch, c_in, geo);
            conv_gemm_fwd_ws(&wmat, &patches, &mut Workspace::new())
        })?;
        let g = random_tensor(seed ^ 8, &[c_out, np]);
        assert_thread_invariant(|| {
            let patches = PatchMatrix::new(x.data(), batch, c_in, geo);
            conv_gemm_dw_ws(&g, &patches, &mut Workspace::new())
        })?;
    }

    #[test]
    fn im2col_and_col2im_are_thread_count_invariant(
        seed in 0u64..1000,
        batch in 1usize..5,
        c in 1usize..5,
        side in 4usize..12,
        pad in 0usize..2,
    ) {
        let geo = Conv2dGeometry::new(side, side, 3, 1, pad);
        let x = random_tensor(seed, &[batch, c, side, side]);
        assert_thread_invariant(|| im2col(&x, &geo))?;
        let cols = random_tensor(
            seed ^ 4,
            &[c * 9, batch * geo.out_positions()],
        );
        assert_thread_invariant(|| col2im(&cols, &geo, c, batch))?;
    }

    #[test]
    fn reduces_are_thread_count_invariant(seed in 0u64..1000, n in 1usize..40, f in 1usize..80) {
        let x = random_tensor(seed, &[n, f]);
        assert_thread_invariant(|| x.sum_rows())?;
        assert_thread_invariant(|| x.softmax_rows())?;
        let img = random_tensor(seed ^ 5, &[n.min(6), f.clamp(1, 8), 5, 5]);
        assert_thread_invariant(|| img.sum_per_channel())?;
    }

    #[test]
    fn elementwise_is_thread_count_invariant(seed in 0u64..1000, len in 1usize..20000) {
        let a = random_tensor(seed, &[len]);
        let b = random_tensor(seed ^ 6, &[len]);
        assert_thread_invariant(|| a.add(&b))?;
        assert_thread_invariant(|| a.mul(&b))?;
        assert_thread_invariant(|| a.relu())?;
        assert_thread_invariant(|| {
            let mut acc = a.clone();
            acc.axpy(0.37, &b);
            acc
        })?;
    }

    #[test]
    fn argmax_is_thread_count_invariant(seed in 0u64..1000, n in 1usize..200, f in 1usize..12) {
        let x = random_tensor(seed, &[n, f]);
        let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
        pool::override_available_parallelism_for_tests(8);
        let mut reference: Option<Vec<usize>> = None;
        for &t in &THREAD_COUNTS {
            pool::set_threads(t);
            let got = x.argmax_rows();
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    if &got != want {
                        pool::set_threads(1);
                        pool::override_available_parallelism_for_tests(0);
                        prop_assert_eq!(&got, want, "threads {}", t);
                    }
                }
            }
        }
        pool::set_threads(1);
        pool::override_available_parallelism_for_tests(0);
    }
}

/// A batched GEMM's row must be bit-identical to the same row computed in
/// a 1-row GEMM — the end-to-end property the serving layer's "batching
/// never changes answers" contract reduces to, here checked at a ragged
/// batch size under a multi-thread knob.
#[test]
fn batched_gemm_rows_match_single_row_gemm_under_threads() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    pool::override_available_parallelism_for_tests(8);
    pool::set_threads(8);
    let (m, k, n) = (MR + 3, KC + 11, 2 * NR + 5);
    let a = random_tensor(11, &[m, k]);
    let b = random_tensor(12, &[k, n]);
    let batched = a.matmul(&b);
    for i in 0..m {
        let row = Tensor::from_vec(a.row(i).to_vec(), &[1, k]);
        let alone = row.matmul(&b);
        assert_eq!(alone.data(), batched.row(i), "row {i} depends on batch");
    }
    pool::set_threads(1);
    pool::override_available_parallelism_for_tests(0);
}
