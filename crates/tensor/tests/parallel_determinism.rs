//! Property tests: every parallel kernel is **bit-identical** to the serial
//! reference (`FLUID_THREADS=1`) at thread counts 1, 2 and 8.
//!
//! This is the compute-kernel layer's central guarantee (see
//! `docs/PERFORMANCE.md`): work is row-partitioned, so chunk boundaries
//! never change any floating-point accumulation order. The tests run each
//! kernel under every thread count and require *exact* equality of the
//! output buffers — no tolerance.

use fluid_tensor::{col2im, im2col, pool, Conv2dGeometry, Prng, Tensor};
use proptest::prelude::*;
use std::sync::Mutex;

/// The pool's thread knob is process-global; tests that sweep it must not
/// interleave.
static KNOB: Mutex<()> = Mutex::new(());

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs `f` under each thread count and asserts the outputs match the
/// single-thread result exactly.
fn assert_thread_invariant(f: impl Fn() -> Tensor) -> Result<(), TestCaseError> {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let mut reference: Option<Tensor> = None;
    for &t in &THREAD_COUNTS {
        pool::set_threads(t);
        let got = f();
        match &reference {
            None => reference = Some(got),
            Some(want) => {
                if got != *want {
                    pool::set_threads(1);
                    return Err(TestCaseError::fail(format!(
                        "kernel output at {t} threads differs from serial reference \
                         (max abs diff {})",
                        got.max_abs_diff(want)
                    )));
                }
            }
        }
    }
    pool::set_threads(1);
    Ok(())
}

fn random_tensor(seed: u64, dims: &[usize]) -> Tensor {
    let mut rng = Prng::new(seed);
    Tensor::from_fn(dims, |_| rng.uniform(-1.0, 1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn matmul_is_thread_count_invariant(seed in 0u64..1000, m in 1usize..24, k in 1usize..48, n in 1usize..600) {
        let a = random_tensor(seed, &[m, k]);
        let b = random_tensor(seed ^ 1, &[k, n]);
        assert_thread_invariant(|| a.matmul(&b))?;
    }

    #[test]
    fn matmul_at_is_thread_count_invariant(seed in 0u64..1000, k in 1usize..32, m in 1usize..24, n in 1usize..200) {
        let a = random_tensor(seed, &[k, m]);
        let b = random_tensor(seed ^ 2, &[k, n]);
        assert_thread_invariant(|| a.matmul_at(&b))?;
    }

    #[test]
    fn matmul_bt_is_thread_count_invariant(seed in 0u64..1000, m in 1usize..16, k in 1usize..300, n in 1usize..24) {
        let a = random_tensor(seed, &[m, k]);
        let b = random_tensor(seed ^ 3, &[n, k]);
        assert_thread_invariant(|| a.matmul_bt(&b))?;
    }

    #[test]
    fn im2col_and_col2im_are_thread_count_invariant(
        seed in 0u64..1000,
        batch in 1usize..5,
        c in 1usize..5,
        side in 4usize..12,
        pad in 0usize..2,
    ) {
        let geo = Conv2dGeometry::new(side, side, 3, 1, pad);
        let x = random_tensor(seed, &[batch, c, side, side]);
        assert_thread_invariant(|| im2col(&x, &geo))?;
        let cols = random_tensor(
            seed ^ 4,
            &[c * 9, batch * geo.out_positions()],
        );
        assert_thread_invariant(|| col2im(&cols, &geo, c, batch))?;
    }

    #[test]
    fn reduces_are_thread_count_invariant(seed in 0u64..1000, n in 1usize..40, f in 1usize..80) {
        let x = random_tensor(seed, &[n, f]);
        assert_thread_invariant(|| x.sum_rows())?;
        assert_thread_invariant(|| x.softmax_rows())?;
        let img = random_tensor(seed ^ 5, &[n.min(6), f.clamp(1, 8), 5, 5]);
        assert_thread_invariant(|| img.sum_per_channel())?;
    }

    #[test]
    fn elementwise_is_thread_count_invariant(seed in 0u64..1000, len in 1usize..20000) {
        let a = random_tensor(seed, &[len]);
        let b = random_tensor(seed ^ 6, &[len]);
        assert_thread_invariant(|| a.add(&b))?;
        assert_thread_invariant(|| a.mul(&b))?;
        assert_thread_invariant(|| a.relu())?;
        assert_thread_invariant(|| {
            let mut acc = a.clone();
            acc.axpy(0.37, &b);
            acc
        })?;
    }

    #[test]
    fn argmax_is_thread_count_invariant(seed in 0u64..1000, n in 1usize..200, f in 1usize..12) {
        let x = random_tensor(seed, &[n, f]);
        let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
        let mut reference: Option<Vec<usize>> = None;
        for &t in &THREAD_COUNTS {
            pool::set_threads(t);
            let got = x.argmax_rows();
            match &reference {
                None => reference = Some(got),
                Some(want) => prop_assert_eq!(&got, want, "threads {}", t),
            }
        }
        pool::set_threads(1);
    }
}
