//! Binary model checkpoints.
//!
//! A deployment story needs durable weights: the Master trains (or loads) a
//! model once and re-deploys branches after failures. The format is a small
//! little-endian container (magic, version, architecture, tensors) with no
//! external dependencies.

use crate::arch::{Arch, WidthLadder};
use crate::network::ConvNet;
use fluid_tensor::{Prng, Tensor};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"FLDN";
const VERSION: u32 = 1;

/// Error loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a checkpoint or is damaged.
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(why) => write!(f, "invalid checkpoint: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u32<R: Read>(r: &mut R) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn put_tensor<W: Write>(w: &mut W, t: &Tensor) -> io::Result<()> {
    put_u32(w, t.dims().len() as u32)?;
    for &d in t.dims() {
        put_u32(w, d as u32)?;
    }
    for &x in t.data() {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn get_tensor<R: Read>(r: &mut R) -> Result<Tensor, CheckpointError> {
    // Reject before `Tensor::from_vec`: `Shape` stores dimensions inline
    // and panics past `MAX_RANK`, and a corrupt checkpoint must surface as
    // a `Format` error (the all-or-nothing loader contract), not a crash.
    let rank = get_u32(r)? as usize;
    if rank > fluid_tensor::MAX_RANK {
        return Err(CheckpointError::Format(format!("tensor rank {rank}")));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(get_u32(r)? as usize);
    }
    let n: usize = dims.iter().product();
    if n > 256 * 1024 * 1024 {
        return Err(CheckpointError::Format(format!("tensor of {n} elements")));
    }
    let mut data = Vec::with_capacity(n);
    let mut b = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        data.push(f32::from_le_bytes(b));
    }
    Ok(Tensor::from_vec(data, &dims))
}

/// Writes a network (architecture + all weights) to a writer.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_net<W: Write>(net: &ConvNet, w: &mut W) -> Result<(), CheckpointError> {
    let arch = net.arch();
    w.write_all(MAGIC)?;
    put_u32(w, VERSION)?;
    put_u32(w, arch.ladder.levels() as u32)?;
    for &width in arch.ladder.widths() {
        put_u32(w, width as u32)?;
    }
    put_u32(w, arch.conv_stages as u32)?;
    put_u32(w, arch.kernel as u32)?;
    put_u32(w, arch.image_side as u32)?;
    put_u32(w, arch.image_channels as u32)?;
    put_u32(w, arch.classes as u32)?;
    for conv in net.convs() {
        put_tensor(w, conv.weight())?;
        put_tensor(w, conv.bias())?;
    }
    put_tensor(w, net.fc().weight())?;
    put_tensor(w, net.fc().bias())?;
    Ok(())
}

/// Reads a network written by [`save_net`].
///
/// # Errors
///
/// Returns [`CheckpointError`] on I/O failure, bad magic/version, or
/// mis-shaped tensors.
pub fn load_net<R: Read>(r: &mut R) -> Result<ConvNet, CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = get_u32(r)?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let levels = get_u32(r)? as usize;
    if levels == 0 || levels > 64 {
        return Err(CheckpointError::Format(format!("{levels} ladder levels")));
    }
    let mut widths = Vec::with_capacity(levels);
    for _ in 0..levels {
        widths.push(get_u32(r)? as usize);
    }
    let conv_stages = get_u32(r)? as usize;
    let kernel = get_u32(r)? as usize;
    let image_side = get_u32(r)? as usize;
    let image_channels = get_u32(r)? as usize;
    let classes = get_u32(r)? as usize;
    if !(1..=16).contains(&conv_stages) || kernel == 0 || image_side == 0 || classes == 0 {
        return Err(CheckpointError::Format("implausible architecture".into()));
    }
    let arch = Arch {
        ladder: WidthLadder::new(widths),
        conv_stages,
        kernel,
        image_side,
        image_channels,
        classes,
    };
    let mut net = ConvNet::new(arch.clone(), &mut Prng::new(0));
    for stage in 0..conv_stages {
        let w = get_tensor(r)?;
        let b = get_tensor(r)?;
        let conv = &mut net.convs_mut()[stage];
        if w.dims() != conv.weight().dims() || b.dims() != conv.bias().dims() {
            return Err(CheckpointError::Format(format!(
                "conv{stage} tensor shape mismatch"
            )));
        }
        conv.weight_mut().data_mut().copy_from_slice(w.data());
        conv.bias_mut().data_mut().copy_from_slice(b.data());
    }
    let w = get_tensor(r)?;
    let b = get_tensor(r)?;
    if w.dims() != net.fc().weight().dims() || b.dims() != net.fc().bias().dims() {
        return Err(CheckpointError::Format("fc tensor shape mismatch".into()));
    }
    net.fc_mut()
        .weight_mut()
        .data_mut()
        .copy_from_slice(w.data());
    net.fc_mut().bias_mut().data_mut().copy_from_slice(b.data());
    Ok(net)
}

/// Saves a network to a file path.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_net_to_path(net: &ConvNet, path: &std::path::Path) -> Result<(), CheckpointError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    save_net(net, &mut f)
}

/// Loads a network from a file path.
///
/// # Errors
///
/// Returns [`CheckpointError`] on I/O failure or malformed contents.
pub fn load_net_from_path(path: &std::path::Path) -> Result<ConvNet, CheckpointError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    load_net(&mut f)
}

/// Loads a checkpoint *into* a live network: the checkpoint must carry the
/// same architecture, and on success every weight of `net` is overwritten
/// in place. This is the hot-swap loader — a serving layer keeps its
/// engine (and everything holding a reference to it) and only the function
/// changes.
///
/// All-or-nothing: the checkpoint is fully parsed and validated *before*
/// the first write, so a damaged or mismatched file leaves `net` exactly
/// as it was.
///
/// # Errors
///
/// Returns [`CheckpointError`] on I/O failure, malformed contents, or an
/// architecture mismatch (`net` is untouched in every error case).
pub fn reload_net<R: Read>(net: &mut ConvNet, r: &mut R) -> Result<(), CheckpointError> {
    let loaded = load_net(r)?;
    if loaded.arch() != net.arch() {
        return Err(CheckpointError::Format(format!(
            "checkpoint architecture {:?} does not match the live net {:?}",
            loaded.arch(),
            net.arch()
        )));
    }
    for (dst, src) in net.convs_mut().iter_mut().zip(loaded.convs()) {
        dst.weight_mut()
            .data_mut()
            .copy_from_slice(src.weight().data());
        dst.bias_mut().data_mut().copy_from_slice(src.bias().data());
    }
    net.fc_mut()
        .weight_mut()
        .data_mut()
        .copy_from_slice(loaded.fc().weight().data());
    net.fc_mut()
        .bias_mut()
        .data_mut()
        .copy_from_slice(loaded.fc().bias().data());
    Ok(())
}

/// [`reload_net`] from a file path.
///
/// # Errors
///
/// Returns [`CheckpointError`] on I/O failure, malformed contents, or an
/// architecture mismatch.
pub fn reload_net_from_path(
    net: &mut ConvNet,
    path: &std::path::Path,
) -> Result<(), CheckpointError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    reload_net(net, &mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BranchSpec;
    use fluid_nn::ChannelRange;

    #[test]
    fn roundtrip_preserves_function() {
        let net = ConvNet::new(Arch::paper(), &mut Prng::new(9));
        let mut buf = Vec::new();
        save_net(&net, &mut buf).expect("save");
        let mut loaded = load_net(&mut buf.as_slice()).expect("load");

        let branch = BranchSpec::uniform("full", ChannelRange::prefix(16), 3, true);
        let x = Tensor::from_fn(&[2, 1, 28, 28], |i| ((i % 83) as f32) / 83.0);
        let mut original = net.clone();
        let a = original.forward_branch(&x, &branch, false);
        let b = loaded.forward_branch(&x, &branch, false);
        assert!(a.allclose(&b, 0.0), "checkpoint changed the function");
    }

    #[test]
    fn roundtrip_preserves_arch() {
        let net = ConvNet::new(Arch::tiny_28(), &mut Prng::new(10));
        let mut buf = Vec::new();
        save_net(&net, &mut buf).expect("save");
        let loaded = load_net(&mut buf.as_slice()).expect("load");
        assert_eq!(loaded.arch(), net.arch());
    }

    #[test]
    fn strided_view_materialisation_roundtrips() {
        // Checkpoints serialise tensors in row-major element order. A
        // tensor materialised from a non-contiguous view (here a column
        // window of a transpose) must survive save → load bit-exactly and
        // come back dense.
        let src = Tensor::from_fn(&[6, 10], |i| (i as f32).sin());
        let t = src.view().t().narrow(0, 2, 5).expect("window").to_tensor();
        let mut buf = Vec::new();
        put_tensor(&mut buf, &t).expect("save");
        let back = get_tensor(&mut buf.as_slice()).expect("load");
        assert_eq!(back.dims(), &[5, 6]);
        assert!(back.shape().is_contiguous(), "reload is dense row-major");
        assert_eq!(back.data(), t.data());
        for r in 0..5 {
            for c in 0..6 {
                assert_eq!(back.at2(r, c), src.at2(c, r + 2));
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load_net(&mut &b"NOPE"[..]).expect_err("must fail");
        assert!(matches!(err, CheckpointError::Format(_)));
    }

    #[test]
    fn truncated_file_rejected() {
        let net = ConvNet::new(Arch::tiny_28(), &mut Prng::new(11));
        let mut buf = Vec::new();
        save_net(&net, &mut buf).expect("save");
        buf.truncate(buf.len() / 2);
        assert!(load_net(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn over_rank_tensor_rejected_not_panicking() {
        // A corrupt rank past fluid_tensor::MAX_RANK must come back as a
        // Format error (the all-or-nothing loader contract) — Shape stores
        // dims inline and would panic if the guard let it through.
        let net = ConvNet::new(Arch::tiny_28(), &mut Prng::new(12));
        let mut buf = Vec::new();
        save_net(&net, &mut buf).expect("save");
        // First tensor's rank field sits after the header: magic + version
        // + ladder (level count + widths) + five u32 arch fields.
        let levels = u32::from_le_bytes(buf[8..12].try_into().expect("len")) as usize;
        let rank_at = 4 + 4 + 4 + levels * 4 + 5 * 4;
        buf[rank_at..rank_at + 4].copy_from_slice(&5u32.to_le_bytes());
        let err = load_net(&mut buf.as_slice()).expect_err("must reject rank 5");
        assert!(
            matches!(&err, CheckpointError::Format(m) if m.contains("rank")),
            "{err}"
        );
    }

    #[test]
    fn wrong_version_rejected() {
        let net = ConvNet::new(Arch::tiny_28(), &mut Prng::new(12));
        let mut buf = Vec::new();
        save_net(&net, &mut buf).expect("save");
        buf[4] = 99; // clobber version
        assert!(load_net(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("fluid_ckpt_test");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("model.fldn");
        let net = ConvNet::new(Arch::tiny_28(), &mut Prng::new(13));
        save_net_to_path(&net, &path).expect("save");
        let loaded = load_net_from_path(&path).expect("load");
        assert_eq!(loaded.fc().weight().data(), net.fc().weight().data());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reload_overwrites_live_net_in_place() {
        let source = ConvNet::new(Arch::tiny_28(), &mut Prng::new(31));
        let mut live = ConvNet::new(Arch::tiny_28(), &mut Prng::new(32));
        assert_ne!(live.fc().weight().data(), source.fc().weight().data());
        let mut buf = Vec::new();
        save_net(&source, &mut buf).expect("save");
        reload_net(&mut live, &mut buf.as_slice()).expect("reload");
        assert_eq!(live.fc().weight().data(), source.fc().weight().data());
        assert_eq!(
            live.convs()[0].weight().data(),
            source.convs()[0].weight().data()
        );
    }

    #[test]
    fn reload_rejects_arch_mismatch_and_leaves_net_untouched() {
        let source = ConvNet::new(Arch::tiny(), &mut Prng::new(33)); // 14×14
        let mut live = ConvNet::new(Arch::tiny_28(), &mut Prng::new(34));
        let before: Vec<f32> = live.fc().weight().data().to_vec();
        let mut buf = Vec::new();
        save_net(&source, &mut buf).expect("save");
        let err = reload_net(&mut live, &mut buf.as_slice()).expect_err("arch mismatch");
        assert!(err.to_string().contains("architecture"), "{err}");
        assert_eq!(live.fc().weight().data(), &before[..], "net was touched");
        // A truncated checkpoint is also rejected without a partial write.
        let err = reload_net(&mut live, &mut buf[..buf.len() / 2].as_ref()).expect_err("truncated");
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
        assert_eq!(live.fc().weight().data(), &before[..]);
    }
}
