//! Architecture description: the paper's 3-conv + 1-FC CNN and width ladders.

/// A ladder of channel widths, one per sub-network level.
///
/// The paper's model uses `[4, 8, 12, 16]` kernels for the
/// `[25%, 50%, 75%, 100%]` sub-networks.
///
/// # Example
///
/// ```
/// use fluid_models::WidthLadder;
/// let ladder = WidthLadder::quarters(16);
/// assert_eq!(ladder.widths(), &[4, 8, 12, 16]);
/// assert_eq!(ladder.half(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidthLadder {
    widths: Vec<usize>,
}

impl WidthLadder {
    /// Builds a ladder from explicit widths (ascending, last = maximum).
    ///
    /// # Panics
    ///
    /// Panics if `widths` is empty, not strictly ascending, or starts at 0.
    pub fn new(widths: Vec<usize>) -> Self {
        assert!(!widths.is_empty(), "empty width ladder");
        assert!(widths[0] > 0, "zero-width sub-network");
        assert!(
            widths.windows(2).all(|w| w[0] < w[1]),
            "ladder must be strictly ascending: {widths:?}"
        );
        Self { widths }
    }

    /// The paper's quarter ladder `[max/4, max/2, 3·max/4, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `max` is not divisible by 4.
    pub fn quarters(max: usize) -> Self {
        assert!(
            max.is_multiple_of(4) && max > 0,
            "max {max} not divisible by 4"
        );
        Self::new(vec![max / 4, max / 2, 3 * max / 4, max])
    }

    /// An even ladder with `levels` steps up to `max`.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0` or `max` is not divisible by `levels`.
    pub fn even(max: usize, levels: usize) -> Self {
        assert!(levels > 0, "zero levels");
        assert!(
            max.is_multiple_of(levels),
            "max {max} not divisible by {levels}"
        );
        Self::new((1..=levels).map(|i| i * max / levels).collect())
    }

    /// The widths, ascending.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// Number of ladder levels.
    pub fn levels(&self) -> usize {
        self.widths.len()
    }

    /// The maximum (100%) width.
    pub fn max(&self) -> usize {
        *self.widths.last().expect("non-empty ladder")
    }

    /// The 50% split point that separates the fluid lower and upper blocks.
    ///
    /// For the paper's ladder this is the second level (8 of 16); in general
    /// it is the middle level's width.
    pub fn half(&self) -> usize {
        self.widths[self.levels() / 2
            - if self.levels().is_multiple_of(2) {
                1
            } else {
                0
            }]
    }

    /// Width as a fraction of the maximum, for reporting.
    pub fn fraction(&self, level: usize) -> f64 {
        self.widths[level] as f64 / self.max() as f64
    }
}

/// The full architecture of the paper's model: three 3×3 conv stages (each
/// followed by ReLU and 2×2 max-pool) and one FC classifier head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arch {
    /// Channel width ladder shared by all conv layers.
    pub ladder: WidthLadder,
    /// Number of conv stages.
    pub conv_stages: usize,
    /// Conv kernel extent.
    pub kernel: usize,
    /// Input image side (28 for MNIST-shaped data).
    pub image_side: usize,
    /// Input image channels.
    pub image_channels: usize,
    /// Number of output classes.
    pub classes: usize,
}

impl Arch {
    /// The paper's configuration: 3 conv stages, 3×3 kernels,
    /// `[4, 8, 12, 16]` channel ladder, 28×28 input, 10 classes.
    pub fn paper() -> Self {
        Self {
            ladder: WidthLadder::quarters(16),
            conv_stages: 3,
            kernel: 3,
            image_side: 28,
            image_channels: 1,
            classes: 10,
        }
    }

    /// A reduced architecture for fast tests (2 stages, 8 max channels,
    /// 14×14 input).
    pub fn tiny() -> Self {
        Self {
            ladder: WidthLadder::quarters(8),
            conv_stages: 2,
            kernel: 3,
            image_side: 14,
            image_channels: 1,
            classes: 10,
        }
    }

    /// A reduced architecture that still consumes 28×28 images (fast tests
    /// over the real synthetic dataset).
    pub fn tiny_28() -> Self {
        Self {
            ladder: WidthLadder::quarters(8),
            conv_stages: 2,
            kernel: 3,
            image_side: 28,
            image_channels: 1,
            classes: 10,
        }
    }

    /// Spatial side length after `stage` pool operations (2×2, stride 2,
    /// truncating).
    pub fn side_after(&self, stage: usize) -> usize {
        let mut side = self.image_side;
        for _ in 0..stage {
            side /= 2;
        }
        side
    }

    /// Side length of the final feature map entering the FC layer.
    pub fn final_side(&self) -> usize {
        self.side_after(self.conv_stages)
    }

    /// Features per channel after flattening (`final_side²`).
    pub fn features_per_channel(&self) -> usize {
        self.final_side() * self.final_side()
    }

    /// Maximum FC input features (`max_channels × final_side²`).
    pub fn fc_in_max(&self) -> usize {
        self.ladder.max() * self.features_per_channel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ladder_matches_paper() {
        let a = Arch::paper();
        assert_eq!(a.ladder.widths(), &[4, 8, 12, 16]);
        assert_eq!(a.conv_stages, 3);
        assert_eq!(a.kernel, 3);
    }

    #[test]
    fn paper_feature_geometry() {
        // 28 -> 14 -> 7 -> 3 through three 2x2 pools.
        let a = Arch::paper();
        assert_eq!(a.side_after(1), 14);
        assert_eq!(a.side_after(2), 7);
        assert_eq!(a.final_side(), 3);
        assert_eq!(a.fc_in_max(), 16 * 9);
    }

    #[test]
    fn half_is_fifty_percent_level() {
        assert_eq!(WidthLadder::quarters(16).half(), 8);
        assert_eq!(WidthLadder::even(8, 2).half(), 4);
    }

    #[test]
    fn even_ladder() {
        assert_eq!(
            WidthLadder::even(16, 8).widths(),
            &[2, 4, 6, 8, 10, 12, 14, 16]
        );
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn non_ascending_panics() {
        let _ = WidthLadder::new(vec![4, 4, 8]);
    }

    #[test]
    fn fraction_reporting() {
        let l = WidthLadder::quarters(16);
        assert!((l.fraction(0) - 0.25).abs() < 1e-9);
        assert!((l.fraction(3) - 1.0).abs() < 1e-9);
    }
}
