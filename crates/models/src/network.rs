//! The shared 3-conv + 1-FC network executor.

use crate::arch::Arch;
use crate::spec::{BranchSpec, SubnetSpec};
use fluid_nn::{Flatten, MaxPool2d, ParamSet, RangedConv2d, RangedLinear, Relu};
use fluid_tensor::{Prng, Tensor, Workspace};

/// The paper's CNN: `conv_stages` × (RangedConv2d → ReLU → MaxPool 2×2),
/// then Flatten and a [`RangedLinear`] classifier head.
///
/// A `ConvNet` holds **full-width** weights; which channels execute is
/// decided per call by a [`BranchSpec`] or [`SubnetSpec`]. The three model
/// families in this crate are thin wrappers that pair one `ConvNet` with a
/// family-specific set of specs.
#[derive(Debug, Clone)]
pub struct ConvNet {
    arch: Arch,
    convs: Vec<RangedConv2d>,
    relus: Vec<Relu>,
    pools: Vec<MaxPool2d>,
    flatten: Flatten,
    fc: RangedLinear,
    /// Per-executor scratch arena: every layer's intermediates are drawn
    /// from and recycled into this pool, so steady-state forward/backward
    /// passes stop allocating. Cloning a net starts with a fresh arena.
    ws: Workspace,
}

impl ConvNet {
    /// Creates a network with fresh random weights.
    pub fn new(arch: Arch, rng: &mut Prng) -> Self {
        let max = arch.ladder.max();
        let mut convs = Vec::with_capacity(arch.conv_stages);
        for stage in 0..arch.conv_stages {
            let c_in = if stage == 0 { arch.image_channels } else { max };
            convs.push(RangedConv2d::new(
                max,
                c_in,
                arch.kernel,
                1,
                arch.kernel / 2,
                &mut rng.fork(stage as u64 + 1),
            ));
        }
        let relus = (0..arch.conv_stages).map(|_| Relu::new()).collect();
        let pools = (0..arch.conv_stages)
            .map(|_| MaxPool2d::new(2, 2))
            .collect();
        let fc = RangedLinear::new(arch.classes, arch.fc_in_max(), &mut rng.fork(100));
        Self {
            arch,
            convs,
            relus,
            pools,
            flatten: Flatten::new(),
            fc,
            ws: Workspace::new(),
        }
    }

    /// The architecture.
    pub fn arch(&self) -> &Arch {
        &self.arch
    }

    /// The conv layers (read access, e.g. for partial weight deployment).
    pub fn convs(&self) -> &[RangedConv2d] {
        &self.convs
    }

    /// Mutable conv layers.
    pub fn convs_mut(&mut self) -> &mut [RangedConv2d] {
        &mut self.convs
    }

    /// The FC head.
    pub fn fc(&self) -> &RangedLinear {
        &self.fc
    }

    /// Mutable FC head.
    pub fn fc_mut(&mut self) -> &mut RangedLinear {
        &mut self.fc
    }

    /// Runs one branch, returning its **partial** logits (`[N, classes]`).
    ///
    /// # Panics
    ///
    /// Panics if the branch's stage count disagrees with the architecture
    /// or `x` is not `[N, image_channels, side, side]`.
    pub fn forward_branch(&mut self, x: &Tensor, branch: &BranchSpec, train: bool) -> Tensor {
        assert_eq!(
            branch.channels.len(),
            self.arch.conv_stages,
            "branch {} has {} stages, arch has {}",
            branch.name,
            branch.channels.len(),
            self.arch.conv_stages
        );
        let Self {
            arch,
            convs,
            relus,
            pools,
            flatten,
            fc,
            ws,
        } = self;
        let mut h = ws.tensor_copy(x);
        for stage in 0..arch.conv_stages {
            let in_range = branch.in_range(stage, arch.image_channels);
            let out_range = branch.channels[stage];
            let next = convs[stage].forward_ws(&h, in_range, out_range, train, ws);
            ws.recycle(std::mem::replace(&mut h, next));
            let next = relus[stage].forward_ws(&h, train, ws);
            ws.recycle(std::mem::replace(&mut h, next));
            let next = pools[stage].forward_ws(&h, train, ws);
            ws.recycle(std::mem::replace(&mut h, next));
        }
        let flat = flatten.forward_ws(&h, train, ws);
        ws.recycle(h);
        let logits = fc.forward_ws(&flat, branch.fc_range(arch), branch.fc_bias, train, ws);
        ws.recycle(flat);
        logits
    }

    /// Runs one branch in inference mode like
    /// [`forward_branch`](ConvNet::forward_branch), additionally invoking
    /// `observe` with every quantization surface: `(stage, input)` for
    /// each conv stage's input activations and `(conv_stages, input)` for
    /// the flattened FC input. This is the calibration hook for the int8
    /// path (see [`crate::calibrate`]).
    ///
    /// # Panics
    ///
    /// As for [`forward_branch`](ConvNet::forward_branch).
    pub fn forward_branch_observed(
        &mut self,
        x: &Tensor,
        branch: &BranchSpec,
        observe: &mut dyn FnMut(usize, &Tensor),
    ) -> Tensor {
        assert_eq!(
            branch.channels.len(),
            self.arch.conv_stages,
            "branch {} has {} stages, arch has {}",
            branch.name,
            branch.channels.len(),
            self.arch.conv_stages
        );
        let Self {
            arch,
            convs,
            relus,
            pools,
            flatten,
            fc,
            ws,
        } = self;
        let mut h = ws.tensor_copy(x);
        for stage in 0..arch.conv_stages {
            observe(stage, &h);
            let in_range = branch.in_range(stage, arch.image_channels);
            let out_range = branch.channels[stage];
            let next = convs[stage].forward_ws(&h, in_range, out_range, false, ws);
            ws.recycle(std::mem::replace(&mut h, next));
            let next = relus[stage].forward_ws(&h, false, ws);
            ws.recycle(std::mem::replace(&mut h, next));
            let next = pools[stage].forward_ws(&h, false, ws);
            ws.recycle(std::mem::replace(&mut h, next));
        }
        let flat = flatten.forward_ws(&h, false, ws);
        ws.recycle(h);
        observe(arch.conv_stages, &flat);
        let logits = fc.forward_ws(&flat, branch.fc_range(arch), branch.fc_bias, false, ws);
        ws.recycle(flat);
        logits
    }

    /// Backpropagates one branch given `dL/d(partial logits)`.
    ///
    /// Must be called in reverse order of the branch forwards of the same
    /// step (layer caches are LIFO stacks).
    pub fn backward_branch(&mut self, grad_logits: &Tensor) {
        let Self {
            arch,
            convs,
            relus,
            pools,
            flatten,
            fc,
            ws,
        } = self;
        let mut g = fc.backward_ws(grad_logits, ws);
        let next = flatten.backward_ws(&g, ws);
        ws.recycle(std::mem::replace(&mut g, next));
        for stage in (0..arch.conv_stages).rev() {
            let next = pools[stage].backward_ws(&g, ws);
            ws.recycle(std::mem::replace(&mut g, next));
            let next = relus[stage].backward_ws(&g, ws);
            ws.recycle(std::mem::replace(&mut g, next));
            let next = convs[stage].backward_ws(&g, ws);
            ws.recycle(std::mem::replace(&mut g, next));
        }
        ws.recycle(g);
    }

    /// Runs a full sub-network: evaluates every branch on the same input and
    /// sums the partial logits.
    ///
    /// The returned logits are backed by this executor's scratch arena;
    /// hand them back with [`recycle`](ConvNet::recycle) once consumed and
    /// a steady-state pass performs no heap allocation at all.
    pub fn forward_subnet(&mut self, x: &Tensor, subnet: &SubnetSpec, train: bool) -> Tensor {
        let mut logits: Option<Tensor> = None;
        for branch in &subnet.branches {
            let partial = self.forward_branch(x, branch, train);
            logits = Some(match logits {
                None => partial,
                Some(mut acc) => {
                    // In-place merge: same additions as `add`, no fresh
                    // output buffer.
                    acc.add_assign(&partial);
                    self.ws.recycle(partial);
                    acc
                }
            });
        }
        logits.expect("sub-network with no branches")
    }

    /// Returns a tensor produced by this executor (logits, gradients) to
    /// its scratch arena for reuse by later passes.
    pub fn recycle(&mut self, t: Tensor) {
        self.ws.recycle(t);
    }

    /// The executor's scratch arena, for callers that thread their own
    /// workspace-backed buffers through a step (e.g. a loss's `_ws`
    /// variant between forward and backward).
    pub fn workspace_mut(&mut self) -> &mut Workspace {
        &mut self.ws
    }

    /// Backpropagates a full sub-network. Because the logits are a sum of
    /// partials, every branch receives the same `grad_logits`; branches are
    /// walked in reverse forward order to match the LIFO layer caches.
    pub fn backward_subnet(&mut self, grad_logits: &Tensor, subnet: &SubnetSpec) {
        for _branch in subnet.branches.iter().rev() {
            self.backward_branch(grad_logits);
        }
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for conv in &mut self.convs {
            conv.zero_grad();
        }
        self.fc.zero_grad();
    }

    /// Collects `(param, grad)` pairs, in a stable order, for an optimizer
    /// step.
    pub fn param_set(&mut self) -> ParamSet<'_> {
        let mut set = ParamSet::new();
        for conv in &mut self.convs {
            for (p, g) in conv.params_and_grads_mut() {
                set.push(p, g);
            }
        }
        for (p, g) in self.fc.params_and_grads_mut() {
            set.push(p, g);
        }
        set
    }

    /// Bytes currently pooled in the executor's scratch arena (diagnostic;
    /// grows to a steady high-water mark after the first step and then
    /// stays flat).
    pub fn workspace_bytes(&self) -> usize {
        self.ws.bytes_held()
    }

    /// Total parameter count of the full-width network.
    pub fn total_params(&self) -> usize {
        let mut n = 0;
        for conv in &self.convs {
            n += conv.weight().numel() + conv.bias().numel();
        }
        n + self.fc.weight().numel() + self.fc.bias().numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluid_nn::ChannelRange;

    fn lower(r: ChannelRange, stages: usize, bias: bool, name: &str) -> BranchSpec {
        BranchSpec::uniform(name, r, stages, bias)
    }

    #[test]
    fn forward_full_width_shape() {
        let arch = Arch::paper();
        let mut net = ConvNet::new(arch.clone(), &mut Prng::new(0));
        let x = Tensor::zeros(&[2, 1, 28, 28]);
        let spec = SubnetSpec::single(lower(ChannelRange::prefix(16), 3, true, "full"));
        let y = net.forward_subnet(&x, &spec, false);
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn decomposition_invariant_holds() {
        // Fluid HA-mode correctness: combined logits == sum of branch
        // partials computed independently. This is the paper's core
        // mechanism, so we check exact float equality of the composition.
        let arch = Arch::paper();
        let mut net = ConvNet::new(arch.clone(), &mut Prng::new(7));
        let x = Tensor::from_fn(&[3, 1, 28, 28], |i| ((i % 97) as f32) / 97.0);

        let lo = lower(ChannelRange::new(0, 8), 3, true, "lower50");
        let hi = lower(ChannelRange::new(8, 16), 3, false, "upper50");
        let combined = SubnetSpec::collective("combined100", vec![lo.clone(), hi.clone()]);

        let joint = net.forward_subnet(&x, &combined, false);
        let p_lo = net.forward_branch(&x, &lo, false);
        let p_hi = net.forward_branch(&x, &hi, false);
        let merged = p_lo.add(&p_hi);
        assert!(
            joint.allclose(&merged, 1e-6),
            "diff {}",
            joint.max_abs_diff(&merged)
        );
    }

    #[test]
    fn branch_isolation_upper_ignores_lower_weights() {
        // Mutating lower-block weights must not change the upper branch's
        // output: the property that lets the Worker survive Master failure.
        let arch = Arch::paper();
        let mut net = ConvNet::new(arch.clone(), &mut Prng::new(3));
        let x = Tensor::from_fn(&[1, 1, 28, 28], |i| ((i * 31 % 101) as f32) / 101.0);
        let hi = lower(ChannelRange::new(8, 16), 3, true, "upper50");
        let before = net.forward_branch(&x, &hi, false);

        // Scramble everything in the lower block of every conv, and the
        // lower FC columns.
        for conv in net.convs_mut() {
            let ci_max = conv.c_in_max();
            let kk = conv.kernel() * conv.kernel();
            for co in 0..8 {
                for ci in 0..ci_max {
                    for t in 0..kk {
                        let idx = (co * ci_max + ci) * kk + t;
                        conv.weight_mut().data_mut()[idx] += 100.0;
                    }
                }
            }
        }
        let fpc = arch.features_per_channel();
        let in_max = net.fc().in_features_max();
        for r in 0..arch.classes {
            for c in 0..8 * fpc {
                net.fc_mut().weight_mut().data_mut()[r * in_max + c] += 100.0;
            }
        }
        let after = net.forward_branch(&x, &hi, false);
        assert!(
            before.allclose(&after, 0.0),
            "upper branch depends on lower weights"
        );
    }

    #[test]
    fn training_reduces_loss_full_model() {
        use fluid_nn::{softmax_cross_entropy, Optimizer, Sgd};
        let arch = Arch::tiny();
        let mut net = ConvNet::new(arch.clone(), &mut Prng::new(5));
        let spec = SubnetSpec::single(lower(ChannelRange::prefix(8), 2, true, "full"));
        let x = Tensor::from_fn(&[8, 1, 14, 14], |i| ((i * 17 % 113) as f32) / 113.0);
        let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
        let mut opt = Sgd::new(0.05, 0.9, 0.0);

        let logits0 = net.forward_subnet(&x, &spec, false);
        let (loss0, _) = softmax_cross_entropy(&logits0, &labels);
        for _ in 0..30 {
            net.zero_grad();
            let logits = net.forward_subnet(&x, &spec, true);
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            net.backward_subnet(&grad, &spec);
            let mut params = net.param_set();
            opt.step(&mut params);
        }
        let logits1 = net.forward_subnet(&x, &spec, false);
        let (loss1, _) = softmax_cross_entropy(&logits1, &labels);
        assert!(loss1 < loss0 * 0.5, "loss {loss0} -> {loss1}");
    }

    #[test]
    fn combined_training_backward_runs() {
        use fluid_nn::softmax_cross_entropy;
        let arch = Arch::tiny();
        let mut net = ConvNet::new(arch.clone(), &mut Prng::new(6));
        let lo = lower(ChannelRange::new(0, 4), 2, true, "lower50");
        let hi = lower(ChannelRange::new(4, 8), 2, false, "upper50");
        let combined = SubnetSpec::collective("combined100", vec![lo, hi]);
        let x = Tensor::from_fn(&[4, 1, 14, 14], |i| (i as f32 * 0.01).sin().abs());
        let labels = vec![0usize, 1, 2, 3];
        net.zero_grad();
        let logits = net.forward_subnet(&x, &combined, true);
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        net.backward_subnet(&grad, &combined);
        // Both blocks must have received gradient.
        let wg_sum: f32 = net.convs()[0].wgrad_sq_norm();
        assert!(wg_sum > 0.0);
    }

    #[test]
    fn workspace_reaches_steady_state_and_stays_exact() {
        // After a warm-up step the scratch arena should stop growing, and
        // reusing dirty buffers must not perturb results: a fresh clone
        // (empty arena) computes bit-identical logits.
        let arch = Arch::tiny();
        let mut net = ConvNet::new(arch.clone(), &mut Prng::new(9));
        let spec = SubnetSpec::single(lower(ChannelRange::prefix(8), 2, true, "full"));
        let x = Tensor::from_fn(&[4, 1, 14, 14], |i| ((i * 7 % 61) as f32) / 61.0);

        // Warm-up passes: the first populates the arena, the next ones let
        // the size classes settle (the returned logits buffer churns one
        // class per pass until its own class exists).
        let warm = net.forward_subnet(&x, &spec, false);
        let first = warm.clone();
        net.ws.recycle(warm);
        for _ in 0..2 {
            let warm = net.forward_subnet(&x, &spec, false);
            net.ws.recycle(warm);
        }
        let high_water = net.workspace_bytes();
        assert!(high_water > 0, "forward must populate the arena");
        for _ in 0..3 {
            let again = net.forward_subnet(&x, &spec, false);
            assert!(first.allclose(&again, 0.0), "reuse changed the output");
            net.ws.recycle(again);
        }
        assert_eq!(
            net.workspace_bytes(),
            high_water,
            "steady-state inference must not grow the arena"
        );
        let mut fresh = net.clone();
        assert_eq!(fresh.workspace_bytes(), 0, "clone starts empty");
        let clean = fresh.forward_subnet(&x, &spec, false);
        assert!(first.allclose(&clean, 0.0));
    }

    #[test]
    fn total_params_paper_scale() {
        let net = ConvNet::new(Arch::paper(), &mut Prng::new(0));
        // conv1: 16*1*9+16, conv2/3: 16*16*9+16, fc: 10*144+10
        let expected = (16 * 9 + 16) + 2 * (16 * 16 * 9 + 16) + (10 * 144 + 10);
        assert_eq!(net.total_params(), expected);
    }
}
