//! Sub-network descriptors.

use crate::arch::Arch;
use fluid_nn::ChannelRange;

/// One *branch*: a chain through every conv stage using a fixed output
/// channel range per stage, ending in an FC partial product.
///
/// A branch is the unit that runs on a single device: its conv windows only
/// ever read the activations the branch itself produced (plus the input
/// image), so a device holding the branch's weight windows can execute it
/// with no communication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchSpec {
    /// Human-readable branch name (e.g. `"lower50"`, `"upper25"`).
    pub name: String,
    /// Output channel range of each conv stage, in order.
    pub channels: Vec<ChannelRange>,
    /// Whether this branch's FC partial product adds the bias. Exactly one
    /// branch per sub-network must set this.
    pub fc_bias: bool,
}

impl BranchSpec {
    /// Creates a branch with the same channel range at every stage.
    pub fn uniform(name: &str, range: ChannelRange, stages: usize, fc_bias: bool) -> Self {
        Self {
            name: name.to_owned(),
            channels: vec![range; stages],
            fc_bias,
        }
    }

    /// Input channel range of stage `i` (stage 0 reads the image).
    pub fn in_range(&self, stage: usize, image_channels: usize) -> ChannelRange {
        if stage == 0 {
            ChannelRange::prefix(image_channels)
        } else {
            self.channels[stage - 1]
        }
    }

    /// The FC column range this branch's flattened output occupies.
    pub fn fc_range(&self, arch: &Arch) -> ChannelRange {
        self.channels
            .last()
            .expect("branch with no stages")
            .to_feature_range(arch.features_per_channel())
    }

    /// Output channels of the final conv stage.
    pub fn final_channels(&self) -> ChannelRange {
        *self.channels.last().expect("branch with no stages")
    }
}

/// A deployable sub-network: one or more branches whose FC partial products
/// are summed into the final logits.
///
/// Single-branch specs run standalone on one device. Multi-branch specs
/// (the fluid 75%/100% models) can run collectively: each device evaluates
/// one branch and the Master sums the partial logits (High-Accuracy mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubnetSpec {
    /// Sub-network name (e.g. `"lower50"`, `"combined100"`).
    pub name: String,
    /// The branches; their FC partials sum to the logits.
    pub branches: Vec<BranchSpec>,
}

impl SubnetSpec {
    /// Creates a single-branch sub-network.
    pub fn single(branch: BranchSpec) -> Self {
        Self {
            name: branch.name.clone(),
            branches: vec![branch],
        }
    }

    /// Creates a multi-branch (collective) sub-network.
    ///
    /// # Panics
    ///
    /// Panics if `branches` is empty, more than one branch claims the FC
    /// bias, or none does.
    pub fn collective(name: &str, branches: Vec<BranchSpec>) -> Self {
        assert!(!branches.is_empty(), "sub-network with no branches");
        let bias_count = branches.iter().filter(|b| b.fc_bias).count();
        assert_eq!(
            bias_count, 1,
            "exactly one branch must own the FC bias, got {bias_count}"
        );
        Self {
            name: name.to_owned(),
            branches,
        }
    }

    /// Whether this sub-network runs on a single device.
    pub fn is_standalone(&self) -> bool {
        self.branches.len() == 1
    }

    /// Verifies the structural invariants of the spec against an
    /// architecture: stage counts match, ranges fit the ladder maximum, and
    /// branches are channel-disjoint at every stage.
    ///
    /// Returns a human-readable error on violation.
    ///
    /// # Errors
    ///
    /// Returns `Err` describing the first violated invariant.
    pub fn validate(&self, arch: &Arch) -> Result<(), String> {
        let max = arch.ladder.max();
        let bias_count = self.branches.iter().filter(|b| b.fc_bias).count();
        if bias_count != 1 {
            return Err(format!(
                "{}: {bias_count} branches own the FC bias",
                self.name
            ));
        }
        for b in &self.branches {
            if b.channels.len() != arch.conv_stages {
                return Err(format!(
                    "{}/{}: {} stages, arch has {}",
                    self.name,
                    b.name,
                    b.channels.len(),
                    arch.conv_stages
                ));
            }
            for (s, r) in b.channels.iter().enumerate() {
                if !r.fits(max) {
                    return Err(format!(
                        "{}/{} stage {s}: range {r} exceeds {max}",
                        self.name, b.name
                    ));
                }
                if r.width() == 0 {
                    return Err(format!("{}/{} stage {s}: empty range", self.name, b.name));
                }
            }
        }
        for s in 0..arch.conv_stages {
            for i in 0..self.branches.len() {
                for j in (i + 1)..self.branches.len() {
                    let (a, b) = (&self.branches[i].channels[s], &self.branches[j].channels[s]);
                    if a.overlaps(b) {
                        return Err(format!(
                            "{}: branches {} and {} overlap at stage {s} ({a} vs {b})",
                            self.name, self.branches[i].name, self.branches[j].name
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Total active channels at the final stage across branches.
    pub fn total_final_channels(&self) -> usize {
        self.branches
            .iter()
            .map(|b| b.final_channels().width())
            .sum()
    }
}

impl std::fmt::Display for SubnetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, b) in self.branches.iter().enumerate() {
            if i > 0 {
                write!(f, "+")?;
            }
            write!(f, "{}", b.name)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower50(stages: usize) -> BranchSpec {
        BranchSpec::uniform("lower50", ChannelRange::new(0, 8), stages, true)
    }

    fn upper50(stages: usize, bias: bool) -> BranchSpec {
        BranchSpec::uniform("upper50", ChannelRange::new(8, 16), stages, bias)
    }

    #[test]
    fn stage_zero_reads_image() {
        let b = lower50(3);
        assert_eq!(b.in_range(0, 1), ChannelRange::new(0, 1));
        assert_eq!(b.in_range(1, 1), ChannelRange::new(0, 8));
    }

    #[test]
    fn fc_range_is_channel_major() {
        let arch = Arch::paper();
        let b = upper50(3, false);
        let r = b.fc_range(&arch);
        assert_eq!((r.lo, r.hi), (8 * 9, 16 * 9));
    }

    #[test]
    fn collective_validates_against_paper_arch() {
        let arch = Arch::paper();
        let s = SubnetSpec::collective("combined100", vec![lower50(3), upper50(3, false)]);
        assert!(s.validate(&arch).is_ok());
        assert_eq!(s.total_final_channels(), 16);
        assert!(!s.is_standalone());
    }

    #[test]
    #[should_panic(expected = "exactly one branch must own the FC bias")]
    fn double_bias_panics() {
        let _ = SubnetSpec::collective("bad", vec![lower50(3), upper50(3, true)]);
    }

    #[test]
    fn overlap_detected() {
        let arch = Arch::paper();
        let a = BranchSpec::uniform("a", ChannelRange::new(0, 10), 3, true);
        let b = BranchSpec::uniform("b", ChannelRange::new(8, 16), 3, false);
        let s = SubnetSpec {
            name: "overlapping".into(),
            branches: vec![a, b],
        };
        let err = s.validate(&arch).expect_err("must detect overlap");
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn wrong_stage_count_detected() {
        let arch = Arch::paper();
        let s = SubnetSpec::single(lower50(2));
        assert!(s.validate(&arch).is_err());
    }

    #[test]
    fn display_format() {
        let s = SubnetSpec::collective("combined100", vec![lower50(3), upper50(3, false)]);
        assert_eq!(s.to_string(), "combined100(lower50+upper50)");
    }
}
