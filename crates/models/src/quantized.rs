//! Post-training int8 quantization: calibration, the frozen
//! [`QuantizedNet`] executor, and the [`Precision`] knob the serving
//! layer exposes.
//!
//! The flow is strictly **post-training, static, symmetric**:
//!
//! 1. [`calibrate`] runs the f32 network on a held-out batch and records
//!    the max magnitude of every quantization surface — each conv
//!    stage's input and the flattened FC input, per branch — giving one
//!    per-tensor activation scale each (`max/127`).
//! 2. [`QuantizedNet::from_net`] freezes the sub-network: every active
//!    weight window is quantized per output channel and pre-packed for
//!    the int8 GEMM; biases stay f32.
//! 3. Forward runs conv/FC in int8 (exact i32 accumulation, f32
//!    dequantizing epilogue); ReLU, max-pool, bias and the partial-logit
//!    sum stay in f32, which costs little and avoids requantization
//!    error between stages.
//!
//! Because the integer core is exact and the f32 glue is the same
//! deterministic kernels as the f32 path, a `QuantizedNet` is
//! bit-identical at any thread count and under any SIMD dispatch
//! decision. [`top1_agreement`] is the acceptance metric: the fraction of
//! examples whose argmax logit survives quantization (gate at ≥ 0.99 on
//! the calibration batch — see `docs/PERFORMANCE.md`).

use crate::arch::Arch;
use crate::network::ConvNet;
use crate::spec::SubnetSpec;
use fluid_nn::{Flatten, MaxPool2d, QuantConv2d, QuantLinear, Relu};
use fluid_tensor::quant::{max_abs, symmetric_scale};
use fluid_tensor::{Tensor, Workspace};

/// The numeric path a model executes in — the per-model serving knob
/// (`--precision f32|int8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// The full-precision reference path.
    F32,
    /// The post-training-quantized int8 path.
    Int8,
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(Precision::F32),
            "int8" => Ok(Precision::Int8),
            other => Err(format!(
                "unknown precision '{other}' (expected f32 or int8)"
            )),
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        })
    }
}

/// Per-branch activation scales from one calibration run.
#[derive(Debug, Clone)]
pub struct BranchCalibration {
    /// One symmetric scale per conv stage (that stage's *input* tensor).
    pub conv_scales: Vec<f32>,
    /// The flattened FC input's symmetric scale.
    pub fc_scale: f32,
}

/// Activation scales for every branch of a sub-network, aligned with
/// `spec.branches`.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Per-branch scales, in `spec.branches` order.
    pub branches: Vec<BranchCalibration>,
}

/// Runs the f32 sub-network on `batch` (a held-out calibration batch,
/// `[N, image_channels, side, side]`) and records one symmetric
/// per-tensor scale per quantization surface.
///
/// # Panics
///
/// Panics if the batch shape does not match the architecture.
pub fn calibrate(net: &mut ConvNet, spec: &SubnetSpec, batch: &Tensor) -> Calibration {
    let stages = net.arch().conv_stages;
    let mut branches = Vec::with_capacity(spec.branches.len());
    for branch in &spec.branches {
        let mut maxima = vec![0.0f32; stages + 1];
        let logits = net.forward_branch_observed(batch, branch, &mut |surface, t| {
            maxima[surface] = maxima[surface].max(max_abs(t.data()));
        });
        net.recycle(logits);
        branches.push(BranchCalibration {
            conv_scales: maxima[..stages]
                .iter()
                .map(|&m| symmetric_scale(m))
                .collect(),
            fc_scale: symmetric_scale(maxima[stages]),
        });
    }
    Calibration { branches }
}

/// One frozen int8 branch: quantized convs plus the quantized FC window.
#[derive(Debug, Clone)]
struct QuantBranch {
    convs: Vec<QuantConv2d>,
    fc: QuantLinear,
}

/// A frozen int8 executor for one sub-network: the quantized twin of
/// running [`ConvNet::forward_subnet`] with a fixed [`SubnetSpec`].
///
/// Built from (and checkpoint-loadable via) an f32 net — see
/// [`QuantizedNet::from_net`]; weights are pre-packed at build time, so
/// steady-state forwards perform no quantization of weights and no heap
/// allocation.
#[derive(Debug, Clone)]
pub struct QuantizedNet {
    subnet: String,
    arch: Arch,
    branches: Vec<QuantBranch>,
    relu: Relu,
    pool: MaxPool2d,
    flatten: Flatten,
    ws: Workspace,
}

impl QuantizedNet {
    /// Freezes `spec` of the given f32 network into an int8 executor
    /// using the activation scales in `calib` (from [`calibrate`] on the
    /// same net and spec — typically right after loading the f32
    /// checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if `calib` does not align with `spec` or a scale is
    /// non-finite.
    pub fn from_net(net: &ConvNet, spec: &SubnetSpec, calib: &Calibration) -> Self {
        assert_eq!(
            calib.branches.len(),
            spec.branches.len(),
            "calibration has {} branches, spec '{}' has {}",
            calib.branches.len(),
            spec.name,
            spec.branches.len()
        );
        let arch = net.arch().clone();
        let mut ws = Workspace::new();
        let mut branches = Vec::with_capacity(spec.branches.len());
        for (branch, bc) in spec.branches.iter().zip(&calib.branches) {
            assert_eq!(
                bc.conv_scales.len(),
                arch.conv_stages,
                "calibration for branch '{}' has {} conv scales, arch has {} stages",
                branch.name,
                bc.conv_scales.len(),
                arch.conv_stages
            );
            let convs = (0..arch.conv_stages)
                .map(|stage| {
                    QuantConv2d::from_ranged(
                        &net.convs()[stage],
                        branch.in_range(stage, arch.image_channels),
                        branch.channels[stage],
                        bc.conv_scales[stage],
                        &mut ws,
                    )
                })
                .collect();
            let fc = QuantLinear::from_ranged(
                net.fc(),
                branch.fc_range(&arch),
                branch.fc_bias,
                bc.fc_scale,
                &mut ws,
            );
            branches.push(QuantBranch { convs, fc });
        }
        Self {
            subnet: spec.name.clone(),
            arch,
            branches,
            relu: Relu::new(),
            pool: MaxPool2d::new(2, 2),
            flatten: Flatten::new(),
            ws,
        }
    }

    /// The sub-network this executor was frozen from.
    pub fn subnet(&self) -> &str {
        &self.subnet
    }

    /// The architecture.
    pub fn arch(&self) -> &Arch {
        &self.arch
    }

    /// Runs the frozen sub-network, summing each branch's partial logits
    /// — the int8 twin of [`ConvNet::forward_subnet`].
    ///
    /// The logits are backed by this executor's scratch arena; hand them
    /// back with [`recycle`](QuantizedNet::recycle) once consumed.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, image_channels, side, side]`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut logits: Option<Tensor> = None;
        for bi in 0..self.branches.len() {
            let partial = self.forward_branch(x, bi);
            logits = Some(match logits {
                None => partial,
                Some(mut acc) => {
                    acc.add_assign(&partial);
                    self.ws.recycle(partial);
                    acc
                }
            });
        }
        logits.expect("quantized sub-network with no branches")
    }

    fn forward_branch(&mut self, x: &Tensor, bi: usize) -> Tensor {
        let Self {
            branches,
            relu,
            pool,
            flatten,
            ws,
            ..
        } = self;
        let branch = &branches[bi];
        let mut h = ws.tensor_copy(x);
        for conv in &branch.convs {
            let next = conv.forward_ws(&h, ws);
            ws.recycle(std::mem::replace(&mut h, next));
            let next = relu.forward_ws(&h, false, ws);
            ws.recycle(std::mem::replace(&mut h, next));
            let next = pool.forward_ws(&h, false, ws);
            ws.recycle(std::mem::replace(&mut h, next));
        }
        let flat = flatten.forward_ws(&h, false, ws);
        ws.recycle(h);
        let logits = branch.fc.forward_ws(&flat, ws);
        ws.recycle(flat);
        logits
    }

    /// Returns a tensor produced by this executor to its scratch arena.
    pub fn recycle(&mut self, t: Tensor) {
        self.ws.recycle(t);
    }
}

/// Fraction of rows (examples) on which two `[N, classes]` logit tensors
/// agree on the argmax — the quantization acceptance metric.
///
/// Ties break toward the lowest class index in both tensors, so an exact
/// copy always scores 1.0. Returns 1.0 for an empty batch.
///
/// # Panics
///
/// Panics if the tensors are not rank 2 with identical dims.
pub fn top1_agreement(a: &Tensor, b: &Tensor) -> f64 {
    assert_eq!(a.dims(), b.dims(), "logit shapes differ");
    assert_eq!(a.dims().len(), 2, "logits must be [N, classes]");
    let (n, c) = (a.dims()[0], a.dims()[1]);
    if n == 0 {
        return 1.0;
    }
    let argmax = |row: &[f32]| {
        row.iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |best, (i, &v)| {
                if v > best.1 {
                    (i, v)
                } else {
                    best
                }
            })
            .0
    };
    let mut same = 0usize;
    for i in 0..n {
        if argmax(&a.data()[i * c..(i + 1) * c]) == argmax(&b.data()[i * c..(i + 1) * c]) {
            same += 1;
        }
    }
    same as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BranchSpec;
    use fluid_nn::ChannelRange;
    use fluid_tensor::Prng;

    fn full_spec(arch: &Arch) -> SubnetSpec {
        SubnetSpec::single(BranchSpec::uniform(
            "full",
            ChannelRange::prefix(arch.ladder.max()),
            arch.conv_stages,
            true,
        ))
    }

    fn batch(arch: &Arch, n: usize, seed: u64) -> Tensor {
        fluid_tensor::kaiming_uniform(
            &[n, arch.image_channels, arch.image_side, arch.image_side],
            64,
            &mut Prng::new(seed),
        )
    }

    #[test]
    fn calibration_produces_positive_scales() {
        let arch = Arch::tiny();
        let mut net = ConvNet::new(arch.clone(), &mut Prng::new(0));
        let spec = full_spec(&arch);
        let calib = calibrate(&mut net, &spec, &batch(&arch, 4, 1));
        assert_eq!(calib.branches.len(), 1);
        let bc = &calib.branches[0];
        assert_eq!(bc.conv_scales.len(), arch.conv_stages);
        assert!(bc.conv_scales.iter().all(|&s| s > 0.0 && s.is_finite()));
        assert!(bc.fc_scale > 0.0);
    }

    #[test]
    fn quantized_net_tracks_f32_and_is_bit_stable() {
        let arch = Arch::tiny();
        let mut net = ConvNet::new(arch.clone(), &mut Prng::new(3));
        let spec = full_spec(&arch);
        let held_out = batch(&arch, 8, 11);
        let calib = calibrate(&mut net, &spec, &held_out);
        let mut qnet = QuantizedNet::from_net(&net, &spec, &calib);

        let want = net.forward_subnet(&held_out, &spec, false);
        let got = qnet.forward(&held_out);
        assert_eq!(got.dims(), want.dims());
        let scale = max_abs(want.data()).max(1.0);
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!(
                (g - w).abs() <= 0.08 * scale,
                "quantized logits drifted: {g} vs {w}"
            );
        }
        let again = qnet.forward(&held_out);
        assert_eq!(got.data(), again.data(), "int8 forward must be bit-stable");
    }

    #[test]
    fn multi_branch_subnet_quantizes_per_branch() {
        let arch = Arch::tiny(); // ladder max 8: lower 0..4, upper 4..8
        let mut net = ConvNet::new(arch.clone(), &mut Prng::new(5));
        let half = arch.ladder.max() / 2;
        let spec = SubnetSpec::collective(
            "combined",
            vec![
                BranchSpec::uniform("lower", ChannelRange::prefix(half), arch.conv_stages, true),
                BranchSpec::uniform(
                    "upper",
                    ChannelRange::new(half, arch.ladder.max()),
                    arch.conv_stages,
                    false,
                ),
            ],
        );
        let held_out = batch(&arch, 6, 21);
        let calib = calibrate(&mut net, &spec, &held_out);
        assert_eq!(calib.branches.len(), 2);
        let mut qnet = QuantizedNet::from_net(&net, &spec, &calib);
        let want = net.forward_subnet(&held_out, &spec, false);
        let got = qnet.forward(&held_out);
        let scale = max_abs(want.data()).max(1.0);
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!((g - w).abs() <= 0.1 * scale, "combined drifted: {g} vs {w}");
        }
    }

    #[test]
    fn top1_agreement_counts_matching_argmax_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 0.0, 5.0, 1.0, 0.0], &[2, 3]);
        let b = Tensor::from_vec(vec![0.0, 9.0, 1.0, 0.0, 8.0, 0.0], &[2, 3]);
        assert_eq!(top1_agreement(&a, &a), 1.0);
        assert_eq!(top1_agreement(&a, &b), 0.5);
    }
}
