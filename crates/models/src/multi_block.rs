//! N-block Fluid DyDNNs — the paper's "applicable to any number of
//! sub-networks" generalisation.
//!
//! [`FluidModel`](crate::FluidModel) implements the paper's evaluated
//! 2-block (lower/upper) structure; this module generalises to `N`
//! disjoint channel blocks so an `N`-device system gets one standalone
//! branch per device plus combined models over any prefix of blocks.
//!
//! Everything else — block-diagonal conv connectivity, FC partial-logit
//! merging, masked training — carries over unchanged because the layer
//! primitives are range-based.

use crate::arch::Arch;
use crate::network::ConvNet;
use crate::spec::{BranchSpec, SubnetSpec};
use fluid_nn::ChannelRange;
use fluid_tensor::{Prng, Tensor};

/// A Fluid DyDNN whose channel space splits into `N` equal blocks.
///
/// Registered sub-networks:
/// * `block0` … `block{N-1}` — standalone, one per device;
/// * `combined2` … `combined{N}` — blocks `0..k` merged at the FC layer.
///
/// # Example
///
/// ```
/// use fluid_models::{Arch, MultiBlockFluid};
/// use fluid_tensor::{Prng, Tensor};
/// let mut m = MultiBlockFluid::new(Arch::paper(), 4, &mut Prng::new(0));
/// let x = Tensor::zeros(&[1, 1, 28, 28]);
/// assert_eq!(m.infer("block3", &x).dims(), &[1, 10]);
/// assert_eq!(m.infer("combined4", &x).dims(), &[1, 10]);
/// ```
#[derive(Debug, Clone)]
pub struct MultiBlockFluid {
    net: ConvNet,
    blocks: Vec<ChannelRange>,
    specs: Vec<SubnetSpec>,
}

impl MultiBlockFluid {
    /// Creates an `n_blocks`-way fluid model.
    ///
    /// # Panics
    ///
    /// Panics if `n_blocks == 0` or the architecture's maximum width is not
    /// divisible by `n_blocks`.
    pub fn new(arch: Arch, n_blocks: usize, rng: &mut Prng) -> Self {
        assert!(n_blocks > 0, "zero blocks");
        let max = arch.ladder.max();
        assert!(
            max.is_multiple_of(n_blocks),
            "{max} channels not divisible into {n_blocks} blocks"
        );
        let bw = max / n_blocks;
        let blocks: Vec<ChannelRange> = (0..n_blocks)
            .map(|i| ChannelRange::new(i * bw, (i + 1) * bw))
            .collect();
        let stages = arch.conv_stages;

        let mut specs = Vec::new();
        for (i, &range) in blocks.iter().enumerate() {
            specs.push(SubnetSpec::single(BranchSpec::uniform(
                &format!("block{i}"),
                range,
                stages,
                true,
            )));
        }
        for k in 2..=n_blocks {
            let mut branches = Vec::with_capacity(k);
            for (i, &range) in blocks.iter().take(k).enumerate() {
                branches.push(BranchSpec::uniform(
                    &format!("block{i}"),
                    range,
                    stages,
                    i == 0, // block0 owns the bias in combined models
                ));
            }
            specs.push(SubnetSpec::collective(&format!("combined{k}"), branches));
        }

        Self {
            net: ConvNet::new(arch, rng),
            blocks,
            specs,
        }
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The block channel ranges.
    pub fn blocks(&self) -> &[ChannelRange] {
        &self.blocks
    }

    /// All registered sub-network specs.
    pub fn specs(&self) -> &[SubnetSpec] {
        &self.specs
    }

    /// Looks up a sub-network by name.
    pub fn spec(&self, name: &str) -> Option<&SubnetSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// The underlying network.
    pub fn net(&self) -> &ConvNet {
        &self.net
    }

    /// Mutable access to the underlying network.
    pub fn net_mut(&mut self) -> &mut ConvNet {
        &mut self.net
    }

    /// Runs inference with the named sub-network.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not registered.
    pub fn infer(&mut self, name: &str, x: &Tensor) -> Tensor {
        let spec = self
            .spec(name)
            .unwrap_or_else(|| panic!("unknown sub-network {name:?}"))
            .clone();
        self.net.forward_subnet(x, &spec, false)
    }

    /// The training ladder for the generalised Algorithm 1: combined
    /// prefixes narrow→wide (`block0`, `combined2`, …, `combinedN`)
    /// followed by the standalone blocks (`block1` … `block{N-1}`).
    pub fn training_ladder(&self) -> (Vec<String>, Vec<String>) {
        let n = self.n_blocks();
        let mut base = vec!["block0".to_owned()];
        for k in 2..=n {
            base.push(format!("combined{k}"));
        }
        let nested = (1..n).map(|i| format!("block{i}")).collect();
        (base, nested)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_blocks_register_seven_specs() {
        let m = MultiBlockFluid::new(Arch::paper(), 4, &mut Prng::new(0));
        let names: Vec<&str> = m.specs().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "block0",
                "block1",
                "block2",
                "block3",
                "combined2",
                "combined3",
                "combined4"
            ]
        );
        assert_eq!(m.blocks().len(), 4);
        assert_eq!(m.blocks()[2], ChannelRange::new(8, 12));
    }

    #[test]
    fn all_specs_validate() {
        for n in [1usize, 2, 4, 8] {
            let m = MultiBlockFluid::new(Arch::paper(), n, &mut Prng::new(1));
            for s in m.specs() {
                assert!(s.validate(m.net().arch()).is_ok(), "{n} blocks: {}", s.name);
            }
        }
    }

    #[test]
    fn combined_n_decomposes_into_blocks() {
        let mut m = MultiBlockFluid::new(Arch::paper(), 4, &mut Prng::new(2));
        let x = Tensor::from_fn(&[2, 1, 28, 28], |i| ((i * 7 % 61) as f32) / 61.0);
        let joint = m.infer("combined4", &x);

        // Sum the standalone block partials, subtracting the (N-1) extra
        // bias copies the standalone branches add.
        let mut merged = m.infer("block0", &x);
        for i in 1..4 {
            let partial = m.infer(&format!("block{i}"), &x);
            merged = merged.add(&partial);
        }
        let mut bias3 = Tensor::zeros(&[2, 10]);
        for r in 0..2 {
            for c in 0..10 {
                bias3.set2(r, c, 3.0 * m.net().fc().bias().data()[c]);
            }
        }
        let merged = merged.sub(&bias3);
        assert!(
            joint.allclose(&merged, 1e-4),
            "diff {}",
            joint.max_abs_diff(&merged)
        );
    }

    #[test]
    fn blocks_are_mutually_isolated() {
        let mut m = MultiBlockFluid::new(Arch::paper(), 4, &mut Prng::new(3));
        let x = Tensor::from_fn(&[1, 1, 28, 28], |i| ((i * 5 % 37) as f32) / 37.0);
        let before = m.infer("block2", &x);
        // Scramble every other block's conv weights.
        let block2 = m.blocks()[2];
        for conv in m.net_mut().convs_mut() {
            let ci_max = conv.c_in_max();
            let kk = conv.kernel() * conv.kernel();
            for co in 0..16 {
                if block2.contains(co) {
                    continue;
                }
                for ci in 0..ci_max {
                    for t in 0..kk {
                        conv.weight_mut().data_mut()[(co * ci_max + ci) * kk + t] += 9.0;
                    }
                }
            }
        }
        let after = m.infer("block2", &x);
        assert!(
            before.allclose(&after, 0.0),
            "block2 depends on other blocks"
        );
    }

    #[test]
    fn training_ladder_shape() {
        let m = MultiBlockFluid::new(Arch::paper(), 4, &mut Prng::new(4));
        let (base, nested) = m.training_ladder();
        assert_eq!(base, vec!["block0", "combined2", "combined3", "combined4"]);
        assert_eq!(nested, vec!["block1", "block2", "block3"]);
    }

    #[test]
    fn single_block_degenerates_to_static() {
        let m = MultiBlockFluid::new(Arch::paper(), 1, &mut Prng::new(5));
        assert_eq!(m.specs().len(), 1);
        assert_eq!(m.specs()[0].name, "block0");
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_blocks_panic() {
        let _ = MultiBlockFluid::new(Arch::paper(), 5, &mut Prng::new(6));
    }
}
