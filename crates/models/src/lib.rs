//! # fluid-models
//!
//! The three model families compared in the paper, built over the ranged
//! layers of [`fluid_nn`]:
//!
//! * [`StaticModel`] — a plain dense CNN; only the full 100% network exists.
//! * [`DynamicModel`] — a width-slimmable CNN (incremental training, paper
//!   ref \[3\]): sub-network `w` uses channel prefix `0..w` of every layer,
//!   so larger sub-networks *contain* smaller ones and upper channel groups
//!   read lower activations (triangular connectivity).
//! * [`FluidModel`] — the paper's contribution: the channel space is split
//!   into a *lower* and an *upper* block with **no cross-block conv
//!   connections**. The upper sub-networks (`upper25`, `upper50`) run
//!   standalone, and the combined 75%/100% models merge the blocks only at
//!   the final FC layer via partial-logit summation.
//!
//! All three share [`ConvNet`] — the paper's 3-conv + 1-FC architecture —
//! and are described by [`SubnetSpec`]s (sets of [`BranchSpec`] chains), so
//! the distributed runtime can deploy any sub-network by name.
//!
//! ## Example
//!
//! ```
//! use fluid_models::{Arch, FluidModel};
//! use fluid_tensor::{Prng, Tensor};
//!
//! let mut model = FluidModel::new(Arch::paper(), &mut Prng::new(0));
//! let x = Tensor::zeros(&[1, 1, 28, 28]);
//! let logits = model.infer("upper50", &x);
//! assert_eq!(logits.dims(), &[1, 10]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod checkpoint;
mod dynamic_model;
mod flops;
mod fluid_model;
mod multi_block;
mod network;
mod quantized;
mod spec;
mod static_model;

pub use arch::{Arch, WidthLadder};
pub use checkpoint::{
    load_net, load_net_from_path, reload_net, reload_net_from_path, save_net, save_net_to_path,
    CheckpointError,
};
pub use dynamic_model::DynamicModel;
pub use flops::{branch_cost, static_partition_comm_bytes, subnet_cost, CostReport};
pub use fluid_model::{standard_specs, FluidModel, STANDALONE_SUBNETS};
pub use multi_block::MultiBlockFluid;
pub use network::ConvNet;
pub use quantized::{
    calibrate, top1_agreement, BranchCalibration, Calibration, Precision, QuantizedNet,
};
pub use spec::{BranchSpec, SubnetSpec};
pub use static_model::StaticModel;
